"""Benchmark-suite fixtures (pytest-benchmark)."""

import pytest


@pytest.fixture(scope="session")
def fab_config():
    from repro.core import FabConfig
    return FabConfig()
