"""Benchmark-suite fixtures (pytest-benchmark)."""

import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def pytest_addoption(parser):
    parser.addoption(
        "--update-baselines", action="store_true", default=False,
        help="write bench JSON artifacts over the tracked baselines "
             "at the repo root (BENCH_*.json); by default a bench run "
             "writes to build/bench/ and the tracked files stay "
             "untouched")


@pytest.fixture(scope="session")
def bench_out_dir(request):
    """Where bench artifacts land: ``build/bench/`` by default, the
    repo root (the tracked ``BENCH_*.json`` baselines) only under an
    explicit ``--update-baselines`` opt-in — a stray local bench run
    must not rewrite the history the perf trajectory is tracked
    against."""
    if request.config.getoption("--update-baselines"):
        return REPO_ROOT
    out = REPO_ROOT / "build" / "bench"
    out.mkdir(parents=True, exist_ok=True)
    return out


@pytest.fixture(scope="session")
def fab_config():
    from repro.core import FabConfig
    return FabConfig()
