"""Figure 5 ablation bench: KeySwitch datapath variants."""

from repro.experiments import ablation_keyswitch


def test_bench_fig5_ablation(benchmark):
    result = benchmark(ablation_keyswitch.run)
    orig = result.row("original")
    mod = result.row("modified")
    half = result.row("modified_no_smart")
    assert mod["cycles"] < half["cycles"] < orig["cycles"]
    assert orig["spill_MB"] > 0 and mod["spill_MB"] == 0
    # Smart scheduling halves the BasisConvert multiplies (~40% of total).
    assert mod["modmults_M"] < 0.7 * orig["modmults_M"]
    assert mod["bound_by"] == "fu"  # balanced: not memory bound
