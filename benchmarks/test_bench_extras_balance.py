"""Beyond-paper bench: balanced-design studies."""

from repro.experiments import extras_balance


def test_bench_extras_balance(benchmark):
    result = benchmark(extras_balance.run)
    assert result.row("striping/round_robin")["value"] == 1.0
    assert result.row("striping/single_port")["value"] > 10
    assert result.row("prefetch/rotation_burst")["value"] > 1.0
    assert result.row("utilization/fu")["value"] > 0.85
    # Full bandwidth: compute bound; 1/16 bandwidth: memory bound.
    assert result.row("bandwidth/461GBs")["value"] == "fu"
    assert result.row("bandwidth/29GBs")["value"] == "hbm"
