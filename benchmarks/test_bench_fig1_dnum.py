"""Figure 1 bench: dnum sweep (levels after bootstrap, key sizes)."""

from repro.experiments import fig1_dnum


def test_bench_fig1(benchmark):
    result = benchmark(fig1_dnum.run)
    levels = [r["levels_after_boot"] for r in result.rows]
    sizes = [r["key_MB(compressed)"] for r in result.rows]
    # Shape: both series increase with dnum; dnum=1 cannot bootstrap.
    assert levels == sorted(levels)
    assert sizes == sorted(sizes)
    assert levels[0] == 0
    assert result.row("dnum=3")["levels_after_boot"] == 6
