"""Figure 2 bench: fftIter sweep (bootstrap time, NTT count)."""

from repro.experiments import fig2_fftiter


def test_bench_fig2(benchmark):
    result = benchmark(fig2_fftiter.run)
    by_label = {r.label: r for r in result.rows}
    # Shape: bootstrap time and NTT count fall steeply from fftIter=1.
    assert by_label["fftIter=1"]["boot_ms"] > 5 * by_label["fftIter=4"]["boot_ms"]
    assert by_label["fftIter=1"]["ntt_ops"] > by_label["fftIter=4"]["ntt_ops"]
    # The amortized optimum is interior (3-5), as the paper argues.
    best = min(result.rows, key=lambda r: r["amortized_us_per_slot"])
    assert best.label in {"fftIter=3", "fftIter=4", "fftIter=5"}
