"""Fleet-scale bench: exact DES vs the vectorized fast engine.

Runs the SLO scenario at ~10k / ~100k (and, with ``PERF_SMOKE=1``,
~1M) jobs through both engines of
:meth:`repro.runtime.serving.ServingSimulator.run` and records
simulated jobs per wall-second for each, plus a per-arrival-process
breakdown (Poisson, diurnal, MMPP, flash crowd) of the fast engine at
the 100k point.  Results land in ``build/bench/BENCH_fleet.json`` (pass
``--update-baselines`` to rewrite the tracked repo-root baseline) —
the fleet-scale series of the tracked perf trajectory.

Gates (CI perf-smoke, ``PERF_SMOKE=1``):

* fast engine >= 5x DES at the 100k smoke point;
* fast engine >= 10x DES at the 1M point — the headline acceptance
  criterion for the two-engine refactor.

Without ``PERF_SMOKE`` only a loose sanity floor applies (shared
runners are noisy); the report-parity check on a shared exact arrival
sequence always runs.
"""

import json
import os
import time

from repro.core.params import FabConfig
from repro.runtime.serving import ServingSimulator, build_slo_scenario

#: Tracked baseline artifact name.  Where a run writes it is the
#: ``bench_out_dir`` fixture's call: ``build/bench/`` by default, the
#: tracked repo-root baseline only under ``--update-baselines``.
BENCH_NAME = "BENCH_fleet.json"

#: Arrival horizon (seconds) per scale label; the SLO scenario at
#: ``target_load=1.5`` offers ~2.8k jobs per horizon second.
SCALES = {"10k": 3.7, "100k": 37.0, "1M": 370.0}

ARRIVAL_SPECS = ("poisson", "diurnal", "mmpp:burst=6,duty=0.2",
                 "flash:factor=8")


def _best_of(fn, repeats=3):
    """Best-of-N wall time: robust against CI scheduling noise."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_bench_fleet(bench_out_dir):
    config = FabConfig()
    perf_smoke = bool(os.environ.get("PERF_SMOKE"))
    labels = ["10k", "100k"] + (["1M"] if perf_smoke else [])
    results = {"scales": {}, "arrival_processes": {}}

    for label in labels:
        repeats = 1 if label == "1M" else 2
        scenario = build_slo_scenario(config, duration_s=SCALES[label],
                                      target_load=1.5)
        simulator = ServingSimulator(config, max_batch=32)
        des_s, des_report = _best_of(
            lambda: simulator.run(scenario, seed=0, policy="fifo"),
            repeats=repeats)
        fast_s, fast_report = _best_of(
            lambda: simulator.run(scenario, seed=0, policy="fifo",
                                  engine="fast",
                                  arrival_mode="vectorized"),
            repeats=repeats + 1)
        jobs = fast_report.jobs_done + fast_report.rejected_jobs
        results["scales"][label] = {
            "jobs": jobs,
            "des_s": des_s,
            "fast_s": fast_s,
            "speedup": des_s / fast_s,
            "des_jobs_per_s": jobs / des_s,
            "fast_jobs_per_s": jobs / fast_s,
        }
        assert des_report.jobs_done > 0
        assert fast_report.jobs_done > 0

    # Parity evidence on a *shared* exact arrival sequence: the fast
    # engine's report must equal the DES oracle's, field for field.
    scenario = build_slo_scenario(config, duration_s=SCALES["10k"],
                                  target_load=1.5)
    simulator = ServingSimulator(config, max_batch=32)
    des_report = simulator.run(scenario, seed=0, policy="fifo")
    fast_report = simulator.run(scenario, seed=0, policy="fifo",
                                engine="fast")
    assert fast_report == des_report
    results["exact_arrival_parity"] = True

    # Per-arrival-process breakdown: the fast engine sustains its
    # event rate across traffic shapes, not just Poisson.
    shape_scenario = build_slo_scenario(
        config, duration_s=SCALES["100k"], target_load=1.5)
    for spec in ARRIVAL_SPECS:
        shaped = shape_scenario.with_arrivals(spec)
        fast_s, report = _best_of(
            lambda: simulator.run(shaped, seed=0, policy="fifo",
                                  engine="fast",
                                  arrival_mode="vectorized"),
            repeats=2)
        jobs = report.jobs_done + report.rejected_jobs
        name = spec.split(":")[0]
        results["arrival_processes"][name] = {
            "spec": spec,
            "jobs": jobs,
            "fast_s": fast_s,
            "fast_jobs_per_s": jobs / fast_s,
        }
        assert report.jobs_done > 0

    (bench_out_dir / BENCH_NAME).write_text(
        json.dumps(results, indent=1) + "\n")

    smoke = results["scales"]["100k"]["speedup"]
    # Loose floor always; the real gates run on CI's quiet runner.
    assert smoke >= 1.5, (
        f"fast engine only {smoke:.1f}x DES at the 100k point")
    if perf_smoke:
        assert smoke >= 5.0, (
            f"fast engine {smoke:.1f}x DES at the 100k smoke point "
            f"(gate: >= 5x)")
        fleet = results["scales"]["1M"]["speedup"]
        assert fleet >= 10.0, (
            f"fast engine {fleet:.1f}x DES at the 1M point "
            f"(gate: >= 10x)")
