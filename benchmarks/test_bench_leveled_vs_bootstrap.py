"""§5.5 bench: bootstrapping vs the leveled-FHE alternative."""

from repro.experiments import leveled_vs_bootstrap


def test_bench_leveled(benchmark):
    result = benchmark(leveled_vs_bootstrap.run)
    boot = result.row("bootstrapping (FAB-1)")
    leveled = result.row("leveled (client re-encrypt)")
    assert boot["seconds"] < leveled["seconds"]
    assert leveled["leaks_intermediates"] is True
