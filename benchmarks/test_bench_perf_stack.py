"""Perf-stack bench: fast paths vs their in-tree naive baselines.

Measures, in one run, the three sweep-scale hot paths this repo
optimized against the reference implementations it keeps for exactly
this purpose:

* scheduler — heap-driven ``TaskGraph.schedule`` vs the
  frontier-scanning ``schedule_reference`` on a seeded layered DAG;
* lowering — memoized per-op costing vs a cold cost cache on the
  paper-scale bootstrap trace;
* serving — the heap-driven event loop vs
  ``serving_baseline.baseline_run`` on a tenant-heavy scenario
  (256 tenants x 3 classes, thrashing key cache).

Results land in ``BENCH_perf_stack.json`` at the repo root, seeding
the tracked perf trajectory.  The serving fast path must hold a >= 5x
speedup over the pre-optimization loop, measured in the same run; the
asserted floor is what CI's perf-smoke step enforces.
"""

import json
import os
import random
import time

from repro.core import program as core_program
from repro.core.params import FabConfig
from repro.core.scheduler import TaskGraph
from repro.runtime.lowering import cost_trace
from repro.runtime.reference import bootstrap_trace
from repro.runtime.serving import (Scenario, ServingSimulator, Stream,
                                   build_job_classes)
from repro.runtime.serving_baseline import baseline_run

#: Tracked baseline artifact name.  Where a run writes it is the
#: ``bench_out_dir`` fixture's call: ``build/bench/`` by default, the
#: tracked repo-root baseline only under ``--update-baselines``.
BENCH_NAME = "BENCH_perf_stack.json"


def _best_of(fn, repeats=3):
    """Best-of-N wall time: robust against CI scheduling noise."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _layered_dag(tasks=800, width=24, seed=0):
    """A seeded layered DAG shaped like a lowered program: compute
    chains with cross-layer fetch edges on a multi-lane memory."""
    rng = random.Random(seed)
    g = TaskGraph()
    g.set_resource_lanes("hbm", 2)
    names = []
    for i in range(tasks):
        res = ("fu", "hbm", "cmac")[rng.randrange(3)]
        lo = max(0, i - width)
        deps = {names[rng.randrange(lo, i)] for _ in range(rng.randrange(3))
                if i > lo}
        names.append(f"t{i}")
        g.add(f"t{i}", res, rng.randrange(1, 200), deps=sorted(deps))
    return g


def test_bench_perf_stack(bench_out_dir):
    config = FabConfig()
    results = {}

    # Scheduler: heap vs frontier rescans, identical schedules.
    fast_s, fast_sched = _best_of(lambda: _layered_dag().schedule())
    naive_s, naive_sched = _best_of(
        lambda: _layered_dag().schedule_reference(), repeats=1)
    assert fast_sched.makespan == naive_sched.makespan
    assert all(fast_sched.tasks[n].start == t.start
               for n, t in naive_sched.tasks.items())
    results["scheduler"] = {
        "tasks": len(fast_sched.tasks),
        "fast_s": fast_s,
        "naive_s": naive_s,
        "speedup": naive_s / fast_s,
        "tasks_per_s": len(fast_sched.tasks) / fast_s,
    }

    # Lowering: cold cost cache vs memoized steady state.
    trace = bootstrap_trace(config)
    saved = dict(core_program._OP_COST_CACHE)
    core_program._OP_COST_CACHE.clear()
    t0 = time.perf_counter()
    cold_cost = cost_trace(trace, config)
    cold_s = time.perf_counter() - t0
    warm_s, warm_cost = _best_of(lambda: cost_trace(trace, config))
    core_program._OP_COST_CACHE.update(saved)
    assert warm_cost.cycles == cold_cost.cycles
    results["lowering"] = {
        "trace_ops": len(trace),
        "cold_s": cold_s,
        "memoized_s": warm_s,
        "speedup": cold_s / warm_s,
        "ops_per_s": len(trace) / warm_s,
    }

    # Serving: heap-driven loop vs the preserved pre-PR loop on a
    # tenant-heavy, cache-thrashed mix — the sweep-scale regime.
    classes = build_job_classes(config)
    inference = classes["lr_inference"]
    rate = 0.9 * 8 / inference.seconds(config)
    scenario = Scenario("bench_heavy", 8.0, [
        Stream(job_class, rate / 3, num_tenants=256)
        for job_class in classes.values()])
    simulator = ServingSimulator(config, num_devices=8, max_batch=2,
                                 key_cache_bytes=4 * inference.key_bytes)
    fast_serve_s, fast_report = _best_of(
        lambda: simulator.run(scenario, seed=3), repeats=2)
    base_serve_s, base_report = _best_of(
        lambda: baseline_run(simulator, scenario, seed=3), repeats=1)
    assert fast_report == base_report    # bit-identical, same run
    serving_speedup = base_serve_s / fast_serve_s
    results["serving"] = {
        "jobs": fast_report.jobs_done,
        "batches": fast_report.batches,
        "tenant_queues": 3 * 256,
        "fast_s": fast_serve_s,
        "baseline_s": base_serve_s,
        "speedup": serving_speedup,
        "jobs_per_s": fast_report.jobs_done / fast_serve_s,
    }

    (bench_out_dir / BENCH_NAME).write_text(
        json.dumps(results, indent=1) + "\n")

    # The acceptance floor: the rewritten event loop must beat the
    # pre-PR loop by >= 5x in the same run (typically ~15x).  The hard
    # floor is enforced by CI's dedicated perf-smoke step (which sets
    # PERF_SMOKE=1 and gets a generous wall-clock budget); inside the
    # plain functional suite — which may share a noisy runner — only a
    # gross regression to baseline-like behavior fails.
    floor = 5.0 if os.environ.get("PERF_SMOKE") else 2.0
    assert serving_speedup >= floor, (
        f"serving fast path regressed: {serving_speedup:.2f}x "
        f"(fast {fast_serve_s:.3f}s vs baseline {base_serve_s:.3f}s)")
