"""Serving bench: the mixed multi-tenant scenario on an 8-board pool."""

import os
import time

from repro.obs import NullRecorder
from repro.runtime import (ServingSimulator, build_scenarios,
                           build_slo_scenario)
from repro.runtime.policies import PriceSignal


def test_bench_serving_mixed(benchmark, fab_config):
    scenarios = build_scenarios(fab_config, num_devices=8,
                                duration_s=0.25)
    simulator = ServingSimulator(fab_config, num_devices=8)
    report = benchmark(simulator.run, scenarios["mixed"], 1)
    # All three workload classes must be served.
    names = {w.name for w in report.per_workload}
    assert names == {"lr_inference", "lr_training", "analytics"}
    # Tail ordering and sane utilization.
    for w in report.per_workload:
        assert 0 < w.p50_ms <= w.p95_ms <= w.p99_ms
        assert w.throughput_jps > 0
    assert 0 < report.device_utilization <= 1.0
    assert report.mean_batch_size >= 1.0


def test_bench_serving_batching_amortizes(benchmark, fab_config):
    """Batching must beat one-job-at-a-time dispatch on key traffic."""
    scenarios = build_scenarios(fab_config, num_devices=4,
                                duration_s=0.25)
    batched_sim = ServingSimulator(fab_config, num_devices=4, max_batch=8)
    serial_sim = ServingSimulator(fab_config, num_devices=4, max_batch=1)
    batched = benchmark(batched_sim.run, scenarios["interactive"], 1)
    serial = serial_sim.run(scenarios["interactive"], seed=1)
    assert batched.key_bytes_loaded < serial.key_bytes_loaded
    inf_b = batched.workload("lr_inference")
    inf_s = serial.workload("lr_inference")
    assert inf_b.p99_ms < inf_s.p99_ms


def test_bench_serving_edf_admission(benchmark, fab_config):
    """Deadline-checked admission on the SLO scenario: the policy
    layer's dispatch-time service preview must not blow up the event
    loop's throughput, and admitted work must meet its deadlines."""
    scenario = build_slo_scenario(fab_config, num_devices=8,
                                  duration_s=0.25, target_load=1.2)
    simulator = ServingSimulator(fab_config, num_devices=8)
    report = benchmark(simulator.run, scenario, 1, "edf")
    offered = len(scenario.generate(1))
    assert report.jobs_done + report.rejected_jobs == offered
    # EDF admission is safe: every completed deadline job met its
    # deadline, so attainment is exactly the admitted fraction.
    assert report.slo_attainment == report.jobs_done / offered


def test_bench_serving_deferrable_window(benchmark, fab_config):
    """Price-aware deferral under a diurnal signal: batch work lands
    in cheap slots, strictly cheaper than greedy fifo dispatch."""
    scenario = build_slo_scenario(fab_config, num_devices=8,
                                  duration_s=0.25, target_load=1.2)
    price = PriceSignal.diurnal(slot_s=0.0625)
    simulator = ServingSimulator(fab_config, num_devices=8)
    report = benchmark(simulator.run, scenario, 1,
                       "deferrable-window", price)
    fifo = simulator.run(scenario, seed=1, policy="fifo", price=price)
    assert report.cost_price_units < fifo.cost_price_units
    inf_dw = report.workload("lr_inference")
    inf_fifo = fifo.workload("lr_inference")
    assert inf_dw.slo_attainment >= inf_fifo.slo_attainment


def test_bench_recorder_overhead_gate(fab_config):
    """The zero-overhead claim, enforced: running with the default
    :class:`~repro.obs.NullRecorder` must cost (nearly) nothing over an
    un-instrumented run, because every hook sits behind one disabled
    check.  CI's perf-smoke step (PERF_SMOKE=1) holds the ratio to 5%;
    inside the plain suite — possibly on a noisy shared runner — only
    a gross regression (2x) fails.  Reports must stay bit-identical.
    """
    scenarios = build_scenarios(fab_config, num_devices=8,
                                duration_s=0.25)
    simulator = ServingSimulator(fab_config, num_devices=8)
    scenario = scenarios["mixed"]
    null = NullRecorder()

    def best_of(recorder, repeats=5):
        best = float("inf")
        report = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            report = simulator.run(scenario, seed=1, recorder=recorder)
            best = min(best, time.perf_counter() - t0)
        return best, report

    best_of(None, repeats=1)                     # warm caches
    # Interleave the two timed passes so slow-drift noise (thermal,
    # co-tenant CPU) hits both sides equally.
    bare_s, bare_report = best_of(None)
    null_s, null_report = best_of(null)
    bare2_s, _ = best_of(None)
    bare_s = min(bare_s, bare2_s)
    assert null_report == bare_report            # bit-identical
    ceiling = 1.05 if os.environ.get("PERF_SMOKE") else 2.0
    assert null_s <= bare_s * ceiling, (
        f"NullRecorder overhead {null_s / bare_s:.3f}x exceeds "
        f"{ceiling}x (bare {bare_s * 1e3:.2f} ms, "
        f"null {null_s * 1e3:.2f} ms)")
