"""Table 2 bench: parameter-set feasibility checks."""

from repro.experiments import table2_params


def test_bench_table2(benchmark):
    result = benchmark(table2_params.run)
    assert result.row("secure@128")["model"] is True
    assert result.row("ct fits on-chip")["model"] is True
    assert result.row("LBoot")["model"] == 17
    assert result.row("log PQ")["model"] == 1728
