"""Table 3 bench: resource utilization accounting."""

from repro.experiments import table3_resources


def test_bench_table3(benchmark):
    result = benchmark(table3_resources.run)
    for row in result.rows:
        model = row["model_pct"]
        paper = row["paper_pct"]
        assert abs(model - paper) < 2.0, row.label
        assert row["model_utilized"] <= row["available"]
