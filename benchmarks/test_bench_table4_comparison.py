"""Table 4 bench: accelerator footprint comparison."""

from repro.experiments import table4_comparison


def test_bench_table4(benchmark):
    result = benchmark(table4_comparison.run)
    fab = result.row("FAB")
    bts = result.row("BTS")
    f1 = result.row("F1")
    # Shape: FAB uses dramatically fewer multipliers and less memory.
    assert bts["mod_multipliers"] / fab["mod_multipliers"] == 32
    assert f1["mod_multipliers"] / fab["mod_multipliers"] == 72
    assert bts["onchip_MB"] / fab["onchip_MB"] > 10
