"""Table 5 bench: basic CKKS op latency, FAB vs GPU."""

from repro.experiments import table5_basic_ops


def test_bench_table5(benchmark):
    result = benchmark(table5_basic_ops.run)
    for row in result.rows:
        # Shape: FAB beats the GPU on every operation.
        assert row["model_speedup_vs_gpu"] > 1.0, row.label
        # Absolute: within 50% of the paper's measured FAB times.
        ratio = row["fab_model_ms"] / row["fab_paper_ms"]
        assert 0.5 < ratio < 1.6, row.label
