"""Table 6 bench: NTT/Mult throughput vs HEAX."""

from repro.experiments import table6_heax


def test_bench_table6(benchmark):
    result = benchmark(table6_heax.run)
    # Shape: FAB out-throughputs HEAX on both primitives.
    assert result.row("NTT")["model_speedup"] > 1.0
    assert result.row("Mult")["model_speedup"] > 1.0
