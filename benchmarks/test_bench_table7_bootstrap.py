"""Table 7 bench: bootstrapping comparison across devices."""

from repro.experiments import table7_bootstrap


def test_bench_table7(benchmark):
    result = benchmark(table7_bootstrap.run)
    fab = result.row("FAB")["model_us"]
    # Shape: FAB beats CPU, both GPUs and F1; BTS-2 stays ahead.
    assert result.row("Lattigo")["model_us"] / fab > 100
    assert result.row("GPU-1")["model_us"] > fab
    assert result.row("GPU-2")["model_us"] > fab
    assert result.row("F1")["model_us"] / fab > 100
    assert result.row("BTS-2")["model_us"] < fab
    # Cycle-count speedups exceed time speedups (FAB runs at 300 MHz).
    assert (result.row("Lattigo")["fab_speedup_cycles"]
            > result.row("Lattigo")["fab_speedup_time"])
