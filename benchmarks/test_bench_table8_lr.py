"""Table 8 bench: LR training time per iteration across devices."""

from repro.experiments import table8_lr


def test_bench_table8(benchmark):
    result = benchmark(table8_lr.run)
    order = {r.label: r["model_s"] for r in result.rows}
    # Shape: BTS-2 < FAB-2 < FAB-1 < {GPU-2, F1} < Lattigo.
    assert order["BTS-2"] < order["FAB-2"] < order["FAB-1"]
    assert order["FAB-1"] < order["GPU-2"]
    assert order["FAB-1"] < order["F1"]
    assert order["Lattigo"] == max(order.values())
    # FAB-2 gains over FAB-1 but far less than 8x (Amdahl).
    assert 1.1 < order["FAB-1"] / order["FAB-2"] < 3.0
