#!/usr/bin/env python
"""Fully-packed CKKS bootstrapping, end to end (§2.1.3 of the paper).

Drains a ciphertext to its last limb, runs the full pipeline
(ModRaise -> CoeffToSlot -> EvalMod -> SlotToCoeff) and shows that the
refreshed ciphertext carries the same message with levels restored —
then keeps computing on it.

Run:  python examples/bootstrap_demo.py       (~20-30 s)
"""

import time

import numpy as np

from repro.fhe import BootstrapConfig, Bootstrapper, CkksParams, CkksScheme


def main() -> None:
    params = CkksParams(ring_degree=128, num_limbs=19, scale_bits=25,
                        dnum=4, hamming_weight=8, first_prime_bits=30,
                        num_extension_limbs=8, seed=7)
    scheme = CkksScheme(params)
    print(f"context: {scheme.context}")

    t0 = time.time()
    bootstrapper = Bootstrapper(
        scheme, BootstrapConfig(eval_mod_degree=63, modulus_range=8))
    print(f"bootstrapper precompute: {time.time() - t0:.1f}s "
          f"(CtS/StC diagonals + {len(scheme.galois_keys.keys)} Galois keys)")

    n = params.ring_degree // 2
    rng = np.random.default_rng(1)
    z = (rng.uniform(-1, 1, n) + 1j * rng.uniform(-1, 1, n)) * 0.5
    ct = scheme.encrypt(z)
    print(f"fresh:      {ct}")

    # Burn the ciphertext down to one limb — no multiplications left.
    ct_low = scheme.evaluator.mod_down_to(ct, 1)
    print(f"exhausted:  {ct_low}")

    t0 = time.time()
    refreshed = bootstrapper.bootstrap(ct_low)
    elapsed = time.time() - t0
    print(f"refreshed:  {refreshed}   ({elapsed:.1f}s)")

    out = scheme.decrypt(refreshed)
    err = np.max(np.abs(out - z))
    print(f"message error after bootstrap: {err:.4f} "
          f"(message magnitude ~0.5)")
    assert err < 0.05

    # The refreshed ciphertext supports multiplication again.
    ev = scheme.evaluator
    squared = ev.rescale(ev.square(refreshed))
    sq_err = np.max(np.abs(scheme.decrypt(squared) - z * z))
    print(f"computed z^2 on the refreshed ciphertext; error {sq_err:.4f}")
    assert sq_err < 0.1
    print("OK: bootstrapping preserves the message and restores levels.")


if __name__ == "__main__":
    main()
