#!/usr/bin/env python
"""Design-space exploration with the FAB performance model.

Reproduces the paper's two design sweeps (Fig. 1: dnum, Fig. 2:
fftIter), runs the Fig. 5 KeySwitch-datapath ablation, and then goes
beyond the paper: sweeping the functional-unit count and HBM bandwidth
to show that 256 FUs at 460 GB/s is indeed a balanced point.

Run:  python examples/design_space_exploration.py
"""

import dataclasses

from repro.core import FabConfig, FabOpModel, KeySwitchDatapath
from repro.experiments import (ablation_keyswitch, fig1_dnum, fig2_fftiter,
                               print_result)


def paper_sweeps() -> None:
    print_result(fig1_dnum.run())
    print_result(fig2_fftiter.run())
    print_result(ablation_keyswitch.run())


def fu_count_sweep() -> None:
    print("== beyond the paper: functional-unit count sweep ==")
    print(f"{'FUs':>6s} {'mult ms':>9s} {'boot ms':>9s} {'bound by':>9s}")
    for fus in (64, 128, 256, 512, 1024):
        config = dataclasses.replace(FabConfig(),
                                     num_functional_units=fus)
        model = FabOpModel(config)
        mult_ms = model.multiply().seconds(config) * 1e3
        boot_ms = model.bootstrap().seconds(config) * 1e3
        bound = KeySwitchDatapath(config).report().schedule.bound_by()
        marker = "  <- paper" if fus == 256 else ""
        print(f"{fus:>6d} {mult_ms:>9.2f} {boot_ms:>9.1f} {bound:>9s}"
              f"{marker}")
    print()


def hbm_bandwidth_sweep() -> None:
    print("== beyond the paper: HBM bandwidth sensitivity ==")
    print(f"{'GB/s':>6s} {'ks ms':>8s} {'bound by':>9s}")
    base = FabConfig()
    for fraction in (0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0):
        config = dataclasses.replace(
            base, mem_clock_hz=base.mem_clock_hz * fraction)
        gbs = config.hbm_peak_bytes_per_sec / 1e9
        report = KeySwitchDatapath(config).report()
        print(f"{gbs:>6.0f} {report.seconds(config) * 1e3:>8.2f} "
              f"{report.schedule.bound_by():>9s}")
    print("\nAt a fraction of the U280's bandwidth the design flips to "
          "memory-bound —\nthe imbalance FAB's scheduling avoids.")


def main() -> None:
    paper_sweeps()
    fu_count_sweep()
    hbm_bandwidth_sweep()


if __name__ == "__main__":
    main()
