#!/usr/bin/env python
"""Fleet-scale serving: one scenario, two engines, shaped traffic.

A day of diurnal traffic against an 8-board FAB pool, run twice:

* through the exact discrete-event engine (``engine="des"``) — the
  correctness oracle, one Python event at a time;
* through the vectorized fast engine (``engine="fast"``) — the same
  semantics at roughly an order of magnitude the event rate.

On a shared exact arrival sequence the two reports are *identical* —
not statistically close — and this script prints the field-by-field
deltas to prove it (all zeros).  It then lets the fast engine loose on
what it is for: a million-job horizon that the DES loop would grind
through, swept across the arrival-process library (Poisson, diurnal,
MMPP bursts, flash crowd).

Run:  python examples/fleet_diurnal.py       (~30 s)
"""

import time

from repro.core import FabConfig
from repro.runtime import (PriceSignal, ServingSimulator,
                           build_slo_scenario)


def parity_demo(config: FabConfig) -> None:
    """Both engines on one diurnal day: identical reports."""
    scenario = build_slo_scenario(config, num_devices=8,
                                  duration_s=2.0, target_load=1.2)
    scenario = scenario.with_arrivals("diurnal:amplitude=0.8")
    simulator = ServingSimulator(config, num_devices=8, max_batch=16)
    price = PriceSignal.diurnal(slot_s=0.25)

    t0 = time.time()
    des = simulator.run(scenario, seed=0, policy="edf", price=price)
    des_s = time.time() - t0
    t0 = time.time()
    fast = simulator.run(scenario, seed=0, policy="edf", price=price,
                         engine="fast")
    fast_s = time.time() - t0

    jobs = des.jobs_done + des.rejected_jobs
    print("== engine parity: one diurnal day, shared arrivals ==")
    print(f"{jobs} jobs, edf policy, diurnal price signal")
    print(f"  des:  {des_s * 1e3:7.1f} ms wall")
    print(f"  fast: {fast_s * 1e3:7.1f} ms wall "
          f"({des_s / fast_s:.1f}x)")
    print("  parity deltas (fast - des):")
    scalar_fields = ("makespan_s", "jobs_done", "rejected_jobs",
                     "deferred_jobs", "device_utilization",
                     "key_hit_rate", "key_bytes_loaded", "batches",
                     "cost_price_units")
    for field in scalar_fields:
        delta = getattr(fast, field) - getattr(des, field)
        print(f"    {field:<20s} {delta:+g}")
        assert delta == 0, field
    for fw, dw in zip(fast.per_workload, des.per_workload):
        for q in ("p50_ms", "p95_ms", "p99_ms", "mean_ms"):
            delta = getattr(fw, q) - getattr(dw, q)
            print(f"    {fw.name + '.' + q:<20s} {delta:+g}")
            assert delta == 0, (fw.name, q)
    print("  identical: every field, every percentile.\n")


def fleet_sweep(config: FabConfig) -> None:
    """The fast engine across traffic shapes at fleet scale."""
    duration_s = 75.0  # ~200k jobs per run at target_load=1.5
    scenario = build_slo_scenario(config, num_devices=8,
                                  duration_s=duration_s,
                                  target_load=1.5)
    simulator = ServingSimulator(config, num_devices=8, max_batch=32)
    print("== fleet sweep: fast engine, shaped arrivals ==")
    print(f"{'process':>22s} {'jobs':>9s} {'wall_s':>7s} "
          f"{'jobs/s':>10s} {'p99_ms':>8s} {'slo':>5s}")
    for spec in ("poisson", "diurnal:amplitude=0.8",
                 "mmpp:burst=6,duty=0.2", "flash:factor=8"):
        shaped = scenario.with_arrivals(spec)
        t0 = time.time()
        report = simulator.run(shaped, seed=0, policy="edf",
                               engine="fast",
                               arrival_mode="vectorized")
        wall = time.time() - t0
        jobs = report.jobs_done + report.rejected_jobs
        p99 = max(w.p99_ms for w in report.per_workload
                  if w.jobs > 0)
        slo = (f"{100 * report.slo_attainment:.0f}%"
               if report.slo_attainment is not None else "-")
        print(f"{spec:>22s} {jobs:>9d} {wall:>7.2f} "
              f"{jobs / wall:>10.0f} {p99:>8.1f} {slo:>5s}")
    print()


def main() -> None:
    config = FabConfig()
    parity_demo(config)
    fleet_sweep(config)
    print("fleet demo OK: exact parity, then a fleet-scale sweep.")


if __name__ == "__main__":
    main()
