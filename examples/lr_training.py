#!/usr/bin/env python
"""Logistic-regression training over encrypted data (§5.5).

Runs the paper's target application twice:

1. *functionally* — a small encrypted training run on the CKKS library,
   verified step-for-step against the identical plaintext circuit;
2. *at paper scale* — the FAB-1 / FAB-2 performance model on the full
   HELR workload (11,982 samples, 196 features, bootstrap every
   iteration), reproducing the Table 8 comparison.

Run:  python examples/lr_training.py
"""

import time

import numpy as np

from repro.apps.lr import (EncryptedLrTrainer, PlainLrTrainer,
                           gradient_step_reference, synthetic_mnist_3v8)
from repro.fhe import CkksParams, CkksScheme
from repro.perf.devices import build_baseline_devices
from repro.perf.fab import Fab2Device, FabDevice


def functional_demo() -> None:
    print("--- functional encrypted training (reduced parameters) ---")
    data = synthetic_mnist_3v8(num_samples=6, num_features=16, seed=5)
    params = CkksParams(ring_degree=64, num_limbs=13, scale_bits=24,
                        dnum=3, hamming_weight=8, first_prime_bits=29)
    scheme = CkksScheme(params)
    trainer = EncryptedLrTrainer(scheme, learning_rate=1.0)
    t0 = time.time()
    state = trainer.train(data, iterations=2)
    print(f"2 encrypted iterations over {data.num_samples} samples: "
          f"{time.time() - t0:.1f}s")
    w_enc = trainer.decrypted_weights(state, data.num_features)
    w_ref = np.zeros(data.num_features)
    for _ in range(2):
        w_ref = gradient_step_reference(data.features, data.labels,
                                        w_ref, 1.0)
    print(f"weights vs plaintext circuit: max diff "
          f"{np.max(np.abs(w_enc - w_ref)):.2e}")


def plaintext_reference() -> None:
    print("\n--- plaintext reference at paper scale ---")
    data = synthetic_mnist_3v8(num_samples=4000, num_features=196)
    train, test = data.split(0.8)
    result = PlainLrTrainer(learning_rate=1.0).train(
        train, iterations=30, batch_size=1024)
    print(f"30 iterations, batch 1024: accuracy {result.accuracy(test):.3f}"
          f" (loss {result.losses[0]:.3f} -> {result.losses[-1]:.3f})")


def performance_model() -> None:
    print("\n--- Table 8: paper-scale per-iteration times (model) ---")
    fab1 = FabDevice()
    fab2 = Fab2Device()
    rows = [("FAB-1", fab1.lr_iteration_seconds(), 0.103),
            ("FAB-2 (8 boards)", fab2.lr_iteration_seconds(), 0.081)]
    for name, device in build_baseline_devices().items():
        paper = device.spec.published.get("lr_iteration_s")
        if paper is None:
            continue
        rows.append((name, device.lr_iteration_seconds(), paper))
    print(f"{'system':20s} {'model s/iter':>14s} {'paper s/iter':>14s}")
    for name, model_s, paper_s in rows:
        print(f"{name:20s} {model_s:14.3f} {paper_s:14.3f}")


def main() -> None:
    functional_demo()
    plaintext_reference()
    performance_model()


if __name__ == "__main__":
    main()
