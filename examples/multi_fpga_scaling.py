#!/usr/bin/env python
"""FAB-2: scaling encrypted LR training to a pool of FPGAs (§3, §5.5).

Models the 8-board cloud deployment: primary/secondary pairs over 100G
Ethernet, a broadcast master, per-iteration communication (~12 ms), and
the Amdahl ceiling imposed by single-board bootstrapping.  Sweeps the
pool size to show where adding boards stops paying.

Run:  python examples/multi_fpga_scaling.py
"""

from repro.core import FabConfig, MultiFpgaSystem
from repro.perf.fab import Fab2Device, FabDevice


def communication_model() -> None:
    config = FabConfig()
    system = MultiFpgaSystem(config, num_fpgas=8)
    print("== CMAC / Ethernet communication model ==")
    print(f"limb transmit:        {system.limb_transmit_cycles():>9,} "
          f"cycles (paper ~11,399)")
    print(f"ciphertext transmit:  {system.ciphertext_transmit_cycles():>9,}"
          f" cycles (paper ~546,980)")
    print(f"per-iteration comms:  "
          f"{system.communication_seconds_per_iteration() * 1e3:9.1f} ms "
          f"(paper ~12 ms)")
    roles = ", ".join(f"fpga{n.index}:{n.role}" for n in system.nodes)
    print(f"topology: {roles}\n")


def pool_sweep() -> None:
    print("== LR iteration time vs pool size ==")
    fab1 = FabDevice()
    single = fab1.lr_iteration_seconds()
    boot = fab1.bootstrap_seconds(slots=256)
    print(f"{'boards':>7s} {'s/iter':>8s} {'speedup':>8s} {'efficiency':>11s}")
    print(f"{1:>7d} {single:>8.3f} {1.0:>8.2f} {'100%':>11s}")
    for boards in (2, 4, 8, 16, 32):
        device = Fab2Device(num_fpgas=boards)
        t = device.lr_iteration_seconds()
        speedup = single / t
        eff = speedup / boards
        print(f"{boards:>7d} {t:>8.3f} {speedup:>8.2f} {eff:>10.0%}")
    serial_share = boot / single
    print(f"\nbootstrap is {serial_share:.0%} of a FAB-1 iteration and "
          "runs on one board,\nso Amdahl caps the pool speedup at "
          f"~{1 / serial_share:.1f}x — parallelizing bootstrapping itself "
          "is the\npaper's stated future work.")


def main() -> None:
    communication_model()
    pool_sweep()


if __name__ == "__main__":
    main()
