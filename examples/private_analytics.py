#!/usr/bin/env python
"""Private analytics: statistics on data the server never sees.

A client encrypts sensor readings; the server computes descriptive
statistics (mean, variance, covariance) homomorphically and returns
encrypted results.  Also demonstrates the exact BFV side of the house:
integer tallies mod a prime, with zero rounding error.

Run:  python examples/private_analytics.py
"""

import numpy as np

from repro.apps.stats import EncryptedAnalytics
from repro.fhe import BfvParams, BfvScheme, CkksParams, CkksScheme


def ckks_analytics() -> None:
    print("--- CKKS: approximate statistics over encrypted reals ---")
    params = CkksParams(ring_degree=64, num_limbs=7, scale_bits=25,
                        dnum=2, hamming_weight=8, first_prime_bits=30)
    scheme = CkksScheme(params)
    analytics = EncryptedAnalytics(scheme)

    rng = np.random.default_rng(5)
    temperatures = rng.normal(21.5, 1.2, 32)   # private sensor data
    humidity = rng.normal(48.0, 5.0, 32)

    report = analytics.describe(temperatures)
    print(f"encrypted  : {report}")
    print(f"ground truth: mean={temperatures.mean():.4f}, "
          f"var={temperatures.var():.4f}")

    ct_t = scheme.encrypt(temperatures)
    ct_h = scheme.encrypt(humidity)
    cov = float(np.real(scheme.decrypt(
        analytics.covariance(ct_t, ct_h))[0]))
    true_cov = float(np.cov(temperatures, humidity, bias=True)[0, 1])
    print(f"covariance(T, H): encrypted {cov:.4f}, true {true_cov:.4f}")


def bfv_tallies() -> None:
    print("\n--- BFV: exact integer tallies (no rounding, ever) ---")
    scheme = BfvScheme(BfvParams(ring_degree=32, num_limbs=4, dnum=2),
                       rotations=[1])
    rng = np.random.default_rng(9)
    votes_a = rng.integers(0, 500, 32)   # per-precinct counts
    votes_b = rng.integers(0, 500, 32)
    ct_a, ct_b = scheme.encrypt(votes_a), scheme.encrypt(votes_b)

    total = scheme.decrypt(scheme.add(ct_a, ct_b))
    margin = scheme.decrypt(scheme.sub(ct_a, ct_b))
    t = scheme.params.plain_modulus
    assert np.array_equal(total, (votes_a + votes_b) % t)
    assert np.array_equal(margin, (votes_a - votes_b) % t)
    print(f"totals per precinct (first 6):  {total[:6]}")
    print(f"margins per precinct (first 6): "
          f"{[int(v) if v < t // 2 else int(v) - t for v in margin[:6]]}")

    weighted = scheme.decrypt(scheme.multiply(
        ct_a, scheme.encrypt(np.full(32, 3))))
    assert np.array_equal(weighted, (votes_a * 3) % t)
    print("homomorphic products are bit-exact: OK")


def main() -> None:
    ckks_analytics()
    bfv_tallies()


if __name__ == "__main__":
    main()
