#!/usr/bin/env python
"""Quickstart: encrypted arithmetic with the functional CKKS library.

Encrypts two vectors, computes (x * y + x) rotated by one slot, and
decrypts — exercising every basic operation of §2.1 of the paper
(Add, Mult + relinearization, Rescale, Rotate, Conjugate).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.fhe import CkksParams, CkksScheme, ScaleAligner


def main() -> None:
    # A toy-security parameter set that runs in seconds.  Paper-scale
    # parameters (N = 2^16, L = 23) are handled by the performance
    # model (see examples/design_space_exploration.py).
    params = CkksParams(ring_degree=128, num_limbs=6, scale_bits=26,
                        dnum=2, hamming_weight=16, first_prime_bits=30)
    scheme = CkksScheme(params, rotations=[1])
    ev = scheme.evaluator
    n = params.slots

    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, n)
    y = rng.uniform(-1, 1, n)

    print(f"CKKS context: N={params.ring_degree}, {n} slots, "
          f"L={params.max_level}, log(PQ)~{scheme.context.log_pq():.0f}")

    ct_x = scheme.encrypt(x)
    ct_y = scheme.encrypt(y)
    print(f"fresh ciphertext: {ct_x}")

    # x * y (one level consumed by the rescale)
    prod = ev.rescale(ev.multiply(ct_x, ct_y))
    # + x  — the product's exact scale is Delta^2/q, not Delta, so use
    # the aligner (this is the standard RNS-CKKS scale-management dance)
    aligner = ScaleAligner(ev, scheme.encoder)
    total = aligner.add(prod, ct_x)
    # rotate left by one slot
    rotated = ev.rotate(total, 1)
    # and conjugate (a no-op for real data — sanity check)
    final = ev.conjugate(rotated)

    result = np.real(scheme.decrypt(final))
    expected = np.roll(x * y + x, -1)
    err = np.max(np.abs(result - expected))

    print(f"result[:4]   = {np.round(result[:4], 5)}")
    print(f"expected[:4] = {np.round(expected[:4], 5)}")
    print(f"max error    = {err:.2e}")
    assert err < 1e-3, "decryption drifted beyond tolerance"
    print("OK: encrypted computation matches plaintext.")


if __name__ == "__main__":
    main()
