#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

Prints model-measured values side by side with the paper-reported ones
for Figures 1-2 and Tables 2-8, plus the Fig. 5 datapath ablation and
the §5.5 leveled-FHE comparison.

Run:  python examples/reproduce_paper.py
"""

from repro.experiments import run_all


def main() -> None:
    run_all(verbose=True)


if __name__ == "__main__":
    main()
