#!/usr/bin/env python
"""Multi-tenant FHE serving on a FAB pool: a scenario sweep.

Runs the discrete-event serving simulator over the canned scenarios
(interactive inference, batch training, private analytics, and the
mixed tenant soup), then sweeps the two levers a cloud operator holds:

* pool size — how throughput and tail latency scale with boards;
* batching — how admitting compatible same-tenant jobs together
  amortizes the XRT launch and the switching-key HBM loads;
* scheduling policy — what deadline-aware admission (`edf`) and
  price-aware deferral (`deferrable-window`) buy over greedy `fifo`
  on an SLO-annotated two-tier scenario under a diurnal price signal.

Run:  python examples/serving_sim.py
"""

from repro.core import FabConfig
from repro.runtime import (PriceSignal, ServingSimulator,
                           build_scenarios, build_slo_scenario)


def scenario_sweep() -> None:
    config = FabConfig()
    scenarios = build_scenarios(config, num_devices=8, duration_s=0.5)
    simulator = ServingSimulator(config, num_devices=8)
    print("== scenario sweep (8 boards, 0.5 s arrival horizon) ==")
    for name, scenario in scenarios.items():
        report = simulator.run(scenario, seed=1)
        print(report.format())
        print()


def pool_size_sweep() -> None:
    config = FabConfig()
    print("== mixed scenario vs pool size ==")
    print(f"{'boards':>7s} {'jobs/s':>8s} {'p50_ms':>8s} {'p99_ms':>8s} "
          f"{'busy':>6s} {'key hits':>9s}")
    for boards in (1, 2, 4, 8):
        scenarios = build_scenarios(config, num_devices=boards,
                                    duration_s=0.5)
        simulator = ServingSimulator(config, num_devices=boards)
        report = simulator.run(scenarios["mixed"], seed=1)
        total_jps = sum(w.throughput_jps for w in report.per_workload)
        p50 = max(w.p50_ms for w in report.per_workload)
        p99 = max(w.p99_ms for w in report.per_workload)
        print(f"{boards:>7d} {total_jps:>8.1f} {p50:>8.1f} {p99:>8.1f} "
              f"{100 * report.device_utilization:>5.0f}% "
              f"{100 * report.key_hit_rate:>8.0f}%")
    print()


def batching_sweep() -> None:
    config = FabConfig()
    scenarios = build_scenarios(config, num_devices=4, duration_s=0.5)
    print("== interactive scenario vs max batch size (4 boards) ==")
    print(f"{'batch':>6s} {'jobs/s':>8s} {'p50_ms':>8s} {'p99_ms':>8s} "
          f"{'key GB':>7s}")
    for max_batch in (1, 2, 4, 8, 16):
        simulator = ServingSimulator(config, num_devices=4,
                                     max_batch=max_batch)
        report = simulator.run(scenarios["interactive"], seed=1)
        stats = report.workload("lr_inference")
        print(f"{max_batch:>6d} {stats.throughput_jps:>8.1f} "
              f"{stats.p50_ms:>8.1f} {stats.p99_ms:>8.1f} "
              f"{report.key_bytes_loaded / 1e9:>7.2f}")
    print()


def policy_sweep() -> None:
    config = FabConfig()
    scenario = build_slo_scenario(config, num_devices=4, duration_s=0.4,
                                  target_load=1.2)
    price = PriceSignal.diurnal(slot_s=0.1)
    simulator = ServingSimulator(config, num_devices=4)
    print("== SLO scenario vs policy (4 boards, 1.2x offered load, "
          "diurnal price) ==")
    print(f"{'policy':>18s} {'slo%':>6s} {'int p99':>8s} {'rej':>5s} "
          f"{'defer':>6s} {'cost':>7s}")
    for policy in ("fifo", "edf", "deferrable-window"):
        report = simulator.run(scenario, seed=1, policy=policy,
                               price=price)
        inf = report.workload("lr_inference")
        print(f"{policy:>18s} {100 * report.slo_attainment:>5.1f}% "
              f"{inf.p99_ms:>8.1f} {report.rejected_jobs:>5d} "
              f"{report.deferred_jobs:>6d} "
              f"{report.cost_price_units * 1e3:>7.1f}")
    print()


def main() -> None:
    scenario_sweep()
    pool_size_sweep()
    batching_sweep()
    policy_sweep()
    print("serving sweep OK")


if __name__ == "__main__":
    main()
