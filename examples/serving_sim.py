#!/usr/bin/env python
"""Multi-tenant FHE serving on a FAB pool: a scenario sweep.

Runs the discrete-event serving simulator over the canned scenarios
(interactive inference, batch training, private analytics, and the
mixed tenant soup), then sweeps the two levers a cloud operator holds:

* pool size — how throughput and tail latency scale with boards;
* batching — how admitting compatible same-tenant jobs together
  amortizes the XRT launch and the switching-key HBM loads.

Run:  python examples/serving_sim.py
"""

from repro.core import FabConfig
from repro.runtime import ServingSimulator, build_scenarios


def scenario_sweep() -> None:
    config = FabConfig()
    scenarios = build_scenarios(config, num_devices=8, duration_s=0.5)
    simulator = ServingSimulator(config, num_devices=8)
    print("== scenario sweep (8 boards, 0.5 s arrival horizon) ==")
    for name, scenario in scenarios.items():
        report = simulator.run(scenario, seed=1)
        print(report.format())
        print()


def pool_size_sweep() -> None:
    config = FabConfig()
    print("== mixed scenario vs pool size ==")
    print(f"{'boards':>7s} {'jobs/s':>8s} {'p50_ms':>8s} {'p99_ms':>8s} "
          f"{'busy':>6s} {'key hits':>9s}")
    for boards in (1, 2, 4, 8):
        scenarios = build_scenarios(config, num_devices=boards,
                                    duration_s=0.5)
        simulator = ServingSimulator(config, num_devices=boards)
        report = simulator.run(scenarios["mixed"], seed=1)
        total_jps = sum(w.throughput_jps for w in report.per_workload)
        p50 = max(w.p50_ms for w in report.per_workload)
        p99 = max(w.p99_ms for w in report.per_workload)
        print(f"{boards:>7d} {total_jps:>8.1f} {p50:>8.1f} {p99:>8.1f} "
              f"{100 * report.device_utilization:>5.0f}% "
              f"{100 * report.key_hit_rate:>8.0f}%")
    print()


def batching_sweep() -> None:
    config = FabConfig()
    scenarios = build_scenarios(config, num_devices=4, duration_s=0.5)
    print("== interactive scenario vs max batch size (4 boards) ==")
    print(f"{'batch':>6s} {'jobs/s':>8s} {'p50_ms':>8s} {'p99_ms':>8s} "
          f"{'key GB':>7s}")
    for max_batch in (1, 2, 4, 8, 16):
        simulator = ServingSimulator(config, num_devices=4,
                                     max_batch=max_batch)
        report = simulator.run(scenarios["interactive"], seed=1)
        stats = report.workload("lr_inference")
        print(f"{max_batch:>6d} {stats.throughput_jps:>8.1f} "
              f"{stats.p50_ms:>8.1f} {stats.p99_ms:>8.1f} "
              f"{report.key_bytes_loaded / 1e9:>7.2f}")
    print()


def main() -> None:
    scenario_sweep()
    pool_size_sweep()
    batching_sweep()
    print("serving sweep OK")


if __name__ == "__main__":
    main()
