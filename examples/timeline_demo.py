#!/usr/bin/env python
"""Observability walkthrough: timeline + metrics of one serving run.

Runs the SLO-annotated two-tier scenario (latency-sensitive inference
sharing a 4-board pool with deferrable batch work) under the
``deferrable-window`` policy and a diurnal price signal, with both
recorders attached to the same run:

* ``TimelineRecorder`` — a Chrome trace-event JSON: per-board tracks
  of batch spans with nested key loads, deferral windows, a pending-
  jobs counter, admission/rejection instants, and a PCIe key-traffic
  counter.  Drop the file onto https://ui.perfetto.dev to explore it.
* ``MetricsRecorder`` — windowed time-series (per-board utilization,
  queue depths, cache behaviour, rolling SLO, price), rendered here
  with the same strip-chart renderer ``repro timeline`` uses.

Recorders are strictly observational: the run's report is
bit-identical with or without them (asserted below).

Run:  python examples/timeline_demo.py
"""

import dataclasses
import json
import pathlib
import tempfile

from repro.core import FabConfig
from repro.obs import (MetricsRecorder, TimelineRecorder, compose,
                       provenance, render_metrics)
from repro.runtime import (PriceSignal, ServingSimulator,
                           build_slo_scenario)


def main() -> None:
    config = FabConfig()
    scenario = build_slo_scenario(config, num_devices=4,
                                  duration_s=0.4, target_load=1.1)
    price = PriceSignal.diurnal(slot_s=0.1)
    simulator = ServingSimulator(config, num_devices=4)

    stamp = provenance(seed=1, config=config,
                       policy="deferrable-window")
    timeline = TimelineRecorder(meta=dict(stamp))
    metrics = MetricsRecorder(window_s=0.01, meta=dict(stamp))

    report = simulator.run(scenario, seed=1,
                           policy="deferrable-window", price=price,
                           recorder=compose(timeline, metrics))

    # Observation is free: the same run without recorders is
    # bit-identical.
    bare = simulator.run(scenario, seed=1, policy="deferrable-window",
                         price=price)
    assert dataclasses.asdict(bare) == dataclasses.asdict(report)

    out_dir = pathlib.Path(tempfile.mkdtemp(prefix="repro_obs_"))
    trace_path = out_dir / "timeline.json"
    metrics_path = out_dir / "metrics.json"
    timeline.save(str(trace_path))
    metrics.save(str(metrics_path))

    doc = json.loads(trace_path.read_text())
    spans = sum(1 for e in doc["traceEvents"] if e["ph"] == "B")
    print(f"== slo_mixed / deferrable-window / diurnal price ==")
    print(f"jobs served: {report.jobs_done}  "
          f"(rejected {report.rejected_jobs}, "
          f"deferred {report.deferred_jobs})")
    print(f"timeline: {trace_path} — {len(doc['traceEvents'])} events, "
          f"{spans} batch spans; open at https://ui.perfetto.dev")
    print(f"metrics:  {metrics_path} — render with "
          f"'python -m repro timeline {metrics_path}'")
    print()
    print(render_metrics(json.loads(metrics_path.read_text()),
                         max_rows=16))
    print()
    print("timeline demo OK")


if __name__ == "__main__":
    main()
