"""Package metadata: ``pip install -e .`` makes ``import repro`` work
without PYTHONPATH gymnastics."""

from setuptools import find_packages, setup

setup(
    name="fab-repro",
    version="1.0.0",  # kept in sync with repro.__version__
    description=("Reproduction of FAB: an FPGA-based accelerator for "
                 "bootstrappable fully homomorphic encryption "
                 "(HPCA 2023) — functional CKKS library, cycle-level "
                 "performance model, and a trace-driven serving "
                 "simulator"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
)
