"""FAB: an FPGA-based accelerator for bootstrappable FHE (HPCA 2023).

A faithful Python reproduction of the paper's system:

* :mod:`repro.fhe` — a functional RNS-CKKS library (NTT, hybrid key
  switching, fully-packed bootstrapping) — the substrate FAB accelerates.
* :mod:`repro.core` — the FAB accelerator model: functional units,
  URAM/BRAM banks, HBM, the NTT and KeySwitch datapaths, an event
  scheduler, Table-3 resource accounting, and the FAB-2 multi-FPGA pool.
* :mod:`repro.perf` — workload op counts, calibrated baseline devices
  (Lattigo CPU, GPU, F1, BTS, HEAX), and the Eq.-2 metric.
* :mod:`repro.apps.lr` — HELR logistic regression over encrypted data.
* :mod:`repro.runtime` — the bridge between the two layers: trace
  capture from the functional evaluator, lowering to FAB task graphs,
  and a discrete-event multi-tenant serving simulator.
* :mod:`repro.experiments` — one driver per paper table/figure.

Quickstart::

    from repro.fhe import CkksParams, CkksScheme
    scheme = CkksScheme(CkksParams(ring_degree=64, num_limbs=5,
                                   scale_bits=25))
    ct = scheme.encrypt([1.0, 2.0, 3.0])
    ev = scheme.evaluator
    print(scheme.decrypt(ev.rescale(ev.multiply(ct, ct)))[:3])
"""

from . import apps, core, experiments, fhe, perf, runtime
from .core import FabConfig, FabOpModel
from .fhe import Bootstrapper, CkksParams, CkksScheme

__version__ = "1.0.0"

__all__ = ["Bootstrapper", "CkksParams", "CkksScheme", "FabConfig",
           "FabOpModel", "apps", "core", "experiments", "fhe", "perf",
           "runtime", "__version__"]
