"""Command-line entry point: reproduce the paper's evaluation.

Usage::

    python -m repro list                 # available experiments
    python -m repro all                  # run everything
    python -m repro table7 table8        # run specific artifacts
    python -m repro trace lr_iteration   # lower a trace, print its cost
    python -m repro serve --scenario mixed   # serving simulation
    python -m repro serve-sweep          # cost-optimal pool sweep
    python -m repro slo-sweep            # policy x load x mix SLO sweep
    python -m repro fault-sweep          # MTBF x retry resilience sweep
    python -m repro autoscale-sweep      # scale policy x arrival pattern
    python -m repro resilience-autoscale-sweep  # spares + elastic vs either
    python -m repro stripe-scale         # FAB-2 trace-striping sweep
    python -m repro timeline metrics.json    # render a metrics artifact
"""

from __future__ import annotations

import sys

from .experiments import ALL_EXPERIMENTS, print_result


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    if argv[0] == "trace":
        from .runtime.cli import run_trace
        return run_trace(argv[1:])
    if argv[0] == "serve":
        from .runtime.cli import run_serve
        return run_serve(argv[1:])
    if argv[0] == "serve-sweep":
        from .runtime.cli import run_serve_sweep
        return run_serve_sweep(argv[1:])
    if argv[0] == "slo-sweep":
        from .runtime.cli import run_slo_sweep
        return run_slo_sweep(argv[1:])
    if argv[0] == "fault-sweep":
        from .runtime.cli import run_fault_sweep
        return run_fault_sweep(argv[1:])
    if argv[0] == "autoscale-sweep":
        from .runtime.cli import run_autoscale_sweep
        return run_autoscale_sweep(argv[1:])
    if argv[0] == "resilience-autoscale-sweep":
        from .runtime.cli import run_resilience_autoscale_sweep
        return run_resilience_autoscale_sweep(argv[1:])
    if argv[0] == "stripe-scale":
        from .runtime.cli import run_stripe_scale
        return run_stripe_scale(argv[1:])
    if argv[0] == "timeline":
        from .runtime.cli import run_timeline
        return run_timeline(argv[1:])
    if argv[0] == "list":
        for key, module in ALL_EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{key:22s} {doc}")
        print(f"{'trace':22s} Lower a workload trace to a FAB program "
              f"and cost it.")
        print(f"{'serve':22s} Simulate multi-tenant serving on a FAB "
              f"pool.")
        print(f"{'serve-sweep':22s} Sweep pool x cache x tenants x load "
              f"for the cost-optimal configuration.")
        print(f"{'slo-sweep':22s} Sweep policy x load x mix x pool "
              f"size; cost/SLO Pareto frontier.")
        print(f"{'fault-sweep':22s} Sweep board MTBF x retry policy; "
              f"goodput/wasted-service resilience frontier.")
        print(f"{'autoscale-sweep':22s} Sweep scale policy x arrival "
              f"pattern; cost per goodput vs the static pool.")
        print(f"{'resilience-autoscale-sweep':26s} Sweep membership "
              f"mechanisms under faulty diurnal load; combined "
              f"spares + elastic vs either alone.")
        print(f"{'stripe-scale':22s} Stripe a trace across the FAB-2 "
              f"pool; reconcile vs the analytic model.")
        print(f"{'timeline':22s} Render a serve --metrics artifact as "
              f"a terminal summary.")
        return 0
    targets = list(ALL_EXPERIMENTS) if argv[0] == "all" else argv
    unknown = [t for t in targets if t not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}; "
              f"try: {', '.join(ALL_EXPERIMENTS)}")
        return 1
    for target in targets:
        print_result(ALL_EXPERIMENTS[target].run())
    return 0


if __name__ == "__main__":
    sys.exit(main())
