"""Application layer: the paper's target workloads."""

from . import lr, stats

__all__ = ["lr", "stats"]
