"""HELR logistic regression over encrypted data (§5.5)."""

from .data import Dataset, synthetic_mnist_3v8, PAPER_NUM_FEATURES, \
    PAPER_NUM_SAMPLES
from .encrypted import (EncryptedLrTrainer, EncryptedTrainState,
                        LEVELS_PER_ITERATION)
from .inference import EncryptedLrClassifier
from .packing import BatchPacker, rotation_tree_steps
from .plain import (POLY3_COEFFS, PlainLrTrainer, TrainResult,
                    gradient_step_reference, poly3_sigmoid, sigmoid)

__all__ = [
    "BatchPacker", "Dataset", "EncryptedLrClassifier", "EncryptedLrTrainer", "EncryptedTrainState",
    "LEVELS_PER_ITERATION", "PAPER_NUM_FEATURES", "PAPER_NUM_SAMPLES",
    "POLY3_COEFFS", "PlainLrTrainer", "TrainResult",
    "gradient_step_reference", "poly3_sigmoid", "rotation_tree_steps",
    "sigmoid", "synthetic_mnist_3v8",
]
