"""Synthetic two-class image data shaped like the paper's benchmark.

The paper trains on the MNIST 3-vs-8 subset (11,982 samples of 196
features = 14x14 downsampled pixels).  Raw MNIST is unavailable offline,
so we generate a deterministic synthetic substitute with the same shape
and a comparable degree of class overlap: two smooth class-template
images plus per-sample noise.  Logistic regression reaches high (but
not perfect) accuracy on it, matching the qualitative behaviour of the
original task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: The paper's dataset shape.
PAPER_NUM_SAMPLES = 11_982
PAPER_NUM_FEATURES = 196


@dataclass
class Dataset:
    """A binary-classification dataset.

    Attributes:
        features: (num_samples, num_features) float array in [0, 1].
        labels: (num_samples,) array of {0, 1}.
    """

    features: np.ndarray
    labels: np.ndarray

    @property
    def num_samples(self) -> int:
        return self.features.shape[0]

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    def split(self, train_fraction: float = 0.8
              ) -> Tuple["Dataset", "Dataset"]:
        """Deterministic train/test split."""
        cut = int(self.num_samples * train_fraction)
        return (Dataset(self.features[:cut], self.labels[:cut]),
                Dataset(self.features[cut:], self.labels[cut:]))

    def minibatches(self, batch_size: int):
        """Yield successive mini-batches (last one possibly short)."""
        for start in range(0, self.num_samples, batch_size):
            yield Dataset(self.features[start:start + batch_size],
                          self.labels[start:start + batch_size])


def _class_template(side: int, phase: float,
                    rng: np.random.Generator) -> np.ndarray:
    """A smooth pseudo-digit template image."""
    y, x = np.mgrid[0:side, 0:side] / max(side - 1, 1)
    template = (np.sin(2 * np.pi * (x + phase))
                * np.cos(2 * np.pi * (y - phase))
                + 0.5 * np.sin(4 * np.pi * x * y + phase))
    template += 0.1 * rng.normal(size=(side, side))
    template -= template.min()
    template /= max(template.max(), 1e-9)
    return template.ravel()


def synthetic_mnist_3v8(num_samples: int = PAPER_NUM_SAMPLES,
                        num_features: int = PAPER_NUM_FEATURES,
                        noise: float = 0.35,
                        seed: int = 38) -> Dataset:
    """Generate the synthetic 3-vs-8 stand-in dataset.

    Args:
        num_samples: total samples (paper: 11,982).
        num_features: must be a perfect square (paper: 196 = 14x14).
        noise: per-pixel Gaussian noise; larger = harder task.
        seed: RNG seed (dataset is fully deterministic).
    """
    side = int(round(num_features ** 0.5))
    if side * side != num_features:
        raise ValueError("num_features must be a perfect square")
    rng = np.random.default_rng(seed)
    template_a = _class_template(side, phase=0.0, rng=rng)
    template_b = _class_template(side, phase=0.37, rng=rng)
    labels = rng.integers(0, 2, num_samples)
    base = np.where(labels[:, None] == 1, template_b[None, :],
                    template_a[None, :])
    features = base + noise * rng.normal(size=(num_samples, num_features))
    features = np.clip(features, 0.0, 1.0)
    # Shuffle deterministically.
    order = rng.permutation(num_samples)
    return Dataset(features[order].astype(np.float64),
                   labels[order].astype(np.int64))
