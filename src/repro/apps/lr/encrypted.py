"""Encrypted logistic-regression training on the functional CKKS library.

The paper's target application (§5.5): train an LR model on encrypted
data, bootstrapping between iterations.  Both the data and the weights
are encrypted; one iteration consumes 5 multiplicative levels exactly as
the paper states:

1. inner products ``z_i = <x_i, w>``      (1 level + rotation tree)
2. polynomial sigmoid ``s = p3(z)``       (2 levels)
3. gradient ``g = sum_i (s_i - y_i) x_i`` (1 level)
4. learning-rate scaling + weight update  (1 level)

Runs at reduced N in tests; the paper-scale performance comes from the
cost models in :mod:`repro.perf.fab`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ...fhe import Ciphertext, CkksScheme
from ...fhe.bootstrap import Bootstrapper
from ...fhe.align import ScaleAligner
from .data import Dataset
from .packing import BatchPacker, rotation_tree_steps
from .plain import POLY3_COEFFS

#: Levels one iteration consumes (the paper's "5 compute levels").
LEVELS_PER_ITERATION = 5


@dataclass
class EncryptedTrainState:
    """Mutable state across encrypted iterations."""

    weights_ct: Ciphertext
    iterations_done: int = 0
    bootstraps_done: int = 0
    weight_history: List[np.ndarray] = field(default_factory=list)


class EncryptedLrTrainer:
    """Trains an LR model over encrypted samples and encrypted weights."""

    def __init__(self, scheme: CkksScheme, learning_rate: float = 1.0,
                 bootstrapper: Optional[Bootstrapper] = None):
        self.scheme = scheme
        self.learning_rate = learning_rate
        self.packer = BatchPacker(scheme)
        self.bootstrapper = bootstrapper
        self._align = ScaleAligner(scheme.evaluator, scheme.encoder)
        steps = rotation_tree_steps(self.packer.num_slots)
        scheme.add_rotation_keys(steps)
        self._tree_steps = steps

    # ------------------------------------------------------------------
    # Circuit pieces
    # ------------------------------------------------------------------

    def inner_product(self, ct_x: Ciphertext,
                      ct_w: Ciphertext) -> Ciphertext:
        """``<x, w>`` replicated into every slot (1 level + tree)."""
        ev = self.scheme.evaluator
        prod = ev.rescale(ev.multiply(ct_x, ct_w))
        acc = prod
        for step in self._tree_steps:
            acc = ev.add(acc, ev.rotate(acc, step))
        return acc

    def poly_sigmoid(self, ct_z: Ciphertext) -> Ciphertext:
        """HELR's degree-3 sigmoid ``c0 + c1 z + c3 z^3`` (2 levels)."""
        ev = self.scheme.evaluator
        c0, c1, _c2, c3 = POLY3_COEFFS
        # z^2 and c3*z are computed at the same depth (in parallel on
        # hardware), so the cubic term costs 2 levels, not 3 — keeping
        # the whole iteration at the paper's 5 levels.
        z_sq = ev.rescale(ev.square(ct_z))
        z_c3 = self._align.mul_const(ct_z, c3, target_scale=z_sq.scale)
        cubic = ev.rescale(ev.multiply(z_c3, z_sq))
        linear = self._align.mul_const(ct_z, c1)
        total = self._align.add(cubic, linear)
        return self._align.add_const(total, c0)

    def gradient(self, cts_x: List[Ciphertext], labels: np.ndarray,
                 ct_w: Ciphertext) -> Ciphertext:
        """``(1/B) sum_i (p3(<x_i,w>) - y_i) x_i`` (uses 4 levels)."""
        ev = self.scheme.evaluator
        total: Optional[Ciphertext] = None
        for ct_x, label in zip(cts_x, labels):
            z = self.inner_product(ct_x, ct_w)
            s = self.poly_sigmoid(z)
            err = self._align.add_const(s, -float(label))
            x_aligned, err_aligned = self._align.align_pair(ct_x, err)
            contrib = ev.rescale(ev.multiply(err_aligned, x_aligned))
            total = contrib if total is None else ev.add(total, contrib)
        if total is None:
            raise ValueError("empty batch")
        return total

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------

    def init_state(self, num_features: int,
                   initial_weights: Optional[np.ndarray] = None
                   ) -> EncryptedTrainState:
        """Encrypt the initial weight vector."""
        w = (np.zeros(num_features) if initial_weights is None
             else np.asarray(initial_weights, dtype=np.float64))
        return EncryptedTrainState(self.packer.pack_weights(w))

    def iteration(self, state: EncryptedTrainState, batch: Dataset,
                  cts_x: Optional[List[Ciphertext]] = None) -> None:
        """One encrypted mini-batch update (5 levels)."""
        ev = self.scheme.evaluator
        if cts_x is None:
            cts_x = self.packer.pack_samples(batch)
        ct_w = state.weights_ct
        if ct_w.level_count < LEVELS_PER_ITERATION + 1:
            ct_w = self._refresh(state, ct_w)
        grad = self.gradient(cts_x, batch.labels, ct_w)
        step = self._align.mul_const(
            grad, self.learning_rate / batch.num_samples)
        w_aligned, step_aligned = self._align.align_pair(ct_w, step)
        state.weights_ct = ev.sub(w_aligned, step_aligned)
        state.iterations_done += 1

    def _refresh(self, state: EncryptedTrainState,
                 ct_w: Ciphertext) -> Ciphertext:
        """Bootstrap the weight ciphertext (paper: every iteration)."""
        if self.bootstrapper is None:
            raise ValueError(
                "weights exhausted and no bootstrapper configured; "
                "increase num_limbs or pass a Bootstrapper")
        ev = self.scheme.evaluator
        ct_low = ev.mod_down_to(ct_w, 1)
        if not np.isclose(ct_low.scale, self.scheme.params.scale,
                          rtol=1e-6):
            ct_low = self._align.match(
                ev.mod_down_to(ct_w, 2), self.scheme.params.scale, 1)
        refreshed = self.bootstrapper.bootstrap(ct_low)
        state.bootstraps_done += 1
        return refreshed

    def train(self, dataset: Dataset, iterations: int,
              batch_size: Optional[int] = None,
              initial_weights: Optional[np.ndarray] = None,
              record_history: bool = False) -> EncryptedTrainState:
        """Run the full encrypted training loop."""
        state = self.init_state(dataset.num_features, initial_weights)
        batch_size = batch_size or dataset.num_samples
        batches = list(dataset.minibatches(batch_size))
        for it in range(iterations):
            batch = batches[it % len(batches)]
            self.iteration(state, batch)
            if record_history:
                state.weight_history.append(self.packer.unpack_weights(
                    state.weights_ct, dataset.num_features))
        return state

    def decrypted_weights(self, state: EncryptedTrainState,
                          num_features: int) -> np.ndarray:
        """Decrypt the current weight vector."""
        return self.packer.unpack_weights(state.weights_ct, num_features)
