"""Encrypted logistic-regression inference.

The deployment half of the paper's target application: after training,
the cloud scores encrypted samples against the (encrypted or plaintext)
model without seeing either.  Two settings:

* encrypted sample x encrypted model — full privacy, two levels per
  score (inner product + sigmoid);
* encrypted sample x plaintext model — the common "private input,
  public model" setting, one ciphertext-plaintext multiply cheaper.
"""

from __future__ import annotations


import numpy as np

from ...fhe import Ciphertext, CkksScheme
from ...fhe.align import ScaleAligner
from ...fhe.routines import HomomorphicRoutines
from .data import Dataset
from .packing import BatchPacker
from .plain import POLY3_COEFFS


class EncryptedLrClassifier:
    """Scores encrypted samples with a logistic-regression model."""

    def __init__(self, scheme: CkksScheme):
        self.scheme = scheme
        self.packer = BatchPacker(scheme)
        self.routines = HomomorphicRoutines(scheme.evaluator,
                                            scheme.encoder)
        self.aligner = ScaleAligner(scheme.evaluator, scheme.encoder)
        from .packing import rotation_tree_steps
        scheme.add_rotation_keys(rotation_tree_steps(self.packer.num_slots))

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def score(self, ct_sample: Ciphertext,
              ct_weights: Ciphertext) -> Ciphertext:
        """Probability estimate ``p3(<x, w>)`` (encrypted model)."""
        z = self.routines.inner_product(ct_sample, ct_weights)
        return self._sigmoid(z)

    def score_plain_model(self, ct_sample: Ciphertext,
                          weights: np.ndarray) -> Ciphertext:
        """Probability estimate against a plaintext model."""
        padded = np.zeros(self.packer.num_slots)
        padded[:weights.shape[0]] = weights
        pt = self.scheme.encoder.encode(
            padded, scale=float(ct_sample.c0.basis.primes[-1]),
            basis=ct_sample.c0.basis, num_slots=self.packer.num_slots)
        ev = self.scheme.evaluator
        prod = ev.rescale(ev.multiply_plain(ct_sample, pt))
        z = self.routines.sum_slots(prod, self.packer.num_slots)
        return self._sigmoid(z)

    def _sigmoid(self, ct_z: Ciphertext) -> Ciphertext:
        """HELR's degree-3 polynomial sigmoid (two levels)."""
        ev = self.scheme.evaluator
        c0, c1, _c2, c3 = POLY3_COEFFS
        z_sq = ev.rescale(ev.square(ct_z))
        z_c3 = self.aligner.mul_const(ct_z, c3, target_scale=z_sq.scale)
        cubic = ev.rescale(ev.multiply(z_c3, z_sq))
        linear = self.aligner.mul_const(ct_z, c1)
        total = self.aligner.add(cubic, linear)
        return self.aligner.add_const(total, c0)

    # ------------------------------------------------------------------
    # Batch helpers
    # ------------------------------------------------------------------

    def classify_batch(self, batch: Dataset, weights: np.ndarray,
                       threshold: float = 0.5) -> np.ndarray:
        """Encrypt, score and decrypt a batch; returns 0/1 predictions.

        The samples travel encrypted; only the final probabilities are
        decrypted (by the data owner, in a real deployment).
        """
        predictions = []
        for ct in self.packer.pack_samples(batch):
            prob_ct = self.score_plain_model(ct, weights)
            prob = float(np.real(self.scheme.decrypt(prob_ct)[0]))
            predictions.append(1 if prob >= threshold else 0)
        return np.array(predictions, dtype=np.int64)

    def accuracy(self, batch: Dataset, weights: np.ndarray) -> float:
        """Classification accuracy over an encrypted batch."""
        preds = self.classify_batch(batch, weights)
        return float(np.mean(preds == batch.labels))
