"""Ciphertext packing for encrypted LR training (Han et al. [26] style).

The functional trainer packs one sample per ciphertext (features in the
leading slots, zero padding beyond) and the weight vector in a single
ciphertext; the inner product uses a log2(n) rotate-and-add tree.  At
the paper's scale the packing is denser (many samples per ciphertext);
the op counts of the dense scheme are modelled by
:meth:`repro.perf.opcounts.OpCounter.lr_iteration`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ...fhe import Ciphertext, CkksScheme
from .data import Dataset


def rotation_tree_steps(num_slots: int) -> List[int]:
    """The power-of-two rotations that sum all slots into every slot."""
    steps = []
    k = 1
    while k < num_slots:
        steps.append(k)
        k *= 2
    return steps


class BatchPacker:
    """Encodes/encrypts a mini-batch and the weight vector."""

    def __init__(self, scheme: CkksScheme,
                 num_slots: Optional[int] = None):
        self.scheme = scheme
        self.num_slots = (num_slots if num_slots is not None
                          else scheme.params.slots)

    def check_fits(self, num_features: int) -> None:
        if num_features > self.num_slots:
            raise ValueError(
                f"{num_features} features exceed {self.num_slots} slots")

    def pack_samples(self, batch: Dataset) -> List[Ciphertext]:
        """One ciphertext per sample, features in the leading slots."""
        self.check_fits(batch.num_features)
        cts = []
        for row in batch.features:
            padded = np.zeros(self.num_slots)
            padded[:batch.num_features] = row
            cts.append(self.scheme.encrypt(padded,
                                           num_slots=self.num_slots))
        return cts

    def pack_weights(self, weights: np.ndarray) -> Ciphertext:
        """The weight vector in one ciphertext."""
        self.check_fits(weights.shape[0])
        padded = np.zeros(self.num_slots)
        padded[:weights.shape[0]] = weights
        return self.scheme.encrypt(padded, num_slots=self.num_slots)

    def unpack_weights(self, ct: Ciphertext,
                       num_features: int) -> np.ndarray:
        """Decrypt and extract the weight vector."""
        values = self.scheme.decrypt(ct, num_slots=self.num_slots)
        return np.real(values[:num_features])
