"""Plaintext logistic regression: ground truth for the encrypted trainer.

Two sigmoid variants are provided: the exact logistic function, and the
degree-3 polynomial least-squares approximation used by HELR (Han et
al. [26]) — the encrypted trainer can only evaluate polynomials, so the
apples-to-apples comparison trains the plaintext model with the same
polynomial.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from .data import Dataset

#: HELR's degree-3 least-squares fit of the sigmoid on [-8, 8]:
#: sigma(x) ~ 0.5 + 0.15012 x - 0.001593 x^3.
POLY3_COEFFS = (0.5, 0.15012, 0.0, -0.001593)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """The exact logistic function (numerically stable)."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def poly3_sigmoid(x: np.ndarray) -> np.ndarray:
    """HELR's polynomial sigmoid (what the encrypted circuit computes)."""
    c0, c1, _c2, c3 = POLY3_COEFFS
    return c0 + c1 * x + c3 * x ** 3


@dataclass
class TrainResult:
    """Outcome of a training run."""

    weights: np.ndarray
    bias: float
    losses: List[float] = field(default_factory=list)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return sigmoid(features @ self.weights + self.bias)

    def accuracy(self, dataset: Dataset) -> float:
        """Classification accuracy on a dataset."""
        preds = (self.predict_proba(dataset.features) >= 0.5).astype(int)
        return float(np.mean(preds == dataset.labels))


class PlainLrTrainer:
    """Mini-batch gradient-descent logistic regression."""

    def __init__(self, learning_rate: float = 1.0,
                 activation: Callable[[np.ndarray], np.ndarray] = sigmoid):
        self.learning_rate = learning_rate
        self.activation = activation

    def train(self, dataset: Dataset, iterations: int = 30,
              batch_size: Optional[int] = 1024,
              initial_weights: Optional[np.ndarray] = None) -> TrainResult:
        """Train for ``iterations`` mini-batch updates (paper: 30)."""
        f = dataset.num_features
        weights = (np.zeros(f) if initial_weights is None
                   else initial_weights.astype(np.float64).copy())
        bias = 0.0
        losses: List[float] = []
        batch_size = batch_size or dataset.num_samples
        batches = list(dataset.minibatches(batch_size))
        for it in range(iterations):
            batch = batches[it % len(batches)]
            z = batch.features @ weights + bias
            probs = self.activation(z)
            error = probs - batch.labels
            grad_w = batch.features.T @ error / batch.num_samples
            grad_b = float(np.mean(error))
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
            losses.append(self._loss(dataset, weights, bias))
        return TrainResult(weights, bias, losses)

    @staticmethod
    def _loss(dataset: Dataset, weights: np.ndarray, bias: float) -> float:
        """Cross-entropy loss (computed with the exact sigmoid)."""
        z = dataset.features @ weights + bias
        probs = np.clip(sigmoid(z), 1e-9, 1 - 1e-9)
        y = dataset.labels
        return float(-np.mean(y * np.log(probs)
                              + (1 - y) * np.log(1 - probs)))


def gradient_step_reference(features: np.ndarray, labels: np.ndarray,
                            weights: np.ndarray,
                            learning_rate: float) -> np.ndarray:
    """One poly3-sigmoid batch update; mirror of the encrypted circuit.

    Used by tests to check the encrypted trainer step-for-step (no bias
    term: the encrypted circuit folds it into a constant feature).
    """
    z = features @ weights
    probs = poly3_sigmoid(z)
    error = probs - labels
    grad = features.T @ error / features.shape[0]
    return weights - learning_rate * grad
