"""Private analytics over encrypted data."""

from .analytics import EncryptedAnalytics, StatsReport

__all__ = ["EncryptedAnalytics", "StatsReport"]
