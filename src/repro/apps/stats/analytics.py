"""Private analytics: descriptive statistics over encrypted data.

A second workload of the kind the paper's introduction motivates
(cloud computation on data the server must not see): a client uploads
encrypted measurement vectors; the server computes means, variances,
covariances, correlations and histogram-style threshold counts without
decrypting anything.

All statistics compose the public evaluator API through
:class:`~repro.fhe.routines.HomomorphicRoutines`; depth budgets are
documented per statistic so callers can size their modulus chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ...fhe import Ciphertext, CkksScheme
from ...fhe.align import ScaleAligner
from ...fhe.routines import HomomorphicRoutines, rotation_steps_for_sum


@dataclass
class StatsReport:
    """Decrypted results of one analytics run."""

    mean: float
    variance: float
    std: float
    second_moment: float

    def __repr__(self) -> str:
        return (f"StatsReport(mean={self.mean:.4f}, "
                f"var={self.variance:.4f}, std={self.std:.4f})")


class EncryptedAnalytics:
    """Server-side statistics over encrypted vectors.

    Depth budget per call (levels of the modulus chain):

    * :meth:`mean` — 2 (rotation tree + 1/n scaling)
    * :meth:`variance` / :meth:`second_moment` — 3
    * :meth:`covariance` / :meth:`correlation_unnormalized` — 3
    * :meth:`weighted_mean` — 3
    """

    def __init__(self, scheme: CkksScheme):
        self.scheme = scheme
        self.routines = HomomorphicRoutines(scheme.evaluator,
                                            scheme.encoder)
        self.aligner = ScaleAligner(scheme.evaluator, scheme.encoder)
        scheme.add_rotation_keys(
            rotation_steps_for_sum(scheme.params.slots))

    # ------------------------------------------------------------------
    # Single-vector statistics
    # ------------------------------------------------------------------

    def mean(self, ct: Ciphertext) -> Ciphertext:
        """Mean of the slots, replicated into every slot."""
        return self.routines.mean_slots(ct)

    def second_moment(self, ct: Ciphertext) -> Ciphertext:
        """``E[x^2]`` replicated into every slot."""
        ev = self.scheme.evaluator
        sq = ev.rescale(ev.square(ct))
        total = self.routines.sum_slots(sq, ct.num_slots)
        return self.aligner.mul_const(total, 1.0 / ct.num_slots)

    def variance(self, ct: Ciphertext) -> Ciphertext:
        """Population variance, replicated."""
        return self.routines.variance_slots(ct)

    def weighted_mean(self, ct: Ciphertext,
                      weights: Sequence[float]) -> Ciphertext:
        """``sum_i w_i x_i / sum_i w_i`` (plaintext weights)."""
        weights = np.asarray(list(weights), dtype=np.float64)
        if weights.shape[0] > ct.num_slots:
            raise ValueError("more weights than slots")
        total_weight = float(weights.sum())
        if total_weight == 0:
            raise ValueError("weights sum to zero")
        padded = np.zeros(ct.num_slots)
        padded[:weights.shape[0]] = weights / total_weight
        ev = self.scheme.evaluator
        pt = self.scheme.encoder.encode(
            padded, scale=float(ct.c0.basis.primes[-1]),
            basis=ct.c0.basis, num_slots=ct.num_slots)
        weighted = ev.rescale(ev.multiply_plain(ct, pt))
        return self.routines.sum_slots(weighted, ct.num_slots)

    # ------------------------------------------------------------------
    # Two-vector statistics
    # ------------------------------------------------------------------

    def covariance(self, ct_x: Ciphertext,
                   ct_y: Ciphertext) -> Ciphertext:
        """Population covariance ``E[xy] - E[x]E[y]``, replicated."""
        ev = self.scheme.evaluator
        n = min(ct_x.num_slots, ct_y.num_slots)
        mean_x = self.routines.mean_slots(ct_x)
        mean_y = self.routines.mean_slots(ct_y)
        cx = self.aligner.sub(ct_x, mean_x)
        cy = self.aligner.sub(ct_y, mean_y)
        cx, cy = self.aligner.align_pair(cx, cy)
        prod = ev.rescale(ev.multiply(cx, cy))
        total = self.routines.sum_slots(prod, n)
        return self.aligner.mul_const(total, 1.0 / n)

    def correlation_unnormalized(self, ct_x: Ciphertext,
                                 ct_y: Ciphertext) -> Ciphertext:
        """``E[xy]`` replicated (the cross-moment; normalization by the
        standard deviations happens client-side after decryption —
        homomorphic division/sqrt would need deep minimax circuits)."""
        prod = self.routines.inner_product(ct_x, ct_y)
        return self.aligner.mul_const(
            prod, 1.0 / min(ct_x.num_slots, ct_y.num_slots))

    # ------------------------------------------------------------------
    # End-to-end helpers
    # ------------------------------------------------------------------

    def describe(self, values: Sequence[float]) -> StatsReport:
        """Encrypt a vector, compute its statistics, decrypt the results.

        Demonstrates the full client/server round trip; the server-side
        portion touches only ciphertexts.
        """
        values = np.asarray(list(values), dtype=np.float64)
        n = self.scheme.params.slots
        if values.shape[0] > n:
            raise ValueError(f"at most {n} values per ciphertext")
        padded = np.zeros(n)
        padded[:values.shape[0]] = values
        correction = n / values.shape[0]
        ct = self.scheme.encrypt(padded)
        mean_ct = self.mean(ct)
        m2_ct = self.second_moment(ct)
        mean = float(np.real(self.scheme.decrypt(mean_ct)[0])) * correction
        m2 = float(np.real(self.scheme.decrypt(m2_ct)[0])) * correction
        variance = m2 - mean * mean
        return StatsReport(mean=mean, variance=variance,
                           std=float(np.sqrt(max(variance, 0.0))),
                           second_moment=m2)
