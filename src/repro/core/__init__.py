"""The FAB accelerator model: the paper's primary contribution.

Public API:

* :class:`FabConfig` / :class:`FheParams` — hardware + FHE configuration.
* :class:`FabOpModel` — cycle costs for every CKKS op and bootstrapping.
* :class:`KeySwitchDatapath` — original vs modified datapath (Fig. 5).
* :class:`NttDatapath` — the unified NTT pipeline (§4.5).
* :class:`OnChipMemory` — URAM/BRAM bank model (§4.2).
* :class:`FabResources` — Table 3 utilization accounting.
* :class:`MultiFpgaSystem` — FAB-2 (8-board) scaling model.
"""

from .arith import (BarrettConstants, MaddTable, barrett_multiplier_cost,
                    barrett_reduce, madd_storage_bytes, mod_mult_hardware,
                    mod_reduce_shift_add, multiword_mod_add,
                    multiword_mod_sub, operand_scanning_mult)
from .automorph_unit import (AutomorphUnit, apply_coefficient_automorph,
                             automorph_index_map, coefficient_permutation)
from .fifo import Fifo, FifoError, build_cmac_fifos, build_hbm_fifos
from .functional_unit import FuOp, FunctionalUnitArray
from .hbm import HbmModel, TrafficMeter
from .host import HostConfig, HostInterface, OffloadPlan
from .keyswitch_datapath import (KeySwitchDatapath, KeySwitchReport,
                                 compare_datapaths)
from .memory import CapacityError, MemoryBank, OnChipMemory, RegisterFile
from .multi_fpga import FpgaNode, MultiFpgaSystem
from .ntt_datapath import (NttDatapath, execute_schedule,
                           forward_stage_schedule)
from .ops import BootstrapReport, FabOpModel, OpReport
from .params import (DEFAULT_CONFIG, FabConfig, FheParams,
                     alveo_u50_config, heax_comparison_config,
                     smallest_viable_config)
from .program import FabProgram, ProgramOp, ProgramReport
from .resources import (AcceleratorFootprint, FabResources, ResourceReport,
                        table4_footprints)
from .scheduler import ScheduleResult, Task, TaskGraph
from .striping import (LimbTransfer, PortStriper, compare_striping_policies,
                       keyswitch_transfer_sequence)
from .trace import (format_bootstrap_report, format_op_report,
                    format_schedule, format_table)

__all__ = [
    "AcceleratorFootprint", "AutomorphUnit", "BootstrapReport",
    "CapacityError", "DEFAULT_CONFIG", "FabConfig", "FabOpModel",
    "FabProgram", "FabResources", "Fifo", "FifoError", "FheParams", "FpgaNode", "FuOp",
    "FunctionalUnitArray", "HbmModel", "HostConfig", "HostInterface",
    "KeySwitchDatapath", "OffloadPlan",
    "KeySwitchReport", "MaddTable", "MemoryBank", "MultiFpgaSystem",
    "NttDatapath", "OnChipMemory", "OpReport", "ProgramOp", "ProgramReport", "RegisterFile",
    "ResourceReport", "ScheduleResult", "Task", "TaskGraph",
    "TrafficMeter", "apply_coefficient_automorph", "automorph_index_map",
    "build_cmac_fifos", "build_hbm_fifos", "coefficient_permutation",
    "compare_datapaths", "execute_schedule", "format_bootstrap_report",
    "format_op_report", "format_schedule", "format_table",
    "forward_stage_schedule", "heax_comparison_config",
    "madd_storage_bytes", "mod_mult_hardware", "mod_reduce_shift_add",
    "multiword_mod_add", "multiword_mod_sub", "operand_scanning_mult",
    "BarrettConstants", "LimbTransfer", "PortStriper",
    "alveo_u50_config", "barrett_multiplier_cost",
    "compare_striping_policies", "keyswitch_transfer_sequence",
    "barrett_reduce", "smallest_viable_config", "table4_footprints",
]
