"""Bit-exact models of FAB's hardware modular arithmetic (§4.1).

FAB reduces all 54-bit modular arithmetic to DSP-friendly word sizes:

* modular add/sub — Hankerson et al. algorithms 2.7/2.8 on 27-bit words
  (the DSP preadder width), with the correction step also performed
  word-wise;
* integer multiply — operand scanning (schoolbook) on 18-bit words (the
  DSP multiplier width), loop-unrolled to 12 cycles;
* modular reduction — Algorithm 1 of the paper, a multi-bit-shift
  variant of Will & Ko's "mod without mod" that replaces Barrett
  multiplications with shift+add against a precomputed ``madd`` table.

These functions compute exactly the same results as ``%`` on Python
integers (verified by the test suite over the paper's 54-bit primes) and
expose the per-operation cycle counts used by the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: Cycle latencies reported in §4.1.
MOD_ADD_CYCLES = 7
MOD_SUB_CYCLES = 7
INT_MULT_CYCLES = 12
MOD_REDUCE_CYCLES = 12
MOD_MULT_CYCLES = INT_MULT_CYCLES + MOD_REDUCE_CYCLES

#: DSP word sizes on UltraScale devices.
ADD_WORD_BITS = 27
MULT_WORD_BITS = 18


def split_words(value: int, word_bits: int, num_words: int) -> List[int]:
    """Split a non-negative integer into little-endian fixed-width words."""
    if value < 0:
        raise ValueError("value must be non-negative")
    mask = (1 << word_bits) - 1
    words = []
    for _ in range(num_words):
        words.append(value & mask)
        value >>= word_bits
    if value:
        raise ValueError("value does not fit in the given words")
    return words


def join_words(words: Sequence[int], word_bits: int) -> int:
    """Inverse of :func:`split_words`."""
    value = 0
    for i, w in enumerate(words):
        value |= w << (i * word_bits)
    return value


# ----------------------------------------------------------------------
# Multi-word modular addition / subtraction (Hankerson 2.7 / 2.8)
# ----------------------------------------------------------------------

def multiword_mod_add(a: int, b: int, modulus: int,
                      word_bits: int = ADD_WORD_BITS) -> int:
    """Modular addition via word-wise adds with carry propagation."""
    num_words = -(-modulus.bit_length() // word_bits)
    aw = split_words(a, word_bits, num_words)
    bw = split_words(b, word_bits, num_words)
    mask = (1 << word_bits) - 1
    out = [0] * num_words
    carry = 0
    for i in range(num_words):
        s = aw[i] + bw[i] + carry
        out[i] = s & mask
        carry = s >> word_bits
    total = join_words(out, word_bits) | (carry << (num_words * word_bits))
    # Correction step, also word-wise in hardware (the paper modifies the
    # textbook 54-bit correction into 27-bit operations).
    if total >= modulus:
        total = _multiword_sub_raw(total, modulus, word_bits, num_words + 1)
    return total


def multiword_mod_sub(a: int, b: int, modulus: int,
                      word_bits: int = ADD_WORD_BITS) -> int:
    """Modular subtraction via word-wise subtracts with borrow."""
    num_words = -(-modulus.bit_length() // word_bits)
    diff, borrow = _multiword_sub_with_borrow(a, b, word_bits, num_words)
    if borrow:
        # Add the modulus back (correction step).
        diff = multiword_add_raw(diff, modulus, word_bits, num_words)
        diff &= (1 << (num_words * word_bits)) - 1
    return diff


def _multiword_sub_with_borrow(a: int, b: int, word_bits: int,
                               num_words: int) -> Tuple[int, int]:
    aw = split_words(a, word_bits, num_words)
    bw = split_words(b, word_bits, num_words)
    mask = (1 << word_bits) - 1
    out = [0] * num_words
    borrow = 0
    for i in range(num_words):
        d = aw[i] - bw[i] - borrow
        borrow = 1 if d < 0 else 0
        out[i] = d & mask
    return join_words(out, word_bits), borrow


def _multiword_sub_raw(a: int, b: int, word_bits: int, num_words: int) -> int:
    diff, borrow = _multiword_sub_with_borrow(a, b, word_bits, num_words)
    if borrow:
        raise AssertionError("unexpected borrow in correction step")
    return diff


def multiword_add_raw(a: int, b: int, word_bits: int, num_words: int) -> int:
    """Word-wise addition without modular correction."""
    aw = split_words(a, word_bits, num_words)
    bw = split_words(b, word_bits, num_words)
    mask = (1 << word_bits) - 1
    out = [0] * num_words
    carry = 0
    for i in range(num_words):
        s = aw[i] + bw[i] + carry
        out[i] = s & mask
        carry = s >> word_bits
    return join_words(out, word_bits) | (carry << (num_words * word_bits))


# ----------------------------------------------------------------------
# Operand-scanning integer multiplication (Hankerson 2.9)
# ----------------------------------------------------------------------

def operand_scanning_mult(a: int, b: int,
                          word_bits: int = MULT_WORD_BITS,
                          num_words: int = 3) -> int:
    """Schoolbook multi-word multiply on 18-bit DSP words.

    A 54-bit operand splits into three 18-bit words; the 3x3 partial
    products accumulate into a double-width result.  FAB unrolls this
    loop to reach 12 cycles of latency.
    """
    aw = split_words(a, word_bits, num_words)
    bw = split_words(b, word_bits, num_words)
    result_words = [0] * (2 * num_words)
    for i in range(num_words):
        carry = 0
        for j in range(num_words):
            acc = result_words[i + j] + aw[i] * bw[j] + carry
            result_words[i + j] = acc & ((1 << word_bits) - 1)
            carry = acc >> word_bits
        k = i + num_words
        while carry:
            acc = result_words[k] + carry
            result_words[k] = acc & ((1 << word_bits) - 1)
            carry = acc >> word_bits
            k += 1
    return join_words(result_words, word_bits)


# ----------------------------------------------------------------------
# Algorithm 1: fast modular reduction by shift + add
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class MaddTable:
    """Precomputed table for Algorithm 1.

    ``entries[i - 1] = (i << log_q) mod q`` for ``i in 1 .. 2^shifts - 1``
    (the paper's line-2 precompute, written as a sum over the bits of i).
    One table per prime; 63 entries of ``log_q`` bits each at the default
    ``shifts = 6``, i.e. the paper's 7 KB total for 32 primes.
    """

    modulus: int
    shifts: int
    log_q: int
    entries: Tuple[int, ...]

    @classmethod
    def build(cls, modulus: int, shifts: int = 6) -> "MaddTable":
        log_q = modulus.bit_length()
        entries = tuple(((i << log_q) % modulus)
                        for i in range(1, 1 << shifts))
        return cls(modulus, shifts, log_q, entries)

    @property
    def storage_bits(self) -> int:
        """Bits of on-chip storage for this table."""
        return len(self.entries) * self.log_q

    def lookup(self, carry: int) -> int:
        """``madd[carry - 1]``; carry = 0 contributes nothing."""
        if carry == 0:
            return 0
        return self.entries[carry - 1]


def mod_reduce_shift_add(value: int, table: MaddTable) -> int:
    """Algorithm 1: reduce a (2 log q - 1)-bit value modulo q.

    Repeatedly shifts the upper half left by ``shifts`` bits, folding the
    shifted-out carry back through the ``madd`` table.  Completes in
    ``ceil(log q / shifts)`` iterations — 9 for log q = 54, shifts = 6 —
    which FAB pipelines into 12 cycles.
    """
    q = table.modulus
    log_q = table.log_q
    shifts = table.shifts
    if value < 0:
        raise ValueError("value must be non-negative")
    if value.bit_length() > 2 * log_q:
        raise ValueError(
            f"input ({value.bit_length()} bits) exceeds 2*log_q = {2 * log_q}")
    mask = (1 << log_q) - 1
    a0 = value & mask
    a1 = value >> log_q
    count = 0
    while count < log_q:
        # The final iteration shifts fewer bits when shifts does not
        # divide log q (the paper's log q = 54 with shifts = 6 divides
        # evenly, so its loop always shifts the full amount).
        step = min(shifts, log_q - count)
        shifted = a1 << step
        carry = shifted >> log_q
        as1 = shifted & mask
        # The running register can exceed log_q bits by a few units, so
        # the carry may need several table lookups (hardware resolves
        # this with one extra pipeline stage; the result is identical).
        folded = as1
        while carry:
            low = carry & ((1 << shifts) - 1)
            folded += table.lookup(low)
            carry >>= shifts
            if carry:
                folded += (carry << shifts << log_q) % q
                carry = 0
        a1 = folded
        count += step
    c = a1 + a0
    while c >= q:
        c -= q
    return c


def mod_mult_hardware(a: int, b: int, table: MaddTable) -> int:
    """Full hardware modular multiply: operand scanning then Algorithm 1."""
    q = table.modulus
    if not (0 <= a < q and 0 <= b < q):
        raise ValueError("operands must be reduced")
    num_words = -(-table.log_q // MULT_WORD_BITS)
    product = operand_scanning_mult(a, b, MULT_WORD_BITS, num_words)
    return mod_reduce_shift_add(product, table)


def madd_storage_bytes(primes: Sequence[int], shifts: int = 6) -> int:
    """Total madd-table storage for a set of primes (paper: ~7 KB for 32)."""
    total_bits = sum(MaddTable.build(q, shifts).storage_bits for q in primes)
    return total_bits // 8


# ----------------------------------------------------------------------
# Barrett reduction: the alternative the paper argues against (§4.1)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BarrettConstants:
    """Precomputed Barrett parameters for one modulus."""

    modulus: int
    k: int       # bit width of q
    mu: int      # floor(2^{2k} / q)

    @classmethod
    def build(cls, modulus: int) -> "BarrettConstants":
        k = modulus.bit_length()
        return cls(modulus, k, (1 << (2 * k)) // modulus)


def barrett_reduce(value: int, constants: BarrettConstants) -> int:
    """Classic Barrett reduction of a < q^2 value.

    Requires two wide multiplications (value * mu and q1 * q), which is
    exactly the DSP cost the paper's Algorithm 1 avoids: Barrett would
    burn a second multiplier pipeline per functional unit, while the
    shift-add reduction uses only adders and a 63-entry table.
    """
    q = constants.modulus
    k = constants.k
    if value < 0 or value >= q * q * 4:
        raise ValueError("input out of Barrett range")
    q1 = value >> (k - 1)
    q2 = q1 * constants.mu
    q3 = q2 >> (k + 1)
    r = value - q3 * q
    while r >= q:
        r -= q
    return r


def barrett_multiplier_cost() -> int:
    """Wide multiplications per Barrett reduction (vs 0 in Algorithm 1)."""
    return 2
