"""The automorph unit (§4.1, eq. 4).

For a rotation by ``k``, slot ``i`` maps to

    new_index_k(i) = (5^k - 1)/2 + 5^k * i   (mod N)

(the paper prints the second term as ``5 * i`` for the k = 1 case; the
general form uses ``5^k``, with the powers of 5 precomputed for the
~60 rotation indices bootstrapping needs).  The division by two is a
bit-shift (5^k - 1 is even) and the reduction mod N is an AND with
N - 1 since N is a power of two.

The unit also performs the coefficient-domain permutation with sign
(``x -> x^g``) that feeds the NTT; that form is validated against the
algebraic automorphism of :mod:`repro.fhe.poly`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .params import FabConfig


def power_of_five(k: int, modulus: int) -> int:
    """``5^k mod modulus`` (precomputed per rotation index in hardware)."""
    return pow(5, k, modulus)


def automorph_index_map(ring_degree: int, k: int) -> np.ndarray:
    """Equation (4): the slot-index permutation for rotation ``k``.

    Returns an array ``new_index`` with ``new_index[i]`` as defined by
    the paper; the AND-with-(N-1) reduction is explicit.
    """
    n = ring_degree
    g = power_of_five(k, 2 * n)
    offset = (g - 1) >> 1  # division by two is a shift
    i = np.arange(n, dtype=np.int64)
    return (offset + g * i) & (n - 1)


def coefficient_permutation(ring_degree: int,
                            galois_element: int) -> Tuple[np.ndarray, np.ndarray]:
    """Destination indices and signs for the coefficient-domain automorph.

    Coefficient ``c_i`` of the input lands at ``dest[i]`` with sign
    ``sign[i]`` in the output (sign flips encode the ``x^N = -1`` wrap).
    This is the operation the hardware unit performs while streaming a
    polynomial from on-chip memory into the register file, fused with
    the bit-reversal required by the following NTT.
    """
    n = ring_degree
    g = galois_element % (2 * n)
    if g % 2 == 0:
        raise ValueError("Galois element must be odd")
    i = np.arange(n, dtype=np.int64)
    idx = (i * g) % (2 * n)
    wrap = idx >= n
    dest = np.where(wrap, idx - n, idx)
    sign = np.where(wrap, -1, 1).astype(np.int64)
    return dest, sign


def apply_coefficient_automorph(coeffs: np.ndarray, galois_element: int,
                                modulus: int) -> np.ndarray:
    """Apply the coefficient-domain automorphism to one limb."""
    coeffs = np.asarray(coeffs, dtype=np.int64)
    n = coeffs.shape[0]
    dest, sign = coefficient_permutation(n, galois_element)
    out = np.zeros_like(coeffs)
    out[dest] = sign * coeffs % modulus
    return out


class AutomorphUnit:
    """Hardware automorph unit with precomputed powers of five.

    Bootstrapping uses only ~60 distinct rotation indices (§4.1), so the
    unit stores ``5^k mod 2N`` for each in a small table rather than
    computing modular exponentiations.
    """

    def __init__(self, config: FabConfig, rotation_indices: List[int]):
        self.config = config
        n = config.fhe.ring_degree
        self._powers: Dict[int, int] = {
            k: power_of_five(k, 2 * n) for k in rotation_indices}

    @property
    def table_entries(self) -> int:
        """Number of precomputed powers."""
        return len(self._powers)

    def galois_element(self, k: int) -> int:
        """The precomputed ``5^k mod 2N`` for rotation ``k``."""
        try:
            return self._powers[k]
        except KeyError:
            raise KeyError(
                f"rotation index {k} not precomputed; known: "
                f"{sorted(self._powers)}") from None

    def permute_cycles(self, num_limbs: int) -> int:
        """Cycles to stream-permute ``num_limbs`` limbs (256 coeff/cycle)."""
        n = self.config.fhe.ring_degree
        per_cycle = self.config.num_functional_units
        return num_limbs * (-(-n // per_cycle))
