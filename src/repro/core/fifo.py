"""FIFO models (§4.4): Rd/Wr FIFOs between HBM and on-chip memory, and
Tx/Rx FIFOs between the CMAC Ethernet core and on-chip memory.

The behavioural model is a bounded queue with cycle-stamped occupancy so
tests can assert the invariants the paper's sizing relies on: the Wr
FIFO depth matches the HBM burst length (128) and the Rd FIFO sustains
four outstanding reads (512 = 4 x 128).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Tuple

from .params import FabConfig


class FifoError(Exception):
    """Raised on underflow/overflow of a modelled FIFO."""


@dataclass
class Fifo:
    """A bounded FIFO with occupancy tracking.

    Attributes:
        name: identifier for error messages.
        depth: maximum number of entries.
        width_bits: entry width in bits.
    """

    name: str
    depth: int
    width_bits: int
    _queue: Deque[Tuple[int, object]] = field(default_factory=deque)
    peak_occupancy: int = 0
    total_pushed: int = 0

    def push(self, item: object, cycle: int = 0) -> None:
        """Enqueue one entry; raises :class:`FifoError` when full."""
        if len(self._queue) >= self.depth:
            raise FifoError(f"{self.name}: overflow at depth {self.depth}")
        self._queue.append((cycle, item))
        self.total_pushed += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._queue))

    def pop(self) -> object:
        """Dequeue the oldest entry; raises on underflow."""
        if not self._queue:
            raise FifoError(f"{self.name}: underflow")
        return self._queue.popleft()[1]

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.depth

    @property
    def is_empty(self) -> bool:
        return not self._queue

    @property
    def capacity_bits(self) -> int:
        return self.depth * self.width_bits

    def drain_cycles(self, per_entry_cycles: float = 1.0) -> int:
        """Cycles to stream out the current occupancy."""
        return int(round(len(self._queue) * per_entry_cycles))


def build_hbm_fifos(config: Optional[FabConfig] = None):
    """The 32 Rd / 32 Wr FIFO pairs of the HBM interface."""
    config = config or FabConfig()
    rd = [Fifo(f"rd{i}", config.rd_fifo_depth, config.fifo_width_bits)
          for i in range(config.hbm_ports)]
    wr = [Fifo(f"wr{i}", config.wr_fifo_depth, config.fifo_width_bits)
          for i in range(config.hbm_ports)]
    return rd, wr


def build_cmac_fifos(config: Optional[FabConfig] = None):
    """The Tx / Rx FIFOs of the Ethernet subsystem (512-bit interface)."""
    config = config or FabConfig()
    tx = Fifo("tx", config.rd_fifo_depth, config.tx_rx_fifo_width_bits)
    rx = Fifo("rx", config.rd_fifo_depth, config.tx_rx_fifo_width_bits)
    return tx, rx


def outstanding_reads_supported(config: Optional[FabConfig] = None) -> int:
    """How many HBM bursts the Rd FIFO can hold (the paper sizes for 4)."""
    config = config or FabConfig()
    return config.rd_fifo_depth // config.hbm_burst_length
