"""The 256-lane functional-unit array (§4.1).

Each functional unit bundles a modular multiplier (12-cycle integer
multiply + 12-cycle Algorithm-1 reduction), a modular adder and
subtractor (7 cycles via 27-bit DSP words), and an automorph lane.  All
units are fully pipelined (initiation interval 1), so a vector of
``k`` scalar operations completes in ``ceil(k / 256) + latency`` cycles.

The array is modelled as a single vector resource: FAB issues one
SIMD-style operation across all lanes per cycle, which is how the NTT
datapath reaches 512 coefficients (256 butterflies) per cycle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from .params import FabConfig


class FuOp(Enum):
    """Operations a functional unit can issue."""

    MOD_ADD = "mod_add"
    MOD_SUB = "mod_sub"
    MOD_MULT = "mod_mult"
    AUTOMORPH = "automorph"
    BUTTERFLY = "butterfly"  # one radix-2 NTT butterfly (mult + add + sub)


@dataclass
class FunctionalUnitArray:
    """Latency/throughput model of the FU array."""

    config: FabConfig = field(default_factory=FabConfig)
    issued_ops: Dict[str, int] = field(default_factory=dict)
    busy_cycles: int = 0

    def latency(self, op: FuOp) -> int:
        """Pipeline latency of one operation."""
        c = self.config
        if op in (FuOp.MOD_ADD, FuOp.MOD_SUB):
            return c.mod_add_cycles
        if op == FuOp.MOD_MULT:
            return c.mod_mult_cycles
        if op == FuOp.AUTOMORPH:
            return 2  # index arithmetic: shift + AND (eq. 4)
        if op == FuOp.BUTTERFLY:
            # Butterfly = twiddle multiply feeding an add and a subtract.
            return c.mod_mult_cycles + c.mod_add_cycles
        raise ValueError(f"unknown op {op}")

    def lanes(self, op: FuOp) -> int:
        """Scalar operations issued per cycle for this op."""
        return self.config.num_functional_units

    def vector_cycles(self, op: FuOp, num_scalar_ops: int,
                      record: bool = True) -> int:
        """Cycles for ``num_scalar_ops`` pipelined through the array.

        Fully pipelined: issue takes ceil(k / lanes) cycles and the
        result drains after one latency.
        """
        if num_scalar_ops < 0:
            raise ValueError("op count must be non-negative")
        if num_scalar_ops == 0:
            return 0
        cycles = math.ceil(num_scalar_ops / self.lanes(op)) + self.latency(op)
        if record:
            self.issued_ops[op.value] = (
                self.issued_ops.get(op.value, 0) + num_scalar_ops)
            self.busy_cycles += cycles
        return cycles

    def elementwise_limb_cycles(self, op: FuOp, num_limbs: int,
                                ring_degree: Optional[int] = None,
                                record: bool = True) -> int:
        """Cycles for an element-wise op over ``num_limbs`` whole limbs."""
        n = ring_degree or self.config.fhe.ring_degree
        return self.vector_cycles(op, num_limbs * n, record=record)

    def reset(self) -> None:
        """Clear accounting."""
        self.issued_ops.clear()
        self.busy_cycles = 0

    @property
    def total_modmults(self) -> int:
        """Scalar modular multiplies issued so far."""
        return (self.issued_ops.get(FuOp.MOD_MULT.value, 0)
                + self.issued_ops.get(FuOp.BUTTERFLY.value, 0))
