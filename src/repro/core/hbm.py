"""HBM2 main-memory model (§3, §5.1).

The U280 carries two 4 GB HBM2 stacks exposed through 32 AXI ports of
256 bits each, clocked at 450 MHz on the memory side: a peak of
460.8 GB/s.  The kernel runs at 300 MHz, so transfers are accounted in
kernel cycles.  The model exposes transfer-time and traffic accounting;
the scheduler treats HBM as a bandwidth-shared resource so compute can
overlap transfers (FAB's prefetching / latency-hiding behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .params import FabConfig


@dataclass
class HbmModel:
    """Bandwidth/latency model of the HBM2 subsystem."""

    config: FabConfig = field(default_factory=FabConfig)

    @property
    def peak_bandwidth(self) -> float:
        """Peak bytes/second across all ports."""
        return self.config.hbm_peak_bytes_per_sec

    @property
    def effective_bandwidth(self) -> float:
        """Achievable bytes/second (peak x efficiency)."""
        return self.config.hbm_effective_bytes_per_sec

    @property
    def capacity_bytes(self) -> int:
        """Total HBM capacity (8 GB on the U280)."""
        return self.config.hbm_total_gb * (1 << 30)

    def transfer_seconds(self, num_bytes: int,
                         ports: Optional[int] = None) -> float:
        """Streaming time for ``num_bytes`` over ``ports`` AXI ports."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if num_bytes == 0:
            return 0.0
        ports = ports if ports is not None else self.config.hbm_ports
        if not 1 <= ports <= self.config.hbm_ports:
            raise ValueError(f"ports must be in [1, {self.config.hbm_ports}]")
        share = self.effective_bandwidth * ports / self.config.hbm_ports
        return num_bytes / share

    def transfer_cycles(self, num_bytes: int,
                        ports: Optional[int] = None,
                        include_latency: bool = False) -> int:
        """Kernel-clock cycles for a transfer (optionally + read latency)."""
        cycles = self.config.seconds_to_cycles(
            self.transfer_seconds(num_bytes, ports))
        if include_latency and num_bytes > 0:
            cycles += self.config.hbm_read_latency_cycles
        return int(round(cycles))

    def limb_transfer_cycles(self, include_latency: bool = False) -> int:
        """Cycles to move one ciphertext limb (N x limb_bits)."""
        return self.transfer_cycles(self.config.fhe.limb_bytes,
                                    include_latency=include_latency)

    def key_block_transfer_cycles(self) -> int:
        """Cycles to fetch one digit's key block (2 polys x raised limbs).

        This is the fetch the modified datapath hides behind the
        BasisConvert + NTT compute of the preceding block (§4.6).
        """
        fhe = self.config.fhe
        block_bytes = 2 * fhe.max_raised_limbs * fhe.limb_bytes
        return self.transfer_cycles(block_bytes, include_latency=True)


@dataclass
class TrafficMeter:
    """Accumulates HBM traffic for a modelled operation."""

    bytes_read: int = 0
    bytes_written: int = 0
    transfers: List[Tuple[str, int]] = field(default_factory=list)

    def read(self, tag: str, num_bytes: int) -> None:
        """Record a read transfer."""
        self.bytes_read += num_bytes
        self.transfers.append((f"R:{tag}", num_bytes))

    def write(self, tag: str, num_bytes: int) -> None:
        """Record a write transfer."""
        self.bytes_written += num_bytes
        self.transfers.append((f"W:{tag}", num_bytes))

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written

    def merge(self, other: "TrafficMeter") -> None:
        """Fold another meter's traffic into this one."""
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.transfers.extend(other.transfers)
