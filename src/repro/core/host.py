"""Host-side system model (§3): CPU, PCIe, XRT kernel launch.

The overall system view of Figure 3: an x86 host holds the datasets,
offloads them over PCIe into the FPGA's HBM global memory, communicates
kernel arguments (prime moduli, N, precomputed scalars) through AXI4-
Lite atomic register writes, and starts the kernel through the XRT
runtime.  Once the kernel runs, no host transfer happens until results
return.

The model quantifies the one-time offload cost against the compute it
amortizes over — e.g. the 6.65 GB of LR ciphertexts and keys (§5.5)
against 30 training iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .params import FabConfig


@dataclass(frozen=True)
class HostConfig:
    """Host/link characteristics."""

    pcie_gbytes_per_sec: float = 16.0      # PCIe gen3 x16 effective
    pcie_latency_s: float = 10e-6
    kernel_launch_overhead_s: float = 50e-6   # XRT start + handshake
    register_write_s: float = 1e-6           # one AXI4-Lite atomic write
    result_readback_bytes: int = 0


@dataclass
class OffloadPlan:
    """What the host ships to the FPGA before kernel start."""

    ciphertext_bytes: int = 0
    key_bytes: int = 0
    plaintext_bytes: int = 0
    scalar_arguments: int = 0

    @property
    def total_bytes(self) -> int:
        return (self.ciphertext_bytes + self.key_bytes
                + self.plaintext_bytes)


class HostInterface:
    """Models the host <-> FPGA interaction of Figure 3."""

    def __init__(self, fab_config: Optional[FabConfig] = None,
                 host_config: Optional[HostConfig] = None):
        self.fab = fab_config or FabConfig()
        self.host = host_config or HostConfig()

    # ------------------------------------------------------------------
    # Costs
    # ------------------------------------------------------------------

    def offload_seconds(self, plan: OffloadPlan) -> float:
        """Time to populate HBM and write the kernel arguments."""
        transfer = plan.total_bytes / (self.host.pcie_gbytes_per_sec * 1e9)
        registers = plan.scalar_arguments * self.host.register_write_s
        return transfer + registers + self.host.pcie_latency_s

    def launch_seconds(self) -> float:
        """XRT kernel-start overhead."""
        return self.host.kernel_launch_overhead_s

    def readback_seconds(self, num_bytes: int) -> float:
        """Result transfer back to the host after kernel completion."""
        return (num_bytes / (self.host.pcie_gbytes_per_sec * 1e9)
                + self.host.pcie_latency_s)

    def fits_in_hbm(self, plan: OffloadPlan) -> bool:
        """The offload must fit the 8 GB of device global memory."""
        return plan.total_bytes <= self.fab.hbm_total_gb * (1 << 30)

    # ------------------------------------------------------------------
    # Workload plans
    # ------------------------------------------------------------------

    def lr_training_plan(self, num_ciphertexts: int = 1024,
                         num_rotation_keys: int = 10,
                         ciphertext_limbs: int = 6) -> OffloadPlan:
        """The §5.5 offload: ciphertexts + switching keys (~6.65 GB).

        The LR ciphertexts are sparsely packed and live at the
        iteration working level (~6 limbs), not the full chain.
        """
        fhe = self.fab.fhe
        ct_bytes = num_ciphertexts * 2 * ciphertext_limbs * fhe.limb_bytes
        key_bytes = (2 + num_rotation_keys) * (
            2 * fhe.dnum * fhe.max_raised_limbs * fhe.limb_bytes)
        # System parameters: prime moduli, N, madd tables, twiddle seeds.
        scalars = fhe.max_raised_limbs * 70
        return OffloadPlan(ciphertext_bytes=ct_bytes, key_bytes=key_bytes,
                           scalar_arguments=scalars)

    def amortized_offload_fraction(self, plan: OffloadPlan,
                                   compute_seconds: float) -> float:
        """Offload time as a fraction of the compute it serves.

        The paper's design point: the one-time offload (plus kernel
        launch) is negligible against a 30-iteration training run, which
        is why FAB keeps the host out of the loop entirely.
        """
        overhead = self.offload_seconds(plan) + self.launch_seconds()
        return overhead / (overhead + compute_seconds)
