"""KeySwitch datapath models: original (Fig. 5a) vs modified (Fig. 5b).

KeySwitch is the dominant low-level subroutine (§2.1.5), and the paper's
central architectural contribution is scheduling it so the ~112 MB
working set (84 MB of switching keys + 28 MB of raised ciphertext)
streams through 43 MB of on-chip memory without writing any resultant
limb back to HBM:

* **original datapath** — run ModUp to completion for every digit,
  spilling the raised limbs to HBM in coefficient form, then read them
  back and NTT *all* of them for the KSKIP inner product;
* **modified datapath** — split KSKIP: the ``alpha`` pass-through limbs
  of each digit start the inner product immediately after Decomp, while
  BasisConvert generates the extension limbs block by block; only the
  new limbs are NTT'd, key blocks are prefetched one digit ahead, and
  nothing spills.

*Smart operation scheduling* additionally halves the BasisConvert
multiplies by reusing the ``x_i * Q~_i`` products across output limbs
(the optimization of Eq. (1) described in §4.6).

Both variants produce identical ciphertexts (the functional ground
truth is :mod:`repro.fhe.keyswitch`); they differ only in cycles and
HBM traffic, which these task-graph models quantify.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from .hbm import HbmModel
from .memory import OnChipMemory
from .ntt_datapath import NttDatapath
from .params import FabConfig
from .scheduler import ScheduleResult, TaskGraph


@dataclass
class KeySwitchCounts:
    """Primitive-operation counts for one KeySwitch."""

    limb_ntts: int = 0            # forward + inverse limb transforms
    modmults: int = 0             # scalar modular multiplies
    modadds: int = 0              # scalar modular adds/subs
    hbm_key_bytes: int = 0        # switching-key traffic
    hbm_spill_bytes: int = 0      # intermediate limb spills (original only)

    @property
    def hbm_total_bytes(self) -> int:
        return self.hbm_key_bytes + self.hbm_spill_bytes


@dataclass
class KeySwitchReport:
    """Cycles, traffic and schedule for one KeySwitch invocation."""

    cycles: int
    counts: KeySwitchCounts
    schedule: ScheduleResult
    modified: bool
    smart_scheduling: bool

    def seconds(self, config: FabConfig) -> float:
        return config.cycles_to_seconds(self.cycles)


class KeySwitchDatapath:
    """Builds and schedules the KeySwitch task graph."""

    def __init__(self, config: Optional[FabConfig] = None,
                 modified: bool = True, smart_scheduling: bool = True):
        self.config = config or FabConfig()
        self.modified = modified
        self.smart_scheduling = smart_scheduling
        self.ntt = NttDatapath(self.config)
        self.hbm = HbmModel(self.config)

    # ------------------------------------------------------------------
    # Digit layout
    # ------------------------------------------------------------------

    def digit_sizes(self, level_limbs: int) -> List[int]:
        """Limbs per digit at the current level (trailing digit partial)."""
        alpha = self.config.fhe.alpha
        sizes = []
        remaining = level_limbs
        while remaining > 0:
            sizes.append(min(alpha, remaining))
            remaining -= alpha
        return sizes

    # ------------------------------------------------------------------
    # Cycle helpers
    # ------------------------------------------------------------------

    def _elementwise_cycles(self, mults: int, adds: int = 0) -> int:
        """Cycles for a fused multiply/accumulate stream.

        Every functional unit has an independent modular multiplier and
        adder (§4.1), so multiplies and the accumulating adds issue in
        parallel: throughput is bounded by the larger stream.
        """
        lanes = self.config.num_functional_units
        dominant = max(mults, adds)
        return math.ceil(dominant / lanes) if dominant else 0

    def _conv_mults(self, digit_limbs: int, new_limbs: int) -> int:
        """BasisConvert multiplies for one digit (Eq. 1)."""
        n = self.config.fhe.ring_degree
        if self.smart_scheduling:
            # x_i * Q~_i computed once, reused for every output limb.
            return digit_limbs * n + new_limbs * digit_limbs * n
        return 2 * new_limbs * digit_limbs * n

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------

    def build_graph(self, level_limbs: Optional[int] = None):
        """Task graph + counts for a KeySwitch at ``level_limbs`` limbs."""
        fhe = self.config.fhe
        level = level_limbs if level_limbs is not None else fhe.num_limbs
        if not 1 <= level <= fhe.num_limbs:
            raise ValueError(f"level_limbs must be in [1, {fhe.num_limbs}]")
        n = fhe.ring_degree
        k = fhe.num_extension_limbs
        raised = level + k
        digits = self.digit_sizes(level)
        limb_bytes = fhe.limb_bytes
        ntt_limb = self.ntt.limb_cycles(n)

        graph = TaskGraph()
        counts = KeySwitchCounts()
        kskip_tasks: List[str] = []

        for j, d_limbs in enumerate(digits):
            new_limbs = raised - d_limbs
            key_bytes = 2 * raised * limb_bytes
            counts.hbm_key_bytes += key_bytes
            fetch_cycles = self.hbm.transfer_cycles(key_bytes,
                                                    include_latency=True)
            graph.add(f"keyfetch{j}", "hbm", fetch_cycles)

            intt_cycles = d_limbs * ntt_limb
            counts.limb_ntts += d_limbs
            graph.add(f"intt{j}", "fu", intt_cycles)

            conv_mults = self._conv_mults(d_limbs, new_limbs)
            conv_adds = new_limbs * d_limbs * n
            counts.modmults += conv_mults
            counts.modadds += conv_adds
            conv_cycles = self._elementwise_cycles(conv_mults, conv_adds)
            graph.add(f"conv{j}", "fu", conv_cycles, deps=[f"intt{j}"])

            if self.modified:
                ntt_count = new_limbs
                spill_deps: List[str] = [f"conv{j}"]
            else:
                # Original datapath: spill raised limbs to HBM in
                # coefficient form, read back, NTT every limb.
                spill_bytes = raised * limb_bytes
                counts.hbm_spill_bytes += 2 * spill_bytes
                wb = self.hbm.transfer_cycles(spill_bytes)
                graph.add(f"spill{j}", "hbm", wb, deps=[f"conv{j}"])
                graph.add(f"fill{j}", "hbm", wb, deps=[f"spill{j}"])
                ntt_count = raised
                spill_deps = [f"fill{j}"]

            counts.limb_ntts += ntt_count
            graph.add(f"ntt{j}", "fu", ntt_count * ntt_limb,
                      deps=spill_deps)

            kskip_mults = 2 * raised * n
            kskip_adds = 2 * raised * n
            counts.modmults += kskip_mults
            counts.modadds += kskip_adds
            kskip_cycles = self._elementwise_cycles(kskip_mults, kskip_adds)
            graph.add(f"kskip{j}", "fu", kskip_cycles,
                      deps=[f"ntt{j}", f"keyfetch{j}"])
            kskip_tasks.append(f"kskip{j}")

        # ModDown for both output polynomials.
        for poly in ("c0", "c1"):
            intt_cycles = k * ntt_limb
            counts.limb_ntts += k
            graph.add(f"md_intt_{poly}", "fu", intt_cycles, deps=kskip_tasks)
            conv_mults = (k * n + level * k * n if self.smart_scheduling
                          else 2 * level * k * n)
            conv_adds = level * k * n
            counts.modmults += conv_mults
            counts.modadds += conv_adds
            graph.add(f"md_conv_{poly}", "fu",
                      self._elementwise_cycles(conv_mults, conv_adds),
                      deps=[f"md_intt_{poly}"])
            counts.limb_ntts += level
            graph.add(f"md_ntt_{poly}", "fu", level * ntt_limb,
                      deps=[f"md_conv_{poly}"])
            fix_mults = level * n
            fix_adds = level * n
            counts.modmults += fix_mults
            counts.modadds += fix_adds
            graph.add(f"md_fix_{poly}", "fu",
                      self._elementwise_cycles(fix_mults, fix_adds),
                      deps=[f"md_ntt_{poly}"])
        return graph, counts

    def report(self, level_limbs: Optional[int] = None) -> KeySwitchReport:
        """Schedule the graph and summarize."""
        graph, counts = self.build_graph(level_limbs)
        result = graph.schedule()
        return KeySwitchReport(result.makespan, counts, result,
                               self.modified, self.smart_scheduling)

    def hoisted_report(self, level_limbs: Optional[int] = None
                       ) -> KeySwitchReport:
        """A key switch that reuses an already-raised decomposition.

        Hoisting (Bossuat et al. [5], leveraged by the bootstrapping
        algorithm FAB adopts): when several rotations apply to the *same*
        ciphertext — the baby steps of a BSGS linear transform — the
        Decomp/ModUp work is shared and each additional rotation pays
        only for its key fetch, the KSKIP inner product, and ModDown.
        """
        fhe = self.config.fhe
        level = level_limbs if level_limbs is not None else fhe.num_limbs
        n = fhe.ring_degree
        k = fhe.num_extension_limbs
        raised = level + k
        digits = self.digit_sizes(level)
        ntt_limb = self.ntt.limb_cycles(n)
        graph = TaskGraph()
        counts = KeySwitchCounts()
        kskip_tasks: List[str] = []
        for j in range(len(digits)):
            key_bytes = 2 * raised * fhe.limb_bytes
            counts.hbm_key_bytes += key_bytes
            graph.add(f"keyfetch{j}", "hbm",
                      self.hbm.transfer_cycles(key_bytes,
                                               include_latency=True))
            kskip_mults = 2 * raised * n
            counts.modmults += kskip_mults
            counts.modadds += kskip_mults
            graph.add(f"kskip{j}", "fu",
                      self._elementwise_cycles(kskip_mults, kskip_mults),
                      deps=[f"keyfetch{j}"])
            kskip_tasks.append(f"kskip{j}")
        for poly in ("c0", "c1"):
            counts.limb_ntts += k
            graph.add(f"md_intt_{poly}", "fu", k * ntt_limb,
                      deps=kskip_tasks)
            conv_mults = k * n + level * k * n
            counts.modmults += conv_mults
            graph.add(f"md_conv_{poly}", "fu",
                      self._elementwise_cycles(conv_mults, level * k * n),
                      deps=[f"md_intt_{poly}"])
            counts.limb_ntts += level
            graph.add(f"md_ntt_{poly}", "fu", level * ntt_limb,
                      deps=[f"md_conv_{poly}"])
            graph.add(f"md_fix_{poly}", "fu",
                      self._elementwise_cycles(level * n, level * n),
                      deps=[f"md_ntt_{poly}"])
            counts.modmults += level * n
            counts.modadds += 2 * level * n
        result = graph.schedule()
        return KeySwitchReport(result.makespan, counts, result,
                               self.modified, self.smart_scheduling)

    # ------------------------------------------------------------------
    # On-chip feasibility (the paper's §4.6 argument)
    # ------------------------------------------------------------------

    def onchip_feasible(self) -> bool:
        """Does the modified datapath's resident set fit on chip?

        The modified datapath keeps: the raised ciphertext limbs in the
        URAM c0/c1 banks, one digit's key block + twiddles in the misc
        banks, and the current block of extension limbs in the BRAM
        banks.  The original datapath instead requires the full raised
        set simultaneously, which does not fit — forcing the HBM spill.
        """
        mem = OnChipMemory(self.config)
        fhe = self.config.fhe
        try:
            mem.banks["uram_c0_a"].allocate("ct", fhe.max_raised_limbs // 2)
            mem.banks["uram_c0_b"].allocate("ct", fhe.max_raised_limbs
                                            - fhe.max_raised_limbs // 2)
            mem.banks["uram_c1_a"].allocate("ct", fhe.max_raised_limbs // 2)
            mem.banks["uram_c1_b"].allocate("ct", fhe.max_raised_limbs
                                            - fhe.max_raised_limbs // 2)
            # One digit's key block streams through the misc bank.
            mem.banks["uram_misc"].allocate("key_block", 16)
            # Extension limbs of the current block in dual-port BRAM.
            mem.banks["bram_c0"].allocate("ext", fhe.num_extension_limbs)
            mem.banks["bram_c1"].allocate("ext", fhe.num_extension_limbs)
            mem.banks["bram_misc"].allocate("scratch", 4)
        except Exception:
            return False
        return True


def compare_datapaths(config: Optional[FabConfig] = None,
                      level_limbs: Optional[int] = None
                      ) -> Dict[str, KeySwitchReport]:
    """The Fig. 5 ablation: original vs modified vs no-smart-scheduling."""
    config = config or FabConfig()
    return {
        "original": KeySwitchDatapath(config, modified=False,
                                      smart_scheduling=False
                                      ).report(level_limbs),
        "modified_no_smart": KeySwitchDatapath(config, modified=True,
                                               smart_scheduling=False
                                               ).report(level_limbs),
        "modified": KeySwitchDatapath(config, modified=True,
                                      smart_scheduling=True
                                      ).report(level_limbs),
    }
