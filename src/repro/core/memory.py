"""On-chip memory model: URAM/BRAM banks and the register file (§4.2–4.3).

The Alveo U280 exposes 962 URAM blocks (288 Kb, 72-bit wide, single
port) and 4032 BRAM blocks (18 Kb, 18-bit wide, dual port).  FAB
organizes them as:

* five URAM banks of 192 URAMs (64 groups of 3 -> 216-bit words holding
  four 54-bit coefficients): c0 x2, c1 x2 (32 limbs each pair) and a
  miscellaneous bank (twiddles, keys, plaintexts);
* three BRAM banks (c0/c1 of 1536 BRAMs = 8 limbs each, plus a 768-BRAM
  miscellaneous bank of 4 limbs), dual-ported to serve the BasisConvert
  inner products;
* a 2 MB register file for host-written constants and up to four
  intermediate polynomials.

The model tracks limb allocation, port conflicts per access, and the
aggregate capacity (the paper's 43 MB), and is what the KeySwitch
datapath scheduler allocates against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .params import FabConfig


class CapacityError(Exception):
    """Raised when an allocation exceeds a bank's capacity."""


@dataclass
class MemoryBank:
    """One URAM or BRAM bank storing whole limbs (polynomials).

    Attributes:
        name: bank identifier (e.g. ``"uram_c0"``).
        capacity_limbs: number of limb-sized polynomials the bank holds.
        num_blocks: physical RAM blocks composing the bank.
        dual_port: True for BRAM banks (read+write per cycle).
        coefficients_per_access: coefficients returned per read cycle.
    """

    name: str
    capacity_limbs: int
    num_blocks: int
    dual_port: bool
    coefficients_per_access: int = 256
    _residents: Dict[str, int] = field(default_factory=dict)

    @property
    def used_limbs(self) -> int:
        """Limb slots currently allocated."""
        return sum(self._residents.values())

    @property
    def free_limbs(self) -> int:
        """Limb slots still available."""
        return self.capacity_limbs - self.used_limbs

    def allocate(self, tag: str, limbs: int) -> None:
        """Reserve ``limbs`` slots under ``tag`` (cumulative)."""
        if limbs < 0:
            raise ValueError("limbs must be non-negative")
        if self.used_limbs + limbs > self.capacity_limbs:
            raise CapacityError(
                f"bank {self.name}: requested {limbs} limbs with only "
                f"{self.free_limbs}/{self.capacity_limbs} free")
        self._residents[tag] = self._residents.get(tag, 0) + limbs

    def release(self, tag: str) -> int:
        """Free every slot held by ``tag``; returns the count freed."""
        return self._residents.pop(tag, 0)

    def clear(self) -> None:
        """Free all slots."""
        self._residents.clear()

    def access_cycles(self, num_coefficients: int,
                      read_and_write: bool = False) -> int:
        """Cycles to stream ``num_coefficients`` through the bank.

        Single-port banks serialize a simultaneous read+write; dual-port
        (BRAM) banks overlap them — the property FAB exploits to run
        BasisConvert inner products limb-wise out of the BRAM banks.
        """
        passes = -(-num_coefficients // self.coefficients_per_access)
        if read_and_write and not self.dual_port:
            passes *= 2
        return passes


@dataclass
class RegisterFile:
    """The 2 MB distributed register file (§4.3).

    A quarter holds host-written constants (prime moduli, twiddles seeds,
    precomputed scalars); the rest buffers up to four intermediate
    polynomials for Rotate / Mult.
    """

    capacity_bytes: int
    reserved_constant_bytes: int
    max_intermediate_polys: int = 4
    _intermediates: int = 0

    @property
    def scratch_bytes(self) -> int:
        """Bytes available for intermediate polynomials."""
        return self.capacity_bytes - self.reserved_constant_bytes

    def hold_poly(self) -> None:
        """Claim one intermediate-polynomial slot."""
        if self._intermediates >= self.max_intermediate_polys:
            raise CapacityError(
                "register file already holds "
                f"{self.max_intermediate_polys} intermediate polynomials")
        self._intermediates += 1

    def release_poly(self) -> None:
        """Release one intermediate-polynomial slot."""
        if self._intermediates == 0:
            raise CapacityError("no intermediate polynomial to release")
        self._intermediates -= 1

    @property
    def polys_held(self) -> int:
        return self._intermediates


class OnChipMemory:
    """The full FAB on-chip memory system (Fig. 4)."""

    def __init__(self, config: Optional[FabConfig] = None):
        self.config = config or FabConfig()
        cfg = self.config
        n = cfg.fhe.ring_degree
        per_access = 2 * cfg.num_functional_units // 2  # 256 on the U280
        # The limb capacity of a bank follows from its raw bits and the
        # limb size.  On the U280: a 192-URAM bank (64 groups of 3,
        # 216-bit words = four 54-bit coefficients) stores 16 limbs of
        # N = 2^16.  Other devices/ring sizes scale proportionally.
        limb_bits = n * cfg.fhe.limb_bits
        # Five URAM banks (c0 x2, c1 x2, misc), equal split.
        uram_bank_blocks = cfg.uram_blocks_used // 5
        uram_bank_bits = uram_bank_blocks * cfg.uram_block_kbits * 1024
        uram_limbs = max(uram_bank_bits // limb_bits, 0)
        # BRAM: two big banks (c0/c1, 40% each) + one misc (20%).
        bram_big_blocks = int(cfg.bram_blocks_used * 0.4)
        bram_small_blocks = cfg.bram_blocks_used - 2 * bram_big_blocks
        bram_big_bits = bram_big_blocks * cfg.bram_block_kbits * 1024
        bram_small_bits = bram_small_blocks * cfg.bram_block_kbits * 1024
        bram_limbs_big = max(bram_big_bits // limb_bits, 0)
        bram_limbs_small = max(bram_small_bits // limb_bits, 0)
        self.uram_banks: Dict[str, MemoryBank] = {
            name: MemoryBank(name, int(uram_limbs), uram_bank_blocks,
                             False, per_access)
            for name in ("uram_c0_a", "uram_c0_b", "uram_c1_a",
                         "uram_c1_b", "uram_misc")
        }
        self.bram_banks: Dict[str, MemoryBank] = {
            "bram_c0": MemoryBank("bram_c0", int(bram_limbs_big),
                                  bram_big_blocks, True, per_access),
            "bram_c1": MemoryBank("bram_c1", int(bram_limbs_big),
                                  bram_big_blocks, True, per_access),
            "bram_misc": MemoryBank("bram_misc", int(bram_limbs_small),
                                    bram_small_blocks, True, per_access),
        }
        self.register_file = RegisterFile(
            capacity_bytes=cfg.register_file_bytes,
            reserved_constant_bytes=cfg.register_file_bytes // 4)

    # ------------------------------------------------------------------

    @property
    def banks(self) -> Dict[str, MemoryBank]:
        """All banks by name."""
        out = dict(self.uram_banks)
        out.update(self.bram_banks)
        return out

    @property
    def total_uram_blocks(self) -> int:
        return sum(b.num_blocks for b in self.uram_banks.values())

    @property
    def total_bram_blocks(self) -> int:
        return sum(b.num_blocks for b in self.bram_banks.values())

    @property
    def total_capacity_bytes(self) -> int:
        """Raw block capacity (the paper's 43 MB)."""
        return self.config.onchip_bytes

    @property
    def ciphertext_limb_capacity(self) -> int:
        """Limbs of ciphertext storable in the c0/c1 URAM banks (64)."""
        return sum(b.capacity_limbs for name, b in self.uram_banks.items()
                   if name != "uram_misc")

    def fits_raised_ciphertext(self) -> bool:
        """Can a fully raised ciphertext (2 x 32 limbs) stay on-chip?"""
        needed = 2 * self.config.fhe.max_raised_limbs
        return needed <= self.ciphertext_limb_capacity

    def fits_keyswitch_working_set(self) -> bool:
        """Can ciphertext + all switching keys stay resident at once?

        The paper's answer is *no* (~112 MB vs 43 MB), which is why the
        modified datapath streams one key block at a time.
        """
        fhe = self.config.fhe
        key_bytes = 2 * fhe.dnum * fhe.max_raised_limbs * fhe.limb_bytes
        ct_bytes = fhe.max_ciphertext_bytes
        return key_bytes + ct_bytes <= self.total_capacity_bytes

    def keyswitch_working_set_bytes(self) -> int:
        """Ciphertext + switching-key bytes touched by one KeySwitch."""
        fhe = self.config.fhe
        key_bytes = 2 * fhe.dnum * fhe.max_raised_limbs * fhe.limb_bytes
        return key_bytes + fhe.max_ciphertext_bytes

    def fits_minimum_porting_requirement(self) -> bool:
        """The §4.6 porting threshold: at least one limb of the
        switching key and one limb of the ciphertext polynomial must fit
        on chip (plus a limb of working space for BasisConvert)."""
        need = 3 * self.config.fhe.limb_bytes
        return self.total_capacity_bytes >= need

    def reset(self) -> None:
        """Free every allocation."""
        for bank in self.banks.values():
            bank.clear()
