"""Multi-FPGA scaling: the FAB-2 system (§3, §5.5).

Eight Alveo U280 boards communicate directly over 100G Ethernet through
their CMAC subsystems (no host involvement).  Boards form primary/
secondary pairs, and one board acts as a broadcast master.  The paper
reports ~11,399 kernel cycles to transmit a single ciphertext limb and
~546,980 cycles for an entire ciphertext, with two communication rounds
(~12 ms total) per logistic-regression iteration.

Bootstrapping itself runs on a single board (parallelizing it across
boards is future work in the paper), so FAB-2's speedup over FAB-1 is
bounded by the serial bootstrap fraction — Amdahl's law, which
:meth:`MultiFpgaSystem.iteration_seconds` reproduces.

This module is the *analytic* (closed-form) model.  The trace-driven
counterpart lives in :mod:`repro.runtime.striped_lowering`: it shards
one captured :class:`~repro.runtime.optrace.OpTrace` across the pool,
injects CMAC gather/broadcast tasks priced by
:meth:`MultiFpgaSystem.limb_transmit_cycles`, and schedules the merged
graph on per-board lanes; ``repro stripe-scale`` reconciles the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .params import FabConfig


@dataclass(frozen=True)
class FpgaNode:
    """One board in the pool."""

    index: int
    role: str  # "master", "primary" or "secondary"

    @property
    def is_master(self) -> bool:
        return self.role == "master"


class MultiFpgaSystem:
    """Topology + communication model for a FAB-2 style pool."""

    def __init__(self, config: Optional[FabConfig] = None,
                 num_fpgas: int = 8):
        if num_fpgas < 1:
            raise ValueError("need at least one FPGA")
        if num_fpgas % 2 and num_fpgas > 1:
            raise ValueError("boards form primary/secondary pairs")
        self.config = config or FabConfig()
        self.num_fpgas = num_fpgas
        self.nodes = self._build_topology()

    def _build_topology(self) -> List[FpgaNode]:
        nodes = []
        for i in range(self.num_fpgas):
            if i == 0:
                role = "master"
            elif i % 2 == 0:
                role = "primary"
            else:
                role = "secondary"
            nodes.append(FpgaNode(i, role))
        return nodes

    @property
    def pairs(self) -> List[Tuple[FpgaNode, FpgaNode]]:
        """Primary/secondary pairs for point-to-point transfers."""
        return [(self.nodes[i], self.nodes[i + 1])
                for i in range(0, self.num_fpgas - 1, 2)]

    # ------------------------------------------------------------------
    # Communication model
    # ------------------------------------------------------------------

    def limb_transmit_cycles(self) -> int:
        """Kernel cycles to ship one limb over the 100G link.

        The 512-bit kernel interface at 300 MHz could push ~153 Gb/s, so
        the Ethernet core's 100 Gb/s line rate (minus framing overhead)
        is the bottleneck — the paper's ~11,399 cycles per 0.44 MB limb.
        """
        c = self.config
        bits = c.fhe.ring_degree * c.fhe.limb_bits
        kernel_rate = c.tx_rx_fifo_width_bits * c.clock_hz
        eth_rate = c.ethernet_gbps * 1e9 * (1 - c.ethernet_overhead)
        rate = min(kernel_rate, eth_rate)
        return math.ceil(bits / rate * c.clock_hz)

    def ciphertext_transmit_cycles(self, level: Optional[float] = None
                                   ) -> int:
        """Cycles to ship a two-element ciphertext at ``level`` limbs.

        Defaults to the full computation chain (the paper's ~546,980
        cycles); the trace-driven striping passes the actual level at
        each synchronization point (a fractional mean level is accepted
        when reconciling several rounds at once), which is why the
        trace-driven communication bill undercuts the analytic one.
        """
        limbs = level if level is not None else self.config.fhe.num_limbs
        if limbs < 1:
            raise ValueError("level must be >= 1")
        return math.ceil(2 * limbs * self.limb_transmit_cycles())

    def broadcast_seconds(self) -> float:
        """Master broadcasting one ciphertext to every other board.

        The switch forwards to all peers, but the master's egress link
        serializes the payload once per pair batch; we charge one
        ciphertext transmission plus per-hop switch latency.
        """
        cycles = self.ciphertext_transmit_cycles()
        return self.config.cycles_to_seconds(cycles)

    def communication_seconds_per_iteration(
            self, rounds: int = 2,
            level: Optional[float] = None) -> float:
        """Inter-FPGA communication per LR iteration (~12 ms, §5.5).

        ``level`` prices the shipped ciphertexts at a given limb count
        (default: the full chain, the paper's figure); the trace-driven
        reconciliation passes the level at its sync points.
        """
        per_round = self.ciphertext_transmit_cycles(level)
        # Each round is a log2(pool)-deep tree of ciphertext hops.
        cycles = rounds * per_round * math.ceil(math.log2(
            max(self.num_fpgas, 2)))
        return self.config.cycles_to_seconds(cycles)

    # ------------------------------------------------------------------
    # Amdahl scaling
    # ------------------------------------------------------------------

    def iteration_seconds(self, single_fpga_seconds: float,
                          serial_seconds: float,
                          rounds: int = 2,
                          level: Optional[float] = None) -> float:
        """FAB-2 iteration time from the FAB-1 time.

        ``serial_seconds`` is the non-parallelizable part (bootstrapping
        on a single board); the rest divides across the pool; inter-board
        communication is added on top.
        """
        if single_fpga_seconds < serial_seconds:
            raise ValueError("serial fraction exceeds total time")
        parallel = single_fpga_seconds - serial_seconds
        return (serial_seconds + parallel / self.num_fpgas
                + self.communication_seconds_per_iteration(rounds, level))

    def speedup(self, single_fpga_seconds: float,
                serial_seconds: float,
                rounds: int = 2,
                level: Optional[float] = None) -> float:
        """FAB-2 speedup over FAB-1 for the same workload.

        ``rounds`` is the number of gather/broadcast rounds per
        iteration (2 for LR, §5.5); the trace-driven reconciliation in
        ``repro stripe-scale`` passes the number of synchronization
        rounds its striping actually injected and the ciphertext level
        they shipped at.
        """
        return single_fpga_seconds / self.iteration_seconds(
            single_fpga_seconds, serial_seconds, rounds, level)
