"""The unified NTT/iNTT datapath (§4.5).

FAB's 256 functional units act as radix-2 butterflies processing 512
coefficients per cycle, so one limb's NTT takes about
``log N * N / 512`` cycles instead of ``log N * N / 2``.  The NTT
address-generation unit maps data and twiddle indices on the fly from
the stage/data counters using shifts and ANDs; the same network serves
both directions (Cooley–Tukey with bit-reversed twiddle tables).

:func:`forward_stage_schedule` reproduces that address generation in
software, and the test suite validates that executing butterflies per
this schedule is bit-identical to the reference NTT in
:mod:`repro.fhe.ntt` — the functional credibility of the datapath model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from .params import FabConfig


@dataclass(frozen=True)
class ButterflyBlock:
    """One block of butterflies sharing a twiddle factor.

    Attributes:
        stage: NTT stage (0-based; ``log2 N`` stages total).
        twiddle_index: index into the bit-reversed twiddle table.
        lo_start: first index of the "low" operand run.
        hi_start: first index of the "high" operand run.
        length: number of butterflies in the block.
    """

    stage: int
    twiddle_index: int
    lo_start: int
    hi_start: int
    length: int

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """(lo, hi) index pairs of this block."""
        for off in range(self.length):
            yield self.lo_start + off, self.hi_start + off


def forward_stage_schedule(ring_degree: int) -> List[List[ButterflyBlock]]:
    """The data/twiddle mapping for every forward-NTT stage.

    Mirrors the iterative Cooley–Tukey loop: at stage ``s`` there are
    ``m = 2^s`` blocks of ``t = N / 2^{s+1}`` butterflies, block ``j``
    using twiddle ``m + j`` (bit-reversed table).  All indices derive
    from the stage/data counters with shifts and masks — exactly what
    the hardware address-generation unit computes.
    """
    n = ring_degree
    log_n = n.bit_length() - 1
    if 1 << log_n != n:
        raise ValueError("ring degree must be a power of two")
    schedule: List[List[ButterflyBlock]] = []
    t = n
    m = 1
    for stage in range(log_n):
        t //= 2
        blocks = [
            ButterflyBlock(stage=stage, twiddle_index=m + j,
                           lo_start=2 * j * t, hi_start=2 * j * t + t,
                           length=t)
            for j in range(m)
        ]
        schedule.append(blocks)
        m *= 2
    return schedule


def execute_schedule(coeffs: np.ndarray, twiddles: np.ndarray,
                     modulus: int) -> np.ndarray:
    """Run the forward NTT by walking the hardware schedule.

    Used by tests to prove the address generator is bit-exact against
    the reference transform.
    """
    a = np.asarray(coeffs, dtype=np.int64).copy() % modulus
    for blocks in forward_stage_schedule(a.shape[0]):
        for blk in blocks:
            w = int(twiddles[blk.twiddle_index])
            lo = a[blk.lo_start:blk.lo_start + blk.length]
            hi = a[blk.hi_start:blk.hi_start + blk.length]
            prod = hi * w % modulus
            lo_new = (lo + prod) % modulus
            hi_new = (lo - prod) % modulus
            a[blk.lo_start:blk.lo_start + blk.length] = lo_new
            a[blk.hi_start:blk.hi_start + blk.length] = hi_new
    return a


class NttDatapath:
    """Cycle model of the NTT/iNTT pipeline."""

    def __init__(self, config: Optional[FabConfig] = None):
        self.config = config or FabConfig()

    def stage_cycles(self, ring_degree: Optional[int] = None) -> int:
        """Cycles per NTT stage: N/2 butterflies over 256 lanes."""
        n = ring_degree or self.config.fhe.ring_degree
        return math.ceil((n // 2) / self.config.butterflies_per_cycle)

    def limb_cycles(self, ring_degree: Optional[int] = None) -> int:
        """Cycles for one limb's NTT (or iNTT): ~ log N * N / 512.

        Bit-reversal is fused into the preceding automorph/multiply
        (§4.5), so it does not appear here.
        """
        n = ring_degree or self.config.fhe.ring_degree
        log_n = n.bit_length() - 1
        fill = self.config.mod_mult_cycles + self.config.mod_add_cycles
        return log_n * self.stage_cycles(n) + fill

    def batch_cycles(self, num_limbs: int,
                     ring_degree: Optional[int] = None) -> int:
        """Cycles to transform ``num_limbs`` limbs back to back."""
        if num_limbs == 0:
            return 0
        return num_limbs * self.limb_cycles(ring_degree)

    def throughput_ops_per_sec(self,
                               ring_degree: Optional[int] = None) -> float:
        """Sustained NTT limbs per second (Table 6's NTT row)."""
        return self.config.clock_hz / self.limb_cycles(ring_degree)
