"""Cycle models for every CKKS operation on FAB.

Each method returns an :class:`OpReport` with cycles, HBM traffic and a
breakdown; the bootstrap model walks the full pipeline (ModRaise,
fftIter-factored CoeffToSlot, EvalMod, SlotToCoeff) tracking the level
as limbs are consumed, which is what Tables 5–7 and Figures 1–2 of the
paper are built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from .hbm import HbmModel
from .keyswitch_datapath import KeySwitchDatapath
from .ntt_datapath import NttDatapath
from .params import FabConfig


@dataclass
class OpReport:
    """Cost summary for one homomorphic operation."""

    name: str
    cycles: int
    limb_ntts: int = 0
    modmults: int = 0
    hbm_bytes: int = 0
    breakdown: Dict[str, int] = field(default_factory=dict)

    def seconds(self, config: FabConfig) -> float:
        """Wall-clock seconds at the kernel frequency."""
        return config.cycles_to_seconds(self.cycles)

    def merged(self, other: "OpReport", name: str) -> "OpReport":
        """Serial composition of two reports."""
        breakdown = dict(self.breakdown)
        for key, val in other.breakdown.items():
            breakdown[key] = breakdown.get(key, 0) + val
        return OpReport(name, self.cycles + other.cycles,
                        self.limb_ntts + other.limb_ntts,
                        self.modmults + other.modmults,
                        self.hbm_bytes + other.hbm_bytes, breakdown)


@dataclass
class BootstrapReport:
    """Cost of one fully-packed bootstrap plus the derived metric."""

    cycles: int
    stage_cycles: Dict[str, int]
    limb_ntts: int
    rotations: int
    levels_after: int
    slots: int

    def seconds(self, config: FabConfig) -> float:
        return config.cycles_to_seconds(self.cycles)


class FabOpModel:
    """Operation-level performance model of a single FAB accelerator."""

    def __init__(self, config: Optional[FabConfig] = None):
        self.config = config or FabConfig()
        self.ntt = NttDatapath(self.config)
        self.hbm = HbmModel(self.config)
        self.keyswitch_datapath = KeySwitchDatapath(self.config)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _level(self, level_limbs: Optional[int]) -> int:
        return (level_limbs if level_limbs is not None
                else self.config.fhe.num_limbs)

    def _ew(self, scalar_ops: int) -> int:
        """Element-wise cycles over the 256-lane array."""
        return math.ceil(scalar_ops / self.config.num_functional_units)

    def _overlap(self, cycles: int) -> int:
        """Apply the fine-grained pipelining factor to an NTT-heavy
        composite (see FabConfig.fine_grain_overlap)."""
        return math.ceil(cycles * self.config.fine_grain_overlap)

    # ------------------------------------------------------------------
    # Basic operations (Table 5)
    # ------------------------------------------------------------------

    def add(self, level_limbs: Optional[int] = None) -> OpReport:
        """Homomorphic addition: 2 * l * N modular adds."""
        level = self._level(level_limbs)
        n = self.config.fhe.ring_degree
        cycles = self._ew(2 * level * n) + self.config.mod_add_cycles
        return OpReport("add", cycles, breakdown={"elementwise": cycles})

    def multiply_plain(self, level_limbs: Optional[int] = None) -> OpReport:
        """Plaintext multiply: 2 * l * N modular multiplies."""
        level = self._level(level_limbs)
        n = self.config.fhe.ring_degree
        cycles = self._ew(2 * level * n) + self.config.mod_mult_cycles
        return OpReport("multiply_plain", cycles,
                        modmults=2 * level * n,
                        breakdown={"elementwise": cycles})

    def keyswitch(self, level_limbs: Optional[int] = None) -> OpReport:
        """Hybrid key switch via the modified datapath."""
        report = self.keyswitch_datapath.report(self._level(level_limbs))
        cycles = self._overlap(report.cycles)
        return OpReport("keyswitch", cycles,
                        limb_ntts=report.counts.limb_ntts,
                        modmults=report.counts.modmults,
                        hbm_bytes=report.counts.hbm_total_bytes,
                        breakdown={"keyswitch": cycles})

    def keyswitch_hoisted(self, level_limbs: Optional[int] = None) -> OpReport:
        """Key switch sharing a hoisted ModUp (baby-step rotations)."""
        report = self.keyswitch_datapath.hoisted_report(
            self._level(level_limbs))
        cycles = self._overlap(report.cycles)
        return OpReport("keyswitch_hoisted", cycles,
                        limb_ntts=report.counts.limb_ntts,
                        modmults=report.counts.modmults,
                        hbm_bytes=report.counts.hbm_total_bytes,
                        breakdown={"keyswitch": cycles})

    def multiply(self, level_limbs: Optional[int] = None) -> OpReport:
        """Ciphertext multiply: tensor product + relinearization."""
        level = self._level(level_limbs)
        n = self.config.fhe.ring_degree
        tensor_mults = 4 * level * n
        tensor_cycles = self._ew(tensor_mults) + self.config.mod_mult_cycles
        ks = self.keyswitch(level)
        fixup = self._ew(2 * level * n)  # add (u0, u1) into (d0, d1)
        cycles = tensor_cycles + ks.cycles + fixup
        return OpReport(
            "multiply", cycles, limb_ntts=ks.limb_ntts,
            modmults=tensor_mults + ks.modmults, hbm_bytes=ks.hbm_bytes,
            breakdown={"tensor": tensor_cycles, "keyswitch": ks.cycles,
                       "fixup": fixup})

    def rescale(self, level_limbs: Optional[int] = None) -> OpReport:
        """Rescale: per poly, 1 iNTT + (l-1) NTTs + element-wise fixup."""
        level = self._level(level_limbs)
        n = self.config.fhe.ring_degree
        ntts = 2 * level  # (1 iNTT + (l-1) NTT) per polynomial
        ntt_cycles = ntts * self.ntt.limb_cycles(n)
        fix = self._ew(2 * (level - 1) * n)  # fused sub+scale streams
        cycles = self._overlap(ntt_cycles + fix)
        return OpReport("rescale", cycles, limb_ntts=ntts,
                        modmults=2 * (level - 1) * n,
                        breakdown={"ntt": ntt_cycles, "fixup": fix})

    def rotate(self, level_limbs: Optional[int] = None) -> OpReport:
        """Rotation: automorph both polynomials + key switch."""
        level = self._level(level_limbs)
        n = self.config.fhe.ring_degree
        automorph = 2 * level * math.ceil(
            n / self.config.num_functional_units)
        ks = self.keyswitch(level)
        cycles = automorph + ks.cycles
        return OpReport("rotate", cycles, limb_ntts=ks.limb_ntts,
                        modmults=ks.modmults, hbm_bytes=ks.hbm_bytes,
                        breakdown={"automorph": automorph,
                                   "keyswitch": ks.cycles})

    def rotate_hoisted(self, level_limbs: Optional[int] = None) -> OpReport:
        """An additional rotation of an already-decomposed ciphertext."""
        level = self._level(level_limbs)
        n = self.config.fhe.ring_degree
        automorph = 2 * level * math.ceil(
            n / self.config.num_functional_units)
        ks = self.keyswitch_hoisted(level)
        cycles = automorph + ks.cycles
        return OpReport("rotate_hoisted", cycles, limb_ntts=ks.limb_ntts,
                        modmults=ks.modmults, hbm_bytes=ks.hbm_bytes,
                        breakdown={"automorph": automorph,
                                   "keyswitch": ks.cycles})

    def conjugate(self, level_limbs: Optional[int] = None) -> OpReport:
        """Conjugation costs the same as a rotation."""
        report = self.rotate(level_limbs)
        return OpReport("conjugate", report.cycles, report.limb_ntts,
                        report.modmults, report.hbm_bytes, report.breakdown)

    def ntt_limb(self) -> OpReport:
        """A single limb NTT (the Table 6 primitive)."""
        cycles = self.ntt.limb_cycles()
        return OpReport("ntt", cycles, limb_ntts=1,
                        breakdown={"ntt": cycles})

    def ntt_poly(self, level_limbs: Optional[int] = None) -> OpReport:
        """NTT of a full polynomial (all current limbs)."""
        level = self._level(level_limbs)
        cycles = level * self.ntt.limb_cycles()
        return OpReport("ntt_poly", cycles, limb_ntts=level,
                        breakdown={"ntt": cycles})

    # ------------------------------------------------------------------
    # Bootstrapping (Table 7, Fig. 2)
    # ------------------------------------------------------------------

    def _linear_transform(self, level: int, diagonals: int,
                          plain_levels: int = 1) -> OpReport:
        """One BSGS linear-transform factor at the given level."""
        n = self.config.fhe.ring_degree
        n1 = 1 << max(0, round(math.log2(max(diagonals, 1)) / 2))
        n2 = math.ceil(diagonals / n1)
        baby_rotations = max(n1 - 1, 0)
        giant_rotations = max(n2 - 1, 0)
        rotations = baby_rotations + giant_rotations
        report = OpReport(f"lt_d{diagonals}", 0)
        # Baby-step rotations all apply to the same input ciphertext, so
        # their ModUp is hoisted: the first pays full price, the rest
        # reuse the raised decomposition (Bossuat et al. [5]).
        for idx in range(baby_rotations):
            rot = self.rotate(level) if idx == 0 else self.rotate_hoisted(
                level)
            report = report.merged(rot, report.name)
        for _ in range(giant_rotations):
            report = report.merged(self.rotate(level), report.name)
        # Diagonal multiplies + accumulation (mult and add streams fuse).
        pt_mults = diagonals * 2 * level * n
        ew = self._ew(pt_mults)
        # Trailing rescale(s).
        rescale = self.rescale(level)
        cycles = report.cycles + ew + rescale.cycles * plain_levels
        report = OpReport(
            report.name, cycles,
            report.limb_ntts + rescale.limb_ntts * plain_levels,
            report.modmults + pt_mults + rescale.modmults * plain_levels,
            report.hbm_bytes,
            dict(report.breakdown, diag_mults=ew,
                 rescale=rescale.cycles * plain_levels))
        report.breakdown["rotations"] = rotations
        return report

    def bootstrap(self, fft_iter: Optional[int] = None,
                  slots: Optional[int] = None,
                  eval_mod_ct_mults: int = 20,
                  eval_mod_const_mults: int = 25) -> BootstrapReport:
        """Walk the full bootstrapping pipeline, tracking levels.

        Args:
            fft_iter: multiplicative depth of each homomorphic FFT
                (default: the config's fftIter).
            slots: packed slots (default N/2, fully packed).
            eval_mod_ct_mults: ciphertext-ciphertext multiplies in the
                depth-9 sine evaluation (Bossuat et al. polynomial).
            eval_mod_const_mults: plaintext multiplies in EvalMod.
        """
        fhe = self.config.fhe
        fft_iter = fft_iter if fft_iter is not None else fhe.fft_iter
        n = fhe.ring_degree
        slots = slots if slots is not None else n // 2
        log_slots = max(int(math.log2(slots)), 1)
        level = fhe.num_limbs
        stage_cycles: Dict[str, int] = {}
        total_ntts = 0
        total_rot = 0

        # ModRaise: iNTT the single remaining limb, reduce, NTT all limbs.
        raise_ntts = 2 * (1 + level)
        raise_cycles = raise_ntts * self.ntt.limb_cycles(n)
        stage_cycles["mod_raise"] = raise_cycles
        total_ntts += raise_ntts

        # CoeffToSlot: fftIter grouped DFT factors (+1 conjugation to
        # split real/imag halves).
        radix_bits = math.ceil(log_slots / fft_iter)
        diagonals = (1 << radix_bits) + 1
        cts_cycles = 0
        for _ in range(fft_iter):
            lt = self._linear_transform(level, diagonals)
            cts_cycles += lt.cycles
            total_ntts += lt.limb_ntts
            total_rot += lt.breakdown.get("rotations", 0)
            level -= 1
        conj = self.conjugate(level)
        cts_cycles += conj.cycles
        total_ntts += conj.limb_ntts
        total_rot += 1
        stage_cycles["coeff_to_slot"] = cts_cycles

        # EvalMod on both coefficient halves: the depth-9 sine polynomial
        # of Bossuat et al. [5] (~20 ct-ct multiplies per ciphertext,
        # distributed over the depth levels: the Chebyshev power ladder
        # runs at high levels, the Paterson-Stockmeyer combines lower).
        eval_cycles = 0
        depth = fhe.eval_mod_depth
        base = eval_mod_ct_mults // depth
        extra = eval_mod_ct_mults - base * depth
        # Sparse ciphertexts need a single EvalMod branch (the standard
        # sparse-packing optimization); fully-packed ones evaluate the
        # sine on both coefficient halves.
        branches = 2 if slots == n // 2 else 1
        for _half in range(branches):
            lvl = level
            for step in range(depth):
                mults_here = base + (1 if step < extra else 0)
                for _ in range(mults_here):
                    m = self.multiply(lvl)
                    r = self.rescale(lvl)
                    eval_cycles += m.cycles + r.cycles
                    total_ntts += m.limb_ntts + r.limb_ntts
                lvl -= 1
            const = eval_mod_const_mults * self._ew(2 * level * n)
            eval_cycles += const
        level -= depth
        stage_cycles["eval_mod"] = eval_cycles

        # SlotToCoeff: fftIter factors (no fold constants).
        stc_cycles = 0
        for _ in range(fft_iter):
            lt = self._linear_transform(level, diagonals)
            stc_cycles += lt.cycles
            total_ntts += lt.limb_ntts
            total_rot += lt.breakdown.get("rotations", 0)
            level -= 1
        stage_cycles["slot_to_coeff"] = stc_cycles

        total = sum(stage_cycles.values())
        return BootstrapReport(
            cycles=total, stage_cycles=stage_cycles, limb_ntts=total_ntts,
            rotations=total_rot, levels_after=max(level - 1, 0),
            slots=slots)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------

    def amortized_mult_per_slot(self, fft_iter: Optional[int] = None,
                                slots: Optional[int] = None) -> float:
        """Equation (2): amortized multiplication time per slot (seconds)."""
        boot = self.bootstrap(fft_iter=fft_iter, slots=slots)
        if boot.levels_after == 0:
            return float("inf")
        mult_time = 0.0
        # After bootstrapping the ciphertext has levels_after + 1 limbs;
        # each multiply+rescale consumes one.
        for level in range(boot.levels_after + 1, 1, -1):
            mult_time += self.config.cycles_to_seconds(
                self.multiply(level).cycles + self.rescale(level).cycles)
        total = boot.seconds(self.config) + mult_time
        return total / (boot.levels_after * boot.slots)
