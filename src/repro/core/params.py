"""FAB hardware configuration (§3–§4 of the paper).

:class:`FabConfig` captures every microarchitectural constant the paper
reports for the Xilinx Alveo U280 implementation: the 256 functional
units at 300 MHz, the functional-unit latencies, the URAM/BRAM bank
geometry (43 MB on-chip), the 2 MB register file, the 32-port HBM2 at
460 GB/s, and the 100G CMAC subsystem.  The performance model, the
resource model (Table 3) and the datapath schedulers all derive their
numbers from this one dataclass, so alternative FPGAs can be modelled by
instantiating a different config.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class FheParams:
    """The FHE parameter point the accelerator is configured for.

    Defaults are the paper's Table 2 set: N = 2^16, log q = 54, L = 23,
    dnum = 3, fftIter = 4, 128-bit security at log(PQ) = 1728.
    """

    ring_degree: int = 1 << 16
    limb_bits: int = 54
    num_limbs: int = 24           # L + 1
    dnum: int = 3
    fft_iter: int = 4
    eval_mod_depth: int = 9       # Bossuat et al. polynomial depth

    @property
    def alpha(self) -> int:
        """Limbs per key-switching digit."""
        return (self.num_limbs + self.dnum - 1) // self.dnum

    @property
    def num_extension_limbs(self) -> int:
        """Extension limbs of P (the paper raises 24 -> 32 limbs)."""
        return self.alpha

    @property
    def max_raised_limbs(self) -> int:
        """Limbs of a raised (mod-up) polynomial: L + 1 + alpha."""
        return self.num_limbs + self.num_extension_limbs

    @property
    def bootstrap_depth(self) -> int:
        """LBoot = 2 * fftIter + eval-mod depth (§2.1.4)."""
        return 2 * self.fft_iter + self.eval_mod_depth

    @property
    def levels_after_bootstrap(self) -> int:
        """Compute levels remaining after one bootstrap."""
        return max(self.num_limbs - 1 - self.bootstrap_depth, 0)

    @property
    def limb_bytes(self) -> int:
        """Bytes of one limb (N coefficients of limb_bits each)."""
        return self.ring_degree * self.limb_bits // 8

    @property
    def ciphertext_bytes(self) -> int:
        """Bytes of a (non-raised) two-element ciphertext."""
        return 2 * self.num_limbs * self.limb_bytes

    @property
    def max_ciphertext_bytes(self) -> int:
        """Bytes of a fully raised ciphertext (the paper's 28.3 MB)."""
        return 2 * self.max_raised_limbs * self.limb_bytes

    @property
    def log_pq(self) -> int:
        """log2(P*Q) — the security-relevant modulus."""
        return self.limb_bits * self.max_raised_limbs


@dataclass(frozen=True)
class FabConfig:
    """Microarchitecture of the FAB accelerator on the Alveo U280."""

    # Clocks.
    clock_hz: float = 300e6            # kernel clock
    mem_clock_hz: float = 450e6        # HBM-side AXI clock
    cmac_clock_hz: float = 322e6       # Ethernet core clock

    # Compute.
    num_functional_units: int = 256
    mod_add_cycles: int = 7            # multi-word 27-bit DSP adds
    mod_sub_cycles: int = 7
    int_mult_cycles: int = 12          # unrolled operand scanning
    mod_reduce_cycles: int = 12        # Algorithm 1 with shifts = 6
    reduce_shift_bits: int = 6

    # On-chip memory (see memory.py for the bank geometry).
    uram_blocks_total: int = 962
    uram_blocks_used: int = 960
    uram_block_kbits: int = 288
    uram_width_bits: int = 72
    uram_depth: int = 4096
    bram_blocks_total: int = 4032
    bram_blocks_used: int = 3840
    bram_block_kbits: int = 18
    bram_width_bits: int = 18
    bram_depth: int = 1024
    register_file_bytes: int = 2 * 1024 * 1024

    # HBM2 subsystem.
    hbm_ports: int = 32
    hbm_port_bits: int = 256
    hbm_total_gb: int = 8
    hbm_efficiency: float = 0.85       # achievable fraction of peak
    hbm_read_latency_cycles: int = 300  # key-fetch latency (§4.6)
    hbm_burst_length: int = 128

    # FIFOs (§4.4).
    rd_fifo_depth: int = 512
    wr_fifo_depth: int = 128
    fifo_width_bits: int = 256
    tx_rx_fifo_width_bits: int = 512

    # CMAC / Ethernet (§3).
    ethernet_gbps: float = 100.0
    ethernet_overhead: float = 0.074   # framing/protocol overhead

    #: Fraction of serial task-graph cycles remaining after FAB's
    #: fine-grained pipelining (§4.1: "maximal pipelining ... issuing
    #: multiple scalar operations in a single cycle").  The task graphs
    #: model overlap at whole-kernel granularity; consecutive limbs of
    #: NTT / element-wise streams additionally overlap inside the FU
    #: pipeline.  Calibrated against Table 5 (Mult 1.71 ms).
    fine_grain_overlap: float = 0.75

    # FPGA totals for utilization reporting (U280).
    luts_available: int = 1_304_000
    ffs_available: int = 2_607_000
    dsps_available: int = 9_024
    dsp_per_modmult: int = 20          # 5120 DSPs / 256 FUs

    fhe: FheParams = field(default_factory=FheParams)

    def __post_init__(self):
        # Fail at construction, not deep inside a sweep worker: every
        # derived quantity below divides or scales by these.
        for name in ("clock_hz", "mem_clock_hz", "cmac_clock_hz",
                     "num_functional_units", "hbm_ports",
                     "hbm_port_bits", "hbm_total_gb", "ethernet_gbps"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 < self.hbm_efficiency <= 1.0:
            raise ValueError("hbm_efficiency must be in (0, 1]")
        if not 0.0 <= self.ethernet_overhead < 1.0:
            raise ValueError("ethernet_overhead must be in [0, 1)")
        if not 0.0 < self.fine_grain_overlap <= 1.0:
            raise ValueError("fine_grain_overlap must be in (0, 1]")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def butterflies_per_cycle(self) -> int:
        """Radix-2 butterflies per cycle: every FU contributes one."""
        return self.num_functional_units

    @property
    def coefficients_per_cycle(self) -> int:
        """NTT coefficients processed per cycle (512 in the paper)."""
        return 2 * self.num_functional_units

    @property
    def mod_mult_cycles(self) -> int:
        """Latency of a full modular multiply (integer mult + reduce)."""
        return self.int_mult_cycles + self.mod_reduce_cycles

    @property
    def hbm_peak_bytes_per_sec(self) -> float:
        """Peak HBM bandwidth: 32 ports x 256 b x 450 MHz = 460.8 GB/s."""
        return self.hbm_ports * self.hbm_port_bits * self.mem_clock_hz / 8.0

    @property
    def hbm_effective_bytes_per_sec(self) -> float:
        """Achievable HBM bandwidth."""
        return self.hbm_peak_bytes_per_sec * self.hbm_efficiency

    @property
    def uram_bytes(self) -> int:
        """On-chip URAM capacity in bytes."""
        return self.uram_blocks_used * self.uram_block_kbits * 1024 // 8

    @property
    def bram_bytes(self) -> int:
        """On-chip BRAM capacity in bytes."""
        return self.bram_blocks_used * self.bram_block_kbits * 1024 // 8

    @property
    def onchip_bytes(self) -> int:
        """Total on-chip memory (the paper's 43 MB)."""
        return self.uram_bytes + self.bram_bytes

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert kernel-clock cycles to wall-clock seconds."""
        return cycles / self.clock_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds to kernel-clock cycles."""
        return seconds * self.clock_hz

    def with_fhe(self, **kwargs) -> "FabConfig":
        """A copy of this config with modified FHE parameters."""
        return replace(self, fhe=replace(self.fhe, **kwargs))


#: The paper's evaluation configuration.
DEFAULT_CONFIG = FabConfig()


def heax_comparison_config() -> FabConfig:
    """The Table 6 comparison point: N = 2^14, log Q = 438 (8 limbs)."""
    return DEFAULT_CONFIG.with_fhe(ring_degree=1 << 14, num_limbs=8,
                                   limb_bits=54)


def alveo_u50_config() -> FabConfig:
    """A smaller-FPGA port target (§4.6: "can be ported to smaller
    FPGAs as long as one limb of the key and the ciphertext polynomial
    fit in on-chip memory").

    The Alveo U50 has roughly half the U280's memory resources and the
    same HBM2 generation at lower bandwidth.
    """
    return replace(
        DEFAULT_CONFIG,
        uram_blocks_total=640, uram_blocks_used=640,
        bram_blocks_total=2688, bram_blocks_used=2560,
        hbm_total_gb=8, hbm_ports=32,
        mem_clock_hz=450e6,
        luts_available=872_000, ffs_available=1_743_000,
        dsps_available=5_952,
        num_functional_units=128)


def smallest_viable_config() -> FabConfig:
    """A deliberately tiny FPGA: below the paper's porting threshold.

    Used by tests to show that the feasibility analysis correctly
    rejects devices that cannot hold even one key limb + one ciphertext
    limb on chip.
    """
    return replace(
        DEFAULT_CONFIG,
        uram_blocks_total=8, uram_blocks_used=8,
        bram_blocks_total=64, bram_blocks_used=64,
        num_functional_units=32)
