"""Program-level scheduling: whole workloads on the FAB resources.

The per-operation models in :mod:`repro.core.ops` already overlap key
fetches inside one KeySwitch; this module models entire *programs*
(an LR iteration, a bootstrap) as one task graph so the cross-operation
effects become visible: switching-key prefetch for the *next* operation
runs under the current one's compute, which is how FAB keeps HBM
traffic homogeneous (§4.6) and the functional units fed.

The prefetch on/off comparison quantifies that claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .hbm import HbmModel
from .ops import FabOpModel
from .params import FabConfig
from .scheduler import ScheduleResult, TaskGraph

#: Operation kinds a program may contain.  Each names a
#: :class:`repro.core.ops.FabOpModel` method that prices it;
#: ``ntt_poly`` (a full-polynomial NTT, the ModRaise primitive) is
#: included so lowered bootstrap traces can be scheduled.
OP_KINDS = ("add", "multiply", "multiply_plain", "rescale", "rotate",
            "rotate_hoisted", "conjugate", "ntt_poly")


@dataclass(frozen=True)
class ProgramOp:
    """One homomorphic operation in a program."""

    kind: str
    level: int

    def __post_init__(self):
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}; "
                             f"choose from {OP_KINDS}")


#: Interned (kind, level) -> ProgramOp.  A lowered bootstrap trace is
#: thousands of ops drawn from a few dozen distinct (kind, level)
#: pairs; sharing one immutable record per pair keeps append() cheap.
_OP_INTERN: Dict[tuple, ProgramOp] = {}

#: config -> {(kind, level): (compute_cycles, fetch_cycles)}.  The op
#: models walk the NTT/key-switch datapaths on every call, which used
#: to dominate lowering; configs are frozen dataclasses, so the priced
#: result is reusable across every program built for the same config.
#: The config is hashed once per program (in ``__init__``), not per op.
_OP_COST_CACHE: Dict["FabConfig", Dict[tuple, tuple]] = {}


@dataclass
class ProgramReport:
    """Scheduling outcome for one program."""

    cycles: int
    schedule: ScheduleResult
    fu_busy: int
    hbm_busy: int
    num_ops: int

    def seconds(self, config: FabConfig) -> float:
        return config.cycles_to_seconds(self.cycles)

    @property
    def fu_utilization(self) -> float:
        return self.fu_busy / self.cycles if self.cycles else 0.0

    @property
    def hbm_utilization(self) -> float:
        return self.hbm_busy / self.cycles if self.cycles else 0.0


class FabProgram:
    """A sequence of homomorphic operations to schedule on FAB."""

    def __init__(self, config: Optional[FabConfig] = None):
        self.config = config or FabConfig()
        self.model = FabOpModel(self.config)
        self.hbm = HbmModel(self.config)
        self.ops: List[ProgramOp] = []
        self._cost_cache = _OP_COST_CACHE.setdefault(self.config, {})

    def append(self, kind: str, level: Optional[int] = None) -> "FabProgram":
        """Add an operation (chainable)."""
        level = level if level is not None else self.config.fhe.num_limbs
        op = _OP_INTERN.get((kind, level))
        if op is None:
            op = _OP_INTERN[(kind, level)] = ProgramOp(kind, level)
        self.ops.append(op)
        return self

    def extend(self, kinds: Sequence[str],
               level: Optional[int] = None) -> "FabProgram":
        """Add several operations at one level."""
        for kind in kinds:
            self.append(kind, level)
        return self

    def __len__(self) -> int:
        return len(self.ops)

    # ------------------------------------------------------------------
    # Prebuilt programs
    # ------------------------------------------------------------------

    @classmethod
    def lr_iteration(cls, config: Optional[FabConfig] = None,
                     num_ciphertexts: int = 32,
                     update_level: int = 6) -> "FabProgram":
        """The update phase of one HELR iteration (§5.5)."""
        program = cls(config)
        for _ in range(num_ciphertexts):
            program.extend(["multiply_plain", "multiply_plain", "add",
                            "add", "add"], update_level)
        program.append("rotate", update_level)
        for _ in range(7):
            program.append("rotate_hoisted", update_level)
        for _ in range(3):
            program.extend(["multiply", "rescale"], update_level)
        program.extend(["multiply", "add"], update_level)
        return program

    @classmethod
    def rotation_burst(cls, config: Optional[FabConfig] = None,
                       count: int = 8,
                       level: Optional[int] = None) -> "FabProgram":
        """A burst of rotations (a linear transform's skeleton)."""
        program = cls(config)
        program.append("rotate", level)
        for _ in range(count - 1):
            program.append("rotate_hoisted", level)
        return program

    # ------------------------------------------------------------------
    # Compilation and scheduling
    # ------------------------------------------------------------------

    def _op_costs(self, op: ProgramOp):
        """(compute, fetch) cycles, memoized on (config, kind, level)."""
        key = (op.kind, op.level)
        cached = self._cost_cache.get(key)
        if cached is not None:
            return cached
        report = getattr(self.model, op.kind)(op.level)
        fetch_cycles = (self.hbm.transfer_cycles(report.hbm_bytes,
                                                 include_latency=True)
                        if report.hbm_bytes else 0)
        compute_cycles = max(report.cycles - 0, 1)
        self._cost_cache[key] = (compute_cycles, fetch_cycles)
        return compute_cycles, fetch_cycles

    def op_cost(self, kind: str, level: int):
        """Public (compute, fetch) cycles for one op on this config.

        Shares the per-config memo with :meth:`compile`, so external
        graph builders (the striped multi-FPGA lowering) price ops
        exactly as the single-board path does.
        """
        op = _OP_INTERN.get((kind, level))
        if op is None:
            op = _OP_INTERN[(kind, level)] = ProgramOp(kind, level)
        return self._op_costs(op)

    def compile(self, prefetch: bool = True) -> TaskGraph:
        """Build the task graph.

        With ``prefetch=True`` key fetches depend only on HBM
        availability (the scheduler serializes the HBM resource), so
        they run under earlier compute; with ``prefetch=False`` each
        fetch waits for the previous operation to finish — the naive
        schedule FAB's smart scheduling avoids.
        """
        graph = TaskGraph()
        prev_compute: Optional[str] = None
        for idx, op in enumerate(self.ops):
            compute_cycles, fetch_cycles = self._op_costs(op)
            deps = []
            if fetch_cycles:
                fetch_deps = []
                if not prefetch and prev_compute is not None:
                    fetch_deps.append(prev_compute)
                graph.add(f"fetch{idx}", "hbm", fetch_cycles,
                          deps=fetch_deps)
                deps.append(f"fetch{idx}")
            if prev_compute is not None:
                deps.append(prev_compute)
            graph.add(f"op{idx}_{op.kind}", "fu", compute_cycles,
                      deps=deps)
            prev_compute = f"op{idx}_{op.kind}"
        return graph

    def schedule(self, prefetch: bool = True) -> ProgramReport:
        """Schedule the program and summarize."""
        result = self.compile(prefetch).schedule()
        fu = result.resources.get("fu")
        hbm = result.resources.get("hbm")
        return ProgramReport(
            cycles=result.makespan,
            schedule=result,
            fu_busy=fu.busy_cycles if fu else 0,
            hbm_busy=hbm.busy_cycles if hbm else 0,
            num_ops=len(self.ops))

    def prefetch_benefit(self) -> float:
        """Speedup of prefetching over the naive fetch-then-compute."""
        with_prefetch = self.schedule(prefetch=True).cycles
        without = self.schedule(prefetch=False).cycles
        return without / with_prefetch if with_prefetch else 1.0
