"""FPGA resource accounting (Table 3 and Table 4 of the paper).

The utilization model derives every number from the architecture
parameters in :class:`FabConfig`:

* **DSP** — each of the 256 functional units spends 20 DSP slices on its
  modular multiplier / adders (5120 total, 56.7 % of the U280's 9024);
* **URAM/BRAM** — directly from the bank geometry of §4.2 (960 of 962
  URAMs, 3840 of 4032 BRAMs);
* **LUT/FF** — per-unit estimates calibrated so the totals match the
  paper's ~899K LUTs / ~2073K FFs, with the functional units the largest
  LUT consumer (~37 %) and the register file + control dominating FFs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .params import FabConfig

#: Calibrated per-component LUT estimates.
_LUTS_PER_FU = 1_300               # modular mult/add/sub/automorph logic
_LUTS_ADDRESS_GEN = 120_000        # NTT + URAM + BRAM address generators
_LUTS_CONTROL = 230_000            # control FSMs, operation sequencer
_LUTS_FIFO_IO = 216_432            # FIFOs, AXI/CMAC interfaces

#: Calibrated per-component FF estimates.
_FFS_PER_FU = 3_200                # deep DSP pipelines per unit
_FFS_REGISTER_FILE = 734_600       # 2 MB distributed register file
_FFS_CONTROL = 404_000             # control + address generation
_FFS_FIFO_IO = 1_800 * 32 * 2      # Rd/Wr FIFO registers


@dataclass
class ResourceReport:
    """Utilization of one resource class (a Table 3 row)."""

    name: str
    available: int
    utilized: int

    @property
    def percent(self) -> float:
        """Utilization percentage."""
        return 100.0 * self.utilized / self.available


class FabResources:
    """Computes the Table 3 utilization rows from the configuration."""

    def __init__(self, config: Optional[FabConfig] = None):
        self.config = config or FabConfig()

    # ------------------------------------------------------------------
    # Component counts
    # ------------------------------------------------------------------

    @property
    def dsp_used(self) -> int:
        """DSP slices: all consumed by modular arithmetic (§5.2)."""
        return (self.config.num_functional_units
                * self.config.dsp_per_modmult)

    @property
    def uram_used(self) -> int:
        """URAM blocks: five banks of 192 (§4.2)."""
        return 5 * 192

    @property
    def bram_used(self) -> int:
        """BRAM blocks: two banks of 1536 + one of 768 (§4.2)."""
        return 2 * 1536 + 768

    @property
    def luts_used(self) -> int:
        """Estimated LUTs (functional units the largest share)."""
        fu = self.config.num_functional_units * _LUTS_PER_FU
        return fu + _LUTS_ADDRESS_GEN + _LUTS_CONTROL + _LUTS_FIFO_IO

    @property
    def ffs_used(self) -> int:
        """Estimated flip-flops (register file + control dominate)."""
        fu = self.config.num_functional_units * _FFS_PER_FU
        return fu + _FFS_REGISTER_FILE + _FFS_CONTROL + _FFS_FIFO_IO

    @property
    def lut_share_functional_units(self) -> float:
        """Fraction of LUTs in the functional units (paper: ~37 %)."""
        return (self.config.num_functional_units * _LUTS_PER_FU
                / self.luts_used)

    # ------------------------------------------------------------------
    # Table rows
    # ------------------------------------------------------------------

    def table3(self) -> Dict[str, ResourceReport]:
        """The five rows of Table 3."""
        c = self.config
        return {
            "LUTs": ResourceReport("LUTs", c.luts_available, self.luts_used),
            "FFs": ResourceReport("FFs", c.ffs_available, self.ffs_used),
            "DSP": ResourceReport("DSP", c.dsps_available, self.dsp_used),
            "BRAM": ResourceReport("BRAM", c.bram_blocks_total,
                                   self.bram_used),
            "URAM": ResourceReport("URAM", c.uram_blocks_total,
                                   self.uram_used),
        }

    def summary(self) -> str:
        """Formatted Table 3."""
        lines = [f"{'Resource':10s} {'Available':>10s} {'Utilized':>10s} "
                 f"{'% Util':>8s}"]
        for row in self.table3().values():
            lines.append(f"{row.name:10s} {row.available:>10,} "
                         f"{row.utilized:>10,} {row.percent:>7.2f}%")
        return "\n".join(lines)


@dataclass(frozen=True)
class AcceleratorFootprint:
    """A Table 4 row: compute/memory resources of an FHE accelerator."""

    name: str
    ring_degree: int
    log_q: int
    modular_multipliers: int
    register_file_mb: float
    onchip_memory_mb: float
    technology: str = ""


def table4_footprints(config: Optional[FabConfig] = None):
    """Table 4: FAB vs the F1 and BTS ASICs.

    The F1 and BTS rows quote the numbers published in [41] and [35];
    the FAB row derives from the configuration.
    """
    config = config or FabConfig()
    fab = AcceleratorFootprint(
        name="FAB",
        ring_degree=config.fhe.ring_degree,
        log_q=config.fhe.limb_bits,
        modular_multipliers=config.num_functional_units,
        register_file_mb=config.register_file_bytes / (1 << 20),
        onchip_memory_mb=round(config.onchip_bytes / (1 << 20)),
        technology="16nm FPGA (Alveo U280)")
    f1 = AcceleratorFootprint("F1", 1 << 14, 32, 18_432, 8, 64,
                              "14/12nm ASIC")
    bts = AcceleratorFootprint("BTS", 1 << 17, 50, 8_192, 22, 512,
                               "ASAP7 ASIC")
    return {"F1": f1, "BTS": bts, "FAB": fab}
