"""Event-driven resource scheduler for FAB operation task graphs.

FAB's performance comes from overlapping compute (the functional-unit
array) with memory traffic (HBM ports, CMAC): switching-key blocks are
prefetched while the previous block is still being multiplied (§4.6).
The scheduler here is a deterministic list scheduler over explicit task
graphs: each task names a resource, a duration in cycles, and its
dependencies; resources serialize their tasks (optionally across
multiple lanes).  The makespan and per-resource busy time quantify the
overlap, utilization, and whether a schedule is compute- or
memory-bound — the paper's central "balanced design" claim.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class Task:
    """A unit of work bound to one resource.

    Attributes:
        name: unique identifier.
        resource: resource name (e.g. ``"fu"``, ``"hbm"``).
        cycles: duration in kernel cycles.
        deps: names of tasks that must finish first.
    """

    name: str
    resource: str
    cycles: int
    deps: Tuple[str, ...] = ()
    start: Optional[int] = None
    finish: Optional[int] = None


@dataclass
class ResourceStats:
    """Utilization summary for one resource."""

    name: str
    busy_cycles: int
    tasks: int

    def utilization(self, makespan: int) -> float:
        """Fraction of the makespan this resource was busy."""
        return self.busy_cycles / makespan if makespan else 0.0


@dataclass
class ScheduleResult:
    """Outcome of scheduling a task graph."""

    makespan: int
    tasks: Dict[str, Task]
    resources: Dict[str, ResourceStats]

    def critical_tasks(self) -> List[Task]:
        """Tasks on a critical path (finish == makespan chain)."""
        path: List[Task] = []
        frontier = [t for t in self.tasks.values()
                    if t.finish == self.makespan]
        seen = set()
        while frontier:
            task = frontier.pop()
            if task.name in seen:
                continue
            seen.add(task.name)
            path.append(task)
            for dep in task.deps:
                dep_task = self.tasks[dep]
                if dep_task.finish == task.start:
                    frontier.append(dep_task)
        return sorted(path, key=lambda t: t.start or 0)

    def bound_by(self) -> str:
        """Which resource dominates: the one with the highest busy time."""
        if not self.resources:
            return "none"
        return max(self.resources.values(),
                   key=lambda r: r.busy_cycles).name


class TaskGraph:
    """A DAG of tasks to be scheduled on named resources."""

    def __init__(self):
        self._tasks: Dict[str, Task] = {}
        self._lanes: Dict[str, int] = {}

    def set_resource_lanes(self, resource: str, lanes: int) -> None:
        """Allow ``lanes`` concurrent tasks on ``resource`` (default 1)."""
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        self._lanes[resource] = lanes

    def add(self, name: str, resource: str, cycles: int,
            deps: Iterable[str] = ()) -> Task:
        """Add a task; returns it for chaining."""
        if name in self._tasks:
            raise ValueError(f"duplicate task {name}")
        deps = tuple(deps)
        for d in deps:
            if d not in self._tasks:
                raise ValueError(f"task {name} depends on unknown {d}")
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        task = Task(name, resource, int(cycles), deps)
        self._tasks[name] = task
        return task

    def __len__(self) -> int:
        return len(self._tasks)

    # ------------------------------------------------------------------

    def schedule(self) -> ScheduleResult:
        """List-schedule the DAG; returns the timed result.

        Tasks become ready when all dependencies finish; ready tasks are
        started in (ready-time, insertion-order) order on the earliest
        free lane of their resource.
        """
        order = self._topological_order()
        lane_free: Dict[str, List[int]] = {}
        busy: Dict[str, int] = {}
        count: Dict[str, int] = {}
        for task in order:
            res = task.resource
            lanes = self._lanes.get(res, 1)
            if res not in lane_free:
                lane_free[res] = [0] * lanes
            ready = max((self._tasks[d].finish or 0 for d in task.deps),
                        default=0)
            heap = lane_free[res]
            earliest = heapq.heappop(heap)
            start = max(ready, earliest)
            finish = start + task.cycles
            heapq.heappush(heap, finish)
            task.start, task.finish = start, finish
            busy[res] = busy.get(res, 0) + task.cycles
            count[res] = count.get(res, 0) + 1
        makespan = max((t.finish or 0 for t in order), default=0)
        stats = {r: ResourceStats(r, busy[r], count[r]) for r in busy}
        return ScheduleResult(makespan, dict(self._tasks), stats)

    def _topological_order(self) -> List[Task]:
        indegree = {name: len(t.deps) for name, t in self._tasks.items()}
        children: Dict[str, List[str]] = {name: [] for name in self._tasks}
        for name, task in self._tasks.items():
            for d in task.deps:
                children[d].append(name)
        # Stable queue preserving insertion order among ready tasks.
        queue = [name for name, deg in indegree.items() if deg == 0]
        order: List[Task] = []
        i = 0
        while i < len(queue):
            name = queue[i]
            i += 1
            order.append(self._tasks[name])
            for child in children[name]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    queue.append(child)
        if len(order) != len(self._tasks):
            raise ValueError("task graph contains a cycle")
        return order


def serial_cycles(tasks: Sequence[Tuple[str, int]]) -> int:
    """Total cycles with no overlap at all (upper-bound reference)."""
    return sum(c for _, c in tasks)
