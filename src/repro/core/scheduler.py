"""Event-driven resource scheduler for FAB operation task graphs.

FAB's performance comes from overlapping compute (the functional-unit
array) with memory traffic (HBM ports, CMAC): switching-key blocks are
prefetched while the previous block is still being multiplied (§4.6).
The scheduler here is a deterministic list scheduler over explicit task
graphs: each task names a resource, a duration in cycles, and its
dependencies; resources serialize their tasks (optionally across
multiple lanes).  The makespan and per-resource busy time quantify the
overlap, utilization, and whether a schedule is compute- or
memory-bound — the paper's central "balanced design" claim.

Two implementations of the same policy live here:

* :meth:`TaskGraph.schedule` — the fast path: one O((V+E) log V) pass
  over a ready-task heap, with integer-indexed successor lists and
  in-degree counts.  This is what everything in the repo calls.
* :meth:`TaskGraph.schedule_reference` — the naive list scheduler that
  rescans the whole frontier per placement, O(V^2 + VE).  It exists as
  an executable specification: the property tests assert the heap
  scheduler reproduces it exactly, and the perf benchmark measures the
  speedup against it.

The policy both implement: tasks are placed in ascending
``(ready_cycle, insertion_order)`` order, each on the earliest-free
lane of its resource, starting at ``max(ready_cycle, lane_free)``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class Task:
    """A unit of work bound to one resource.

    Attributes:
        name: unique identifier.
        resource: resource name (e.g. ``"fu"``, ``"hbm"``).
        cycles: duration in kernel cycles.
        deps: names of tasks that must finish first.
        device: optional board index for multi-FPGA graphs (the striped
            lowering tags every task with the board it runs on; ``None``
            for single-board graphs and shared resources like the CMAC
            link).  Purely an annotation — placement is driven by
            ``resource`` alone, so single-board scheduling is unchanged.
    """

    name: str
    resource: str
    cycles: int
    deps: Tuple[str, ...] = ()
    start: Optional[int] = None
    finish: Optional[int] = None
    device: Optional[int] = None


@dataclass
class ResourceStats:
    """Utilization summary for one resource."""

    name: str
    busy_cycles: int
    tasks: int

    def utilization(self, makespan: int) -> float:
        """Fraction of the makespan this resource was busy."""
        return self.busy_cycles / makespan if makespan else 0.0


@dataclass
class DeviceStats:
    """Per-board summary of a device-annotated (multi-FPGA) schedule.

    ``busy_cycles`` sums every task on the board across all of its
    resources (FU + HBM), so it may exceed ``finish`` when compute and
    fetch overlap; ``finish`` is when the board's last task completes.
    """

    device: Optional[int]
    busy_cycles: int
    tasks: int
    finish: int

    def utilization(self, makespan: int) -> float:
        """Busy fraction of the whole schedule's makespan."""
        return self.busy_cycles / makespan if makespan else 0.0


@dataclass
class ScheduleResult:
    """Outcome of scheduling a task graph."""

    makespan: int
    tasks: Dict[str, Task]
    resources: Dict[str, ResourceStats]

    def device_stats(self) -> Dict[Optional[int], DeviceStats]:
        """Aggregate the schedule per annotated device (board).

        Tasks with ``device=None`` (single-board graphs, shared links)
        land under the ``None`` key; a plain single-board schedule thus
        reports one ``None`` entry covering everything.
        """
        stats: Dict[Optional[int], DeviceStats] = {}
        for task in self.tasks.values():
            entry = stats.get(task.device)
            if entry is None:
                entry = stats[task.device] = DeviceStats(
                    task.device, 0, 0, 0)
            entry.busy_cycles += task.cycles
            entry.tasks += 1
            if task.finish is not None and task.finish > entry.finish:
                entry.finish = task.finish
        return stats

    def critical_tasks(self) -> List[Task]:
        """Tasks on a critical path (finish == makespan chain)."""
        path: List[Task] = []
        frontier = [t for t in self.tasks.values()
                    if t.finish == self.makespan]
        seen = set()
        while frontier:
            task = frontier.pop()
            if task.name in seen:
                continue
            seen.add(task.name)
            path.append(task)
            for dep in task.deps:
                dep_task = self.tasks[dep]
                if dep_task.finish == task.start:
                    frontier.append(dep_task)
        return sorted(path, key=lambda t: t.start or 0)

    def bound_by(self) -> str:
        """Which resource dominates: the one with the highest busy time."""
        if not self.resources:
            return "none"
        return max(self.resources.values(),
                   key=lambda r: r.busy_cycles).name

    def record_timeline(self, recorder, *, seconds_per_cycle: float,
                        group: str = "schedule",
                        origin_s: float = 0.0) -> None:
        """Emit every placed task as a span on ``recorder`` (a
        :class:`repro.obs.Recorder`; duck-typed so the core layer
        gains no import on the observability package).

        Tasks land on one track per resource name — the striped
        lowering's ``fu{board}``/``hbm{board}`` resources thus get a
        track per board and the shared CMAC link its own — with the
        board index (the striped lowering's device annotation) passed
        through.  ``seconds_per_cycle`` converts schedule cycles to
        recorder seconds (``1 / config.clock_hz``); ``origin_s``
        offsets the whole schedule, e.g. to pin it at a serving
        batch's start time.  Zero-length tasks are skipped — they
        carry no visible span.
        """
        if not getattr(recorder, "enabled", False):
            return
        for task in sorted(self.tasks.values(),
                           key=lambda t: (t.start or 0, t.name)):
            if task.finish is None or task.finish == task.start:
                continue
            recorder.schedule_task(
                group=group, track=task.resource, name=task.name,
                start_s=origin_s + task.start * seconds_per_cycle,
                finish_s=origin_s + task.finish * seconds_per_cycle,
                device=task.device)


class TaskGraph:
    """A DAG of tasks to be scheduled on named resources."""

    def __init__(self):
        self._tasks: Dict[str, Task] = {}
        self._order: List[Task] = []        # insertion order, by index
        self._index: Dict[str, int] = {}    # name -> insertion index
        self._lanes: Dict[str, int] = {}

    def set_resource_lanes(self, resource: str, lanes: int) -> None:
        """Allow ``lanes`` concurrent tasks on ``resource`` (default 1)."""
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        self._lanes[resource] = lanes

    def add(self, name: str, resource: str, cycles: int,
            deps: Iterable[str] = (),
            device: Optional[int] = None) -> Task:
        """Add a task; returns it for chaining."""
        if name in self._tasks:
            raise ValueError(f"duplicate task {name}")
        deps = tuple(deps)
        for d in deps:
            if d not in self._tasks:
                raise ValueError(f"task {name} depends on unknown {d}")
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        task = Task(name, resource, int(cycles), deps, device=device)
        self._index[name] = len(self._order)
        self._tasks[name] = task
        self._order.append(task)
        return task

    def __len__(self) -> int:
        return len(self._tasks)

    # ------------------------------------------------------------------

    def _edges(self) -> Tuple[List[int], List[List[int]]]:
        """(in-degree, successor lists) indexed by insertion order.

        Read from the live ``deps`` tuples so graphs mutated after
        construction (the cycle-detection tests do this) are seen.
        """
        index = self._index
        indegree = [0] * len(self._order)
        successors: List[List[int]] = [[] for _ in self._order]
        for i, task in enumerate(self._order):
            indegree[i] = len(task.deps)
            for d in task.deps:
                successors[index[d]].append(i)
        return indegree, successors

    def _finalize(self, scheduled: int) -> ScheduleResult:
        if scheduled != len(self._order):
            raise ValueError("task graph contains a cycle")
        makespan = 0
        busy: Dict[str, int] = {}
        count: Dict[str, int] = {}
        for task in self._order:
            if task.finish > makespan:
                makespan = task.finish
            res = task.resource
            busy[res] = busy.get(res, 0) + task.cycles
            count[res] = count.get(res, 0) + 1
        stats = {r: ResourceStats(r, busy[r], count[r]) for r in busy}
        return ScheduleResult(makespan, dict(self._tasks), stats)

    def schedule(self) -> ScheduleResult:
        """List-schedule the DAG; returns the timed result.

        A task becomes ready when all dependencies finish; ready tasks
        are placed in (ready-cycle, insertion-order) order on the
        earliest free lane of their resource.  One heap-driven pass:
        O((V + E) log V).
        """
        order = self._order
        indegree, successors = self._edges()
        tasks = len(order)
        finish_of = [0] * tasks             # finish cycle, by index
        ready_at = [0] * tasks              # max dep finish, by index
        ready_heap: List[Tuple[int, int]] = [
            (0, i) for i in range(tasks) if indegree[i] == 0]
        heapq.heapify(ready_heap)
        lane_free: Dict[str, List[int]] = {}
        lanes = self._lanes
        scheduled = 0
        while ready_heap:
            ready, i = heapq.heappop(ready_heap)
            task = order[i]
            res = task.resource
            heap = lane_free.get(res)
            if heap is None:
                heap = lane_free[res] = [0] * lanes.get(res, 1)
            earliest = heapq.heappop(heap)
            start = ready if ready > earliest else earliest
            finish = start + task.cycles
            heapq.heappush(heap, finish)
            task.start, task.finish = start, finish
            finish_of[i] = finish
            scheduled += 1
            for j in successors[i]:
                if finish > ready_at[j]:
                    ready_at[j] = finish
                indegree[j] -= 1
                if indegree[j] == 0:
                    heapq.heappush(ready_heap, (ready_at[j], j))
        return self._finalize(scheduled)

    def schedule_reference(self) -> ScheduleResult:
        """The naive frontier-scanning list scheduler (same policy).

        Rescans every unplaced task per placement — O(V^2 + VE) — and
        recomputes each candidate's ready cycle from its dependency
        list.  Kept as the executable specification :meth:`schedule` is
        property-tested against, and as the perf-benchmark baseline.
        """
        order = self._order
        index = self._index
        pending = set(range(len(order)))
        finish_of: Dict[int, int] = {}
        lane_free: Dict[str, List[int]] = {}
        while pending:
            best: Optional[Tuple[int, int]] = None
            for i in sorted(pending):
                task = order[i]
                ready = 0
                placeable = True
                for d in task.deps:
                    di = index[d]
                    if di in pending:
                        placeable = False
                        break
                    if finish_of[di] > ready:
                        ready = finish_of[di]
                if placeable and (best is None or (ready, i) < best):
                    best = (ready, i)
            if best is None:
                raise ValueError("task graph contains a cycle")
            ready, i = best
            task = order[i]
            res = task.resource
            heap = lane_free.get(res)
            if heap is None:
                heap = lane_free[res] = [0] * self._lanes.get(res, 1)
            earliest = heapq.heappop(heap)
            start = max(ready, earliest)
            finish = start + task.cycles
            heapq.heappush(heap, finish)
            task.start, task.finish = start, finish
            finish_of[i] = finish
            pending.remove(i)
        return self._finalize(len(order) - len(pending))


def serial_cycles(tasks: Sequence[Tuple[str, int]]) -> int:
    """Total cycles with no overlap at all (upper-bound reference)."""
    return sum(c for _, c in tasks)
