"""HBM port striping and traffic homogeneity (§4.6).

FAB "evenly distributes the accesses to main memory so as to
efficiently utilize the limited main memory bandwidth through a
homogeneous memory traffic."  This module models the limb-to-port
assignment: ciphertext and key limbs stripe round-robin across the 32
AXI pseudo-channels, and the homogeneity of the resulting per-port
traffic determines how close the aggregate transfer comes to peak
bandwidth (a single hot port serializes everything behind it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .params import FabConfig


@dataclass(frozen=True)
class LimbTransfer:
    """One limb-sized transfer request."""

    tag: str          # e.g. "key_digit0", "ct_c0"
    limb_index: int   # position within its polynomial
    num_bytes: int


class PortStriper:
    """Assigns limb transfers to HBM pseudo-channels."""

    def __init__(self, config: Optional[FabConfig] = None,
                 policy: str = "round_robin"):
        self.config = config or FabConfig()
        if policy not in ("round_robin", "single_port", "hash"):
            raise ValueError(f"unknown policy {policy!r}")
        self.policy = policy

    def port_for(self, transfer: LimbTransfer, sequence_index: int) -> int:
        """The pseudo-channel serving this transfer."""
        ports = self.config.hbm_ports
        if self.policy == "round_robin":
            return sequence_index % ports
        if self.policy == "hash":
            return hash((transfer.tag, transfer.limb_index)) % ports
        return 0  # single_port: the pathological baseline

    def distribute(self, transfers: Sequence[LimbTransfer]
                   ) -> Dict[int, int]:
        """Bytes per port for a transfer sequence."""
        traffic: Dict[int, int] = {p: 0 for p in
                                   range(self.config.hbm_ports)}
        for i, t in enumerate(transfers):
            traffic[self.port_for(t, i)] += t.num_bytes
        return traffic

    # ------------------------------------------------------------------
    # Homogeneity metrics
    # ------------------------------------------------------------------

    def imbalance(self, transfers: Sequence[LimbTransfer]) -> float:
        """Max-port load over mean-port load (1.0 = perfectly even)."""
        traffic = self.distribute(transfers)
        loads = list(traffic.values())
        mean = sum(loads) / len(loads)
        if mean == 0:
            return 1.0
        return max(loads) / mean

    def effective_bandwidth_fraction(
            self, transfers: Sequence[LimbTransfer]) -> float:
        """Fraction of peak bandwidth the stripe pattern achieves.

        The transfer completes when the hottest port drains, so the
        achieved bandwidth is peak / imbalance.
        """
        return 1.0 / self.imbalance(transfers)

    def transfer_cycles(self, transfers: Sequence[LimbTransfer]) -> int:
        """Kernel cycles until the last port finishes."""
        traffic = self.distribute(transfers)
        port_bw = (self.config.hbm_effective_bytes_per_sec
                   / self.config.hbm_ports)
        worst = max(traffic.values())
        seconds = worst / port_bw
        return int(math.ceil(self.config.seconds_to_cycles(seconds)))


def keyswitch_transfer_sequence(config: Optional[FabConfig] = None,
                                level_limbs: Optional[int] = None
                                ) -> List[LimbTransfer]:
    """The limb-transfer stream of one modified-datapath KeySwitch.

    dnum key blocks of 2 x (level + alpha) limbs each, fetched block by
    block as the schedule consumes them.
    """
    config = config or FabConfig()
    fhe = config.fhe
    level = level_limbs if level_limbs is not None else fhe.num_limbs
    raised = level + fhe.num_extension_limbs
    transfers = []
    digits = -(-level // fhe.alpha)
    for digit in range(digits):
        for poly in range(2):
            for limb in range(raised):
                transfers.append(LimbTransfer(
                    tag=f"key_d{digit}_p{poly}", limb_index=limb,
                    num_bytes=fhe.limb_bytes))
    return transfers


def compare_striping_policies(config: Optional[FabConfig] = None
                              ) -> Dict[str, Tuple[float, int]]:
    """(imbalance, cycles) of each policy on the KeySwitch stream."""
    config = config or FabConfig()
    transfers = keyswitch_transfer_sequence(config)
    out = {}
    for policy in ("round_robin", "hash", "single_port"):
        striper = PortStriper(config, policy)
        out[policy] = (striper.imbalance(transfers),
                       striper.transfer_cycles(transfers))
    return out
