"""Reporting helpers: format schedules and op reports as readable tables."""

from __future__ import annotations

from typing import Iterable, Sequence

from .ops import BootstrapReport, OpReport
from .params import FabConfig
from .scheduler import ScheduleResult


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(c.ljust(w) for c, w in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_op_report(report: OpReport, config: FabConfig) -> str:
    """One-line summary of an operation's cost."""
    ms = report.seconds(config) * 1e3
    return (f"{report.name}: {report.cycles:,} cycles ({ms:.3f} ms), "
            f"{report.limb_ntts} limb-NTTs, "
            f"{report.modmults / 1e6:.1f}M modmults, "
            f"{report.hbm_bytes / 1e6:.1f} MB HBM")


def format_bootstrap_report(report: BootstrapReport,
                            config: FabConfig) -> str:
    """Stage-by-stage bootstrap summary."""
    lines = [f"bootstrap: {report.seconds(config) * 1e3:.1f} ms total, "
             f"{report.rotations} rotations, "
             f"{report.levels_after} levels after"]
    for stage, cycles in report.stage_cycles.items():
        ms = config.cycles_to_seconds(cycles) * 1e3
        share = 100.0 * cycles / report.cycles
        lines.append(f"  {stage:15s} {ms:8.1f} ms  ({share:4.1f}%)")
    return "\n".join(lines)


def format_schedule(result: ScheduleResult, limit: int = 20) -> str:
    """Gantt-style listing of the first tasks of a schedule."""
    rows = []
    for task in sorted(result.tasks.values(), key=lambda t: t.start or 0):
        rows.append((task.name, task.resource, task.start, task.finish,
                     task.cycles))
        if len(rows) >= limit:
            break
    table = format_table(("task", "resource", "start", "finish", "cycles"),
                         rows)
    util = ", ".join(
        f"{r.name}={100 * r.utilization(result.makespan):.0f}%"
        for r in result.resources.values())
    return (f"{table}\nmakespan={result.makespan:,} cycles; "
            f"utilization: {util}; bound by {result.bound_by()}")
