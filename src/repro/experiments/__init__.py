"""Reproduction drivers: one module per table/figure of the paper.

Run any module as a script (``python -m repro.experiments.table7_bootstrap``)
or call its ``run()`` for structured rows.  ``run_all()`` executes the
complete evaluation section.
"""

from . import (ablation_keyswitch, autoscale_sweep, extras_balance,
               fault_sweep, fig1_dnum, fig2_fftiter, leveled_vs_bootstrap,
               resilience_autoscale_sweep, serve_sweep, slo_sweep,
               striping_scale, table2_params, table3_resources,
               table4_comparison, table5_basic_ops, table6_heax,
               table7_bootstrap, table8_lr)
from .common import ExperimentResult, ExperimentRow, print_result

ALL_EXPERIMENTS = {
    "fig1": fig1_dnum,
    "fig2": fig2_fftiter,
    "table2": table2_params,
    "table3": table3_resources,
    "table4": table4_comparison,
    "table5": table5_basic_ops,
    "table6": table6_heax,
    "table7": table7_bootstrap,
    "table8": table8_lr,
    "fig5_ablation": ablation_keyswitch,
    "leveled_vs_bootstrap": leveled_vs_bootstrap,
    "extras_balance": extras_balance,
    "serve_sweep": serve_sweep,
    "slo_sweep": slo_sweep,
    "fault_sweep": fault_sweep,
    "autoscale_sweep": autoscale_sweep,
    "resilience_autoscale_sweep": resilience_autoscale_sweep,
    "stripe_scale": striping_scale,
}


def run_all(verbose: bool = True):
    """Run every experiment; returns {id: ExperimentResult}."""
    results = {}
    for key, module in ALL_EXPERIMENTS.items():
        result = module.run()
        results[key] = result
        if verbose:
            print_result(result)
    return results


__all__ = ["ALL_EXPERIMENTS", "ExperimentResult", "ExperimentRow",
           "print_result", "run_all"]
