"""Figure 5 ablation: original vs modified KeySwitch datapath.

Quantifies the paper's two KeySwitch optimizations in isolation:
the modified (split-KSKIP, no-spill) datapath and the smart operation
scheduling (reused BasisConvert products, prefetching).
"""

from __future__ import annotations

from ..core.keyswitch_datapath import compare_datapaths
from ..core.params import FabConfig
from .common import ExperimentResult, ExperimentRow, print_result


def run(level_limbs: int = 24) -> ExperimentResult:
    """Run the three-way datapath comparison at the given level."""
    config = FabConfig()
    reports = compare_datapaths(config, level_limbs)
    baseline = reports["original"].cycles
    rows = []
    for name, report in reports.items():
        rows.append(ExperimentRow(name, {
            "cycles": report.cycles,
            "ms": report.seconds(config) * 1e3,
            "limb_ntts": report.counts.limb_ntts,
            "modmults_M": report.counts.modmults / 1e6,
            "hbm_MB": report.counts.hbm_total_bytes / (1 << 20),
            "spill_MB": report.counts.hbm_spill_bytes / (1 << 20),
            "speedup_vs_original": baseline / report.cycles,
            "bound_by": report.schedule.bound_by(),
        }))
    return ExperimentResult(
        experiment_id="fig5_ablation",
        title=f"KeySwitch datapath ablation (level = {level_limbs} limbs)",
        columns=["cycles", "ms", "limb_ntts", "modmults_M", "hbm_MB",
                 "spill_MB", "speedup_vs_original", "bound_by"],
        rows=rows,
        notes="'modified' = split KSKIP + smart scheduling (the paper's "
              "design); both variants compute identical ciphertexts")


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
