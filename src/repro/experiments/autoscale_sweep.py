"""Autoscale sweep: scale policy x arrival pattern, cost per goodput.

The serving simulator grows voluntary pool elasticity through
:mod:`repro.runtime.autoscaler`; this driver quantifies what elastic
capacity buys — and what it costs.  Every arrival pattern runs every
scale policy on the *same* arrival sequence (the policy only decides
how many boards stay in service), so per-point comparisons are exact:

* ``static`` — the fixed pool: every board paid for over the whole
  makespan.  The provisioning baseline autoscaling must beat.
* ``reactive`` — threshold control on windowed utilization + backlog.
  Robust: it only sheds capacity it has *watched* go idle, so SLO
  attainment matches static on every pattern, at a smaller
  board-seconds bill.
* ``predictive`` — least-squares rate trend extrapolated ahead and
  sized via measured board-seconds-per-job.  Thriftiest on smooth
  diurnal waves (it drains capacity *into* the trough), but fragile
  to flash crowds: the quiet pre-spike window reads as "scale down",
  and the spike lands on a cold, shrunken pool.

The headline metric is **cost per goodput** —
:attr:`repro.runtime.serving.ServingReport.board_s_per_good_job`,
board-seconds paid per deadline-met job.  A static pool pays
``makespan x num_devices``; an elastic pool pays only for in-service
board-time, but scale-ups come back cold (switching-key reload over
PCIe), so elasticity is never free.  The acceptance invariant the CI
test pins: under diurnal load, autoscaling *strictly beats* static
provisioning on cost per goodput without giving up SLO attainment.

Jobs are interactive-only (``interactive_fraction=1``): a deferrable
batch tier would backfill every trough and hide the very idleness
autoscaling exists to harvest — fleet operators run elastic pools for
latency-bound serving, not for throughput tiers that tolerate queues.

CLI::

    python -m repro autoscale-sweep --duration 1.0 --json autoscale_sweep.json
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.params import FabConfig
from ..obs import provenance
from ..runtime.autoscaler import make_scale_policy
from ..runtime.serving import ServingSimulator, build_slo_scenario
from .common import ExperimentResult, ExperimentRow, fan_out

#: Scale policies swept at every arrival pattern.  ``static`` is the
#: sentinel for ``autoscale=None`` (the fixed-pool baseline).
DEFAULT_POLICIES = (
    "static",
    "reactive:low=0.3,high=0.85,cooldown=0.02",
    "predictive:window=0.1,horizon=0.05,target=0.7,cooldown=0.02",
)

#: Arrival patterns: the smooth wave autoscaling is built for, the
#: bursty process that punishes slow cooldowns, and the step spike
#: that punishes prediction.
DEFAULT_ARRIVALS = (
    ("diurnal", "diurnal:amplitude=0.9"),
    ("mmpp", "mmpp:burst=3,duty=0.3"),
    ("flash", "flash:factor=6"),
)

#: Mean offered load; the diurnal wave swings the instantaneous rate
#: between ``(1 - amplitude)`` and ``(1 + amplitude)`` times this, so
#: 0.45 gives a saturated crest and a near-idle trough.
DEFAULT_TARGET_LOAD = 0.45


@dataclass(frozen=True)
class AutoscalePoint:
    """One arrival pattern over one pool size."""

    devices: int
    arrivals: str       # short label ("diurnal", "mmpp", "flash")
    arrival_spec: str   # full ``name:key=value`` spec

    def label(self) -> str:
        return f"d{self.devices}/{self.arrivals}"


@dataclass
class ScaleOutcome:
    """One scale policy's result on one grid point's arrival stream."""

    point: AutoscalePoint
    scale: str
    good_jobs: int
    goodput_jps: float
    jobs_done: int
    rejected: int
    shed: int
    shed_degraded: int
    slo_attainment: Optional[float]
    makespan_s: float
    #: Provisioned board-seconds actually paid (= makespan x devices
    #: for ``static``; only in-service time for elastic policies).
    board_seconds: float
    #: Board-seconds per deadline-met job — the sweep's cost metric.
    board_s_per_good_job: float
    resize_events: int
    scale_ups: int
    scale_downs: int

    @property
    def name(self) -> str:
        return self.scale.partition(":")[0]


@dataclass
class AutoscaleSweepReport:
    """The full grid plus per-point savings and the diurnal verdict."""

    outcomes: List[ScaleOutcome]
    policies: Tuple[str, ...]
    duration_s: float
    target_load: float
    seed: int
    provenance: Optional[Dict[str, object]] = None

    def by_point(self) -> Dict[str, Dict[str, ScaleOutcome]]:
        """``{point label: {policy name: outcome}}`` over the grid."""
        table: Dict[str, Dict[str, ScaleOutcome]] = {}
        for outcome in self.outcomes:
            table.setdefault(outcome.point.label(), {})[outcome.name] \
                = outcome
        return table

    def savings(self) -> List[Dict[str, object]]:
        """Per (point, elastic policy): board-seconds saved vs static
        and the cost-per-goodput ratio (< 1 means autoscaling wins)."""
        rows: List[Dict[str, object]] = []
        for label, per_policy in sorted(self.by_point().items()):
            static = per_policy.get("static")
            if static is None:
                continue
            for name, outcome in sorted(per_policy.items()):
                if name == "static":
                    continue
                ratio = (outcome.board_s_per_good_job
                         / static.board_s_per_good_job
                         if static.board_s_per_good_job > 0
                         and math.isfinite(static.board_s_per_good_job)
                         else math.inf)
                rows.append({
                    "point": label,
                    "scale": name,
                    "board_s_saved":
                        static.board_seconds - outcome.board_seconds,
                    "cost_ratio": ratio,
                    "slo_delta":
                        (outcome.slo_attainment or 0.0)
                        - (static.slo_attainment or 0.0),
                    "resize_events": outcome.resize_events,
                })
        return rows

    def headline(self) -> Dict[str, object]:
        """``autoscale_vs_static``: per-point (label, static cost,
        best elastic policy, best elastic cost) rows — the comparison
        the acceptance criteria pin (some autoscaler strictly beats
        static on cost per goodput under diurnal load)."""
        rows = []
        for label, per_policy in sorted(self.by_point().items()):
            static = per_policy.get("static")
            elastic = [o for name, o in per_policy.items()
                       if name != "static"]
            if static is None or not elastic:
                continue
            best = min(elastic, key=lambda o: o.board_s_per_good_job)
            rows.append((label, static.board_s_per_good_job,
                         best.name, best.board_s_per_good_job))
        return {"autoscale_vs_static": rows}

    def to_dict(self) -> Dict[str, object]:
        return {
            "policies": list(self.policies),
            "duration_s": self.duration_s,
            "target_load": self.target_load,
            "seed": self.seed,
            "provenance": self.provenance,
            "grid_points": len(self.by_point()),
            "headline": self.headline(),
            "savings": self.savings(),
            "outcomes": [asdict(o) for o in self.outcomes],
        }

    def save_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1)

    def to_experiment_result(self) -> ExperimentResult:
        columns = ["scale", "devices", "arrivals", "good", "done",
                   "shed", "slo", "board_s", "cost_ms", "resizes"]
        rows = [
            ExperimentRow(
                f"{o.point.label()}/{o.name}",
                {
                    "scale": o.name,
                    "devices": o.point.devices,
                    "arrivals": o.point.arrivals,
                    "good": o.good_jobs,
                    "done": o.jobs_done,
                    "shed": o.shed,
                    "slo": (round(o.slo_attainment, 4)
                            if o.slo_attainment is not None else None),
                    "board_s": round(o.board_seconds, 4),
                    "cost_ms": (round(o.board_s_per_good_job * 1e3, 4)
                                if math.isfinite(o.board_s_per_good_job)
                                else None),
                    "resizes": o.resize_events,
                },
            )
            for o in self.outcomes
        ]
        wins = [row for row in self.savings() if row["cost_ratio"] < 1]
        notes = (
            f"{len(self.by_point())} grid points x "
            f"{len(self.policies)} scale policies; "
            f"{len(wins)} elastic outcomes beat static on cost per "
            "goodput: "
            + ", ".join(f"{w['point']}/{w['scale']}"
                        f"({w['cost_ratio']:.2f}x)" for w in wins[:4])
            + (" ..." if len(wins) > 4 else ""))
        return ExperimentResult(
            experiment_id="autoscale_sweep",
            title="Autoscale sweep: scale policy x arrival pattern",
            columns=columns,
            rows=rows,
            notes=notes,
        )


def _simulate_point(args: Tuple) -> ScaleOutcome:
    """Worker body: one (grid point, scale policy) pair through the
    serving simulator (top-level so it pickles)."""
    (point, scale, scenario, config, seed, max_batch) = args
    simulator = ServingSimulator(config, num_devices=point.devices,
                                 max_batch=max_batch)
    autoscale = None if scale == "static" else scale
    report = simulator.run(scenario, seed=seed, autoscale=autoscale)
    good_jobs = int(round(report.goodput_jps * report.makespan_s))
    return ScaleOutcome(
        point=point,
        scale=scale,
        good_jobs=good_jobs,
        goodput_jps=report.goodput_jps,
        jobs_done=report.jobs_done,
        rejected=report.rejected_jobs,
        shed=report.shed_jobs,
        shed_degraded=report.shed_degraded,
        slo_attainment=report.slo_attainment,
        makespan_s=report.makespan_s,
        board_seconds=report.board_seconds,
        board_s_per_good_job=report.board_s_per_good_job,
        resize_events=report.resize_events,
        scale_ups=report.scale_ups,
        scale_downs=report.scale_downs,
    )


def run_sweep(
    config: Optional[FabConfig] = None,
    policies: Sequence[str] = DEFAULT_POLICIES,
    arrivals: Sequence[Tuple[str, str]] = DEFAULT_ARRIVALS,
    devices: Sequence[int] = (8,),
    duration_s: float = 1.0,
    target_load: float = DEFAULT_TARGET_LOAD,
    seed: int = 0,
    max_batch: int = 8,
    workers: Optional[int] = None,
) -> AutoscaleSweepReport:
    """Simulate the full autoscale grid; returns the sweep report.

    Every scale policy at one grid point sees the identical scenario
    (same arrival sequence for the point's seed): the policy decides
    only how many boards stay in service, so cost-per-goodput deltas
    are pure provisioning effects.  The scenario is interactive-only
    SLO serving (see the module docstring for why a deferrable tier
    would hide the troughs).  Autoscaling is DES-only, so like the
    fault sweep there is no ``engine`` knob.
    """
    config = config or FabConfig()
    for spec in policies:
        if spec != "static":
            make_scale_policy(spec)  # validate before fanning out
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if not 0 < target_load:
        raise ValueError("target_load must be positive")
    names = [p.partition(":")[0] for p in policies]
    if len(set(names)) != len(names):
        raise ValueError(f"scale policies must be distinct: {names!r}")
    grid = [AutoscalePoint(d, label, spec)
            for d in devices for label, spec in arrivals]
    if not grid:
        raise ValueError("empty sweep grid")
    tasks = []
    for point in grid:
        scenario = build_slo_scenario(
            config, num_devices=point.devices, duration_s=duration_s,
            target_load=target_load, interactive_fraction=1.0,
        ).with_arrivals(point.arrival_spec)
        for scale in policies:
            tasks.append((point, scale, scenario, config, seed,
                          max_batch))
    outcomes = fan_out(_simulate_point, tasks, workers=workers)
    return AutoscaleSweepReport(
        outcomes=outcomes,
        policies=tuple(policies),
        duration_s=duration_s,
        target_load=target_load,
        seed=seed,
        provenance=dict(provenance(
            seed=seed, config=config, target_load=target_load,
            arrivals=",".join(label for label, _ in arrivals))),
    )


def run() -> ExperimentResult:
    """Experiment-registry entry point: a reduced inline grid."""
    report = run_sweep(
        policies=DEFAULT_POLICIES[:2],   # static + reactive
        arrivals=DEFAULT_ARRIVALS[:1],   # diurnal only
        duration_s=0.6,
        workers=1,
    )
    return report.to_experiment_result()


def main() -> None:
    from .common import print_result

    print_result(run())


if __name__ == "__main__":
    main()
