"""Shared infrastructure for the experiment drivers.

Every driver exposes ``run() -> ExperimentResult`` producing the rows of
one paper table/figure (model-measured values side by side with the
paper-reported ones) and a ``main()`` that prints it.  The benchmark
harness in ``benchmarks/`` wraps the same ``run()`` functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ExperimentRow:
    """One row of a reproduced table/figure."""

    label: str
    values: Dict[str, object] = field(default_factory=dict)

    def __getitem__(self, key: str):
        return self.values[key]


@dataclass
class ExperimentResult:
    """A reproduced artifact: id, headline, rows."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[ExperimentRow]
    notes: str = ""

    def row(self, label: str) -> ExperimentRow:
        """Find a row by label."""
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(f"no row labelled {label!r} in {self.experiment_id}")

    def format(self) -> str:
        """Render as a fixed-width table."""
        headers = ["row"] + self.columns
        table_rows = []
        for r in self.rows:
            cells = [r.label]
            for col in self.columns:
                value = r.values.get(col, "")
                if isinstance(value, float):
                    cells.append(_format_number(value))
                else:
                    cells.append(str(value))
            table_rows.append(cells)
        widths = [max(len(h), *(len(row[i]) for row in table_rows))
                  if table_rows else len(h)
                  for i, h in enumerate(headers)]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in table_rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _format_number(value: float) -> str:
    if value == 0:
        return "0"
    if value != value:  # NaN
        return "-"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 0.001:
        return f"{value:.3g}"
    if magnitude >= 10:
        return f"{value:.1f}"
    return f"{value:.3f}"


def print_result(result: ExperimentResult) -> None:
    """Print a formatted experiment result."""
    print(result.format())
    print()
