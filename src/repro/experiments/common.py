"""Shared infrastructure for the experiment drivers.

Every driver exposes ``run() -> ExperimentResult`` producing the rows of
one paper table/figure (model-measured values side by side with the
paper-reported ones) and a ``main()`` that prints it.  The benchmark
harness in ``benchmarks/`` wraps the same ``run()`` functions.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence


def fan_out(worker: Callable, tasks: Sequence, workers=None) -> List:
    """Map ``worker`` over ``tasks``, optionally on a process pool.

    The shared fan-out used by the sweep drivers (``serve_sweep``,
    ``slo_sweep``).  ``workers=None`` sizes the pool to the machine,
    capped at the task count; ``workers=1`` runs inline.  Results are
    identical either way — ``worker`` and every task must be picklable
    and deterministic.  Fork only where it is the safe platform
    default (Linux); macOS forking a threaded (numpy/BLAS) process is
    the documented crash case, and spawn works everywhere since the
    inputs all travel by value.
    """
    if workers is None:
        workers = min(os.cpu_count() or 1, len(tasks))
    if workers <= 1 or len(tasks) <= 1:
        return [worker(task) for task in tasks]
    if sys.platform.startswith("linux"):
        ctx = multiprocessing.get_context("fork")
    else:
        ctx = multiprocessing.get_context()
    with ctx.Pool(workers) as pool:
        return pool.map(worker, tasks, chunksize=1)


@dataclass
class ExperimentRow:
    """One row of a reproduced table/figure."""

    label: str
    values: Dict[str, object] = field(default_factory=dict)

    def __getitem__(self, key: str):
        return self.values[key]


@dataclass
class ExperimentResult:
    """A reproduced artifact: id, headline, rows."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[ExperimentRow]
    notes: str = ""

    def row(self, label: str) -> ExperimentRow:
        """Find a row by label."""
        for r in self.rows:
            if r.label == label:
                return r
        raise KeyError(f"no row labelled {label!r} in {self.experiment_id}")

    def format(self) -> str:
        """Render as a fixed-width table."""
        headers = ["row"] + self.columns
        table_rows = []
        for r in self.rows:
            cells = [r.label]
            for col in self.columns:
                value = r.values.get(col, "")
                if isinstance(value, float):
                    cells.append(_format_number(value))
                else:
                    cells.append(str(value))
            table_rows.append(cells)
        widths = [max(len(h), *(len(row[i]) for row in table_rows))
                  if table_rows else len(h)
                  for i, h in enumerate(headers)]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in table_rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _format_number(value: float) -> str:
    if value == 0:
        return "0"
    if value != value:  # NaN
        return "-"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 0.001:
        return f"{value:.3g}"
    if magnitude >= 10:
        return f"{value:.1f}"
    return f"{value:.3f}"


def print_result(result: ExperimentResult) -> None:
    """Print a formatted experiment result."""
    print(result.format())
    print()
