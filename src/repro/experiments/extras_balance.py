"""Beyond the paper: quantifying the "balanced design" claims.

Three mini-studies the paper argues qualitatively, measured on the
models: (a) HBM traffic homogeneity under different striping policies,
(b) program-level key prefetching, and (c) the compute/memory balance
point as HBM bandwidth scales.
"""

from __future__ import annotations

import dataclasses

from ..core.keyswitch_datapath import KeySwitchDatapath
from ..core.params import FabConfig
from ..core.program import FabProgram
from ..core.striping import compare_striping_policies
from .common import ExperimentResult, ExperimentRow, print_result


def run() -> ExperimentResult:
    """Run the three balance studies."""
    config = FabConfig()
    rows = []
    # (a) striping homogeneity.
    for policy, (imbalance, cycles) in compare_striping_policies(
            config).items():
        rows.append(ExperimentRow(f"striping/{policy}", {
            "metric": "port imbalance (1.0 = even)",
            "value": imbalance,
            "cycles": cycles,
        }))
    # (b) prefetch benefit at program scale.
    burst = FabProgram.rotation_burst(config, count=8, level=20)
    rows.append(ExperimentRow("prefetch/rotation_burst", {
        "metric": "speedup vs fetch-then-compute",
        "value": burst.prefetch_benefit(),
        "cycles": burst.schedule().cycles,
    }))
    report = burst.schedule()
    rows.append(ExperimentRow("utilization/fu", {
        "metric": "FU busy fraction",
        "value": report.fu_utilization,
        "cycles": report.cycles,
    }))
    rows.append(ExperimentRow("utilization/hbm", {
        "metric": "HBM busy fraction",
        "value": report.hbm_utilization,
        "cycles": report.cycles,
    }))
    # (c) bandwidth sensitivity: where the design flips memory-bound.
    for fraction in (0.0625, 0.25, 1.0):
        scaled = dataclasses.replace(
            config, mem_clock_hz=config.mem_clock_hz * fraction)
        ks = KeySwitchDatapath(scaled).report()
        rows.append(ExperimentRow(
            f"bandwidth/{scaled.hbm_peak_bytes_per_sec / 1e9:.0f}GBs", {
                "metric": "keyswitch bound by",
                "value": ks.schedule.bound_by(),
                "cycles": ks.cycles,
            }))
    return ExperimentResult(
        experiment_id="extras_balance",
        title="Balanced-design studies (beyond the paper's tables)",
        columns=["metric", "value", "cycles"],
        rows=rows,
        notes="round-robin striping achieves perfectly homogeneous "
              "traffic; prefetch keeps the FU array >85% busy; the "
              "design stays compute-bound down to ~1/8 of the U280's "
              "bandwidth")


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
