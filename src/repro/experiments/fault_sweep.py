"""Fault sweep: MTBF x retry policy x pool size under bursty load.

The serving simulator injects board faults through
:mod:`repro.runtime.faults`; this driver quantifies what recovery
buys.  Every (pool size, MTBF) grid point runs all retry policies on
the *same* arrival sequence and the *same* per-board fault schedule
(fault draws are seeded per ``(run seed, board)``, independent of the
retry policy), so per-point comparisons are exact:

* ``none`` — shed every fault-killed job: the no-recovery baseline.
  Goodput collapses as MTBF approaches the batch service time.
* ``immediate`` — re-enqueue instantly up to a retry budget.  Recovers
  most of the lost work but re-offers it while the pool is still
  degraded.
* ``backoff`` — capped exponential backoff with seeded jitter.  The
  same retries, spread out: strictly more goodput than ``none`` at
  every fault rate (a CI-pinned invariant) and the best
  goodput-vs-wasted-work trade of the three.

The headline artifact is the **resilience frontier** — the
non-dominated (goodput, wasted service) outcomes across the grid —
plus per-point ``backoff`` vs ``none`` goodput rows.  Jobs here are
deadline-annotated (the two-tier SLO scenario under diurnal or MMPP
arrivals), so *goodput* counts completions that met their effective
deadline: work a retry saved but delivered too late does not inflate
the score.

CLI::

    python -m repro fault-sweep --duration 0.5 --json fault_sweep.json
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.params import FabConfig
from ..obs import provenance
from ..runtime.faults import make_fault_process, make_retry_policy
from ..runtime.serving import (ServingSimulator, build_job_classes,
                               build_slo_scenario,
                               default_interactive_slo_ms)
from .common import ExperimentResult, ExperimentRow, fan_out

#: Default grid: 2 pools x 3 fault rates x 3 retry policies = 18 runs.
DEFAULT_RETRIES = ("none", "immediate:max=3", "backoff")
DEFAULT_DEVICES = (4, 8)
DEFAULT_MTBFS = (0.05, 0.2, 1.0)

#: Mean time to repair, fixed across the sweep so MTBF is the one
#: availability knob (availability = mtbf / (mtbf + mttr)).
DEFAULT_MTTR = 0.02

#: Arrival reshaping applied to every stream (the fault interaction
#: being studied is fault-during-burst, so default to bursty MMPP).
DEFAULT_ARRIVALS = "mmpp:burst=3.0,duty=0.3,dwell=0.1"

#: Interactive SLO as a multiple of the fault-free default (3x the
#: cold-start bound).  A fleet that retries through faults provisions
#: deadline headroom for the retry to land in; without it (scale 1)
#: retried jobs complete but miss their deadlines and *no-retry posts
#: more goodput than backoff* — a real effect worth demonstrating
#: (``--slo-scale 1``), but not the provisioning regime the sweep's
#: headline invariant speaks to.
DEFAULT_SLO_SCALE = 4.0


@dataclass(frozen=True)
class FaultPoint:
    """One pool size under one board fault rate."""

    devices: int
    mtbf_s: float

    def label(self) -> str:
        return f"d{self.devices}/mtbf{self.mtbf_s:g}"


@dataclass
class RetryOutcome:
    """One retry policy's result on one grid point's fault schedule."""

    point: FaultPoint
    retry: str
    #: Completions that met their effective deadline (the goodput
    #: count) and the same as a rate over the makespan.
    good_jobs: int
    goodput_jps: float
    throughput_jps: float
    jobs_done: int
    rejected: int
    shed: int
    shed_degraded: int
    degraded_jobs: int
    board_faults: int
    failures: int
    retries: int
    wasted_service_s: float
    slo_attainment: Optional[float]
    cost_price_units: float
    makespan_s: float


@dataclass
class FaultSweepReport:
    """The full grid plus per-point comparisons and the frontier."""

    outcomes: List[RetryOutcome]
    retries: Tuple[str, ...]
    mttr_s: float
    duration_s: float
    seed: int
    arrivals: Optional[str]
    slo_scale: float = DEFAULT_SLO_SCALE
    provenance: Optional[Dict[str, object]] = None

    def by_point(self) -> Dict[str, Dict[str, RetryOutcome]]:
        """``{point label: {retry name: outcome}}`` over the grid."""
        table: Dict[str, Dict[str, RetryOutcome]] = {}
        for outcome in self.outcomes:
            name = outcome.retry.partition(":")[0]
            table.setdefault(outcome.point.label(), {})[name] = outcome
        return table

    def resilience_frontier(self) -> List[RetryOutcome]:
        """Non-dominated outcomes: maximize goodput, minimize wasted
        service.

        The fault-tolerance trade in one curve: retries buy goodput by
        re-running killed work, and the price is board-seconds burned
        on batches that never finished.  An outcome is dominated when
        another wastes no more *and* delivers no less goodput, with at
        least one strict; the frontier is returned thriftiest-first.
        """
        frontier = []
        for candidate in self.outcomes:
            dominated = False
            for other in self.outcomes:
                if other is candidate:
                    continue
                no_worse = (
                    other.wasted_service_s <= candidate.wasted_service_s
                    and other.goodput_jps >= candidate.goodput_jps)
                strictly = (
                    other.wasted_service_s < candidate.wasted_service_s
                    or other.goodput_jps > candidate.goodput_jps)
                if no_worse and strictly:
                    dominated = True
                    break
            if not dominated:
                frontier.append(candidate)
        return sorted(frontier,
                      key=lambda o: (o.wasted_service_s, -o.goodput_jps))

    def headline(self) -> Dict[str, object]:
        """``backoff_vs_none``: per-point (label, board faults, none
        goodput jobs, backoff goodput jobs) rows — the comparison the
        acceptance criteria pin (backoff strictly beats no-retry at
        every point where faults actually fired)."""
        rows = []
        for label, per_retry in sorted(self.by_point().items()):
            none = per_retry.get("none")
            backoff = per_retry.get("backoff")
            if none and backoff:
                rows.append((label, none.board_faults,
                             none.good_jobs, backoff.good_jobs))
        return {"backoff_vs_none": rows}

    def to_dict(self) -> Dict[str, object]:
        return {
            "retries": list(self.retries),
            "mttr_s": self.mttr_s,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "arrivals": self.arrivals,
            "slo_scale": self.slo_scale,
            "provenance": self.provenance,
            "grid_points": len(self.by_point()),
            "headline": self.headline(),
            "resilience_frontier": [
                {
                    "point": o.point.label(),
                    "retry": o.retry,
                    "goodput_jps": o.goodput_jps,
                    "good_jobs": o.good_jobs,
                    "wasted_service_s": o.wasted_service_s,
                    "failures": o.failures,
                }
                for o in self.resilience_frontier()
            ],
            "outcomes": [asdict(o) for o in self.outcomes],
        }

    def save_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1)

    def to_experiment_result(self) -> ExperimentResult:
        columns = ["retry", "devices", "mtbf_s", "good", "done",
                   "faults", "failures", "retries", "shed", "shed_deg",
                   "degraded", "wasted_s"]
        rows = [
            ExperimentRow(
                f"{o.point.label()}/{o.retry.partition(':')[0]}",
                {
                    "retry": o.retry.partition(":")[0],
                    "devices": o.point.devices,
                    "mtbf_s": o.point.mtbf_s,
                    "good": o.good_jobs,
                    "done": o.jobs_done,
                    "faults": o.board_faults,
                    "failures": o.failures,
                    "retries": o.retries,
                    "shed": o.shed,
                    "shed_deg": o.shed_degraded,
                    "degraded": o.degraded_jobs,
                    "wasted_s": o.wasted_service_s,
                },
            )
            for o in self.outcomes
        ]
        frontier = self.resilience_frontier()
        notes = (
            f"{len(self.by_point())} grid points x "
            f"{len(self.retries)} retry policies; resilience frontier: "
            + ", ".join(
                f"{o.point.label()}/{o.retry.partition(':')[0]}"
                for o in frontier[:4])
            + (" ..." if len(frontier) > 4 else ""))
        return ExperimentResult(
            experiment_id="fault_sweep",
            title="Fault sweep: MTBF x retry policy x pool size",
            columns=columns,
            rows=rows,
            notes=notes,
        )


def _simulate_point(args: Tuple) -> RetryOutcome:
    """Worker body: one (grid point, retry policy) pair through the
    fault-injecting simulator (top-level so it pickles)."""
    (point, retry, scenario, config, seed, max_batch, mttr_s) = args
    simulator = ServingSimulator(config, num_devices=point.devices,
                                 max_batch=max_batch)
    report = simulator.run(
        scenario, seed=seed,
        faults=f"poisson:mtbf={point.mtbf_s:g},mttr={mttr_s:g}",
        retry=retry)
    good_jobs = int(round(report.goodput_jps * report.makespan_s))
    return RetryOutcome(
        point=point,
        retry=retry,
        good_jobs=good_jobs,
        goodput_jps=report.goodput_jps,
        throughput_jps=report.throughput_jps,
        jobs_done=report.jobs_done,
        rejected=report.rejected_jobs,
        shed=report.shed_jobs,
        shed_degraded=report.shed_degraded,
        degraded_jobs=report.degraded_jobs,
        board_faults=report.board_faults,
        failures=report.failures,
        retries=report.retries,
        wasted_service_s=report.wasted_service_s,
        slo_attainment=report.slo_attainment,
        cost_price_units=report.cost_price_units,
        makespan_s=report.makespan_s,
    )


def run_sweep(
    config: Optional[FabConfig] = None,
    retries: Sequence[str] = DEFAULT_RETRIES,
    devices: Sequence[int] = DEFAULT_DEVICES,
    mtbfs: Sequence[float] = DEFAULT_MTBFS,
    mttr_s: float = DEFAULT_MTTR,
    duration_s: float = 0.5,
    target_load: float = 0.8,
    seed: int = 0,
    max_batch: int = 8,
    training_stripe: int = 1,
    slo_scale: float = DEFAULT_SLO_SCALE,
    arrivals: Optional[str] = DEFAULT_ARRIVALS,
    workers: Optional[int] = None,
) -> FaultSweepReport:
    """Simulate the full fault grid; returns the sweep report.

    Every retry policy at one grid point sees the same scenario (same
    arrival sequence for the point's seed) and the same per-board
    fault schedule — fault draws are keyed on ``(seed, board)`` only,
    so the retry policy cannot perturb *when* boards fail, just what
    happens to the jobs afterwards.  ``arrivals=None`` keeps each
    stream's own (Poisson) process; the default reshapes every stream
    into MMPP bursts, the regime where fault/burst overlap hurts
    most.  ``slo_scale`` loosens the interactive deadline to a
    multiple of the fault-free default (see :data:`DEFAULT_SLO_SCALE`
    for why a resilience study provisions deadline headroom).  Fault
    injection is DES-only, so unlike the other sweeps there is no
    ``engine`` knob.
    """
    config = config or FabConfig()
    for retry in retries:
        make_retry_policy(retry)  # validate specs before fanning out
    for mtbf in mtbfs:
        make_fault_process(f"poisson:mtbf={mtbf:g},mttr={mttr_s:g}")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if slo_scale <= 0:
        raise ValueError("slo_scale must be positive")
    grid = [FaultPoint(d, mtbf) for d in devices for mtbf in mtbfs]
    if not grid:
        raise ValueError("empty sweep grid")
    names = [r.partition(":")[0] for r in retries]
    if len(set(names)) != len(names):
        raise ValueError(f"retry policies must be distinct: {names!r}")
    classes = build_job_classes(config, training_stripe=training_stripe)
    slo_ms = slo_scale * default_interactive_slo_ms(
        classes["lr_inference"], config)
    tasks = []
    for point in grid:
        scenario = build_slo_scenario(
            config, num_devices=point.devices, duration_s=duration_s,
            target_load=target_load, interactive_slo_ms=slo_ms,
            training_stripe=training_stripe)
        if arrivals:
            scenario = scenario.with_arrivals(arrivals)
        for retry in retries:
            tasks.append((point, retry, scenario, config, seed,
                          max_batch, mttr_s))
    outcomes = fan_out(_simulate_point, tasks, workers=workers)
    return FaultSweepReport(
        outcomes=outcomes,
        retries=tuple(retries),
        mttr_s=mttr_s,
        duration_s=duration_s,
        seed=seed,
        arrivals=arrivals,
        slo_scale=slo_scale,
        provenance=dict(provenance(seed=seed, config=config,
                                   mttr_s=mttr_s, slo_scale=slo_scale,
                                   arrivals=arrivals or "default")),
    )


def run() -> ExperimentResult:
    """Experiment-registry entry point: a reduced inline grid."""
    report = run_sweep(
        devices=(4,),
        mtbfs=(0.05, 0.5),
        duration_s=0.4,
        workers=1,
    )
    return report.to_experiment_result()


def main() -> None:
    from .common import print_result

    print_result(run())


if __name__ == "__main__":
    main()
