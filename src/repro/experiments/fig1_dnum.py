"""Figure 1: impact of dnum on compute levels and switching-key size.

Sweeps ``dnum`` at fixed ``log(PQ) = 1728`` and ``N = 2^16``: larger
dnum buys more compute levels after bootstrapping but grows the
switching keys (with the key compression of [15] applied, halving
sizes).  The paper picks ``dnum = 3`` as the best fit for FAB's 43 MB
on-chip memory.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.params import FabConfig
from ..perf.keysize import dnum_sweep
from .common import ExperimentResult, ExperimentRow, print_result

#: The paper's choice and its headline properties.
PAPER_DNUM = 3
PAPER_LEVELS_AT_DNUM3 = 6
PAPER_UNCOMPRESSED_KEY_MB_AT_DNUM3 = 84


def run(dnums: Optional[List[int]] = None) -> ExperimentResult:
    """Reproduce the Figure 1 sweep."""
    dnums = dnums or [1, 2, 3, 4, 5, 6]
    config = FabConfig()
    onchip_mb = config.onchip_bytes / (1 << 20)
    rows = []
    for point in dnum_sweep(dnums):
        rows.append(ExperimentRow(
            label=f"dnum={point.dnum}",
            values={
                "limbs(L+1)": point.num_limbs,
                "alpha": point.alpha,
                "levels_after_boot": point.levels_after_bootstrap,
                "key_MB(compressed)": point.key_bytes / (1 << 20),
                "key_MB(raw)": point.key_bytes_uncompressed / (1 << 20),
                "fits_onchip": point.key_bytes / (1 << 20) <= onchip_mb,
            }))
    return ExperimentResult(
        experiment_id="fig1",
        title="Levels after bootstrapping & switching-key size vs dnum "
              "(N=2^16, logPQ=1728)",
        columns=["limbs(L+1)", "alpha", "levels_after_boot",
                 "key_MB(compressed)", "key_MB(raw)", "fits_onchip"],
        rows=rows,
        notes=f"paper picks dnum={PAPER_DNUM} "
              f"({PAPER_LEVELS_AT_DNUM3} levels, "
              f"~{PAPER_UNCOMPRESSED_KEY_MB_AT_DNUM3} MB raw keys)")


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
