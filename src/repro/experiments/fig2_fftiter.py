"""Figure 2: effect of fftIter on bootstrapping cost.

Sweeps the multiplicative depth of the homomorphic FFT: higher fftIter
uses smaller-radix factors (fewer rotations and NTTs per transform) but
consumes more levels, leaving fewer multiplications per bootstrap.  The
paper's amortized metric (Eq. 2) is optimized at ``fftIter = 4``.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.ops import FabOpModel
from ..core.params import FabConfig
from .common import ExperimentResult, ExperimentRow, print_result

#: The paper's chosen operating point.
PAPER_FFT_ITER = 4


def run(fft_iters: Optional[List[int]] = None) -> ExperimentResult:
    """Reproduce the Figure 2 sweep."""
    fft_iters = fft_iters or [1, 2, 3, 4, 5, 6]
    config = FabConfig()
    model = FabOpModel(config)
    rows = []
    for fft_iter in fft_iters:
        boot = model.bootstrap(fft_iter=fft_iter)
        amortized = model.amortized_mult_per_slot(fft_iter=fft_iter)
        rows.append(ExperimentRow(
            label=f"fftIter={fft_iter}",
            values={
                "boot_ms": boot.seconds(config) * 1e3,
                "ntt_ops": boot.limb_ntts,
                "rotations": boot.rotations,
                "levels_after": boot.levels_after,
                "amortized_us_per_slot": amortized * 1e6,
            }))
    best = min(rows, key=lambda r: r.values["amortized_us_per_slot"])
    return ExperimentResult(
        experiment_id="fig2",
        title="Bootstrapping execution time & NTT count vs fftIter "
              "(N=2^16, logPQ=1728, dnum=3)",
        columns=["boot_ms", "ntt_ops", "rotations", "levels_after",
                 "amortized_us_per_slot"],
        rows=rows,
        notes=f"model optimum at {best.label}; "
              f"paper picks fftIter={PAPER_FFT_ITER}")


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
