"""§5.5 comparison: bootstrapping on FAB vs the leveled-FHE approach.

The leveled alternative ships exhausted ciphertexts back to the client
for decrypt/re-encrypt.  The paper's argument: even ignoring the
information leakage (which demands a lambda-bit mask and larger
parameters), the client-side re-encryption alone (0.162 s on a 2.8 GHz
CPU with SEAL) exceeds FAB's full iteration including bootstrapping
(0.103 s) — before adding any network time.
"""

from __future__ import annotations

from ..core.params import FabConfig
from ..perf.fab import FabDevice
from .common import ExperimentResult, ExperimentRow, print_result

#: Paper-quoted client-side cost of the leveled approach.
PAPER_CLIENT_REENCRYPT_S = 0.162
PAPER_FAB1_ITERATION_S = 0.103

#: A ciphertext round trip at typical WAN bandwidth (the paper leaves
#: this as "additional time"; we model 1 Gb/s).
WAN_BYTES_PER_SEC = 125e6


def run() -> ExperimentResult:
    """Compare one LR iteration under both refresh strategies."""
    config = FabConfig()
    fab = FabDevice(config)
    fab_iteration = fab.lr_iteration_seconds()
    ct_bytes = config.fhe.ciphertext_bytes
    network_s = 2 * ct_bytes / WAN_BYTES_PER_SEC
    leveled_total = PAPER_CLIENT_REENCRYPT_S + network_s \
        + fab.lr_update_seconds()
    rows = [
        ExperimentRow("bootstrapping (FAB-1)", {
            "seconds": fab_iteration,
            "leaks_intermediates": False,
            "needs_client": False,
        }),
        ExperimentRow("leveled (client re-encrypt)", {
            "seconds": leveled_total,
            "leaks_intermediates": True,
            "needs_client": True,
        }),
    ]
    return ExperimentResult(
        experiment_id="leveled_vs_bootstrap",
        title="One LR iteration: on-cloud bootstrapping vs leveled FHE",
        columns=["seconds", "leaks_intermediates", "needs_client"],
        rows=rows,
        notes=f"client re-encrypt alone costs "
              f"{PAPER_CLIENT_REENCRYPT_S}s (paper, SEAL @2.8GHz) "
              f"vs FAB-1 full iteration {PAPER_FAB1_ITERATION_S}s; "
              "leveled additionally leaks intermediate values unless a "
              "lambda-bit mask inflates parameters further")


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
