"""Resilience x autoscale sweep: spares + elasticity vs either alone.

PR 8 gave the serving simulator fault injection; PR 9 gave it
voluntary elasticity; PR 10's unified membership ledger lets one run
carry both.  This driver quantifies the payoff of combining them.
Every mechanism sees the *same* faulty diurnal arrival stream (same
seed, same fault trace), so per-point comparisons are exact:

* ``static`` — the fixed pool riding out faults with retries only.
  Pays ``makespan x num_devices`` board-seconds regardless of load.
* ``elastic`` — availability-aware predictive autoscaling
  (``avail=1`` divides the sized target by the measured per-window
  availability).  Thrifty in the diurnal trough, but a fault wave can
  still catch the shrunken pool under-provisioned.
* ``spares`` — the ledger-backed warm-standby policy (``spare:n=``):
  run ``num_devices - n`` boards and unpark a standby for every
  in-service board currently down.  Goodput holds through faults, but
  the near-static base never harvests the trough.
* ``combined`` — ``predictive+spare``: the predictive target sized by
  availability, plus a standby per down board.  Trough savings *and*
  fault absorption.

The headline metric is **cost per goodput**
(:attr:`repro.runtime.serving.ServingReport.board_s_per_good_job`).
The acceptance invariant the CI test pins: under faulty diurnal load,
``combined`` is at least as cheap per deadline-met job as *both*
single mechanisms.

CLI::

    python -m repro resilience-autoscale-sweep --duration 1.0 \
        --json resilience_autoscale_sweep.json
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.params import FabConfig
from ..obs import provenance
from ..runtime.autoscaler import make_scale_policy
from ..runtime.faults import make_fault_process, make_retry_policy
from ..runtime.serving import ServingSimulator, build_slo_scenario
from .common import ExperimentResult, ExperimentRow, fan_out

#: Mechanisms swept at every grid point: ``(label, autoscale spec)``
#: with ``None`` marking the fixed pool.  All four run under the same
#: fault process and retry policy; only pool membership differs.
DEFAULT_MECHANISMS = (
    ("static", None),
    ("elastic", "predictive:window=0.1,horizon=0.05,target=0.7,cooldown=0.02,avail=1"),
    ("spares", "spare:n=1"),
    (
        "combined",
        "predictive:window=0.1,horizon=0.05,target=0.7,cooldown=0.02,"
        "avail=1+spare:n=1",
    ),
)

#: Arrival patterns; the diurnal wave is the headline point.
DEFAULT_ARRIVALS = (("diurnal", "diurnal:amplitude=0.9"),)

#: Fault process shared by every mechanism: frequent transient board
#: downs (several per run) so fault absorption is actually exercised.
DEFAULT_FAULTS = "poisson:mtbf=0.08,mttr=0.02"

#: Retry policy shared by every mechanism.
DEFAULT_RETRY = "backoff:base=0.005,jitter=0.25"

#: Mean offered load (see autoscale_sweep: 0.45 gives a saturated
#: crest and a near-idle trough under amplitude 0.9).
DEFAULT_TARGET_LOAD = 0.45


@dataclass(frozen=True)
class ResiliencePoint:
    """One faulty arrival pattern over one pool size."""

    devices: int
    arrivals: str  # short label ("diurnal")
    arrival_spec: str  # full ``name:key=value`` spec

    def label(self) -> str:
        return f"d{self.devices}/{self.arrivals}"


@dataclass
class ResilienceOutcome:
    """One mechanism's result on one grid point's faulty stream."""

    point: ResiliencePoint
    mechanism: str  # "static" | "elastic" | "spares" | "combined"
    scale: Optional[str]
    good_jobs: int
    goodput_jps: float
    jobs_done: int
    rejected: int
    shed: int
    shed_degraded: int
    slo_attainment: Optional[float]
    makespan_s: float
    board_faults: int
    failures: int
    retries: int
    wasted_service_s: float
    board_seconds: float
    board_s_per_good_job: float
    resize_events: int
    scale_ups: int
    scale_downs: int


@dataclass
class ResilienceSweepReport:
    """The full grid plus the combined-vs-single verdict."""

    outcomes: List[ResilienceOutcome]
    mechanisms: Tuple[Tuple[str, Optional[str]], ...]
    faults: str
    retry: str
    duration_s: float
    target_load: float
    seed: int
    provenance: Optional[Dict[str, object]] = None

    def by_point(self) -> Dict[str, Dict[str, ResilienceOutcome]]:
        """``{point label: {mechanism: outcome}}`` over the grid."""
        table: Dict[str, Dict[str, ResilienceOutcome]] = {}
        for outcome in self.outcomes:
            table.setdefault(outcome.point.label(), {})[outcome.mechanism] = outcome
        return table

    def headline(self) -> Dict[str, object]:
        """``combined_vs_single``: per-point cost-per-goodput of every
        mechanism plus whether ``combined`` is at least as cheap as
        both single mechanisms (the invariant CI pins)."""
        rows = []
        for label, per_mech in sorted(self.by_point().items()):
            costs = {
                name: outcome.board_s_per_good_job
                for name, outcome in per_mech.items()
            }
            combined = costs.get("combined")
            singles = [costs[name] for name in ("elastic", "spares") if name in costs]
            wins = (
                combined is not None
                and singles
                and math.isfinite(combined)
                and all(combined <= cost for cost in singles)
            )
            rows.append({"point": label, "costs": costs, "combined_wins": wins})
        return {"combined_vs_single": rows}

    def to_dict(self) -> Dict[str, object]:
        return {
            "mechanisms": [[name, spec] for name, spec in self.mechanisms],
            "faults": self.faults,
            "retry": self.retry,
            "duration_s": self.duration_s,
            "target_load": self.target_load,
            "seed": self.seed,
            "provenance": self.provenance,
            "grid_points": len(self.by_point()),
            "headline": self.headline(),
            "outcomes": [asdict(o) for o in self.outcomes],
        }

    def save_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1)

    def to_experiment_result(self) -> ExperimentResult:
        columns = [
            "mech",
            "devices",
            "arrivals",
            "good",
            "done",
            "faults",
            "shed",
            "slo",
            "board_s",
            "cost_ms",
            "resizes",
        ]
        rows = [
            ExperimentRow(
                f"{o.point.label()}/{o.mechanism}",
                {
                    "mech": o.mechanism,
                    "devices": o.point.devices,
                    "arrivals": o.point.arrivals,
                    "good": o.good_jobs,
                    "done": o.jobs_done,
                    "faults": o.board_faults,
                    "shed": o.shed + o.shed_degraded,
                    "slo": (
                        round(o.slo_attainment, 4)
                        if o.slo_attainment is not None
                        else None
                    ),
                    "board_s": round(o.board_seconds, 4),
                    "cost_ms": (
                        round(o.board_s_per_good_job * 1e3, 4)
                        if math.isfinite(o.board_s_per_good_job)
                        else None
                    ),
                    "resizes": o.resize_events,
                },
            )
            for o in self.outcomes
        ]
        verdicts = self.headline()["combined_vs_single"]
        wins = sum(1 for row in verdicts if row["combined_wins"])
        notes = (
            f"{len(self.by_point())} grid points x "
            f"{len(self.mechanisms)} mechanisms under {self.faults}; "
            f"combined beats both single mechanisms on cost per "
            f"goodput at {wins}/{len(verdicts)} points"
        )
        return ExperimentResult(
            experiment_id="resilience_autoscale_sweep",
            title="Resilience x autoscale: spares + elasticity vs either alone",
            columns=columns,
            rows=rows,
            notes=notes,
        )


def _simulate_point(args: Tuple) -> ResilienceOutcome:
    """Worker body: one (grid point, mechanism) pair through the
    unified membership loop (top-level so it pickles)."""
    point, mechanism, scale, scenario, config, faults, retry, seed, max_batch = args
    simulator = ServingSimulator(config, num_devices=point.devices, max_batch=max_batch)
    report = simulator.run(
        scenario, seed=seed, faults=faults, retry=retry, autoscale=scale
    )
    good_jobs = int(round(report.goodput_jps * report.makespan_s))
    return ResilienceOutcome(
        point=point,
        mechanism=mechanism,
        scale=scale,
        good_jobs=good_jobs,
        goodput_jps=report.goodput_jps,
        jobs_done=report.jobs_done,
        rejected=report.rejected_jobs,
        shed=report.shed_jobs,
        shed_degraded=report.shed_degraded,
        slo_attainment=report.slo_attainment,
        makespan_s=report.makespan_s,
        board_faults=report.board_faults,
        failures=report.failures,
        retries=report.retries,
        wasted_service_s=report.wasted_service_s,
        board_seconds=report.board_seconds,
        board_s_per_good_job=report.board_s_per_good_job,
        resize_events=report.resize_events,
        scale_ups=report.scale_ups,
        scale_downs=report.scale_downs,
    )


def run_sweep(
    config: Optional[FabConfig] = None,
    mechanisms: Sequence[Tuple[str, Optional[str]]] = DEFAULT_MECHANISMS,
    arrivals: Sequence[Tuple[str, str]] = DEFAULT_ARRIVALS,
    devices: Sequence[int] = (8,),
    faults: str = DEFAULT_FAULTS,
    retry: str = DEFAULT_RETRY,
    duration_s: float = 1.0,
    target_load: float = DEFAULT_TARGET_LOAD,
    seed: int = 0,
    max_batch: int = 8,
    workers: Optional[int] = None,
) -> ResilienceSweepReport:
    """Simulate the full resilience x autoscale grid.

    Every mechanism at one grid point sees the identical scenario and
    the identical fault trace (the fault schedule is seeded per board,
    independent of pool membership), so cost-per-goodput deltas are
    pure membership-policy effects.  Like the fault and autoscale
    sweeps this is DES-only — there is no ``engine`` knob.
    """
    config = config or FabConfig()
    make_fault_process(faults)  # validate before fanning out
    make_retry_policy(retry)
    for _, spec in mechanisms:
        if spec is not None:
            make_scale_policy(spec)
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if not 0 < target_load:
        raise ValueError("target_load must be positive")
    names = [name for name, _ in mechanisms]
    if len(set(names)) != len(names):
        raise ValueError(f"mechanisms must be distinct: {names!r}")
    grid = [
        ResiliencePoint(d, label, spec) for d in devices for label, spec in arrivals
    ]
    if not grid:
        raise ValueError("empty sweep grid")
    tasks = []
    for point in grid:
        scenario = build_slo_scenario(
            config,
            num_devices=point.devices,
            duration_s=duration_s,
            target_load=target_load,
            interactive_fraction=1.0,
        ).with_arrivals(point.arrival_spec)
        shared = (scenario, config, faults, retry, seed, max_batch)
        for mechanism, scale in mechanisms:
            tasks.append((point, mechanism, scale) + shared)
    outcomes = fan_out(_simulate_point, tasks, workers=workers)
    return ResilienceSweepReport(
        outcomes=outcomes,
        mechanisms=tuple(mechanisms),
        faults=faults,
        retry=retry,
        duration_s=duration_s,
        target_load=target_load,
        seed=seed,
        provenance=dict(
            provenance(
                seed=seed,
                config=config,
                target_load=target_load,
                faults=faults,
                retry=retry,
                arrivals=",".join(label for label, _ in arrivals),
            )
        ),
    )


def run() -> ExperimentResult:
    """Experiment-registry entry point: a reduced inline grid."""
    report = run_sweep(duration_s=0.6, workers=1)
    return report.to_experiment_result()


def main() -> None:
    from .common import print_result

    print_result(run())


if __name__ == "__main__":
    main()
