"""Autoscaling sweep: the cost-optimal FAB serving configuration.

The ROADMAP's autoscaling scenario: sweep the serving-pool design
space — pool size x HBM key-cache size x tenant count x offered load —
and report the configuration that serves the paper's workload mix at
the lowest device cost while meeting a tail-latency SLO.  This is the
serving-level analogue of the paper's design-space exploration (dnum,
fftIter): the balanced point is found by measuring the whole grid, not
by sizing one axis in isolation.

Every grid point runs the deterministic multi-tenant simulator
(:mod:`repro.runtime.serving`) on a mixed inference/training/analytics
scenario whose arrival rates are scaled to the point's pool capacity
and offered load.  Points are independent, so the driver fans out over
a ``multiprocessing`` pool (``workers=1`` runs inline; results are
identical either way).  The sweep-scale fast paths (heap scheduler,
memoized lowering, heap-driven serving loop) are what make paper-scale
grids cheap enough to run in CI.

Cost model: boards are the scarce resource, so a configuration is
priced in **device-milliseconds per served job**
(``devices * makespan / jobs``).  A point is *feasible* when every
workload's p99 latency meets the SLO and the pool keeps up with the
offered load (all arrivals served without the backlog outliving the
arrival horizon by more than the SLO).  The cost-optimal configuration
is the cheapest feasible point; ties break toward fewer devices, then
a smaller cache.

CLI::

    python -m repro serve-sweep --duration 2.0 --json sweep.json
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.hbm import HbmModel
from ..core.params import FabConfig
from ..obs import MetricsRecorder, provenance
from ..runtime.serving import (JobClass, Scenario, ServingSimulator,
                               Stream, build_job_classes)
from .common import ExperimentResult, ExperimentRow, fan_out

#: Default grid: 3 pools x 2 caches x 2 tenant mixes x 4 loads = 48.
DEFAULT_DEVICES = (4, 8, 16)
DEFAULT_CACHE_FRACTIONS = (0.125, 0.25)
DEFAULT_TENANTS = (2, 8)
DEFAULT_LOADS = (0.3, 0.6, 0.9, 1.2)


@dataclass(frozen=True)
class SweepPoint:
    """One serving configuration under one offered load."""

    devices: int
    cache_fraction: float     # of HBM capacity, for switching keys
    tenants: int              # per stream
    load: float               # offered load / aggregate pool capacity

    def label(self) -> str:
        return (f"d{self.devices}/c{self.cache_fraction:g}/"
                f"t{self.tenants}/l{self.load:g}")


@dataclass
class SweepOutcome:
    """Simulated result of one grid point."""

    point: SweepPoint
    jobs: int
    makespan_s: float
    worst_p99_ms: float
    throughput_jps: float
    device_utilization: float
    key_hit_rate: float
    cost_device_ms_per_job: float
    feasible: bool
    #: Windowed-metrics roll-up (:meth:`repro.obs.MetricsRecorder.
    #: summary`) when the sweep ran with ``point_metrics=True``.
    metrics: Optional[Dict[str, object]] = None


@dataclass
class SweepReport:
    """The full grid plus the cost-optimal configuration."""

    outcomes: List[SweepOutcome]
    slo_p99_ms: float
    duration_s: float
    seed: int
    #: Seed / config-digest / git-describe stamp, embedded in the JSON
    #: artifact so every sweep file is traceable to its inputs.
    provenance: Optional[Dict[str, object]] = None

    @property
    def best(self) -> Optional[SweepOutcome]:
        """Cheapest feasible point (fewest devices, then smallest
        cache, break remaining ties)."""
        feasible = [o for o in self.outcomes if o.feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda o: (
            o.cost_device_ms_per_job, o.point.devices,
            o.point.cache_fraction, o.point.tenants, o.point.load))

    def to_dict(self) -> Dict[str, object]:
        best = self.best
        return {
            "slo_p99_ms": self.slo_p99_ms,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "provenance": self.provenance,
            "grid_points": len(self.outcomes),
            "feasible_points": sum(o.feasible for o in self.outcomes),
            "best": asdict(best) if best else None,
            "outcomes": [asdict(o) for o in self.outcomes],
        }

    def save_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1)

    def to_experiment_result(self) -> ExperimentResult:
        columns = ["devices", "cache_frac", "tenants", "load", "jobs",
                   "p99_ms", "util", "hit_rate", "cost_dev_ms", "ok"]
        rows = [ExperimentRow(o.point.label(), {
            "devices": o.point.devices,
            "cache_frac": o.point.cache_fraction,
            "tenants": o.point.tenants,
            "load": o.point.load,
            "jobs": o.jobs,
            "p99_ms": o.worst_p99_ms,
            "util": o.device_utilization,
            "hit_rate": o.key_hit_rate,
            "cost_dev_ms": o.cost_device_ms_per_job,
            "ok": "yes" if o.feasible else "no",
        }) for o in self.outcomes]
        best = self.best
        notes = (f"cost-optimal: {best.point.label()} at "
                 f"{best.cost_device_ms_per_job:.2f} device-ms/job, "
                 f"p99 {best.worst_p99_ms:.1f} ms "
                 f"(SLO {self.slo_p99_ms:.0f} ms)"
                 if best else
                 f"no feasible point under the {self.slo_p99_ms:.0f} ms "
                 f"p99 SLO")
        return ExperimentResult(
            experiment_id="serve_sweep",
            title="autoscaling sweep: pool x cache x tenants x load",
            columns=columns, rows=rows, notes=notes)


def _build_scenario(classes: Dict[str, JobClass], config: FabConfig,
                    point: SweepPoint, duration_s: float,
                    arrivals: Optional[str] = None) -> Scenario:
    """The mixed workload scaled to one grid point's pool capacity."""
    share = point.load / len(classes)
    streams = [
        Stream(job_class,
               rate_per_s=share * point.devices / job_class.seconds(config),
               num_tenants=point.tenants,
               tenant_prefix=f"{name}-t")
        for name, job_class in sorted(classes.items())
    ]
    scenario = Scenario(f"sweep[{point.label()}]", duration_s, streams)
    return scenario.with_arrivals(arrivals) if arrivals else scenario


def _simulate_point(args: Tuple) -> SweepOutcome:
    """Worker body: one grid point through the serving simulator.

    Top-level (picklable) so a multiprocessing pool can run it; all
    inputs travel by value, so fork and spawn give identical results.
    """
    (point, classes, config, duration_s, seed, max_batch,
     slo_p99_ms, point_metrics, engine, arrivals) = args
    cache_bytes = max(
        int(HbmModel(config).capacity_bytes * point.cache_fraction), 1)
    scenario = _build_scenario(classes, config, point, duration_s,
                               arrivals)
    simulator = ServingSimulator(config, num_devices=point.devices,
                                 key_cache_bytes=cache_bytes,
                                 max_batch=max_batch)
    metrics = (MetricsRecorder(window_s=duration_s / 20,
                               meta={"point": point.label()})
               if point_metrics else None)
    report = simulator.run(scenario, seed=seed, recorder=metrics,
                           engine=engine)
    worst_p99 = max((w.p99_ms for w in report.per_workload), default=0.0)
    cost = (point.devices * report.makespan_s * 1e3 / report.jobs_done
            if report.jobs_done else float("inf"))
    # Feasible: tails meet the SLO and the backlog drains — the last
    # completion lands within one SLO of the arrival horizon.
    drains = report.makespan_s <= duration_s + slo_p99_ms / 1e3
    feasible = (report.jobs_done > 0 and worst_p99 <= slo_p99_ms
                and drains)
    return SweepOutcome(
        point=point,
        jobs=report.jobs_done,
        makespan_s=report.makespan_s,
        worst_p99_ms=worst_p99,
        throughput_jps=(report.jobs_done / report.makespan_s
                        if report.makespan_s else 0.0),
        device_utilization=report.device_utilization,
        key_hit_rate=report.key_hit_rate,
        cost_device_ms_per_job=cost,
        feasible=feasible,
        metrics=metrics.summary() if metrics is not None else None)


def default_slo_p99_ms(classes: Dict[str, JobClass],
                       config: FabConfig) -> float:
    """SLO heuristic: 8x the heaviest class's single-job service time.

    Scale-free: holds across pool sizes and hardware configs, loose
    enough that moderate queueing passes, tight enough that an
    overloaded pool (load >= 1) fails.
    """
    slowest = max(jc.seconds(config) for jc in classes.values())
    return 8.0 * slowest * 1e3


def run_sweep(config: Optional[FabConfig] = None,
              devices: Sequence[int] = DEFAULT_DEVICES,
              cache_fractions: Sequence[float] = DEFAULT_CACHE_FRACTIONS,
              tenants: Sequence[int] = DEFAULT_TENANTS,
              loads: Sequence[float] = DEFAULT_LOADS,
              duration_s: float = 1.0,
              seed: int = 0,
              max_batch: int = 8,
              slo_p99_ms: Optional[float] = None,
              workers: Optional[int] = None,
              point_metrics: bool = False,
              engine: str = "des",
              arrivals: Optional[str] = None) -> SweepReport:
    """Simulate the full grid; returns the sweep report.

    ``workers=None`` sizes the pool to the machine (capped at the grid
    size); ``workers=1`` runs inline with no multiprocessing.  Either
    way the grid points are deterministic, so the report is identical.
    ``point_metrics=True`` attaches a windowed-metrics summary
    (utilization, peak queue depth, SLO attainment, key traffic) to
    every outcome; the recorder hooks are exercised but the simulated
    schedule is bit-identical either way.  ``engine="fast"`` runs
    every point through the vectorized engine (identical reports on
    the same arrival sequences — the parity suite's guarantee — at a
    fraction of the wall clock for long horizons); ``arrivals`` is an
    optional process spec (see
    :func:`repro.runtime.arrivals.make_process`) applied to every
    stream, e.g. ``"diurnal"`` or ``"mmpp:burst=6"``.
    """
    config = config or FabConfig()
    classes = build_job_classes(config)
    if slo_p99_ms is None:
        slo_p99_ms = default_slo_p99_ms(classes, config)
    grid = [SweepPoint(d, c, t, load)
            for d in devices for c in cache_fractions
            for t in tenants for load in loads]
    if not grid:
        raise ValueError("empty sweep grid")
    tasks = [(point, classes, config, duration_s, seed, max_batch,
              slo_p99_ms, point_metrics, engine, arrivals)
             for point in grid]
    outcomes = fan_out(_simulate_point, tasks, workers=workers)
    return SweepReport(outcomes=outcomes, slo_p99_ms=slo_p99_ms,
                       duration_s=duration_s, seed=seed,
                       provenance=dict(provenance(seed=seed,
                                                  config=config,
                                                  engine=engine)))


def run() -> ExperimentResult:
    """Experiment-registry entry point: the default 48-point grid."""
    return run_sweep(duration_s=0.5, workers=1).to_experiment_result()


def main() -> None:
    from .common import print_result
    print_result(run())


if __name__ == "__main__":
    main()
