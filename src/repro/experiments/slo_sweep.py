"""SLO sweep: admission/scheduling policy x load x mix x pool size.

The serving simulator dispatches through a pluggable policy
(:mod:`repro.runtime.policies`); this driver quantifies what each
policy buys on a two-tier scenario — latency-sensitive inference with
per-job deadlines sharing the pool with deferrable batch work that may
run anywhere inside an execution window — under a diurnal price/carbon
signal (cf. the deferrable-workload scheduling literature, e.g.
pennsail/cr):

* ``fifo`` — the historical greedy order: no admission, no deferral.
* ``edf`` — earliest-deadline-first with admission control: at high
  load it sheds infeasible jobs instead of cascading lateness, so SLO
  attainment strictly improves over ``fifo``.
* ``deferrable-window`` — batch work yields to interactive traffic
  and runs in cheap slots of the price signal, cutting
  cost-under-price-signal with zero interactive SLO regressions.

Every (pool size, offered load, interactive fraction) grid point runs
all policies on the *same* arrival sequence and price signal, so the
per-point comparisons are exact.  The report carries the full grid,
per-point policy comparisons, and the cost/SLO Pareto frontier; the
JSON artifact is uploaded by CI and refreshed by the weekly scheduled
run.

CLI::

    python -m repro slo-sweep --duration 0.5 --json slo_sweep.json
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.params import FabConfig
from ..obs import MetricsRecorder, provenance
from ..runtime.policies import POLICIES, PriceSignal
from ..runtime.serving import ServingSimulator, build_slo_scenario
from .common import ExperimentResult, ExperimentRow, fan_out

#: Default grid: 2 pools x 3 loads x 2 mixes, every policy = 36 runs.
DEFAULT_POLICIES = ("fifo", "edf", "deferrable-window")
DEFAULT_DEVICES = (4, 8)
DEFAULT_LOADS = (0.5, 0.9, 1.4)
DEFAULT_MIXES = (0.5, 0.8)

#: Price signal defaults: an expensive half-period, then a cheap one.
DEFAULT_PEAK = 2.0
DEFAULT_TROUGH = 0.5

#: Loads at or above this count as "high load" in headline checks.
HIGH_LOAD = 1.0


@dataclass(frozen=True)
class SloPoint:
    """One pool configuration under one offered load and tier mix."""

    devices: int
    load: float
    mix: float  # interactive fraction of the offered load

    def label(self) -> str:
        return f"d{self.devices}/l{self.load:g}/m{self.mix:g}"


@dataclass
class PolicyOutcome:
    """One policy's result on one grid point's arrival sequence."""

    point: SloPoint
    policy: str
    jobs_done: int
    rejected: int
    deferred: int
    slo_attainment: float
    interactive_slo: float
    interactive_p99_ms: float
    batch_slo: Optional[float]
    cost_price_units: float
    cost_per_job: float
    makespan_s: float
    #: Windowed-metrics roll-up (:meth:`repro.obs.MetricsRecorder.
    #: summary`) when the sweep ran with ``point_metrics=True``.
    metrics: Optional[Dict[str, object]] = None


@dataclass
class SloSweepReport:
    """The full grid plus per-point comparisons and the frontier."""

    outcomes: List[PolicyOutcome]
    policies: Tuple[str, ...]
    duration_s: float
    seed: int
    peak: float
    trough: float
    #: Seed / config-digest / git-describe stamp, embedded in the JSON
    #: artifact so every sweep file is traceable to its inputs.
    provenance: Optional[Dict[str, object]] = None

    def by_point(self) -> Dict[str, Dict[str, PolicyOutcome]]:
        """``{point label: {policy: outcome}}`` over the whole grid."""
        table: Dict[str, Dict[str, PolicyOutcome]] = {}
        for outcome in self.outcomes:
            table.setdefault(outcome.point.label(), {})[outcome.policy] = outcome
        return table

    def pareto_frontier(self) -> List[PolicyOutcome]:
        """Non-dominated outcomes: minimize price-units per served
        job, maximize SLO attainment.

        Per-job cost keeps points with different offered loads
        comparable.  An outcome is dominated when another one costs no
        more per job *and* attains no less SLO, with at least one
        strict; the frontier is returned cheapest-first.
        """
        frontier = []
        for candidate in self.outcomes:
            dominated = False
            for other in self.outcomes:
                if other is candidate:
                    continue
                no_worse = (
                    other.cost_per_job <= candidate.cost_per_job
                    and other.slo_attainment >= candidate.slo_attainment
                )
                strictly = (
                    other.cost_per_job < candidate.cost_per_job
                    or other.slo_attainment > candidate.slo_attainment
                )
                if no_worse and strictly:
                    dominated = True
                    break
            if not dominated:
                frontier.append(candidate)
        return sorted(
            frontier,
            key=lambda o: (o.cost_per_job, -o.slo_attainment),
        )

    def headline(self) -> Dict[str, object]:
        """The two comparisons the acceptance criteria pin down.

        ``edf_vs_fifo_high_load`` lists (label, fifo, edf) overall SLO
        attainment at every high-load point; ``deferrable_vs_fifo``
        lists (label, fifo cost, deferrable cost, fifo interactive
        SLO, deferrable interactive SLO) at every point.
        """
        edf_rows = []
        deferrable_rows = []
        for label, per_policy in sorted(self.by_point().items()):
            fifo = per_policy.get("fifo")
            edf = per_policy.get("edf")
            deferrable = per_policy.get("deferrable-window")
            if fifo and edf and fifo.point.load >= HIGH_LOAD:
                edf_rows.append((label, fifo.slo_attainment, edf.slo_attainment))
            if fifo and deferrable:
                deferrable_rows.append(
                    (
                        label,
                        fifo.cost_price_units,
                        deferrable.cost_price_units,
                        fifo.interactive_slo,
                        deferrable.interactive_slo,
                    )
                )
        return {
            "edf_vs_fifo_high_load": edf_rows,
            "deferrable_vs_fifo": deferrable_rows,
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "policies": list(self.policies),
            "duration_s": self.duration_s,
            "seed": self.seed,
            "provenance": self.provenance,
            "price": {"peak": self.peak, "trough": self.trough},
            "grid_points": len(self.by_point()),
            "headline": self.headline(),
            "pareto": [
                {
                    "point": o.point.label(),
                    "policy": o.policy,
                    "cost_price_units": o.cost_price_units,
                    "cost_per_job": o.cost_per_job,
                    "slo_attainment": o.slo_attainment,
                }
                for o in self.pareto_frontier()
            ],
            "outcomes": [asdict(o) for o in self.outcomes],
        }

    def save_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1)

    def to_experiment_result(self) -> ExperimentResult:
        columns = [
            "policy",
            "devices",
            "load",
            "mix",
            "jobs",
            "slo_pct",
            "int_slo_pct",
            "int_p99_ms",
            "rejected",
            "deferred",
            "cost",
        ]
        rows = [
            ExperimentRow(
                f"{o.point.label()}/{o.policy}",
                {
                    "policy": o.policy,
                    "devices": o.point.devices,
                    "load": o.point.load,
                    "mix": o.point.mix,
                    "jobs": o.jobs_done,
                    "slo_pct": 100 * o.slo_attainment,
                    "int_slo_pct": 100 * o.interactive_slo,
                    "int_p99_ms": o.interactive_p99_ms,
                    "rejected": o.rejected,
                    "deferred": o.deferred,
                    "cost": o.cost_price_units * 1e3,
                },
            )
            for o in self.outcomes
        ]
        frontier = self.pareto_frontier()
        notes = (
            f"{len(self.by_point())} grid points x "
            f"{len(self.policies)} policies; Pareto frontier: "
            + ", ".join(f"{o.point.label()}/{o.policy}" for o in frontier[:4])
            + (" ..." if len(frontier) > 4 else "")
        )
        return ExperimentResult(
            experiment_id="slo_sweep",
            title="SLO sweep: policy x load x mix x pool size",
            columns=columns,
            rows=rows,
            notes=notes,
        )


def _simulate_point(args: Tuple) -> PolicyOutcome:
    """Worker body: one (grid point, policy) pair through the sim.

    Top-level (picklable) so a multiprocessing pool can run it; all
    inputs travel by value, so fork and spawn give identical results.
    """
    (point, policy, scenario, config, price, seed, max_batch, point_metrics, engine) = (
        args
    )
    simulator = ServingSimulator(
        config,
        num_devices=point.devices,
        max_batch=max_batch,
    )
    metrics = (
        MetricsRecorder(
            window_s=scenario.duration_s / 20,
            meta={"point": point.label(), "policy": policy},
        )
        if point_metrics
        else None
    )
    report = simulator.run(
        scenario, seed=seed, policy=policy, price=price, recorder=metrics,
        engine=engine
    )
    interactive = None
    batch_slo = None
    for stats in report.per_workload:
        if stats.name == "lr_inference":
            interactive = stats
        else:
            batch_slo = stats.slo_attainment
    if interactive is not None:
        interactive_slo = interactive.slo_attainment or 0.0
        interactive_p99_ms = interactive.p99_ms
    else:
        # A pure-batch point (mix 0) has no interactive tier: its SLO
        # is vacuously attained and there is no tail to report.
        interactive_slo = 1.0
        interactive_p99_ms = 0.0
    if report.jobs_done:
        cost_per_job = report.cost_price_units / report.jobs_done
    else:
        cost_per_job = float("inf")
    return PolicyOutcome(
        point=point,
        policy=policy,
        jobs_done=report.jobs_done,
        rejected=report.rejected_jobs,
        deferred=report.deferred_jobs,
        slo_attainment=report.slo_attainment or 0.0,
        interactive_slo=interactive_slo,
        interactive_p99_ms=interactive_p99_ms,
        batch_slo=batch_slo,
        cost_price_units=report.cost_price_units,
        cost_per_job=cost_per_job,
        makespan_s=report.makespan_s,
        metrics=metrics.summary() if metrics is not None else None,
    )


def run_sweep(
    config: Optional[FabConfig] = None,
    policies: Sequence[str] = DEFAULT_POLICIES,
    devices: Sequence[int] = DEFAULT_DEVICES,
    loads: Sequence[float] = DEFAULT_LOADS,
    mixes: Sequence[float] = DEFAULT_MIXES,
    duration_s: float = 0.5,
    seed: int = 0,
    max_batch: int = 8,
    training_stripe: int = 1,
    peak: float = DEFAULT_PEAK,
    trough: float = DEFAULT_TROUGH,
    workers: Optional[int] = None,
    point_metrics: bool = False,
    engine: str = "des",
    arrivals: Optional[str] = None,
) -> SloSweepReport:
    """Simulate the full policy grid; returns the sweep report.

    Every policy at one grid point sees the same scenario (same
    arrival sequence for the point's seed) and the same diurnal price
    signal — two slots per half-horizon, so a batch window equal to
    the horizon always contains a cheap slot.  ``workers=None`` sizes
    the pool to the machine; ``workers=1`` runs inline.  Either way
    the grid is deterministic, so the report is identical.
    ``engine="fast"`` runs every point through the vectorized engine
    (identical reports on shared arrival sequences); ``arrivals`` is
    an optional process spec applied to every stream (see
    :func:`repro.runtime.arrivals.make_process`).
    """
    config = config or FabConfig()
    unknown = [p for p in policies if p not in POLICIES]
    if unknown:
        raise ValueError(f"unknown policies {unknown!r}; try: {sorted(POLICIES)}")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    price = PriceSignal.diurnal(
        peak=peak,
        trough=trough,
        slot_s=duration_s / 4.0,
    )
    grid = [SloPoint(d, load, m) for d in devices for load in loads for m in mixes]
    if not grid:
        raise ValueError("empty sweep grid")
    tasks = []
    for point in grid:
        scenario = build_slo_scenario(
            config,
            num_devices=point.devices,
            duration_s=duration_s,
            target_load=point.load,
            interactive_fraction=point.mix,
            training_stripe=training_stripe,
        )
        if arrivals:
            scenario = scenario.with_arrivals(arrivals)
        for policy in policies:
            tasks.append(
                (
                    point,
                    policy,
                    scenario,
                    config,
                    price,
                    seed,
                    max_batch,
                    point_metrics,
                    engine,
                )
            )
    outcomes = fan_out(_simulate_point, tasks, workers=workers)
    return SloSweepReport(
        outcomes=outcomes,
        policies=tuple(policies),
        duration_s=duration_s,
        seed=seed,
        peak=peak,
        trough=trough,
        provenance=dict(provenance(seed=seed, config=config, engine=engine)),
    )


def run() -> ExperimentResult:
    """Experiment-registry entry point: a reduced inline grid."""
    report = run_sweep(
        devices=(4,),
        loads=(0.6, 1.4),
        mixes=(0.6,),
        duration_s=0.4,
        workers=1,
    )
    return report.to_experiment_result()


def main() -> None:
    from .common import print_result

    print_result(run())


if __name__ == "__main__":
    main()
