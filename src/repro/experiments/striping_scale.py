"""Striping scale sweep: trace-driven FAB-2 vs the analytic model.

The top ROADMAP item made concrete: instead of *assuming* the Amdahl
decomposition of :class:`repro.core.multi_fpga.MultiFpgaSystem`, build
the FAB-2 logistic-regression training job as one trace (a serial
256-slot bootstrap followed by a batch of per-ciphertext gradient
blocks and the serial update tail), stripe its batch dimension over
the pool with :mod:`repro.runtime.striped_lowering`, schedule the
merged per-board task graph, and *reconcile* the resulting speedup
against the closed-form prediction for the same serial fraction,
synchronization rounds, and ciphertext levels.

The sweep covers boards x batch x board-assignment policy:

* ``round_robin`` deals batch groups out evenly — the FAB-2 design
  point, reconciled against the analytic model (the golden test pins
  the 2/4/8-board agreement to a two-sided tolerance).
* ``hash`` scatters groups by identity; its load imbalance is paid as
  lost speedup the analytic model does not see (the ``imbalance``
  column times the parallel fraction explains the gap).
* ``single_board`` is the no-striping baseline: everything on the
  master, speedup pinned to 1.0 exactly.

The analytic column prices communication at the *mean ciphertext
level* of the synchronization rounds the striping actually injected
(``MultiFpgaSystem.speedup(..., rounds=..., level=...)``); the
residual disagreement — batch-split granularity, per-board scheduling
overlap — is what "trace-driven" buys over the closed form, and the
multi-node HPC literature says exactly this boundary (communication
modeling) is where analytic models drift.

CLI::

    python -m repro stripe-scale --boards 2 8 --json stripe.json
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.multi_fpga import MultiFpgaSystem
from ..core.params import FabConfig
from ..runtime.lowering import lower_trace
from ..runtime.optrace import OpTrace
from ..runtime.reference import lr_training_trace
from ..runtime.striped_lowering import (BOARD_POLICIES, BoardStriper,
                                        StripePlan, cost_striped_trace,
                                        stripe_trace)
from .common import ExperimentResult, ExperimentRow

#: Default grid: 4 pool sizes x 2 batch sizes x 3 policies = 24 rows.
DEFAULT_BOARDS = (1, 2, 4, 8)
DEFAULT_BATCHES = (64, 256)
DEFAULT_POLICIES = BOARD_POLICIES


def training_trace(config: FabConfig, batch: int,
                   slots: int = 256) -> Tuple[OpTrace, StripePlan]:
    """The FAB-2 training step under sweep — the canonical
    :func:`repro.runtime.reference.lr_training_trace` definition."""
    return lr_training_trace(config, batch=batch, slots=slots)


@dataclass(frozen=True)
class StripePoint:
    """One grid point of the sweep."""

    boards: int
    batch: int
    policy: str

    def label(self) -> str:
        return f"k{self.boards}/b{self.batch}/{self.policy}"


@dataclass
class StripeOutcome:
    """Trace-driven vs analytic result at one grid point."""

    point: StripePoint
    single_cycles: int
    striped_cycles: int
    traced_speedup: float
    analytic_speedup: float
    rel_error: float              # traced / analytic - 1
    comm_rounds: int
    comm_ms: float
    serial_fraction: float        # of single-board scheduled cycles
    imbalance: float              # max/mean parallel groups per board


@dataclass
class StripeScaleReport:
    """The full sweep grid."""

    outcomes: List[StripeOutcome]
    seed_workload: str = "lr_training"

    def outcome(self, boards: int, batch: int,
                policy: str = "round_robin") -> StripeOutcome:
        for o in self.outcomes:
            p = o.point
            if (p.boards, p.batch, p.policy) == (boards, batch, policy):
                return o
        raise KeyError(f"no outcome for k{boards}/b{batch}/{policy}")

    @property
    def worst_round_robin_error(self) -> Optional[float]:
        """Largest |rel error| across the reconciled design points.

        ``None`` when the grid contains no multi-board round-robin
        point — there was nothing to reconcile, which must not read
        as a measured perfect match.
        """
        errors = [abs(o.rel_error) for o in self.outcomes
                  if o.point.policy == "round_robin"
                  and o.point.boards > 1]
        return max(errors) if errors else None

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.seed_workload,
            "grid_points": len(self.outcomes),
            "worst_round_robin_rel_error": self.worst_round_robin_error,
            "outcomes": [asdict(o) for o in self.outcomes],
        }

    def save_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1)

    def to_experiment_result(self) -> ExperimentResult:
        columns = ["boards", "batch", "policy", "traced_x", "analytic_x",
                   "rel_err", "rounds", "comm_ms", "serial_frac",
                   "imbalance"]
        rows = [ExperimentRow(o.point.label(), {
            "boards": o.point.boards,
            "batch": o.point.batch,
            "policy": o.point.policy,
            "traced_x": o.traced_speedup,
            "analytic_x": o.analytic_speedup,
            "rel_err": o.rel_error,
            "rounds": o.comm_rounds,
            "comm_ms": o.comm_ms,
            "serial_frac": o.serial_fraction,
            "imbalance": o.imbalance,
        }) for o in self.outcomes]
        worst = self.worst_round_robin_error
        notes = (f"worst round-robin |rel error| {100 * worst:.2f}% "
                 f"(trace-driven speedup vs MultiFpgaSystem.speedup "
                 f"at matched serial fraction, rounds, and levels)"
                 if worst is not None else
                 "no multi-board round-robin points in the grid — "
                 "nothing reconciled against the analytic model")
        return ExperimentResult(
            experiment_id="stripe_scale",
            title="trace-striped FAB-2 scaling vs the analytic model",
            columns=columns, rows=rows, notes=notes)


def _analytic_speedup(config: FabConfig, point: StripePoint,
                      single_cycles: int, serial_cycles: int,
                      comm_rounds: int,
                      comm_levels: Sequence[int]) -> float:
    """The closed-form prediction matched to the traced structure."""
    if point.boards == 1 or point.policy == "single_board":
        # No distribution happens: the pool degenerates to one board.
        return 1.0
    system = MultiFpgaSystem(config, point.boards)
    single_s = config.cycles_to_seconds(single_cycles)
    serial_s = config.cycles_to_seconds(serial_cycles)
    level = (sum(comm_levels) / len(comm_levels)
             if comm_levels else None)
    return system.speedup(single_s, serial_s, rounds=comm_rounds,
                          level=level)


def run_sweep(config: Optional[FabConfig] = None,
              boards: Sequence[int] = DEFAULT_BOARDS,
              batches: Sequence[int] = DEFAULT_BATCHES,
              policies: Sequence[str] = DEFAULT_POLICIES,
              prefetch: bool = True) -> StripeScaleReport:
    """Schedule the whole grid; deterministic, no sampling."""
    config = config or FabConfig()
    outcomes: List[StripeOutcome] = []
    for batch in batches:
        trace, plan = training_trace(config, batch)
        # Both single-board figures depend only on (trace, plan):
        # schedule them once per batch, not once per grid point.
        single_cycles = lower_trace(trace, config).schedule(
            prefetch=prefetch).cycles
        serial, _parallel = stripe_trace(trace, 1, plan=plan,
                                         config=config).split()
        serial_cycles = lower_trace(serial, config).schedule(
            prefetch=prefetch).cycles
        for k in boards:
            for policy in policies:
                point = StripePoint(k, batch, policy)
                cost = cost_striped_trace(trace, k, config,
                                          policy=policy, plan=plan,
                                          prefetch=prefetch,
                                          single_cycles=single_cycles,
                                          serial_cycles=serial_cycles)
                report = cost.report
                analytic = _analytic_speedup(
                    config, point, cost.single_cycles,
                    cost.serial_cycles, report.comm_rounds,
                    report.comm_levels)
                striper = BoardStriper(k, policy, config)
                outcomes.append(StripeOutcome(
                    point=point,
                    single_cycles=cost.single_cycles,
                    striped_cycles=report.cycles,
                    traced_speedup=cost.speedup,
                    analytic_speedup=analytic,
                    rel_error=(cost.speedup / analytic - 1
                               if analytic else 0.0),
                    comm_rounds=report.comm_rounds,
                    comm_ms=config.cycles_to_seconds(
                        report.comm_busy) * 1e3,
                    serial_fraction=(cost.serial_cycles
                                     / cost.single_cycles
                                     if cost.single_cycles else 0.0),
                    imbalance=striper.imbalance(
                        cost.striped.parallel_group_boards())))
    return StripeScaleReport(outcomes)


def run() -> ExperimentResult:
    """Experiment-registry entry point: the default 24-point grid."""
    return run_sweep().to_experiment_result()


def main() -> None:
    from .common import print_result
    print_result(run())


if __name__ == "__main__":
    main()
