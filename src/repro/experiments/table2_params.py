"""Table 2: the FPGA parameter set and its feasibility constraints.

Verifies every constraint the paper uses to justify the parameter
choice: 128-bit security at ``log(PQ) = 1728``, the 28.3 MB raised
ciphertext fitting the 43 MB on-chip memory, and the derived
``alpha`` / ``LBoot`` values.
"""

from __future__ import annotations

from ..core.memory import OnChipMemory
from ..core.params import FabConfig
from ..fhe.security import is_secure, max_log_q, security_level
from .common import ExperimentResult, ExperimentRow, print_result

#: Table 2 of the paper.
PAPER_PARAMS = {"log_q": 54, "log_n": 16, "L": 23, "dnum": 3,
                "fft_iter": 4, "security": 128}


def run() -> ExperimentResult:
    """Check the paper's parameter set against the model's constraints."""
    config = FabConfig()
    fhe = config.fhe
    memory = OnChipMemory(config)
    rows = [
        ExperimentRow("log q", {
            "model": fhe.limb_bits, "paper": PAPER_PARAMS["log_q"]}),
        ExperimentRow("log N", {
            "model": fhe.ring_degree.bit_length() - 1,
            "paper": PAPER_PARAMS["log_n"]}),
        ExperimentRow("L", {
            "model": fhe.num_limbs - 1, "paper": PAPER_PARAMS["L"]}),
        ExperimentRow("dnum", {
            "model": fhe.dnum, "paper": PAPER_PARAMS["dnum"]}),
        ExperimentRow("fftIter", {
            "model": fhe.fft_iter, "paper": PAPER_PARAMS["fft_iter"]}),
        ExperimentRow("log PQ", {
            "model": fhe.log_pq, "paper": 1728}),
        ExperimentRow("security bits", {
            "model": round(security_level(fhe.ring_degree, fhe.log_pq)),
            "paper": PAPER_PARAMS["security"]}),
        ExperimentRow("secure@128", {
            "model": is_secure(fhe.ring_degree, fhe.log_pq, 128),
            "paper": True}),
        ExperimentRow("max logQ budget", {
            "model": max_log_q(fhe.ring_degree, 128), "paper": ">=1728"}),
        ExperimentRow("raised ct MB", {
            "model": round(fhe.max_ciphertext_bytes / (1 << 20), 1),
            "paper": 28.3}),
        ExperimentRow("ct fits on-chip", {
            "model": memory.fits_raised_ciphertext(), "paper": True}),
        ExperimentRow("LBoot", {
            "model": fhe.bootstrap_depth, "paper": 17}),
    ]
    return ExperimentResult(
        experiment_id="table2",
        title="Parameter set for the FPGA implementation",
        columns=["model", "paper"],
        rows=rows)


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
