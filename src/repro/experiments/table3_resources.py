"""Table 3: FAB hardware resource utilization on the Alveo U280."""

from __future__ import annotations

from ..core.params import FabConfig
from ..core.resources import FabResources
from .common import ExperimentResult, ExperimentRow, print_result

#: Table 3 of the paper: (utilized, % utilization).
PAPER_TABLE3 = {
    "LUTs": (899_232, 68.96),
    "FFs": (2_073_000, 79.54),
    "DSP": (5_120, 56.70),
    "BRAM": (3_840, 95.24),
    "URAM": (960, 99.80),
}


def run() -> ExperimentResult:
    """Reproduce the utilization table from the architecture parameters."""
    resources = FabResources(FabConfig())
    rows = []
    for name, report in resources.table3().items():
        paper_used, paper_pct = PAPER_TABLE3[name]
        rows.append(ExperimentRow(name, {
            "available": report.available,
            "model_utilized": report.utilized,
            "model_pct": report.percent,
            "paper_utilized": paper_used,
            "paper_pct": paper_pct,
        }))
    return ExperimentResult(
        experiment_id="table3",
        title="FAB hardware resource utilization",
        columns=["available", "model_utilized", "model_pct",
                 "paper_utilized", "paper_pct"],
        rows=rows,
        notes="DSP/BRAM/URAM counts derive exactly from the bank "
              "geometry; LUT/FF split is calibrated (FU share ~37%)")


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
