"""Table 4: modular multipliers, register file and on-chip memory
across F1, BTS and FAB."""

from __future__ import annotations

from ..core.resources import table4_footprints
from .common import ExperimentResult, ExperimentRow, print_result

#: The paper's headline ratios (BTS relative to FAB).
PAPER_RATIOS_VS_BTS = {"modmults": 32, "register_file": 11,
                       "onchip_memory": 12}


def run() -> ExperimentResult:
    """Reproduce the accelerator footprint comparison."""
    rows = []
    footprints = table4_footprints()
    for name in ("F1", "BTS", "FAB"):
        fp = footprints[name]
        rows.append(ExperimentRow(name, {
            "N": fp.ring_degree,
            "log_q": fp.log_q,
            "mod_multipliers": fp.modular_multipliers,
            "register_file_MB": fp.register_file_mb,
            "onchip_MB": fp.onchip_memory_mb,
            "technology": fp.technology,
        }))
    bts, fab = footprints["BTS"], footprints["FAB"]
    notes = (f"BTS/FAB ratios: multipliers "
             f"{bts.modular_multipliers // fab.modular_multipliers}x "
             f"(paper {PAPER_RATIOS_VS_BTS['modmults']}x), RF "
             f"{bts.register_file_mb / fab.register_file_mb:.0f}x "
             f"(paper {PAPER_RATIOS_VS_BTS['register_file']}x), memory "
             f"{bts.onchip_memory_mb / fab.onchip_memory_mb:.0f}x "
             f"(paper {PAPER_RATIOS_VS_BTS['onchip_memory']}x)")
    return ExperimentResult(
        experiment_id="table4",
        title="Modular multiplier count, register file and on-chip "
              "memory across designs",
        columns=["N", "log_q", "mod_multipliers", "register_file_MB",
                 "onchip_MB", "technology"],
        rows=rows,
        notes=notes)


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
