"""Table 5: basic CKKS operation latency, FAB vs the GPU baseline.

The GPU column quotes Jung et al.'s published numbers (the paper does
the same); the FAB column is the cycle model at 300 MHz.
"""

from __future__ import annotations

from ..core.ops import FabOpModel
from ..core.params import FabConfig
from .common import ExperimentResult, ExperimentRow, print_result

#: Table 5 of the paper (milliseconds).
PAPER_FAB_MS = {"add": 0.04, "multiply": 1.71, "rescale": 0.19,
                "rotate": 1.57}
PAPER_GPU_MS = {"add": 0.16, "multiply": 2.96, "rescale": 0.49,
                "rotate": 2.55}
OP_LABELS = {"add": "Add", "multiply": "Mult", "rescale": "Rescale",
             "rotate": "Rotate"}


def run() -> ExperimentResult:
    """Reproduce the basic-operation latency comparison."""
    config = FabConfig()
    model = FabOpModel(config)
    rows = []
    for op, label in OP_LABELS.items():
        model_ms = getattr(model, op)().seconds(config) * 1e3
        gpu_ms = PAPER_GPU_MS[op]
        rows.append(ExperimentRow(label, {
            "fab_model_ms": model_ms,
            "fab_paper_ms": PAPER_FAB_MS[op],
            "gpu_ms": gpu_ms,
            "model_speedup_vs_gpu": gpu_ms / model_ms,
            "paper_speedup_vs_gpu": gpu_ms / PAPER_FAB_MS[op],
        }))
    return ExperimentResult(
        experiment_id="table5",
        title="Basic CKKS operation latency (ms) and speedup vs GPU",
        columns=["fab_model_ms", "fab_paper_ms", "gpu_ms",
                 "model_speedup_vs_gpu", "paper_speedup_vs_gpu"],
        rows=rows,
        notes="GPU column = Jung et al. published numbers "
              "(N=2^16, logQ=1693)")


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
