"""Table 6: NTT and Mult throughput vs HEAX (N = 2^14, log Q = 438).

HEAX's published throughputs are the baseline; FAB's come from the
cycle model reconfigured to HEAX's parameter point.  The model reports
per-polynomial operations (all 8 limbs), the natural unit at this
parameter set.
"""

from __future__ import annotations

from ..core.ops import FabOpModel
from ..core.params import heax_comparison_config
from .common import ExperimentResult, ExperimentRow, print_result

#: Table 6 of the paper (operations per second).
PAPER_FAB = {"NTT": 167_000, "Mult": 5_700}
PAPER_HEAX = {"NTT": 42_000, "Mult": 2_600}


def run() -> ExperimentResult:
    """Reproduce the HEAX throughput comparison."""
    config = heax_comparison_config()
    model = FabOpModel(config)
    ntt_ops = config.clock_hz / model.ntt_poly().cycles
    mult_ops = config.clock_hz / model.multiply().cycles
    rows = [
        ExperimentRow("NTT", {
            "fab_model_ops": ntt_ops,
            "fab_paper_ops": PAPER_FAB["NTT"],
            "heax_ops": PAPER_HEAX["NTT"],
            "model_speedup": ntt_ops / PAPER_HEAX["NTT"],
            "paper_speedup": 3.97,
        }),
        ExperimentRow("Mult", {
            "fab_model_ops": mult_ops,
            "fab_paper_ops": PAPER_FAB["Mult"],
            "heax_ops": PAPER_HEAX["Mult"],
            "model_speedup": mult_ops / PAPER_HEAX["Mult"],
            "paper_speedup": 2.12,
        }),
    ]
    return ExperimentResult(
        experiment_id="table6",
        title="Throughput (ops/s) vs HEAX at N=2^14, logQ=438",
        columns=["fab_model_ops", "fab_paper_ops", "heax_ops",
                 "model_speedup", "paper_speedup"],
        rows=rows,
        notes="model op = full 8-limb polynomial transform / multiply")


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
