"""Table 7: bootstrapping performance (amortized mult time per slot).

FAB's number comes from the cycle model; each baseline's from its
calibrated analytic device.  Speedups are reported both in time and in
clock cycles, as in the paper.
"""

from __future__ import annotations

from ..core.params import FabConfig
from ..perf.devices import build_baseline_devices
from ..perf.fab import FabDevice
from ..perf.metrics import cycles_speedup
from .common import ExperimentResult, ExperimentRow, print_result

#: Table 7 of the paper: (freq GHz, slots, T_mult,a/slot in us).
PAPER_TABLE7 = {
    "Lattigo": (3.5, 1 << 15, 101.78),
    "GPU-1": (1.2, 1 << 15, 0.740),
    "GPU-2": (1.2, 1 << 16, 0.716),
    "F1": (1.0, 1, 254.46),
    "BTS-2": (1.2, 1 << 16, 0.0455),
    "FAB": (0.3, 1 << 15, 0.477),
}


def run() -> ExperimentResult:
    """Reproduce the bootstrapping comparison."""
    config = FabConfig()
    fab = FabDevice(config)
    fab_us = fab.amortized_mult_us()
    devices = build_baseline_devices()
    rows = []
    for name, device in devices.items():
        model_us = device.amortized_mult_us()
        freq, slots, paper_us = PAPER_TABLE7[name]
        rows.append(ExperimentRow(name, {
            "freq_GHz": freq,
            "slots": slots,
            "model_us": model_us,
            "paper_us": paper_us,
            "fab_speedup_time": model_us / fab_us,
            "fab_speedup_cycles": cycles_speedup(
                model_us, device.spec.freq_hz, fab_us, config.clock_hz),
        }))
    rows.append(ExperimentRow("FAB", {
        "freq_GHz": 0.3,
        "slots": 1 << 15,
        "model_us": fab_us,
        "paper_us": PAPER_TABLE7["FAB"][2],
        "fab_speedup_time": 1.0,
        "fab_speedup_cycles": 1.0,
    }))
    return ExperimentResult(
        experiment_id="table7",
        title="Bootstrapping: amortized mult time per slot "
              "(T_mult,a/slot, us)",
        columns=["freq_GHz", "slots", "model_us", "paper_us",
                 "fab_speedup_time", "fab_speedup_cycles"],
        rows=rows,
        notes="baselines calibrated to their published anchors; FAB is "
              "the cycle model")


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
