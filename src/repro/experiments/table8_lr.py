"""Table 8: logistic-regression training time per iteration.

The HELR workload (11,982 samples, 196 features, 1024-sample batches,
sparse 256-slot ciphertexts, bootstrap every iteration) evaluated on
FAB-1, FAB-2 and the calibrated baselines.
"""

from __future__ import annotations

from ..core.params import FabConfig
from ..perf.devices import build_baseline_devices
from ..perf.fab import Fab2Device, FabDevice
from ..perf.metrics import cycles_speedup
from .common import ExperimentResult, ExperimentRow, print_result

#: Table 8 of the paper: seconds per LR training iteration.
PAPER_TABLE8 = {
    "Lattigo": 37.05,
    "GPU-2": 0.775,
    "F1": 1.024,
    "BTS-2": 0.028,
    "FAB-1": 0.103,
    "FAB-2": 0.081,
}


def run() -> ExperimentResult:
    """Reproduce the LR-training comparison."""
    config = FabConfig()
    fab1 = FabDevice(config)
    fab2 = Fab2Device(config)
    fab2_s = fab2.lr_iteration_seconds()
    devices = build_baseline_devices()
    rows = []
    for name in ("Lattigo", "GPU-2", "F1", "BTS-2"):
        device = devices[name]
        model_s = device.lr_iteration_seconds()
        rows.append(ExperimentRow(name, {
            "model_s": model_s,
            "paper_s": PAPER_TABLE8[name],
            "fab2_speedup_time": model_s / fab2_s,
            "fab2_speedup_cycles": cycles_speedup(
                model_s, device.spec.freq_hz, fab2_s, config.clock_hz),
        }))
    fab1_s = fab1.lr_iteration_seconds()
    rows.append(ExperimentRow("FAB-1", {
        "model_s": fab1_s,
        "paper_s": PAPER_TABLE8["FAB-1"],
        "fab2_speedup_time": fab1_s / fab2_s,
        "fab2_speedup_cycles": fab1_s / fab2_s,
    }))
    rows.append(ExperimentRow("FAB-2", {
        "model_s": fab2_s,
        "paper_s": PAPER_TABLE8["FAB-2"],
        "fab2_speedup_time": 1.0,
        "fab2_speedup_cycles": 1.0,
    }))
    return ExperimentResult(
        experiment_id="table8",
        title="LR training: average seconds per iteration "
              "(sparsely-packed, 256 slots)",
        columns=["model_s", "paper_s", "fab2_speedup_time",
                 "fab2_speedup_cycles"],
        rows=rows,
        notes="GPU-1 omitted as in the paper; bootstrap after every "
              "iteration")


def main() -> None:
    print_result(run())


if __name__ == "__main__":
    main()
