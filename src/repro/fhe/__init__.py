"""Functional RNS-CKKS library: the FHE substrate FAB accelerates.

Public API:

* :class:`CkksParams` / :class:`CkksContext` — parameter sets.
* :class:`CkksScheme` — one-stop facade (keys, encrypt, decrypt,
  evaluator).
* :class:`Evaluator` — Add / Mult / Rescale / Rotate / Conjugate.
* :class:`Bootstrapper` — fully-packed CKKS bootstrapping.
"""

from .ciphertext import Ciphertext
from .context import CkksContext, CkksParams
from .encoder import CkksEncoder, Plaintext
from .evaluator import CkksScheme, Decryptor, Encryptor, Evaluator
from .keys import (GaloisKeySet, KeyGenerator, PublicKey, SecretKey,
                   SwitchingKey, conjugation_element,
                   galois_element_for_rotation)
from .keyswitch import KeySwitcher
from .poly import RnsPolynomial
from .rns import BaseConverter, RnsBasis, get_base_converter
from .align import ScaleAligner
from .bfv import BfvBatchEncoder, BfvParams, BfvScheme
from .noise import NoiseBudget, NoiseEstimator, measure_noise_bits
from .routines import HomomorphicRoutines
from .bootstrap import BootstrapConfig, Bootstrapper

__all__ = [
    "BaseConverter",
    "BfvBatchEncoder",
    "BfvParams",
    "BfvScheme",
    "BootstrapConfig",
    "Bootstrapper",
    "Ciphertext",
    "CkksContext",
    "CkksEncoder",
    "CkksParams",
    "CkksScheme",
    "Decryptor",
    "Encryptor",
    "Evaluator",
    "GaloisKeySet",
    "HomomorphicRoutines",
    "NoiseBudget",
    "NoiseEstimator",
    "KeyGenerator",
    "KeySwitcher",
    "Plaintext",
    "PublicKey",
    "RnsBasis",
    "RnsPolynomial",
    "ScaleAligner",
    "SecretKey",
    "SwitchingKey",
    "conjugation_element",
    "galois_element_for_rotation",
    "measure_noise_bits",
    "get_base_converter",
]
