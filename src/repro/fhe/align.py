"""Scale and level alignment utilities for CKKS ciphertexts.

RNS-CKKS rescaling divides by actual primes (never exactly the nominal
2^scale_bits), so ciphertexts from different circuit branches arrive at
additions with slightly different exact scales.  :class:`ScaleAligner`
restores exact agreement with the standard trick: multiply by the
constant 1.0 encoded at a scale chosen so that the following rescale
lands precisely on the target scale (costing one level on the adjusted
branch).

Used by the bootstrapping polynomial evaluator, the encrypted LR
trainer, and available to applications directly.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from .ciphertext import Ciphertext
from .encoder import CkksEncoder
from .evaluator import Evaluator


class ScaleAligner:
    """Exact scale/level alignment for ciphertext operands."""

    def __init__(self, evaluator: Evaluator, encoder: CkksEncoder):
        self.evaluator = evaluator
        self.encoder = encoder

    # ------------------------------------------------------------------
    # Core adjustment
    # ------------------------------------------------------------------

    def match(self, ct: Ciphertext, scale: float, limbs: int) -> Ciphertext:
        """Bring ``ct`` to exactly ``(scale, limbs)``.

        If the scale already matches, this only drops limbs; otherwise
        it multiplies by 1.0 at a compensating scale and rescales, which
        requires one spare limb.
        """
        ev = self.evaluator
        if math.isclose(ct.scale, scale, rel_tol=1e-9):
            return ev.mod_down_to(ct, limbs)
        if ct.level_count <= limbs:
            raise ValueError(
                "cannot adjust scale without a spare limb "
                f"(have {ct.level_count}, need > {limbs})")
        ct = ev.mod_down_to(ct, limbs + 1)
        q_drop = ct.c0.basis.primes[-1]
        plain_scale = scale * q_drop / ct.scale
        one = self.encoder.encode(
            np.full(ct.num_slots, 1.0, dtype=np.complex128),
            scale=plain_scale, basis=ct.c0.basis, num_slots=ct.num_slots)
        ct = ev.rescale(ev.multiply_plain(ct, one))
        ct.scale = scale  # snap float rounding
        return ct

    def align_pair(self, a: Ciphertext,
                   b: Ciphertext) -> Tuple[Ciphertext, Ciphertext]:
        """Bring two ciphertexts to a common (scale, level)."""
        if math.isclose(a.scale, b.scale, rel_tol=1e-9):
            return self.evaluator.align_levels(a, b)
        if a.level_count > b.level_count:
            return self.match(a, b.scale, b.level_count), b
        if b.level_count > a.level_count:
            return a, self.match(b, a.scale, a.level_count)
        target = a.level_count - 1
        return (self.match(a, b.scale, target),
                self.evaluator.mod_down_to(b, target))

    # ------------------------------------------------------------------
    # Aligned arithmetic
    # ------------------------------------------------------------------

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Addition with automatic alignment."""
        a, b = self.align_pair(a, b)
        return self.evaluator.add(a, b)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Subtraction with automatic alignment."""
        a, b = self.align_pair(a, b)
        return self.evaluator.sub(a, b)

    def add_const(self, ct: Ciphertext, value: complex) -> Ciphertext:
        """Add a scalar constant (free: encoded at the current scale)."""
        pt = self.encoder.encode(
            np.full(ct.num_slots, value, dtype=np.complex128),
            scale=ct.scale, basis=ct.c0.basis, num_slots=ct.num_slots)
        return self.evaluator.add_plain(ct, pt)

    def mul_const(self, ct: Ciphertext, value: complex,
                  target_scale: Optional[float] = None) -> Ciphertext:
        """Multiply by a scalar constant; consumes one level.

        ``target_scale`` lands the output on another branch's exact
        scale so a later addition needs no further alignment.
        """
        q_drop = ct.c0.basis.primes[-1]
        if target_scale is None:
            plain_scale = float(q_drop)
        else:
            plain_scale = target_scale * q_drop / ct.scale
        pt = self.encoder.encode(
            np.full(ct.num_slots, value, dtype=np.complex128),
            scale=plain_scale, basis=ct.c0.basis, num_slots=ct.num_slots)
        out = self.evaluator.rescale(self.evaluator.multiply_plain(ct, pt))
        if target_scale is not None:
            out.scale = target_scale
        return out
