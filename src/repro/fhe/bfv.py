"""A minimal BFV scheme on the shared RNS substrate (§6 of the paper).

The paper notes that FAB's implementations of the basic operations
(Add, Mult, Rotate) "can be used for the BGV and B/FV schemes".  This
module demonstrates that claim functionally: BFV — *exact* integer
arithmetic modulo a plaintext prime ``t`` — built from the very same
substrate pieces the CKKS scheme uses:

* the prime chains and sampling of :class:`~repro.fhe.context.CkksContext`;
* :class:`~repro.fhe.poly.RnsPolynomial` and its NTT/automorphism;
* the hybrid :class:`~repro.fhe.keyswitch.KeySwitcher` (key material is
  scheme-agnostic) for relinearization and rotations;
* :class:`~repro.fhe.ntt.NttContext` *modulo t* for slot batching.

The tensor product with the ``round(t/Q * .)`` scaling is computed with
exact big-integer arithmetic (O(N^2)); this is a correctness reference
at reduced ring sizes, not a performance path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .ciphertext import Ciphertext
from .context import CkksContext, CkksParams
from .keys import (KeyGenerator,
                   conjugation_element, galois_element_for_rotation)
from .keyswitch import KeySwitcher
from .modmath import bit_reverse
from .ntt import get_ntt_context
from .poly import RnsPolynomial


@dataclass(frozen=True)
class BfvParams:
    """BFV parameters: a CKKS-style modulus chain plus a plain modulus.

    ``plain_modulus`` must be a prime ≡ 1 (mod 2N) for slot batching.
    """

    ring_degree: int = 64
    num_limbs: int = 4
    plain_modulus: int = 65537
    dnum: int = 2
    hamming_weight: int = 8
    error_std: float = 3.2
    seed: int = 4242

    def to_ckks_params(self) -> CkksParams:
        """The substrate context configuration."""
        return CkksParams(ring_degree=self.ring_degree,
                          num_limbs=self.num_limbs, scale_bits=28,
                          dnum=self.dnum, first_prime_bits=30,
                          hamming_weight=self.hamming_weight,
                          error_std=self.error_std, seed=self.seed)


class BfvBatchEncoder:
    """Slot batching: N integers mod t per plaintext.

    Slots live at the evaluation points of the NTT modulo ``t``: the
    rotation group (powers of 5) indexes the first N/2 slots and its
    conjugate coset the rest, so CKKS-style rotations act on each row.
    """

    def __init__(self, ring_degree: int, plain_modulus: int):
        if (plain_modulus - 1) % (2 * ring_degree) != 0:
            raise ValueError(
                "plain modulus must be ≡ 1 (mod 2N) for batching")
        self.ring_degree = ring_degree
        self.plain_modulus = plain_modulus
        self.ntt = get_ntt_context(ring_degree, plain_modulus)
        self._slot_to_eval = self._build_slot_map()

    def _build_slot_map(self) -> np.ndarray:
        """Map slot index -> NTT output index.

        NTT output position ``i`` holds the evaluation at
        ``psi^{2*br(i)+1}``; slot ``(row, j)`` wants ``psi^{±5^j}``.
        """
        n = self.ring_degree
        m = 2 * n
        log_n = n.bit_length() - 1
        mapping = np.empty(n, dtype=np.int64)
        power = 1
        for j in range(n // 2):
            for row, exponent in enumerate((power, m - power)):
                slot = j + row * (n // 2)
                mapping[slot] = bit_reverse((exponent - 1) // 2, log_n)
            power = power * 5 % m
        return mapping

    def encode(self, values: Sequence[int]) -> np.ndarray:
        """N slot integers -> plaintext polynomial coefficients mod t."""
        values = list(values)
        n = self.ring_degree
        if len(values) > n:
            raise ValueError(f"at most {n} slots")
        evals = np.zeros(n, dtype=np.int64)
        padded = np.zeros(n, dtype=np.int64)
        padded[:len(values)] = [int(v) % self.plain_modulus
                                for v in values]
        evals[self._slot_to_eval] = padded
        return self.ntt.inverse(evals)

    def decode(self, coeffs: Sequence[int]) -> np.ndarray:
        """Plaintext polynomial coefficients mod t -> slot values."""
        arr = np.array([int(c) % self.plain_modulus for c in coeffs],
                       dtype=np.int64)
        evals = self.ntt.forward(arr)
        return evals[self._slot_to_eval]


class BfvScheme:
    """Exact homomorphic integer arithmetic (add/mult/rotate) mod t."""

    def __init__(self, params: Optional[BfvParams] = None,
                 rotations: Sequence[int] = ()):
        self.params = params or BfvParams()
        self.context = CkksContext(self.params.to_ckks_params())
        self.encoder = BfvBatchEncoder(self.params.ring_degree,
                                       self.params.plain_modulus)
        keygen = KeyGenerator(self.context)
        self.secret_key = keygen.gen_secret_key()
        self.public_key = keygen.gen_public_key(self.secret_key)
        self.relin_key = keygen.gen_relin_key(self.secret_key)
        self.galois_keys = keygen.gen_galois_keys(
            self.secret_key, list(rotations), include_conjugate=True)
        self._keygen = keygen
        self.key_switcher = KeySwitcher(self.context)
        self.q_modulus = self.context.q_basis.modulus
        self.delta = self.q_modulus // self.params.plain_modulus

    # ------------------------------------------------------------------
    # Encryption
    # ------------------------------------------------------------------

    def encrypt(self, values: Sequence[int]) -> Ciphertext:
        """Encrypt a vector of integers mod t."""
        ctx = self.context
        basis = ctx.q_basis
        plain_coeffs = self.encoder.encode(values)
        scaled = [int(c) * self.delta for c in plain_coeffs]
        m_poly = RnsPolynomial.from_int_coeffs(
            scaled, self.params.ring_degree, basis).to_ntt()
        v = ctx.poly_from_small_coeffs(ctx.sample_zo_coeffs(), basis)
        e0 = ctx.poly_from_small_coeffs(ctx.sample_error_coeffs(), basis)
        e1 = ctx.poly_from_small_coeffs(ctx.sample_error_coeffs(), basis)
        c0 = self.public_key.b * v + e0 + m_poly
        c1 = self.public_key.a * v + e1
        return Ciphertext(c0, c1, scale=float(self.delta),
                          num_slots=self.params.ring_degree)

    def decrypt(self, ct: Ciphertext) -> np.ndarray:
        """Decrypt to the exact slot integers mod t."""
        s = self.secret_key.restricted(ct.c0.basis)
        noisy = (ct.c0 + ct.c1 * s).integer_coefficients()
        t = self.params.plain_modulus
        q = ct.c0.basis.modulus
        coeffs = [round(t * c / q) % t for c in noisy]
        return self.encoder.decode(coeffs)

    # ------------------------------------------------------------------
    # Homomorphic operations
    # ------------------------------------------------------------------

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Exact slot-wise addition mod t."""
        return Ciphertext(a.c0 + b.c0, a.c1 + b.c1, a.scale, a.num_slots)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Exact slot-wise subtraction mod t."""
        return Ciphertext(a.c0 - b.c0, a.c1 - b.c1, a.scale, a.num_slots)

    def negate(self, a: Ciphertext) -> Ciphertext:
        """Exact slot-wise negation mod t."""
        return Ciphertext(-a.c0, -a.c1, a.scale, a.num_slots)

    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Exact slot-wise multiplication mod t.

        Tensor product over the integers, scaled by ``round(t/Q * .)``,
        then relinearized with the shared hybrid key switcher.
        """
        n = self.params.ring_degree
        basis = a.c0.basis
        q = basis.modulus
        t = self.params.plain_modulus
        a0, a1 = (np.array(p.integer_coefficients(), dtype=object)
                  for p in (a.c0, a.c1))
        b0, b1 = (np.array(p.integer_coefficients(), dtype=object)
                  for p in (b.c0, b.c1))
        d0 = _negacyclic(a0, b0, n)
        d1 = _negacyclic(a0, b1, n) + _negacyclic(a1, b0, n)
        d2 = _negacyclic(a1, b1, n)

        def rescale_round(vec) -> RnsPolynomial:
            coeffs = [_round_div(t * int(c), q) for c in vec]
            return RnsPolynomial.from_int_coeffs(coeffs, n, basis).to_ntt()

        r0, r1, r2 = (rescale_round(v) for v in (d0, d1, d2))
        u0, u1 = self.key_switcher.switch(r2, self.relin_key)
        return Ciphertext(r0 + u0, r1 + u1, a.scale, a.num_slots)

    def rotate_rows(self, ct: Ciphertext, steps: int) -> Ciphertext:
        """Rotate both slot rows left by ``steps`` (exact)."""
        g = galois_element_for_rotation(self.params.ring_degree, steps)
        return self._apply_galois(ct, g)

    def swap_rows(self, ct: Ciphertext) -> Ciphertext:
        """Exchange the two slot rows (the conjugation element)."""
        return self._apply_galois(
            ct, conjugation_element(self.params.ring_degree))

    def _apply_galois(self, ct: Ciphertext, galois_element: int
                      ) -> Ciphertext:
        key = self.galois_keys[galois_element]
        c0_g = ct.c0.automorphism(galois_element)
        c1_g = ct.c1.automorphism(galois_element)
        u0, u1 = self.key_switcher.switch(c1_g, key)
        return Ciphertext(c0_g + u0, u1, ct.scale, ct.num_slots)

    def add_rotation_keys(self, rotations: Sequence[int]) -> None:
        """Generate extra rotation keys."""
        for k in rotations:
            g = galois_element_for_rotation(self.params.ring_degree, k)
            if g not in self.galois_keys:
                self.galois_keys.keys[g] = self._keygen.gen_galois_key(
                    self.secret_key, g)


def _negacyclic(a, b, n):
    """Exact big-integer negacyclic convolution (object dtype)."""
    out = np.zeros(n, dtype=object)
    for i in range(n):
        ai = int(a[i])
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            term = ai * int(b[j])
            if k >= n:
                out[k - n] -= term
            else:
                out[k] += term
    return out


def _round_div(numerator: int, denominator: int) -> int:
    """Round-to-nearest integer division for signed numerators."""
    if numerator >= 0:
        return (numerator + denominator // 2) // denominator
    return -((-numerator + denominator // 2) // denominator)
