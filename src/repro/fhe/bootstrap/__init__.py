"""CKKS bootstrapping: linear transforms, EvalMod, and the pipeline."""

from .linear_transform import LinearTransform, bsgs_split, matrix_diagonals
from .pipeline import BootstrapConfig, Bootstrapper
from .polyeval import (ChebyshevEvaluator, chebyshev_divide, chebyshev_fit,
                       chebyshev_reference_eval)

__all__ = [
    "BootstrapConfig",
    "Bootstrapper",
    "ChebyshevEvaluator",
    "LinearTransform",
    "bsgs_split",
    "chebyshev_divide",
    "chebyshev_fit",
    "chebyshev_reference_eval",
    "matrix_diagonals",
]
