"""Homomorphic linear transforms via the BSGS diagonal method.

The two linear transforms in CKKS bootstrapping (CoeffToSlot and
SlotToCoeff, §2.1.3 of the paper) are matrix-vector products evaluated
homomorphically.  A matrix ``M`` acts on the slot vector as

    M z = sum_d diag_d(M) ⊙ rot_d(z)

and the baby-step/giant-step (BSGS) grouping reduces the rotation count
from ``n`` to about ``n1 + n/n1``:

    M z = sum_i rot_{i*n1}( sum_j rot_{-i*n1}(diag_{i*n1+j}) ⊙ rot_j(z) )

Rotations are exactly the ``Automorph`` + ``KeySwitch`` pipeline that
dominates FAB's bootstrapping cost; the rotation counts of this module
are mirrored analytically by :mod:`repro.perf.opcounts`.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Set

import numpy as np

from ..ciphertext import Ciphertext
from ..encoder import CkksEncoder
from ..evaluator import Evaluator


def matrix_diagonals(matrix: np.ndarray) -> Dict[int, np.ndarray]:
    """Extract the nonzero generalized diagonals of a square matrix.

    Diagonal ``d`` is the vector ``diag_d[j] = M[j, (j + d) mod n]``.
    Diagonals with negligible magnitude (< 1e-14 of the max) are dropped.
    """
    matrix = np.asarray(matrix, dtype=np.complex128)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("matrix must be square")
    threshold = 1e-14 * max(1.0, float(np.max(np.abs(matrix))))
    diagonals: Dict[int, np.ndarray] = {}
    rows = np.arange(n)
    for d in range(n):
        diag = matrix[rows, (rows + d) % n]
        if np.max(np.abs(diag)) > threshold:
            diagonals[d] = diag
    return diagonals


def bsgs_split(num_diagonals: int, n: int) -> int:
    """Pick the baby-step count n1 (power of two) minimizing rotations."""
    best_n1, best_cost = 1, float("inf")
    n1 = 1
    while n1 <= n:
        n2 = math.ceil(n / n1)
        cost = (n1 - 1) + (n2 - 1)
        if cost < best_cost:
            best_cost, best_n1 = cost, n1
        n1 *= 2
    return best_n1


class LinearTransform:
    """A precomputed homomorphic matrix-vector product.

    The diagonals are rotated for the BSGS grouping and encoded lazily
    at the ciphertext's level with scale equal to the prime that will be
    dropped by the trailing rescale, so the output scale equals the
    input scale exactly.
    """

    def __init__(self, matrix: np.ndarray, num_slots: int,
                 encoder: CkksEncoder, baby_steps: Optional[int] = None,
                 plain_levels: int = 1):
        matrix = np.asarray(matrix, dtype=np.complex128)
        if matrix.shape != (num_slots, num_slots):
            raise ValueError(
                f"matrix shape {matrix.shape} != ({num_slots}, {num_slots})")
        if plain_levels < 1:
            raise ValueError("plain_levels must be >= 1")
        self.num_slots = num_slots
        self.encoder = encoder
        self.diagonals = matrix_diagonals(matrix)
        if not self.diagonals:
            raise ValueError("matrix has no nonzero diagonals")
        self.baby_steps = baby_steps or bsgs_split(len(self.diagonals),
                                                   num_slots)
        self.giant_count = math.ceil(num_slots / self.baby_steps)
        #: Number of limbs the plaintext diagonals span (> 1 buys
        #: precision when the matrix entries are very small, as in
        #: CoeffToSlot where the 1/(q0 K) factor is folded in).
        self.plain_levels = plain_levels

    # ------------------------------------------------------------------

    def required_rotations(self) -> Set[int]:
        """Slot rotations needed (for Galois-key generation)."""
        rotations: Set[int] = set()
        n1 = self.baby_steps
        for j in range(1, n1):
            if any(((i * n1 + j) % self.num_slots) in self.diagonals
                   for i in range(self.giant_count)):
                rotations.add(j)
        for i in range(1, self.giant_count):
            if any(((i * n1 + j) % self.num_slots) in self.diagonals
                   for j in range(n1)):
                rotations.add(i * n1)
        rotations.discard(0)
        return rotations

    def apply(self, ct: Ciphertext, evaluator: Evaluator) -> Ciphertext:
        """Evaluate ``M @ slots(ct)`` homomorphically.

        Consumes exactly one level (single trailing rescale); the output
        scale equals the input scale.
        """
        n = self.num_slots
        n1 = self.baby_steps
        basis = ct.c0.basis
        if len(basis) < self.plain_levels + 1:
            raise ValueError(
                f"linear transform needs at least {self.plain_levels + 1} "
                "limbs")
        plain_scale = 1.0
        for q in basis.primes[-self.plain_levels:]:
            plain_scale *= float(q)
        # Baby-step rotations of the input, with a hoisted (shared)
        # ModUp — the optimization of [5] that FAB's bootstrapping
        # algorithm relies on.
        baby_steps = [j for j in range(1, n1)
                      if any(((i * n1 + j) % n) in self.diagonals
                             for i in range(self.giant_count))]
        babies: Dict[int, Ciphertext] = {0: ct}
        babies.update(evaluator.rotate_hoisted(ct, baby_steps))
        total: Optional[Ciphertext] = None
        for i in range(self.giant_count):
            inner: Optional[Ciphertext] = None
            shift = i * n1
            for j in range(n1):
                d = (shift + j) % n
                diag = self.diagonals.get(d)
                if diag is None or j not in babies:
                    continue
                # rot_{-shift}(diag): with rot_k = left-rotation by k,
                # this is a right roll by `shift`.
                rotated_diag = np.roll(diag, shift)
                pt = self.encoder.encode(
                    rotated_diag, scale=plain_scale, basis=basis,
                    num_slots=n)
                term = evaluator.multiply_plain(babies[j], pt)
                inner = term if inner is None else evaluator.add(inner, term)
            if inner is None:
                continue
            if shift:
                inner = evaluator.rotate(inner, shift)
            total = inner if total is None else evaluator.add(total, inner)
        if total is None:
            raise ValueError("transform produced no terms")
        for _ in range(self.plain_levels):
            total = evaluator.rescale(total)
        return total
