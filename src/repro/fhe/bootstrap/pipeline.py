"""The full CKKS bootstrapping pipeline (§2.1.3 of the paper).

Bootstrapping raises an exhausted ciphertext (one limb left) back to a
high level so computation can continue indefinitely.  The pipeline is
the standard one the paper accelerates:

1. **ModRaise** — reinterpret the level-0 ciphertext over the full
   modulus chain; the plaintext becomes ``t = m + q0 * I`` for a small
   integer polynomial ``I``.
2. **CoeffToSlot** — a homomorphic linear transform moving the
   coefficients of ``t`` into slots (two real vectors, obtained from a
   single BSGS matrix product plus a conjugation).
3. **EvalMod** — approximate ``t mod q0`` with the scaled sine
   ``(q0 / 2*pi) * sin(2*pi*t/q0)`` evaluated as a Chebyshev series
   (Bossuat et al. [5], the polynomial used by the paper).
4. **SlotToCoeff** — the inverse linear transform.

The depth of the whole circuit is ``LBoot = 2*fftIter + 9`` in the
paper's accounting; the functional pipeline here evaluates each linear
transform as a single dense BSGS product (fftIter = 1 functionally),
while the fftIter > 1 decompositions are modelled analytically by
:mod:`repro.perf.opcounts` (they trade depth for rotation count but do
not change results).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Set

import numpy as np

from ..ciphertext import Ciphertext
from ..encoder import rotation_group_indices
from ..evaluator import CkksScheme
from ..poly import RnsPolynomial
from .linear_transform import LinearTransform
from .polyeval import ChebyshevEvaluator, chebyshev_fit


@dataclass
class BootstrapConfig:
    """Tunable knobs for the bootstrapping pipeline.

    Attributes:
        eval_mod_degree: Chebyshev degree of the sine approximation.
        modulus_range: K, the bound on ``|t / q0|``; the sine is
            approximated on ``[-K, K]``.  Must dominate the secret-key
            dependent overflow ``|I|``.
        baby_count: optional override of the Paterson–Stockmeyer baby
            step count.
    """

    eval_mod_degree: int = 63
    modulus_range: int = 8
    baby_count: Optional[int] = None


class Bootstrapper:
    """Precomputes and runs CKKS bootstrapping for one scheme instance.

    Only fully-packed ciphertexts (num_slots == N/2) are supported by
    the functional pipeline, matching the paper's headline operation
    ("fully-packed bootstrapping").
    """

    def __init__(self, scheme: CkksScheme,
                 config: Optional[BootstrapConfig] = None,
                 num_slots: Optional[int] = None):
        self.scheme = scheme
        self.config = config or BootstrapConfig()
        params = scheme.params
        self.ring_degree = params.ring_degree
        #: Slot count this bootstrapper serves: N/2 (fully packed, the
        #: paper's headline operation) or a smaller power of two
        #: (sparse packing, used by the LR application).
        self.num_slots = (num_slots if num_slots is not None
                          else params.ring_degree // 2)
        if self.num_slots > params.ring_degree // 2:
            raise ValueError("num_slots must be <= N/2")
        self.q0 = scheme.context.moduli[0]
        self.base_scale = params.scale
        self._build_matrices()
        self._ensure_keys()
        self.cheb = ChebyshevEvaluator(scheme.evaluator, scheme.encoder)
        self._fit_eval_mod()

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------

    def _build_matrices(self) -> None:
        n = self.num_slots
        ring_degree = self.ring_degree
        m = 2 * ring_degree
        idx = rotation_group_indices(ring_degree)  # 5^j mod 2N
        zeta = np.exp(1j * np.pi / ring_degree)
        # Sparse packing (n < N/2) replicates the message, so the
        # plaintext polynomial lives in the subring of x^d, d = N/(2n):
        # only coefficients at multiples of d are nonzero.  The decode
        # map restricted to those coefficients is an n x n matrix
        # A[j, k] = zeta^{5^j * k * d}; the high coefficient half
        # contributes through B = i * A exactly as in the fully-packed
        # case (since n * d = N/2 and zeta^{N/2} = i).
        stride = ring_degree // (2 * n)
        powers = (idx[:n, None] * (np.arange(n) * stride)[None, :]) % m
        decode_half = zeta ** powers
        k = self.config.modulus_range
        fold = self.base_scale / (self.q0 * k)
        # CoeffToSlot folds the replication: slot j of the sparse view
        # aggregates the full-packing slots {j + r*n}.  After SubSum the
        # message is scaled by the replication factor R, which EvalMod's
        # amplitude divides back out.
        self.replication = ring_degree // (2 * n)
        cts = np.zeros((n, n), dtype=np.complex128)
        coeff_idx = np.arange(n) * stride
        for r in range(self.replication):
            rows = idx[np.arange(n) + r * n]
            cts += np.conj(zeta ** ((rows[None, :] * coeff_idx[:, None])
                                    % m))
        coeff_to_slot = cts / ring_degree * fold
        # CoeffToSlot entries are tiny (the 1/(q0 K) fold), so give the
        # encoded diagonals two limbs of precision.
        self.cts_transform = LinearTransform(coeff_to_slot, n,
                                             self.scheme.encoder,
                                             plain_levels=2)
        self.stc_transform = LinearTransform(decode_half, n,
                                             self.scheme.encoder)

    def _ensure_keys(self) -> None:
        rotations: Set[int] = set()
        rotations |= self.cts_transform.required_rotations()
        rotations |= self.stc_transform.required_rotations()
        # SubSum rotations for sparse packing: n, 2n, 4n, ...
        step = self.num_slots
        while step < self.ring_degree // 2:
            rotations.add(step)
            step *= 2
        self.scheme.add_rotation_keys(sorted(rotations))

    def _fit_eval_mod(self) -> None:
        k = self.config.modulus_range
        # SubSum scales the message by the replication factor; divide it
        # back out of the sine amplitude.
        amplitude = self.q0 / (2.0 * np.pi * self.base_scale
                               * self.replication)

        def target(x):
            return amplitude * np.sin(2.0 * np.pi * k * x)

        self.eval_mod_coeffs = chebyshev_fit(target,
                                             self.config.eval_mod_degree)

    # ------------------------------------------------------------------
    # Pipeline stages (public for tests and for the FAB cost model)
    # ------------------------------------------------------------------

    def mod_raise(self, ct: Ciphertext) -> Ciphertext:
        """Re-express a low-level ciphertext over the full modulus chain.

        The underlying plaintext becomes ``t = m + q0 * I`` with
        ``|I| <~ (1 + hamming_weight)/2``.
        """
        context = self.scheme.context
        full = context.q_basis
        if ct.level_count != 1:
            raise ValueError(
                "mod_raise expects a level-0 (single-limb) ciphertext; "
                "mod-switch down first")

        def raise_poly(poly: RnsPolynomial) -> RnsPolynomial:
            coeff = poly.to_coeff()
            q = poly.basis.primes[0]
            values = coeff.limbs[0]
            centered = np.where(values >= (q + 1) // 2, values - q, values)
            lifted = RnsPolynomial.from_int_coeffs(
                [int(v) for v in centered], self.ring_degree, full)
            return lifted.to_ntt()

        return Ciphertext(raise_poly(ct.c0), raise_poly(ct.c1), ct.scale,
                          ct.num_slots)

    def sub_sum(self, ct: Ciphertext) -> Ciphertext:
        """Project a raised sparse ciphertext back into the subring.

        After ModRaise the overflow polynomial ``I`` has full support,
        but a sparse message lives in the subring of ``x^d``.  Summing
        the ``R = N/(2n)`` rotations by multiples of ``n`` (the Galois
        subgroup fixing the subring) projects ``t`` onto it, scaling the
        message by ``R`` (absorbed by the EvalMod amplitude).  This is
        the standard SubSum step of sparse bootstrapping.
        """
        if self.replication == 1:
            return ct
        ev = self.scheme.evaluator
        acc = ct
        step = self.num_slots
        while step < self.ring_degree // 2:
            acc = ev.add(acc, ev.rotate(acc, step))
            step *= 2
        return acc

    def coeff_to_slot(self, ct: Ciphertext):
        """Move coefficients into slots; returns (real_part, imag_part).

        Both outputs decode to ``t_k / (q0 * K)``: the first holds the
        low coefficient half, the second the high half.
        """
        ev = self.scheme.evaluator
        u = self.cts_transform.apply(ct, ev)
        u_conj = ev.conjugate(u)
        real_part = ev.add(u, u_conj)
        imag_part = ev.multiply_by_i(ev.sub(u_conj, u), power=1)
        return real_part, imag_part

    def eval_mod(self, ct: Ciphertext) -> Ciphertext:
        """Approximate the modular reduction on slot values in [-1, 1]."""
        return self.cheb.evaluate(ct, self.eval_mod_coeffs,
                                  baby_count=self.config.baby_count)

    def slot_to_coeff(self, real_part: Ciphertext,
                      imag_part: Ciphertext) -> Ciphertext:
        """Pack the two coefficient halves back into a ciphertext."""
        ev = self.scheme.evaluator
        imag_scaled = ev.multiply_by_i(imag_part, power=1)
        combined = self.cheb.add_aligned(real_part, imag_scaled)
        return self.stc_transform.apply(combined, ev)

    # ------------------------------------------------------------------
    # Full bootstrap
    # ------------------------------------------------------------------

    def bootstrap(self, ct: Ciphertext) -> Ciphertext:
        """Run the full pipeline; the result encrypts the same message
        at a higher level (more limbs), enabling further multiplication.
        """
        if ct.num_slots != self.num_slots:
            raise ValueError(
                f"this bootstrapper serves {self.num_slots}-slot "
                f"ciphertexts; got {ct.num_slots} (construct a "
                "Bootstrapper with matching num_slots)")
        ev = self.scheme.evaluator
        if ct.level_count > 1:
            ct = ev.mod_down_to(ct, 1)
        if not math.isclose(ct.scale, self.base_scale, rel_tol=1e-6):
            raise ValueError(
                "bootstrap input must be at the context scale "
                f"(2^{math.log2(self.base_scale):.1f})")
        raised = self.sub_sum(self.mod_raise(ct))
        real_part, imag_part = self.coeff_to_slot(raised)
        real_red = self.eval_mod(real_part)
        imag_red = self.eval_mod(imag_part)
        return self.slot_to_coeff(real_red, imag_red)

    def levels_after_bootstrap(self) -> int:
        """How many multiplications the refreshed ciphertext supports."""
        probe = self.scheme.encrypt(
            np.zeros(self.num_slots), num_slots=self.num_slots)
        probe = self.scheme.evaluator.mod_down_to(probe, 1)
        refreshed = self.bootstrap(probe)
        return refreshed.level_count - 1
