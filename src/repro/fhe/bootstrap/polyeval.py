"""Homomorphic Chebyshev polynomial evaluation (Paterson–Stockmeyer).

The polynomial-evaluation step of bootstrapping (EvalMod) approximates
the modular-reduction function with a scaled sine, following Bossuat et
al. [5] as adopted by the paper (§2.1.3, multiplicative depth 9 at the
paper's parameters).  The approximation is expressed in the Chebyshev
basis and evaluated with a baby-step/giant-step recursion:

  * baby steps  ``T_1 .. T_{m-1}`` via ``T_{a+b} = 2 T_a T_b - T_{|a-b|}``
  * giant steps ``T_{m 2^k}``     via ``T_{2g} = 2 T_g^2 - 1``
  * the recursion ``p = q * T_g + r`` using Chebyshev division.

Scale management uses the exact-prime trick: plaintext constants are
encoded at scales chosen so that every rescale lands on the reference
scale exactly, avoiding scale-mismatch noise.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

import numpy as np

from ..align import ScaleAligner
from ..ciphertext import Ciphertext
from ..encoder import CkksEncoder
from ..evaluator import Evaluator

#: Coefficients below this magnitude are treated as zero.
COEFF_TOLERANCE = 1e-13


def chebyshev_fit(func: Callable[[np.ndarray], np.ndarray],
                  degree: int) -> np.ndarray:
    """Chebyshev-interpolate ``func`` on [-1, 1] at ``degree + 1`` nodes."""
    return np.polynomial.chebyshev.chebinterpolate(func, degree)


def chebyshev_divide(coeffs: np.ndarray, divisor_degree: int):
    """Divide a Chebyshev-basis polynomial by ``T_g``.

    Returns ``(quotient, remainder)`` with
    ``p = quotient * T_g + remainder`` and both of degree < g, using
    ``T_j = 2 T_g T_{j-g} - T_{2g-j}`` for ``g <= j <= 2g``.
    Requires ``deg(p) < 2g``.
    """
    g = divisor_degree
    degree = len(coeffs) - 1
    if degree >= 2 * g:
        raise ValueError(f"degree {degree} too large for divisor T_{g}")
    quotient = np.zeros(max(degree - g + 1, 1), dtype=np.float64)
    remainder = np.array(coeffs[:g], dtype=np.float64).copy()
    remainder = np.resize(remainder, g)
    if degree < g:
        return np.zeros(1), np.array(coeffs, dtype=np.float64)
    for j in range(g, degree + 1):
        c = coeffs[j]
        if j == g:
            quotient[0] += c
        else:
            quotient[j - g] += 2.0 * c
            remainder[2 * g - j] -= c
    return quotient, remainder


def chebyshev_reference_eval(coeffs: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Plain (non-homomorphic) evaluation, for tests."""
    return np.polynomial.chebyshev.chebval(x, coeffs)


class ChebyshevEvaluator:
    """Evaluates Chebyshev-basis polynomials on a ciphertext.

    The input ciphertext must encrypt values already normalized to the
    Chebyshev domain [-1, 1].
    """

    def __init__(self, evaluator: Evaluator, encoder: CkksEncoder):
        self.evaluator = evaluator
        self.encoder = encoder
        self._aligner = ScaleAligner(evaluator, encoder)

    # ------------------------------------------------------------------
    # Scale / level alignment helpers (delegated to ScaleAligner)
    # ------------------------------------------------------------------

    def _match(self, ct: Ciphertext, scale: float, limbs: int) -> Ciphertext:
        """Bring ``ct`` to exactly (``scale``, ``limbs``)."""
        return self._aligner.match(ct, scale, limbs)

    def _align_pair(self, a: Ciphertext, b: Ciphertext):
        """Bring two ciphertexts to a common (scale, level)."""
        return self._aligner.align_pair(a, b)

    def add_aligned(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Addition with automatic scale/level alignment."""
        return self._aligner.add(a, b)

    def sub_aligned(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Subtraction with automatic scale/level alignment."""
        return self._aligner.sub(a, b)

    def add_const(self, ct: Ciphertext, value: float) -> Ciphertext:
        """Add a scalar constant (encoded at the ciphertext's scale)."""
        return self._aligner.add_const(ct, value)

    def mul_const(self, ct: Ciphertext, value: float,
                  target_scale: Optional[float] = None) -> Ciphertext:
        """Multiply by a scalar constant; consumes one level."""
        return self._aligner.mul_const(ct, value, target_scale)

    # ------------------------------------------------------------------
    # Chebyshev power ladder
    # ------------------------------------------------------------------

    def _cheb_step(self, t_a: Ciphertext, t_b: Ciphertext,
                   t_sub: Optional[Ciphertext]) -> Ciphertext:
        """``T_{a+b} = 2 T_a T_b - T_{|a-b|}`` (t_sub None means a == b,
        where the subtrahend is the constant 1)."""
        ev = self.evaluator
        prod = ev.multiply(t_a, t_b)
        prod = ev.rescale(prod)
        prod = ev.multiply_scalar_int(prod, 2)
        if t_sub is None:
            return self.add_const(prod, -1.0)
        return self.sub_aligned(prod, t_sub)

    def compute_powers(self, ct: Ciphertext, baby_count: int,
                       giant_levels: int) -> Dict[int, Ciphertext]:
        """Compute ``T_j`` for j < baby_count and ``T_{baby_count * 2^k}``.

        ``ct`` is ``T_1``.  Returns a dict keyed by Chebyshev index.
        """
        powers: Dict[int, Ciphertext] = {1: ct}
        for j in range(2, baby_count):
            a = j // 2
            b = j - a
            t_sub = None if a == b else powers[abs(a - b)]
            powers[j] = self._cheb_step(powers[a], powers[b], t_sub)
        g = baby_count
        if g > 1:
            half = g // 2
            if half not in powers:
                raise ValueError("baby_count must be a power of two")
            powers[g] = self._cheb_step(powers[half], powers[half], None)
            for _ in range(giant_levels):
                powers[2 * g] = self._cheb_step(powers[g], powers[g], None)
                g *= 2
        return powers

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, ct: Ciphertext, coeffs: np.ndarray,
                 baby_count: Optional[int] = None) -> Ciphertext:
        """Evaluate ``sum_j coeffs[j] T_j(x)`` on ``ct`` (x in [-1, 1])."""
        coeffs = np.asarray(coeffs, dtype=np.float64)
        degree = len(coeffs) - 1
        while degree > 0 and abs(coeffs[degree]) < COEFF_TOLERANCE:
            degree -= 1
        coeffs = coeffs[:degree + 1]
        if degree == 0:
            zero = self.evaluator.multiply_scalar_int(ct, 0)
            return self.add_const(zero, float(coeffs[0]))
        if baby_count is None:
            baby_count = 1 << max(1, math.ceil(math.log2(degree + 1) / 2))
        giant_levels = 0
        reach = baby_count
        while reach <= degree:
            reach *= 2
            giant_levels += 1
        giant_levels = max(giant_levels - 1, 0)
        powers = self.compute_powers(ct, baby_count, giant_levels)
        # Normalize the babies to a common (scale, level) so linear
        # combinations stay exact.
        baby_idx = [j for j in range(1, baby_count)] or [1]
        min_limbs = min(powers[j].level_count for j in baby_idx)
        ref_scale = next(powers[j].scale for j in baby_idx
                         if powers[j].level_count == min_limbs)
        if not all(math.isclose(powers[j].scale, ref_scale, rel_tol=1e-9)
                   for j in baby_idx):
            # Babies at the same level can carry different exact scales
            # (different rescale histories); burn one level to re-align.
            min_limbs -= 1
        for j in baby_idx:
            powers[j] = self._match(powers[j], ref_scale, min_limbs)
        return self._eval_recursive(coeffs, powers, baby_count)

    def _eval_recursive(self, coeffs: np.ndarray,
                        powers: Dict[int, Ciphertext],
                        baby_count: int) -> Ciphertext:
        degree = len(coeffs) - 1
        while degree > 0 and abs(coeffs[degree]) < COEFF_TOLERANCE:
            degree -= 1
        coeffs = coeffs[:degree + 1]
        if degree < baby_count:
            return self._eval_linear(coeffs, powers, baby_count)
        g = baby_count
        while 2 * g <= degree:
            g *= 2
        quotient, remainder = chebyshev_divide(coeffs, g)
        q_ct = self._eval_recursive(quotient, powers, baby_count)
        prod = self.evaluator.multiply(*self._align_for_product(
            q_ct, powers[g]))
        prod = self.evaluator.rescale(prod)
        r_ct = self._eval_recursive(remainder, powers, baby_count)
        return self.add_aligned(prod, r_ct)

    def _align_for_product(self, a: Ciphertext, b: Ciphertext):
        """Align levels (scales need not match for products)."""
        return self.evaluator.align_levels(a, b)

    def _eval_linear(self, coeffs: np.ndarray,
                     powers: Dict[int, Ciphertext],
                     baby_count: int) -> Ciphertext:
        """Base case: ``c_0 + sum_{1<=j<m} c_j T_j`` via plain multiplies."""
        ref = powers[1]
        basis = ref.c0.basis
        q_drop = basis.primes[-1]
        total: Optional[Ciphertext] = None
        for j in range(1, min(len(coeffs), baby_count)):
            c = float(coeffs[j])
            if abs(c) < COEFF_TOLERANCE and j != 1:
                continue
            t_j = powers[j]
            pt = self.encoder.encode(
                np.full(t_j.num_slots, c, dtype=np.complex128),
                scale=float(q_drop), basis=t_j.c0.basis,
                num_slots=t_j.num_slots)
            term = self.evaluator.multiply_plain(t_j, pt)
            total = term if total is None else self.evaluator.add(total, term)
        if total is None:
            total = self.evaluator.multiply_scalar_int(
                self.evaluator.multiply_plain(
                    ref, self.encoder.encode(
                        [1.0], scale=float(q_drop), basis=basis,
                        num_slots=ref.num_slots)), 0)
        if len(coeffs) > 0 and abs(coeffs[0]) > COEFF_TOLERANCE:
            pt0 = self.encoder.encode(
                np.full(total.num_slots, float(coeffs[0]),
                        dtype=np.complex128),
                scale=total.scale, basis=total.c0.basis,
                num_slots=total.num_slots)
            total = self.evaluator.add_plain(total, pt0)
        return self.evaluator.rescale(total)
