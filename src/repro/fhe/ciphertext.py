"""CKKS ciphertexts.

A ciphertext is a pair ``(c0, c1)`` of RNS polynomials over the current
level's basis, decrypting as ``m ~= c0 + c1 * s``.  The number of limbs
is the paper's ``l`` (current level); each rescale consumes one limb.
"""

from __future__ import annotations

import math

from .poly import RnsPolynomial


class Ciphertext:
    """A two-element CKKS ciphertext.

    Attributes:
        c0, c1: NTT-domain RNS polynomials over the current basis.
        scale: the current encoding scale Delta'.
        num_slots: plaintext slot count (for sparse packing bookkeeping).
    """

    __slots__ = ("c0", "c1", "scale", "num_slots")

    def __init__(self, c0: RnsPolynomial, c1: RnsPolynomial, scale: float,
                 num_slots: int):
        if c0.basis != c1.basis:
            raise ValueError("ciphertext halves must share a basis")
        if c0.is_ntt != c1.is_ntt:
            raise ValueError("ciphertext halves must share representation")
        self.c0 = c0
        self.c1 = c1
        self.scale = float(scale)
        self.num_slots = num_slots

    @property
    def level_count(self) -> int:
        """Current number of limbs l (levels remaining = l - 1)."""
        return len(self.c0.basis)

    @property
    def ring_degree(self) -> int:
        """Ring dimension N."""
        return self.c0.ring_degree

    def copy(self) -> "Ciphertext":
        """Deep copy."""
        return Ciphertext(self.c0.copy(), self.c1.copy(), self.scale,
                          self.num_slots)

    def size_bytes(self, limb_bytes: int = 8) -> int:
        """In-memory footprint of the limb data."""
        return (self.c0.limbs.size + self.c1.limbs.size) * limb_bytes

    def __repr__(self) -> str:
        return (f"Ciphertext(N={self.ring_degree}, limbs={self.level_count}, "
                f"scale=2^{math.log2(self.scale):.1f}, "
                f"slots={self.num_slots})")
