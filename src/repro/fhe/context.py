"""CKKS parameter sets and shared context.

The context owns the prime chains (the RNS limbs of Q and the extension
limbs of P used by hybrid key switching), the digit layout of the
Han–Ki decomposition (dnum / alpha, §2.1.5 of the paper), and the
randomness used for key generation and encryption.

Functional-layer parameter sets use small rings and < 2^31 primes; the
paper-scale set (N = 2^16, log q = 54, L = 23, dnum = 3) is exercised
by the analytic performance model in :mod:`repro.core` / :mod:`repro.perf`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .modmath import ilog2
from .poly import RnsPolynomial
from .primes import generate_prime_chain, find_ntt_prime
from .rns import RnsBasis


@dataclass(frozen=True)
class CkksParams:
    """Static CKKS parameters.

    Attributes:
        ring_degree: polynomial modulus degree N (power of two).
        num_limbs: L + 1, the number of primes in the full modulus Q.
        scale_bits: log2 of the encoding scale Delta; rescale primes are
            chosen near 2**scale_bits.
        first_prime_bits: width of the base modulus q0 (defaults to
            scale_bits + 5 to leave headroom for the final message).
        dnum: number of digits in the hybrid key-switching decomposition.
        num_extension_limbs: number of extension primes comprising P
            (defaults to alpha = ceil(num_limbs / dnum), the paper's
            digit size; Table 1 allows alpha + 1 for extra noise margin).
        hamming_weight: number of nonzero coefficients in the ternary
            secret key.
        error_std: standard deviation of the (rounded Gaussian) noise.
        num_slots: plaintext slots n (defaults to N / 2; smaller values
            use replicated sparse packing).
    """

    ring_degree: int
    num_limbs: int
    scale_bits: int
    dnum: int = 3
    first_prime_bits: Optional[int] = None
    num_extension_limbs: Optional[int] = None
    hamming_weight: int = 64
    error_std: float = 3.2
    num_slots: Optional[int] = None
    seed: int = 2023

    def __post_init__(self):
        ilog2(self.ring_degree)
        if self.num_limbs < 1:
            raise ValueError("need at least one limb")
        if not 1 <= self.dnum <= self.num_limbs:
            raise ValueError("dnum must be in [1, num_limbs]")
        slots = self.num_slots
        if slots is not None:
            ilog2(slots)
            if slots > self.ring_degree // 2:
                raise ValueError("num_slots must be <= N/2")

    @property
    def alpha(self) -> int:
        """Digit size: number of limbs per key-switching digit."""
        return (self.num_limbs + self.dnum - 1) // self.dnum

    @property
    def extension_limbs(self) -> int:
        """Number of extension primes in P."""
        if self.num_extension_limbs is not None:
            return self.num_extension_limbs
        return self.alpha

    @property
    def slots(self) -> int:
        """Number of plaintext slots."""
        return self.num_slots if self.num_slots is not None else self.ring_degree // 2

    @property
    def max_level(self) -> int:
        """L: the maximum level (num_limbs - 1)."""
        return self.num_limbs - 1

    @property
    def scale(self) -> float:
        """The default encoding scale Delta."""
        return float(2 ** self.scale_bits)


class CkksContext:
    """Shared state for one CKKS instantiation.

    Owns the prime chains, digit layout, and the RNG streams.  All
    encoder / key-generator / evaluator objects reference one context.
    """

    def __init__(self, params: CkksParams):
        self.params = params
        n = params.ring_degree
        first_bits = params.first_prime_bits
        if first_bits is None:
            first_bits = min(params.scale_bits + 5, 30)
        # Modulus chain: q0 wider, then rescale primes near 2**scale_bits.
        self.moduli: List[int] = generate_prime_chain(
            params.num_limbs, params.scale_bits, n, first_bits=first_bits)
        # Extension primes (the limbs of P): slightly wider than the
        # rescale primes so that P comfortably exceeds any single digit.
        ext_bits = min(params.scale_bits + 1, 30)
        ext: List[int] = []
        below = None
        while len(ext) < params.extension_limbs:
            p = find_ntt_prime(ext_bits, n, avoid=self.moduli + ext,
                               below=below)
            ext.append(p)
            below = p
        self.extension_moduli = ext
        self.q_basis = RnsBasis(self.moduli)
        self.p_basis = RnsBasis(self.extension_moduli)
        self.full_basis = RnsBasis(self.moduli + self.extension_moduli)
        self._rng = np.random.default_rng(params.seed)

    # ------------------------------------------------------------------
    # Basis helpers
    # ------------------------------------------------------------------

    def basis_at_level(self, num_limbs: int) -> RnsBasis:
        """The Q-basis truncated to ``num_limbs`` limbs."""
        return self.q_basis.subbasis(num_limbs)

    def digit_indices(self, num_limbs: int) -> List[List[int]]:
        """Group the first ``num_limbs`` limb indices by key-switch digit.

        Digits are defined by the full-modulus layout (alpha limbs per
        digit); at lower levels trailing digits shrink or vanish, which
        is how hybrid key switching stays valid across levels.
        """
        alpha = self.params.alpha
        digits: List[List[int]] = []
        for start in range(0, num_limbs, alpha):
            digits.append(list(range(start, min(start + alpha, num_limbs))))
        return digits

    @property
    def p_modulus(self) -> int:
        """P, the product of the extension primes (exact big integer)."""
        return self.p_basis.modulus

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def sample_uniform(self, basis: RnsBasis, ntt: bool = True) -> RnsPolynomial:
        """Uniform ring element over the given basis.

        Independent uniform residues per limb are exactly uniform mod Q
        by the CRT bijection.
        """
        n = self.params.ring_degree
        limbs = np.empty((len(basis), n), dtype=np.int64)
        for i, q in enumerate(basis.primes):
            limbs[i] = self._rng.integers(0, q, n, dtype=np.int64)
        return RnsPolynomial(n, basis, limbs, is_ntt=ntt)

    def sample_ternary_coeffs(self, hamming_weight: Optional[int] = None) -> np.ndarray:
        """Sparse ternary coefficient vector with the given Hamming weight."""
        n = self.params.ring_degree
        h = hamming_weight if hamming_weight is not None else self.params.hamming_weight
        h = min(h, n)
        coeffs = np.zeros(n, dtype=np.int64)
        positions = self._rng.choice(n, size=h, replace=False)
        signs = self._rng.integers(0, 2, h) * 2 - 1
        coeffs[positions] = signs
        return coeffs

    def sample_error_coeffs(self) -> np.ndarray:
        """Rounded-Gaussian error coefficients (std = params.error_std)."""
        n = self.params.ring_degree
        return np.rint(
            self._rng.normal(0.0, self.params.error_std, n)).astype(np.int64)

    def sample_zo_coeffs(self, density: float = 0.5) -> np.ndarray:
        """{-1, 0, 1} coefficients: P[±1] = density/2 each (ZO sampling)."""
        n = self.params.ring_degree
        u = self._rng.random(n)
        coeffs = np.zeros(n, dtype=np.int64)
        coeffs[u < density / 2] = 1
        coeffs[(u >= density / 2) & (u < density)] = -1
        return coeffs

    def poly_from_small_coeffs(self, coeffs: np.ndarray, basis: RnsBasis,
                               ntt: bool = True) -> RnsPolynomial:
        """Lift small signed integer coefficients into an RNS polynomial."""
        poly = RnsPolynomial.from_int_coeffs(
            [int(c) for c in coeffs], self.params.ring_degree, basis)
        return poly.to_ntt() if ntt else poly

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def log_q(self) -> float:
        """log2 of the full ciphertext modulus Q."""
        return sum(math.log2(q) for q in self.moduli)

    def log_pq(self) -> float:
        """log2 of the raised modulus P*Q (the security-relevant modulus)."""
        return self.log_q() + sum(math.log2(p) for p in self.extension_moduli)

    def __repr__(self) -> str:
        p = self.params
        return (f"CkksContext(N={p.ring_degree}, limbs={p.num_limbs}, "
                f"dnum={p.dnum}, alpha={p.alpha}, ext={p.extension_limbs}, "
                f"logPQ={self.log_pq():.1f})")
