"""CKKS canonical-embedding encoder.

A CKKS plaintext is a vector ``z`` of ``n <= N/2`` complex numbers
(§2.1 of the paper).  Encoding maps ``z`` to an integer polynomial whose
evaluations at the primitive 2N-th roots of unity ``zeta^{5^j}`` equal
``Delta * z_j``; decoding evaluates the polynomial back and divides by
the scale.

Both directions are implemented with O(N log N) FFTs rather than the
n x N Vandermonde matrix: the slot values live at the odd-indexed bins
of a length-2N discrete Fourier transform, indexed by the powers of 5
(the same index arithmetic implemented by FAB's automorph unit, eq. 4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .context import CkksContext
from .modmath import ilog2
from .poly import RnsPolynomial
from .rns import RnsBasis


class Plaintext:
    """An encoded plaintext: an RNS polynomial plus its scale."""

    __slots__ = ("poly", "scale", "num_slots")

    def __init__(self, poly: RnsPolynomial, scale: float, num_slots: int):
        self.poly = poly
        self.scale = scale
        self.num_slots = num_slots

    @property
    def level_count(self) -> int:
        """Number of RNS limbs backing this plaintext."""
        return len(self.poly.basis)

    def __repr__(self) -> str:
        return (f"Plaintext(slots={self.num_slots}, scale=2^"
                f"{np.log2(self.scale):.1f}, limbs={self.level_count})")


def rotation_group_indices(ring_degree: int) -> np.ndarray:
    """Powers ``5^j mod 2N`` for j = 0..N/2-1 (the slot index group)."""
    m = 2 * ring_degree
    n_half = ring_degree // 2
    indices = np.empty(n_half, dtype=np.int64)
    acc = 1
    for j in range(n_half):
        indices[j] = acc
        acc = acc * 5 % m
    return indices


_INDEX_CACHE: Dict[int, np.ndarray] = {}


def _group_indices(ring_degree: int) -> np.ndarray:
    idx = _INDEX_CACHE.get(ring_degree)
    if idx is None:
        idx = rotation_group_indices(ring_degree)
        _INDEX_CACHE[ring_degree] = idx
    return idx


class CkksEncoder:
    """Encode/decode complex vectors to/from RNS plaintext polynomials."""

    def __init__(self, context: CkksContext):
        self.context = context
        self.ring_degree = context.params.ring_degree

    # ------------------------------------------------------------------
    # Core float <-> coefficient maps (scale-free)
    # ------------------------------------------------------------------

    def embed(self, slots: Sequence[complex]) -> np.ndarray:
        """Map N/2 slot values to N real polynomial coefficients.

        Inverse of :meth:`project`; the result are *unrounded* floats.
        """
        n = self.ring_degree
        m = 2 * n
        slots = np.asarray(slots, dtype=np.complex128)
        if slots.shape != (n // 2,):
            raise ValueError(f"expected {n // 2} slots, got {slots.shape}")
        idx = _group_indices(n)
        spectrum = np.zeros(m, dtype=np.complex128)
        spectrum[idx] = slots
        spectrum[(m - idx) % m] = np.conj(slots)
        # c_k = (1/N) * sum_m v[m] e^{-2 pi i m k / 2N}  for k < N.
        coeffs = np.fft.fft(spectrum)[:n] / n
        return np.real(coeffs)

    def project(self, coeffs: np.ndarray) -> np.ndarray:
        """Evaluate real coefficients at the canonical points zeta^{5^j}."""
        n = self.ring_degree
        m = 2 * n
        coeffs = np.asarray(coeffs, dtype=np.float64)
        if coeffs.shape != (n,):
            raise ValueError(f"expected {n} coefficients, got {coeffs.shape}")
        spectrum = np.fft.fft(coeffs, m)
        idx = _group_indices(n)
        # p(zeta^m) = conj(FFT(c)[m]) because zeta = e^{+i pi / N}.
        return np.conj(spectrum[idx])

    # ------------------------------------------------------------------
    # Public encode / decode
    # ------------------------------------------------------------------

    def encode(self, values: Sequence[complex], scale: Optional[float] = None,
               basis: Optional[RnsBasis] = None,
               num_slots: Optional[int] = None) -> Plaintext:
        """Encode a complex vector into a :class:`Plaintext`.

        Args:
            values: up to ``n`` slot values (shorter vectors are padded
                with zeros; sparse n < N/2 uses replication packing).
            scale: encoding scale Delta (defaults to the context scale).
            basis: target RNS basis (defaults to the full Q basis).
            num_slots: slot count (power of two <= N/2).
        """
        n_half = self.ring_degree // 2
        if num_slots is None:
            num_slots = self.context.params.slots
        ilog2(num_slots)
        if num_slots > n_half:
            raise ValueError("num_slots must be <= N/2")
        values = np.asarray(list(values), dtype=np.complex128)
        if values.size > num_slots:
            raise ValueError(f"too many values for {num_slots} slots")
        padded = np.zeros(num_slots, dtype=np.complex128)
        padded[:values.size] = values
        # Sparse packing: replicate the n-slot vector N/2 / n times.
        replicated = np.tile(padded, n_half // num_slots)
        if scale is None:
            scale = self.context.params.scale
        if basis is None:
            basis = self.context.q_basis
        real_coeffs = self.embed(replicated) * scale
        limit = float(basis.modulus) / 2.0
        peak = np.max(np.abs(real_coeffs)) if real_coeffs.size else 0.0
        if peak >= limit:
            raise ValueError(
                f"encoded coefficients (|c| ~ 2^{np.log2(max(peak, 1)):.1f}) "
                f"overflow the modulus (2^{np.log2(limit):.1f}); "
                "lower the scale or add limbs")
        rounded = [int(round(c)) for c in real_coeffs]
        poly = RnsPolynomial.from_int_coeffs(rounded, self.ring_degree, basis)
        return Plaintext(poly.to_ntt(), float(scale), num_slots)

    def decode(self, plaintext: Plaintext,
               num_slots: Optional[int] = None) -> np.ndarray:
        """Decode a :class:`Plaintext` back to its complex slot values."""
        if num_slots is None:
            num_slots = plaintext.num_slots
        coeffs = np.array(plaintext.poly.integer_coefficients(),
                          dtype=np.float64)
        slots = self.project(coeffs) / plaintext.scale
        return slots[:num_slots]

    def decode_coefficients(self, plaintext: Plaintext) -> List[int]:
        """The exact centered integer coefficients of a plaintext."""
        return plaintext.poly.integer_coefficients()
