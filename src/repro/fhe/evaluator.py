"""CKKS homomorphic operations: the public evaluation API.

Implements the operation set of §2.1 of the paper — Add, Mult (with
relinearization), Rescale, Rotate, Conjugate — plus plaintext variants
and level management, all on top of the hybrid :class:`KeySwitcher`.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

import numpy as np

from .ciphertext import Ciphertext
from .context import CkksContext
from .encoder import CkksEncoder, Plaintext
from .keys import (GaloisKeySet, KeyGenerator, PublicKey, SecretKey,
                   SwitchingKey, conjugation_element,
                   galois_element_for_rotation)
from .keyswitch import KeySwitcher
from .modmath import modinv
from .ntt import get_ntt_context
from .poly import RnsPolynomial

#: Relative tolerance when matching scales of operands.
SCALE_RTOL = 1e-6


class Encryptor:
    """Public-key (and symmetric) encryption."""

    def __init__(self, context: CkksContext, public_key: PublicKey):
        self.context = context
        self.public_key = public_key

    def encrypt(self, plaintext: Plaintext) -> Ciphertext:
        """Public-key encryption of an encoded plaintext."""
        ctx = self.context
        basis = plaintext.poly.basis
        pk_b = self._restrict(self.public_key.b, basis)
        pk_a = self._restrict(self.public_key.a, basis)
        v = ctx.poly_from_small_coeffs(ctx.sample_zo_coeffs(), basis)
        e0 = ctx.poly_from_small_coeffs(ctx.sample_error_coeffs(), basis)
        e1 = ctx.poly_from_small_coeffs(ctx.sample_error_coeffs(), basis)
        c0 = pk_b * v + e0 + plaintext.poly
        c1 = pk_a * v + e1
        return Ciphertext(c0, c1, plaintext.scale, plaintext.num_slots)

    @staticmethod
    def _restrict(poly: RnsPolynomial, basis) -> RnsPolynomial:
        if poly.basis == basis:
            return poly
        indices = [poly.basis.primes.index(q) for q in basis.primes]
        return poly.keep_limbs(indices)


class Decryptor:
    """Secret-key decryption."""

    def __init__(self, context: CkksContext, secret_key: SecretKey):
        self.context = context
        self.secret_key = secret_key

    def decrypt(self, ciphertext: Ciphertext) -> Plaintext:
        """Decrypt to an encoded plaintext (``c0 + c1 * s``)."""
        s = self.secret_key.restricted(ciphertext.c0.basis)
        poly = ciphertext.c0 + ciphertext.c1 * s
        return Plaintext(poly, ciphertext.scale, ciphertext.num_slots)


class Evaluator:
    """Homomorphic operations over CKKS ciphertexts."""

    def __init__(self, context: CkksContext,
                 relin_key: Optional[SwitchingKey] = None,
                 galois_keys: Optional[GaloisKeySet] = None):
        self.context = context
        self.relin_key = relin_key
        self.galois_keys = galois_keys
        self.key_switcher = KeySwitcher(context)

    # ------------------------------------------------------------------
    # Level / scale management
    # ------------------------------------------------------------------

    def mod_down_to(self, ct: Ciphertext, num_limbs: int) -> Ciphertext:
        """Drop limbs until the ciphertext has ``num_limbs`` limbs."""
        if num_limbs > ct.level_count:
            raise ValueError("cannot raise level by dropping limbs")
        if num_limbs == ct.level_count:
            return ct
        drop = ct.level_count - num_limbs
        return Ciphertext(ct.c0.drop_last_limbs(drop),
                          ct.c1.drop_last_limbs(drop), ct.scale, ct.num_slots)

    def align_levels(self, a: Ciphertext, b: Ciphertext):
        """Return the pair mod-switched to the lower of the two levels."""
        target = min(a.level_count, b.level_count)
        return self.mod_down_to(a, target), self.mod_down_to(b, target)

    def _check_scales(self, s1: float, s2: float, op: str) -> None:
        if not math.isclose(s1, s2, rel_tol=SCALE_RTOL):
            raise ValueError(
                f"{op}: scale mismatch (2^{math.log2(s1):.3f} vs "
                f"2^{math.log2(s2):.3f}); rescale or re-encode first")

    # ------------------------------------------------------------------
    # Addition family
    # ------------------------------------------------------------------

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic addition (component-wise over slots)."""
        a, b = self.align_levels(a, b)
        self._check_scales(a.scale, b.scale, "add")
        return Ciphertext(a.c0 + b.c0, a.c1 + b.c1, a.scale,
                          min(a.num_slots, b.num_slots))

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """Homomorphic subtraction."""
        a, b = self.align_levels(a, b)
        self._check_scales(a.scale, b.scale, "sub")
        return Ciphertext(a.c0 - b.c0, a.c1 - b.c1, a.scale,
                          min(a.num_slots, b.num_slots))

    def negate(self, a: Ciphertext) -> Ciphertext:
        """Homomorphic negation."""
        return Ciphertext(-a.c0, -a.c1, a.scale, a.num_slots)

    def add_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """Add an encoded plaintext (scales must match)."""
        self._check_scales(ct.scale, pt.scale, "add_plain")
        poly = Encryptor._restrict(pt.poly, ct.c0.basis)
        return Ciphertext(ct.c0 + poly, ct.c1, ct.scale, ct.num_slots)

    def sub_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """Subtract an encoded plaintext."""
        self._check_scales(ct.scale, pt.scale, "sub_plain")
        poly = Encryptor._restrict(pt.poly, ct.c0.basis)
        return Ciphertext(ct.c0 - poly, ct.c1, ct.scale, ct.num_slots)

    # ------------------------------------------------------------------
    # Multiplication family
    # ------------------------------------------------------------------

    def multiply(self, a: Ciphertext, b: Ciphertext,
                 relin_key: Optional[SwitchingKey] = None) -> Ciphertext:
        """Homomorphic multiplication with relinearization.

        The result has scale ``scale_a * scale_b``; call :meth:`rescale`
        to bring it back down (consuming one limb/level).
        """
        key = relin_key or self.relin_key
        if key is None:
            raise ValueError("multiply requires a relinearization key")
        a, b = self.align_levels(a, b)
        d0 = a.c0 * b.c0
        d1 = a.c0 * b.c1 + a.c1 * b.c0
        d2 = a.c1 * b.c1
        u0, u1 = self.key_switcher.switch(d2, key)
        return Ciphertext(d0 + u0, d1 + u1, a.scale * b.scale,
                          min(a.num_slots, b.num_slots))

    def square(self, a: Ciphertext,
               relin_key: Optional[SwitchingKey] = None) -> Ciphertext:
        """Homomorphic squaring (one fewer tensor product than multiply)."""
        key = relin_key or self.relin_key
        if key is None:
            raise ValueError("square requires a relinearization key")
        d0 = a.c0 * a.c0
        cross = a.c0 * a.c1
        d1 = cross + cross
        d2 = a.c1 * a.c1
        u0, u1 = self.key_switcher.switch(d2, key)
        return Ciphertext(d0 + u0, d1 + u1, a.scale * a.scale, a.num_slots)

    def multiply_plain(self, ct: Ciphertext, pt: Plaintext) -> Ciphertext:
        """Multiply by an encoded plaintext (no key switch needed)."""
        poly = Encryptor._restrict(pt.poly, ct.c0.basis).to_ntt()
        return Ciphertext(ct.c0 * poly, ct.c1 * poly, ct.scale * pt.scale,
                          ct.num_slots)

    def multiply_scalar_int(self, ct: Ciphertext, scalar: int) -> Ciphertext:
        """Multiply by an exact integer (scale unchanged)."""
        return Ciphertext(ct.c0.scalar_multiply(scalar),
                          ct.c1.scalar_multiply(scalar), ct.scale,
                          ct.num_slots)

    def multiply_by_monomial(self, ct: Ciphertext, exponent: int) -> Ciphertext:
        """Multiply by ``x^exponent`` (exact: no noise or scale change).

        Multiplying the plaintext polynomial by ``x^{N/2}`` multiplies
        every slot by ``i`` (since ``zeta^{5^j * N/2} = i`` for all j),
        so ``exponent = p * N/2`` implements exact multiplication of the
        slots by ``i^p`` — used by the bootstrapping pipeline to combine
        the real and imaginary coefficient halves.
        """
        n = ct.ring_degree
        e = exponent % (2 * n)
        if e == 0:
            return ct.copy()
        coeffs = np.zeros(n, dtype=np.int64)
        if e < n:
            coeffs[e] = 1
        else:
            coeffs[e - n] = -1
        mono = self.context.poly_from_small_coeffs(coeffs, ct.c0.basis)
        return Ciphertext(ct.c0 * mono, ct.c1 * mono, ct.scale, ct.num_slots)

    def multiply_by_i(self, ct: Ciphertext, power: int = 1) -> Ciphertext:
        """Multiply every slot by ``i**power`` exactly."""
        return self.multiply_by_monomial(ct, (power % 4) * (ct.ring_degree // 2))

    # ------------------------------------------------------------------
    # Rescale
    # ------------------------------------------------------------------

    def rescale(self, ct: Ciphertext) -> Ciphertext:
        """Divide by the last limb prime and drop it (one level consumed)."""
        if ct.level_count <= 1:
            raise ValueError("cannot rescale a one-limb ciphertext")
        q_last = ct.c0.basis.primes[-1]
        c0 = self._rescale_poly(ct.c0, q_last)
        c1 = self._rescale_poly(ct.c1, q_last)
        return Ciphertext(c0, c1, ct.scale / q_last, ct.num_slots)

    @staticmethod
    def _rescale_poly(poly: RnsPolynomial, q_last: int) -> RnsPolynomial:
        ring_degree = poly.ring_degree
        last_ctx = get_ntt_context(ring_degree, q_last)
        last_coeff = last_ctx.inverse(poly.limbs[-1])
        # Centered lift of the dropped limb for minimal rounding noise.
        centered = np.where(last_coeff >= (q_last + 1) // 2,
                            last_coeff - q_last, last_coeff)
        remaining = poly.basis.primes[:-1]
        out = np.empty((len(remaining), ring_degree), dtype=np.int64)
        for i, q in enumerate(remaining):
            ctx = get_ntt_context(ring_degree, q)
            lifted = ctx.forward(centered % q)
            inv = modinv(q_last % q, q)
            out[i] = (poly.limbs[i] - lifted) % q * inv % q
        from .rns import RnsBasis
        return RnsPolynomial(ring_degree, RnsBasis(remaining), out,
                             is_ntt=True)

    def rescale_to_scale(self, ct: Ciphertext, target: float) -> Ciphertext:
        """Rescale repeatedly until the scale is within 2x of ``target``."""
        while ct.scale > 2 * target and ct.level_count > 1:
            ct = self.rescale(ct)
        return ct

    # ------------------------------------------------------------------
    # Rotation family
    # ------------------------------------------------------------------

    def rotate(self, ct: Ciphertext, steps: int,
               galois_keys: Optional[GaloisKeySet] = None) -> Ciphertext:
        """Rotate the slot vector left by ``steps`` (negative = right)."""
        steps_mod = steps % (ct.ring_degree // 2)
        if steps_mod == 0:
            return ct.copy()
        g = galois_element_for_rotation(ct.ring_degree, steps_mod)
        return self.apply_galois(ct, g, galois_keys)

    def conjugate(self, ct: Ciphertext,
                  galois_keys: Optional[GaloisKeySet] = None) -> Ciphertext:
        """Complex-conjugate every slot."""
        g = conjugation_element(ct.ring_degree)
        return self.apply_galois(ct, g, galois_keys)

    def apply_galois(self, ct: Ciphertext, galois_element: int,
                     galois_keys: Optional[GaloisKeySet] = None) -> Ciphertext:
        """Apply ``x -> x^g`` and switch back to the original key."""
        keys = galois_keys or self.galois_keys
        if keys is None:
            raise ValueError("rotation requires Galois keys")
        key = keys[galois_element]
        c0_g = ct.c0.automorphism(galois_element)
        c1_g = ct.c1.automorphism(galois_element)
        u0, u1 = self.key_switcher.switch(c1_g, key)
        return Ciphertext(c0_g + u0, u1, ct.scale, ct.num_slots)

    def rotate_hoisted(self, ct: Ciphertext, steps: Sequence[int],
                       galois_keys: Optional[GaloisKeySet] = None
                       ) -> Dict[int, Ciphertext]:
        """Rotate one ciphertext by several step counts, sharing ModUp.

        The Halevi–Shoup hoisting optimization: Decomp/ModUp of ``c1``
        runs once and each rotation pays only automorphism + KSKIP +
        ModDown.  Functionally identical to calling :meth:`rotate` per
        step (the test suite asserts this); used by the bootstrapping
        linear transforms, where it is the dominant saving.

        Returns a dict mapping each step to its rotated ciphertext
        (step 0, if present, maps to a copy).
        """
        keys = galois_keys or self.galois_keys
        if keys is None:
            raise ValueError("rotation requires Galois keys")
        results: Dict[int, Ciphertext] = {}
        todo = []
        n = ct.ring_degree
        for step in steps:
            step_mod = step % (n // 2)
            if step_mod == 0:
                results[step] = ct.copy()
            else:
                todo.append((step, step_mod))
        if not todo:
            return results
        raised = self.key_switcher.hoisted_decompose(ct.c1)
        q_basis = ct.c0.basis
        for step, step_mod in todo:
            g = galois_element_for_rotation(n, step_mod)
            key = keys[g]
            u0, u1 = self.key_switcher.switch_hoisted(raised, g, key,
                                                      q_basis)
            c0_g = ct.c0.automorphism(g)
            results[step] = Ciphertext(c0_g + u0, u1, ct.scale,
                                       ct.num_slots)
        return results


class CkksScheme:
    """Convenience facade bundling the full scheme for one context.

    Example:
        >>> scheme = CkksScheme(CkksParams(ring_degree=64, num_limbs=4,
        ...                                scale_bits=26))
        >>> ct = scheme.encrypt([1.0, 2.0, 3.0])
        >>> ct2 = scheme.evaluator.multiply(ct, ct)
        >>> values = scheme.decrypt(scheme.evaluator.rescale(ct2))
    """

    def __init__(self, params, rotations: Optional[Sequence[int]] = None):
        from .context import CkksParams
        if not isinstance(params, CkksParams):
            raise TypeError("params must be CkksParams")
        self.params = params
        self.context = CkksContext(params)
        self.encoder = CkksEncoder(self.context)
        keygen = KeyGenerator(self.context)
        self.secret_key = keygen.gen_secret_key()
        self.public_key = keygen.gen_public_key(self.secret_key)
        self.relin_key = keygen.gen_relin_key(self.secret_key)
        self.galois_keys = keygen.gen_galois_keys(
            self.secret_key, list(rotations or []), include_conjugate=True)
        self._keygen = keygen
        self.encryptor = Encryptor(self.context, self.public_key)
        self.decryptor = Decryptor(self.context, self.secret_key)
        self.evaluator = Evaluator(self.context, self.relin_key,
                                   self.galois_keys)

    def add_rotation_keys(self, rotations: Sequence[int]) -> None:
        """Generate additional rotation keys on demand."""
        n = self.params.ring_degree
        for k in rotations:
            g = galois_element_for_rotation(n, k)
            if g not in self.galois_keys:
                self.galois_keys.keys[g] = self._keygen.gen_galois_key(
                    self.secret_key, g)

    def encrypt(self, values, scale: Optional[float] = None,
                num_slots: Optional[int] = None) -> Ciphertext:
        """Encode and encrypt a vector of complex/real values."""
        pt = self.encoder.encode(values, scale=scale, num_slots=num_slots)
        return self.encryptor.encrypt(pt)

    def decrypt(self, ciphertext: Ciphertext,
                num_slots: Optional[int] = None) -> np.ndarray:
        """Decrypt and decode back to complex slot values."""
        pt = self.decryptor.decrypt(ciphertext)
        return self.encoder.decode(pt, num_slots=num_slots)
