"""Key generation: secret/public keys and hybrid switching keys.

Switching keys follow the Han–Ki structure used by the paper (eq. 3):
a ``2 x dnum`` matrix of polynomials over the raised basis ``P*Q``.
The key for digit ``j`` encrypts ``P * q_hat_j * s_from`` under
``s_to``, where ``q_hat_j`` is the CRT projector that is 1 modulo the
digit-j primes and 0 modulo every other Q prime.  Keys are generated
once at the top level and remain valid at every lower level because the
projector identities hold prime-by-prime.

Key compression (halving the key size by regenerating the uniform ``a``
halves from a seed, the technique of [15] cited under Fig. 1) is
modelled by :class:`SwitchingKey.compressed_size_bytes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .context import CkksContext
from .poly import RnsPolynomial
from .rns import RnsBasis


class SecretKey:
    """A sparse ternary secret key."""

    def __init__(self, coeffs: np.ndarray, poly: RnsPolynomial):
        #: Signed ternary coefficients (integer ground truth).
        self.coeffs = coeffs
        #: NTT-domain RNS polynomial over the full (Q * P) basis.
        self.poly = poly

    def restricted(self, basis: RnsBasis) -> RnsPolynomial:
        """The secret key reduced to a sub-basis (prefix of the full one)."""
        indices = [self.poly.basis.primes.index(q) for q in basis.primes]
        return self.poly.keep_limbs(indices)


class PublicKey:
    """An encryption key: ``(b, a)`` with ``b = -a*s + e`` over Q."""

    def __init__(self, b: RnsPolynomial, a: RnsPolynomial):
        self.b = b
        self.a = a


class SwitchingKey:
    """A hybrid key-switching key: per-digit pairs over the raised basis.

    Attributes:
        pairs: list of ``(b_j, a_j)`` NTT polynomials over Q*P.
        source_tag: human-readable description of ``s_from``.
    """

    def __init__(self, pairs: List[Tuple[RnsPolynomial, RnsPolynomial]],
                 source_tag: str):
        self.pairs = pairs
        self.source_tag = source_tag

    @property
    def dnum(self) -> int:
        """Number of digits."""
        return len(self.pairs)

    def size_bytes(self, limb_bytes: int = 8) -> int:
        """Storage for the full key (2 * dnum polynomials over Q*P)."""
        total = 0
        for b, a in self.pairs:
            total += (b.limbs.size + a.limbs.size) * limb_bytes
        return total

    def compressed_size_bytes(self, limb_bytes: int = 8) -> int:
        """Storage with the seeded-``a`` compression of [15] (halved)."""
        return self.size_bytes(limb_bytes) // 2


@dataclass
class GaloisKeySet:
    """Rotation / conjugation keys indexed by Galois element."""

    keys: Dict[int, SwitchingKey]

    def __contains__(self, galois_element: int) -> bool:
        return galois_element in self.keys

    def __getitem__(self, galois_element: int) -> SwitchingKey:
        try:
            return self.keys[galois_element]
        except KeyError:
            raise KeyError(
                f"no Galois key for element {galois_element}; generate it "
                "with KeyGenerator.gen_galois_keys") from None


class KeyGenerator:
    """Generates all key material for one :class:`CkksContext`."""

    def __init__(self, context: CkksContext):
        self.context = context

    # ------------------------------------------------------------------
    # Basic keys
    # ------------------------------------------------------------------

    def gen_secret_key(self) -> SecretKey:
        """Sample a sparse ternary secret key."""
        ctx = self.context
        coeffs = ctx.sample_ternary_coeffs()
        poly = ctx.poly_from_small_coeffs(coeffs, ctx.full_basis)
        return SecretKey(coeffs, poly)

    def gen_public_key(self, secret: SecretKey) -> PublicKey:
        """Encryption key over the full Q basis: ``(-a*s + e, a)``."""
        ctx = self.context
        basis = ctx.q_basis
        a = ctx.sample_uniform(basis)
        e = ctx.poly_from_small_coeffs(ctx.sample_error_coeffs(), basis)
        s = secret.restricted(basis)
        b = -(a * s) + e
        return PublicKey(b, a)

    # ------------------------------------------------------------------
    # Switching keys
    # ------------------------------------------------------------------

    def gen_switching_key(self, source_poly: RnsPolynomial,
                          secret: SecretKey, source_tag: str) -> SwitchingKey:
        """Key switching ``s_from -> s`` for an arbitrary source secret.

        ``source_poly`` must be an NTT polynomial over the full basis
        encoding ``s_from`` (e.g. ``s^2`` for relinearization, or an
        automorphism image of ``s`` for rotations).
        """
        ctx = self.context
        basis = ctx.full_basis
        num_q = len(ctx.q_basis)
        digits = ctx.digit_indices(num_q)
        p_mod = ctx.p_modulus
        q_full = ctx.q_basis.modulus
        pairs: List[Tuple[RnsPolynomial, RnsPolynomial]] = []
        s_to = secret.poly
        for digit in digits:
            digit_mod = 1
            for idx in digit:
                digit_mod *= ctx.moduli[idx]
            q_over_d = q_full // digit_mod
            # CRT projector: 1 mod digit primes, 0 mod the other Q primes.
            q_hat = q_over_d * pow(q_over_d % digit_mod, -1, digit_mod)
            factors = [
                (p_mod % prime) * (q_hat % prime) % prime
                for prime in basis.primes
            ]
            a_j = ctx.sample_uniform(basis)
            e_j = ctx.poly_from_small_coeffs(ctx.sample_error_coeffs(), basis)
            term = source_poly.scalar_multiply(factors)
            b_j = -(a_j * s_to) + e_j + term
            pairs.append((b_j, a_j))
        return SwitchingKey(pairs, source_tag)

    def gen_relin_key(self, secret: SecretKey) -> SwitchingKey:
        """Relinearization key: switches ``s^2`` back to ``s``."""
        s_sq = secret.poly * secret.poly
        return self.gen_switching_key(s_sq, secret, "s^2")

    def gen_galois_key(self, secret: SecretKey,
                       galois_element: int) -> SwitchingKey:
        """Key for the automorphism ``x -> x^g``."""
        s_g = secret.poly.automorphism(galois_element)
        return self.gen_switching_key(s_g, secret, f"galois({galois_element})")

    def gen_galois_keys(self, secret: SecretKey,
                        rotations: Optional[List[int]] = None,
                        include_conjugate: bool = True) -> GaloisKeySet:
        """Keys for a set of slot rotations (and optionally conjugation)."""
        n = self.context.params.ring_degree
        m = 2 * n
        keys: Dict[int, SwitchingKey] = {}
        if rotations is None:
            rotations = []
        for k in rotations:
            g = galois_element_for_rotation(n, k)
            if g not in keys:
                keys[g] = self.gen_galois_key(secret, g)
        if include_conjugate:
            g = m - 1
            keys[g] = self.gen_galois_key(secret, g)
        return GaloisKeySet(keys)


def galois_element_for_rotation(ring_degree: int, steps: int) -> int:
    """The Galois element ``5^steps mod 2N`` implementing a left-rotation
    of the slot vector by ``steps`` (negative steps rotate right)."""
    m = 2 * ring_degree
    steps %= ring_degree // 2
    return pow(5, steps, m)


def conjugation_element(ring_degree: int) -> int:
    """The Galois element (-1 mod 2N) implementing complex conjugation."""
    return 2 * ring_degree - 1
