"""Hybrid key switching: Decomp, ModUp, KSKIP, ModDown (§2.1.5, §4.6).

This is the algorithmic ground truth for the FAB KeySwitch datapath
model in :mod:`repro.core.keyswitch_datapath`.  The decomposition of
the key-switch inner product mirrors the paper exactly:

1. ``Decomp``     — split the current limbs into dnum digits of alpha.
2. ``ModUp``      — extend each digit to the full raised basis Q_l * P
                    (the digit's own alpha limbs pass through unchanged,
                    the observation FAB's modified datapath exploits).
3. ``KSKIP``      — inner product with the per-digit switching key.
4. ``ModDown``    — divide by P and return to the Q_l basis.

The functional result is independent of the hardware scheduling (the
paper stresses the modified datapath "does not change the underlying
KeySwitch algorithm"), so this single implementation backs both the
original and modified datapath cost models.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .context import CkksContext
from .keys import SwitchingKey
from .modmath import modinv
from .ntt import get_ntt_context
from .poly import RnsPolynomial
from .rns import RnsBasis, get_base_converter


class KeySwitcher:
    """Executes hybrid key switching against a :class:`CkksContext`."""

    def __init__(self, context: CkksContext):
        self.context = context

    # ------------------------------------------------------------------
    # Sub-operations (exposed individually for tests and for the
    # hardware datapath model)
    # ------------------------------------------------------------------

    def decompose(self, poly: RnsPolynomial) -> List[RnsPolynomial]:
        """``Decomp``: split limbs into digits of alpha limbs each."""
        num_limbs = len(poly.basis)
        digits = self.context.digit_indices(num_limbs)
        return [poly.keep_limbs(digit) for digit in digits]

    def mod_up(self, digit_poly: RnsPolynomial,
               target: RnsBasis) -> RnsPolynomial:
        """``ModUp``: extend a digit to the raised basis (NTT domain).

        Limbs already present in the digit are copied through unchanged
        (they are identical residues); only the new limbs go through
        iNTT -> base conversion -> NTT.  The base-conversion overflow
        (a multiple of the digit modulus) provably cancels in ModDown.
        """
        ring_degree = digit_poly.ring_degree
        digit_primes = set(digit_poly.basis.primes)
        coeff = digit_poly.to_coeff()
        new_primes = [p for p in target.primes if p not in digit_primes]
        out = np.zeros((len(target), ring_degree), dtype=np.int64)
        if new_primes:
            converter = get_base_converter(digit_poly.basis,
                                           RnsBasis(new_primes))
            converted = converter.convert(coeff.limbs)
        row_of_new = {p: i for i, p in enumerate(new_primes)}
        ntt_source = digit_poly.to_ntt()
        digit_row = {p: i for i, p in enumerate(digit_poly.basis.primes)}
        for j, p in enumerate(target.primes):
            if p in digit_row:
                out[j] = ntt_source.limbs[digit_row[p]]
            else:
                ctx = get_ntt_context(ring_degree, p)
                out[j] = ctx.forward(converted[row_of_new[p]])
        return RnsPolynomial(ring_degree, target, out, is_ntt=True)

    def inner_product(self, raised_digits: List[RnsPolynomial],
                      key: SwitchingKey,
                      target: RnsBasis) -> Tuple[RnsPolynomial, RnsPolynomial]:
        """``KSKIP``: accumulate ``sum_j d_hat_j * (b_j, a_j)``.

        The key polynomials live over the full Q*P basis; only the limbs
        present in ``target`` participate at the current level.
        """
        full = self.context.full_basis
        key_rows = [full.primes.index(p) for p in target.primes]
        acc0 = RnsPolynomial.zeros(raised_digits[0].ring_degree, target)
        acc1 = RnsPolynomial.zeros(raised_digits[0].ring_degree, target)
        for digit, (b_j, a_j) in zip(raised_digits, key.pairs):
            b_r = b_j.keep_limbs(key_rows)
            a_r = a_j.keep_limbs(key_rows)
            acc0 = acc0 + digit * b_r
            acc1 = acc1 + digit * a_r
        return acc0, acc1

    def mod_down(self, poly: RnsPolynomial,
                 q_basis: RnsBasis) -> RnsPolynomial:
        """``ModDown``: exact floor-division by P, returning to Q_l.

        ``poly`` must span ``q_basis ++ p_basis`` in NTT form.
        """
        ctx = self.context
        num_q = len(q_basis)
        p_basis = ctx.p_basis
        expected = q_basis.primes + p_basis.primes
        if poly.basis.primes != expected:
            raise ValueError("mod_down input must span Q_l ++ P")
        p_part = poly.keep_limbs(range(num_q, num_q + len(p_basis)))
        p_coeff = p_part.to_coeff()
        converter = get_base_converter(p_basis, q_basis)
        lifted = converter.convert_exact_floor(p_coeff.limbs)
        ring_degree = poly.ring_degree
        p_mod = ctx.p_modulus
        out = np.empty((num_q, ring_degree), dtype=np.int64)
        for i, q in enumerate(q_basis.primes):
            ntt_ctx = get_ntt_context(ring_degree, q)
            lifted_ntt = ntt_ctx.forward(lifted[i])
            inv_p = modinv(p_mod % q, q)
            out[i] = (poly.limbs[i] - lifted_ntt) % q * inv_p % q
        return RnsPolynomial(ring_degree, q_basis, out, is_ntt=True)

    # ------------------------------------------------------------------
    # Hoisting (Halevi–Shoup; used by Bossuat et al. [5] and by FAB's
    # bootstrapping linear transforms)
    # ------------------------------------------------------------------

    def hoisted_decompose(self, poly: RnsPolynomial) -> List[RnsPolynomial]:
        """Decomp + ModUp once, for reuse across several rotations.

        When several rotations apply to the *same* ciphertext (the baby
        steps of a BSGS linear transform), the expensive raising of the
        decomposition digits is shared: the Galois automorphism commutes
        with the coefficient-wise RNS base conversion, so the raised
        digits can be permuted per rotation instead of recomputed.
        """
        if not poly.is_ntt:
            poly = poly.to_ntt()
        raised_basis = RnsBasis(poly.basis.primes
                                + self.context.p_basis.primes)
        return [self.mod_up(d, raised_basis)
                for d in self.decompose(poly)]

    def switch_hoisted(self, raised_digits: List[RnsPolynomial],
                       galois_element: int, key: SwitchingKey,
                       q_basis: RnsBasis
                       ) -> Tuple[RnsPolynomial, RnsPolynomial]:
        """Key switch one automorphism image using shared raised digits.

        ``key`` must be the switching key for ``galois_element``;
        ``q_basis`` is the (non-raised) basis of the source ciphertext.
        Returns ``(u0, u1)`` with
        ``u0 + u1*s ~= automorph(poly, g) * automorph(s, g)``.
        """
        rotated = [d.automorphism(galois_element) for d in raised_digits]
        if len(rotated) > key.dnum:
            raise ValueError("more digits than the key provides")
        raised = rotated[0].basis
        acc0, acc1 = self.inner_product(rotated, key, raised)
        u0 = self.mod_down(acc0, q_basis)
        u1 = self.mod_down(acc1, q_basis)
        return u0, u1

    # ------------------------------------------------------------------
    # Full key switch
    # ------------------------------------------------------------------

    def switch(self, poly: RnsPolynomial,
               key: SwitchingKey) -> Tuple[RnsPolynomial, RnsPolynomial]:
        """Full hybrid key switch of ``poly`` (NTT, over Q_l).

        Returns ``(u0, u1)`` over the same basis with
        ``u0 + u1 * s_to ~= poly * s_from``.
        """
        if not poly.is_ntt:
            poly = poly.to_ntt()
        q_basis = poly.basis
        raised = RnsBasis(q_basis.primes + self.context.p_basis.primes)
        digits = self.decompose(poly)
        if len(digits) > key.dnum:
            raise ValueError(
                f"ciphertext has {len(digits)} digits but key has {key.dnum}")
        raised_digits = [self.mod_up(d, raised) for d in digits]
        acc0, acc1 = self.inner_product(raised_digits, key, raised)
        u0 = self.mod_down(acc0, q_basis)
        u1 = self.mod_down(acc1, q_basis)
        return u0, u1
