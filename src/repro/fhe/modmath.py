"""Scalar modular-arithmetic helpers shared across the RNS-CKKS substrate.

Everything here operates on plain Python integers (arbitrary precision),
which makes these routines the reference implementations that the
vectorized numpy kernels and the bit-exact hardware algorithms in
:mod:`repro.core.arith` are tested against.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


def modpow(base: int, exponent: int, modulus: int) -> int:
    """Return ``base ** exponent mod modulus`` (non-negative result)."""
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    return pow(base % modulus, exponent, modulus)


def modinv(value: int, modulus: int) -> int:
    """Return the multiplicative inverse of ``value`` modulo ``modulus``.

    Raises :class:`ValueError` if the inverse does not exist.
    """
    value %= modulus
    if value == 0:
        raise ValueError("0 has no inverse")
    g, x, _ = _extended_gcd(value, modulus)
    if g != 1:
        raise ValueError(f"{value} is not invertible modulo {modulus}")
    return x % modulus


def _extended_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``a*x + b*y == g == gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        quotient = old_r // r
        old_r, r = r, old_r - quotient * r
        old_s, s = s, old_s - quotient * s
        old_t, t = t, old_t - quotient * t
    return old_r, old_s, old_t


def centered(value: int, modulus: int) -> int:
    """Map ``value mod modulus`` into the centered range [-q/2, q/2)."""
    value %= modulus
    if value >= (modulus + 1) // 2:
        value -= modulus
    return value


def centered_list(values: Iterable[int], modulus: int) -> List[int]:
    """Apply :func:`centered` element-wise."""
    return [centered(v, modulus) for v in values]


def bit_reverse(index: int, num_bits: int) -> int:
    """Reverse the ``num_bits`` low-order bits of ``index``."""
    result = 0
    for _ in range(num_bits):
        result = (result << 1) | (index & 1)
        index >>= 1
    return result


def bit_reverse_permutation(length: int) -> List[int]:
    """Return the bit-reversal permutation of ``range(length)``.

    ``length`` must be a power of two.
    """
    if not is_power_of_two(length):
        raise ValueError("length must be a power of two")
    num_bits = length.bit_length() - 1
    return [bit_reverse(i, num_bits) for i in range(length)]


def is_power_of_two(value: int) -> bool:
    """Return ``True`` iff ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Return log2 of a power-of-two ``value``."""
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1


def crt_reconstruct(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Exact CRT reconstruction of ``x`` in [0, prod(moduli)).

    This is the reference (big-integer) version of the RNS recombination
    in Eq. (1) of the paper, used in tests and in exact ModDown rounding.
    """
    if len(residues) != len(moduli):
        raise ValueError("residues and moduli must have the same length")
    product = 1
    for q in moduli:
        product *= q
    acc = 0
    for r, q in zip(residues, moduli):
        q_star = product // q
        q_tilde = modinv(q_star % q, q)
        acc += (r * q_tilde % q) * q_star
    return acc % product


def crt_reconstruct_centered(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """CRT reconstruction mapped to the centered range [-Q/2, Q/2)."""
    product = 1
    for q in moduli:
        product *= q
    return centered(crt_reconstruct(residues, moduli), product)
