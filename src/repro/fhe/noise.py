"""Noise tracking and measurement for CKKS ciphertexts.

CKKS is approximate: every operation adds noise that eats into the
message precision.  This module provides

* :func:`measure_noise_bits` — the *actual* noise of a ciphertext,
  measured against a known message with the secret key (test/debug
  tool; a real deployment cannot do this);
* :class:`NoiseEstimator` — a standard a-priori noise model (fresh
  encryption, add, multiply, key switch, rescale) that predicts noise
  growth without decrypting, mirroring the bounds used to select the
  paper's parameters.

The estimator works in log2 units ("noise bits"); the message is
recoverable with roughly ``log2(scale) - noise_bits`` bits of precision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .ciphertext import Ciphertext
from .context import CkksContext
from .encoder import CkksEncoder
from .evaluator import Decryptor


def measure_noise_bits(ciphertext: Ciphertext, expected: np.ndarray,
                       decryptor: Decryptor, encoder: CkksEncoder) -> float:
    """Measured noise (log2 of the max slot error times the scale).

    Requires the secret key and the true message — a white-box
    diagnostic for tests and parameter tuning.
    """
    decoded = encoder.decode(decryptor.decrypt(ciphertext))
    expected = np.asarray(expected, dtype=np.complex128)
    n = min(decoded.shape[0], expected.shape[0])
    err = float(np.max(np.abs(decoded[:n] - expected[:n])))
    if err == 0.0:
        return float("-inf")
    return math.log2(err * ciphertext.scale)


@dataclass
class NoiseBudget:
    """Estimated noise state of one ciphertext."""

    noise_bits: float
    scale_bits: float

    @property
    def precision_bits(self) -> float:
        """Remaining message precision (scale minus noise)."""
        return self.scale_bits - self.noise_bits

    @property
    def exhausted(self) -> bool:
        """True when noise has swallowed the message."""
        return self.precision_bits <= 0


class NoiseEstimator:
    """A-priori noise growth model for the scheme's operations.

    Standard heuristic bounds (canonical-embedding norms), parameterized
    by the context's error width, secret Hamming weight, and ring size.
    """

    def __init__(self, context: CkksContext):
        self.context = context
        params = context.params
        self.n = params.ring_degree
        self.sigma = params.error_std
        self.hamming = params.hamming_weight

    def fresh(self, scale: Optional[float] = None) -> NoiseBudget:
        """Noise of a fresh public-key encryption."""
        scale = scale or self.context.params.scale
        # e0 + v*e + e1*s: ~ sigma * sqrt(N) * (1 + sqrt(h)).
        noise = self.sigma * math.sqrt(self.n) * (
            1.0 + math.sqrt(self.hamming))
        return NoiseBudget(math.log2(noise), math.log2(scale))

    def add(self, a: NoiseBudget, b: NoiseBudget) -> NoiseBudget:
        """Addition: noises add (log-sum-exp in bits)."""
        if not math.isclose(a.scale_bits, b.scale_bits, rel_tol=1e-6):
            raise ValueError("addition requires matching scales")
        noise = math.log2(2 ** a.noise_bits + 2 ** b.noise_bits)
        return NoiseBudget(noise, a.scale_bits)

    def multiply(self, a: NoiseBudget, b: NoiseBudget,
                 message_bits: float = 0.0) -> NoiseBudget:
        """Multiplication: cross terms message*noise dominate."""
        cross = max(
            a.scale_bits + message_bits + b.noise_bits,
            b.scale_bits + message_bits + a.noise_bits)
        ks = self.keyswitch_noise_bits()
        noise = math.log2(2 ** cross + 2 ** ks)
        return NoiseBudget(noise, a.scale_bits + b.scale_bits)

    def keyswitch_noise_bits(self) -> float:
        """Additive hybrid key-switch noise (post ModDown).

        Dominated by the ModDown rounding, ~ ||s||_1 = hamming weight,
        plus the P-scaled key-error term.
        """
        ctx = self.context
        digit_bits = max(
            sum(math.log2(ctx.moduli[i]) for i in digit)
            for digit in ctx.digit_indices(len(ctx.moduli)))
        p_bits = math.log2(ctx.p_modulus)
        key_term = (digit_bits - p_bits
                    + math.log2(self.sigma * self.n
                                * len(ctx.digit_indices(len(ctx.moduli)))))
        rounding = math.log2(max(self.hamming, 2))
        return math.log2(2 ** key_term + 2 ** rounding)

    def rescale(self, budget: NoiseBudget,
                prime: Optional[int] = None) -> NoiseBudget:
        """Rescale: divides noise and scale by q, adds rounding noise."""
        q_bits = (math.log2(prime) if prime is not None
                  else self.context.params.scale_bits)
        rounding = math.log2(max(self.hamming, 2))
        noise = math.log2(2 ** (budget.noise_bits - q_bits) + 2 ** rounding)
        return NoiseBudget(noise, budget.scale_bits - q_bits)

    def rotate(self, budget: NoiseBudget) -> NoiseBudget:
        """Rotation: automorphism is noise-neutral; key switch adds."""
        noise = math.log2(2 ** budget.noise_bits
                          + 2 ** self.keyswitch_noise_bits())
        return NoiseBudget(noise, budget.scale_bits)

    def depth_supported(self, message_bits: float = 1.0) -> int:
        """Estimated multiplication depth before precision exhausts."""
        budget = self.fresh()
        depth = 0
        limbs = len(self.context.moduli)
        while limbs > 1:
            budget = self.multiply(budget, budget, message_bits)
            prime = self.context.moduli[limbs - 1]
            budget = self.rescale(budget, prime)
            limbs -= 1
            if budget.exhausted:
                break
            depth += 1
        return depth
