"""Negacyclic number-theoretic transform (NTT) over Z_q[x]/(x^N + 1).

This is the software analog of FAB's unified Cooley–Tukey NTT datapath
(paper §4.5): a single iterative butterfly network serves both the
forward and inverse transforms, differing only in the twiddle tables and
the final scaling by N^{-1}.

All kernels are numpy-vectorized.  Primes are restricted to < 2**31 so
that a product of two residues fits exactly in int64; the paper's 54-bit
limbs are handled bit-exactly by :mod:`repro.core.arith` (scalar) and by
the analytic performance model.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .modmath import bit_reverse, ilog2, modinv
from .primes import MAX_FUNCTIONAL_PRIME_BITS, primitive_root_of_unity


class NttContext:
    """Precomputed tables for the negacyclic NTT modulo one prime.

    The forward transform maps coefficient representation to evaluation
    representation (values of the polynomial at the odd powers of the
    primitive 2N-th root ``psi``); the inverse transform maps back.

    Attributes:
        ring_degree: the polynomial degree N (power of two).
        modulus: the prime q, with q ≡ 1 (mod 2N).
    """

    def __init__(self, ring_degree: int, modulus: int):
        if modulus.bit_length() > MAX_FUNCTIONAL_PRIME_BITS:
            raise ValueError(
                f"functional NTT supports primes < 2^{MAX_FUNCTIONAL_PRIME_BITS}; "
                f"got {modulus.bit_length()}-bit modulus")
        if (modulus - 1) % (2 * ring_degree) != 0:
            raise ValueError("modulus is not NTT-friendly for this degree")
        self.ring_degree = ring_degree
        self.modulus = modulus
        self.log_degree = ilog2(ring_degree)
        psi = primitive_root_of_unity(2 * ring_degree, modulus)
        self.psi = psi
        self.psi_inv = modinv(psi, modulus)
        self.degree_inv = modinv(ring_degree, modulus)
        self._forward_twiddles = self._twiddle_table(psi)
        self._inverse_twiddles = self._twiddle_table(self.psi_inv)

    def _twiddle_table(self, root: int) -> np.ndarray:
        """Powers of ``root`` in bit-reversed order, as used stage-by-stage
        by the iterative Cooley–Tukey network (Longa–Naehrig layout)."""
        n = self.ring_degree
        powers = np.empty(n, dtype=np.int64)
        acc = 1
        raw = [0] * n
        for i in range(n):
            raw[i] = acc
            acc = acc * root % self.modulus
        bits = self.log_degree
        for i in range(n):
            powers[i] = raw[bit_reverse(i, bits)]
        return powers

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Negacyclic forward NTT (coefficient → evaluation order).

        The output ordering is the standard bit-reversed CT ordering; it is
        consistent between :meth:`forward` and :meth:`inverse`, which is
        all the scheme requires (pointwise products are order-agnostic).
        """
        q = self.modulus
        n = self.ring_degree
        a = np.asarray(coeffs, dtype=np.int64) % q
        if a.shape != (n,):
            raise ValueError(f"expected shape ({n},), got {a.shape}")
        a = a.copy()
        tw = self._forward_twiddles
        t = n
        m = 1
        while m < n:
            t //= 2
            # For each block j in [0, m): butterfly with twiddle tw[m + j].
            for j in range(m):
                w = int(tw[m + j])
                start = 2 * j * t
                lo = a[start:start + t]
                hi = a[start + t:start + 2 * t]
                prod = hi * w % q
                hi_new = (lo - prod) % q
                lo_new = (lo + prod) % q
                a[start:start + t] = lo_new
                a[start + t:start + 2 * t] = hi_new
            m *= 2
        return a

    def inverse(self, values: np.ndarray) -> np.ndarray:
        """Negacyclic inverse NTT (evaluation → coefficient order)."""
        q = self.modulus
        n = self.ring_degree
        a = np.asarray(values, dtype=np.int64) % q
        if a.shape != (n,):
            raise ValueError(f"expected shape ({n},), got {a.shape}")
        a = a.copy()
        tw = self._inverse_twiddles
        t = 1
        m = n
        while m > 1:
            h = m // 2
            for j in range(h):
                w = int(tw[h + j])
                start = 2 * j * t
                lo = a[start:start + t]
                hi = a[start + t:start + 2 * t]
                lo_new = (lo + hi) % q
                hi_new = (lo - hi) % q * w % q
                a[start:start + t] = lo_new
                a[start + t:start + 2 * t] = hi_new
            t *= 2
            m = h
        a = a * self.degree_inv % q
        return a

    # ------------------------------------------------------------------
    # Reference helpers (used by tests)
    # ------------------------------------------------------------------

    def negacyclic_convolution(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Schoolbook negacyclic product ``a*b mod (x^N + 1, q)``.

        O(N^2); reference implementation for testing the NTT pointwise
        multiplication path.
        """
        q = self.modulus
        n = self.ring_degree
        result = np.zeros(n, dtype=np.int64)
        a = np.asarray(a, dtype=np.int64) % q
        b = np.asarray(b, dtype=np.int64) % q
        for i in range(n):
            if a[i] == 0:
                continue
            ai = int(a[i])
            for j in range(n):
                k = i + j
                term = ai * int(b[j]) % q
                if k >= n:
                    result[k - n] = (result[k - n] - term) % q
                else:
                    result[k] = (result[k] + term) % q
        return result % q

    def pointwise_multiply(self, a_eval: np.ndarray, b_eval: np.ndarray) -> np.ndarray:
        """Pointwise product of two evaluation-representation vectors."""
        return np.asarray(a_eval, dtype=np.int64) * np.asarray(b_eval, dtype=np.int64) % self.modulus


_CONTEXT_CACHE: Dict[Tuple[int, int], NttContext] = {}


def get_ntt_context(ring_degree: int, modulus: int) -> NttContext:
    """Return a cached :class:`NttContext` for ``(ring_degree, modulus)``."""
    key = (ring_degree, modulus)
    ctx = _CONTEXT_CACHE.get(key)
    if ctx is None:
        ctx = NttContext(ring_degree, modulus)
        _CONTEXT_CACHE[key] = ctx
    return ctx
