"""RNS polynomials in Z_Q[x]/(x^N + 1).

A ciphertext ring element is stored as an ``(l, N)`` int64 matrix — one
row per RNS limb, matching the paper's limb-wise memory view (§2.1.1).
Polynomials track whether they are in coefficient or evaluation (NTT)
representation; pointwise products require evaluation form.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from .modmath import ilog2
from .ntt import get_ntt_context
from .rns import RnsBasis


class RnsPolynomial:
    """A polynomial in RNS representation.

    Attributes:
        ring_degree: ring dimension N.
        basis: the :class:`RnsBasis` of limb moduli.
        limbs: int64 matrix of shape ``(len(basis), ring_degree)``.
        is_ntt: ``True`` if limbs hold evaluation (NTT) representation.
    """

    __slots__ = ("ring_degree", "basis", "limbs", "is_ntt")

    def __init__(self, ring_degree: int, basis: RnsBasis, limbs: np.ndarray,
                 is_ntt: bool):
        ilog2(ring_degree)  # validates power of two
        limbs = np.asarray(limbs, dtype=np.int64)
        if limbs.shape != (len(basis), ring_degree):
            raise ValueError(
                f"limb matrix shape {limbs.shape} does not match "
                f"({len(basis)}, {ring_degree})")
        self.ring_degree = ring_degree
        self.basis = basis
        self.limbs = limbs
        self.is_ntt = is_ntt

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zeros(cls, ring_degree: int, basis: RnsBasis,
              is_ntt: bool = True) -> "RnsPolynomial":
        """The zero polynomial."""
        return cls(ring_degree, basis,
                   np.zeros((len(basis), ring_degree), dtype=np.int64), is_ntt)

    @classmethod
    def from_int_coeffs(cls, coeffs: Sequence[int], ring_degree: int,
                        basis: RnsBasis) -> "RnsPolynomial":
        """Build from (possibly signed, possibly big) integer coefficients.

        Every limb receives the same integer reduced modulo its prime, so
        the rows are consistent residues of one integer polynomial.
        """
        coeffs = list(coeffs)
        if len(coeffs) != ring_degree:
            raise ValueError("coefficient count must equal ring degree")
        limbs = np.zeros((len(basis), ring_degree), dtype=np.int64)
        big = any(abs(int(c)) >= (1 << 62) for c in coeffs)
        if big:
            for i, q in enumerate(basis.primes):
                limbs[i] = np.array([int(c) % q for c in coeffs],
                                    dtype=np.int64)
        else:
            arr = np.array([int(c) for c in coeffs], dtype=np.int64)
            for i, q in enumerate(basis.primes):
                limbs[i] = arr % q
        return cls(ring_degree, basis, limbs, is_ntt=False)

    def copy(self) -> "RnsPolynomial":
        """Deep copy."""
        return RnsPolynomial(self.ring_degree, self.basis, self.limbs.copy(),
                             self.is_ntt)

    # ------------------------------------------------------------------
    # Representation changes
    # ------------------------------------------------------------------

    def to_ntt(self) -> "RnsPolynomial":
        """Return the evaluation-representation version of this polynomial."""
        if self.is_ntt:
            return self
        out = np.empty_like(self.limbs)
        for i, q in enumerate(self.basis.primes):
            ctx = get_ntt_context(self.ring_degree, q)
            out[i] = ctx.forward(self.limbs[i])
        return RnsPolynomial(self.ring_degree, self.basis, out, is_ntt=True)

    def to_coeff(self) -> "RnsPolynomial":
        """Return the coefficient-representation version of this polynomial."""
        if not self.is_ntt:
            return self
        out = np.empty_like(self.limbs)
        for i, q in enumerate(self.basis.primes):
            ctx = get_ntt_context(self.ring_degree, q)
            out[i] = ctx.inverse(self.limbs[i])
        return RnsPolynomial(self.ring_degree, self.basis, out, is_ntt=False)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _check_compatible(self, other: "RnsPolynomial") -> None:
        if self.basis != other.basis:
            raise ValueError("RNS bases differ")
        if self.ring_degree != other.ring_degree:
            raise ValueError("ring degrees differ")
        if self.is_ntt != other.is_ntt:
            raise ValueError("representations differ (NTT vs coefficient)")

    def __add__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other)
        primes = np.array(self.basis.primes, dtype=np.int64)[:, None]
        return RnsPolynomial(self.ring_degree, self.basis,
                             (self.limbs + other.limbs) % primes, self.is_ntt)

    def __sub__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        self._check_compatible(other)
        primes = np.array(self.basis.primes, dtype=np.int64)[:, None]
        return RnsPolynomial(self.ring_degree, self.basis,
                             (self.limbs - other.limbs) % primes, self.is_ntt)

    def __neg__(self) -> "RnsPolynomial":
        primes = np.array(self.basis.primes, dtype=np.int64)[:, None]
        return RnsPolynomial(self.ring_degree, self.basis,
                             (-self.limbs) % primes, self.is_ntt)

    def __mul__(self, other: "RnsPolynomial") -> "RnsPolynomial":
        """Ring product; both operands must be in NTT representation."""
        self._check_compatible(other)
        if not self.is_ntt:
            raise ValueError("ring products require NTT representation")
        primes = np.array(self.basis.primes, dtype=np.int64)[:, None]
        return RnsPolynomial(self.ring_degree, self.basis,
                             self.limbs * other.limbs % primes, True)

    def scalar_multiply(self, scalars) -> "RnsPolynomial":
        """Multiply by per-limb scalars (int or length-l sequence)."""
        if isinstance(scalars, (int, np.integer)):
            scalars = [int(scalars) % q for q in self.basis.primes]
        scalars = np.array([int(s) for s in scalars], dtype=np.int64)
        if scalars.shape != (len(self.basis),):
            raise ValueError("need one scalar per limb")
        primes = np.array(self.basis.primes, dtype=np.int64)[:, None]
        return RnsPolynomial(self.ring_degree, self.basis,
                             self.limbs * scalars[:, None] % primes,
                             self.is_ntt)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def drop_last_limbs(self, count: int = 1) -> "RnsPolynomial":
        """Drop the last ``count`` limbs (used after rescaling)."""
        if count <= 0 or count >= len(self.basis):
            raise ValueError("invalid limb drop count")
        new_basis = RnsBasis(self.basis.primes[:-count])
        return RnsPolynomial(self.ring_degree, new_basis,
                             self.limbs[:-count].copy(), self.is_ntt)

    def keep_limbs(self, indices: Iterable[int]) -> "RnsPolynomial":
        """Project onto the limbs at ``indices`` (ordered)."""
        indices = list(indices)
        new_basis = RnsBasis([self.basis.primes[i] for i in indices])
        return RnsPolynomial(self.ring_degree, new_basis,
                             self.limbs[indices].copy(), self.is_ntt)

    def automorphism(self, galois_element: int) -> "RnsPolynomial":
        """Apply the Galois automorphism ``x -> x^g`` (g odd).

        Performed in coefficient representation: coefficient ``c_i``
        lands at index ``i*g mod 2N`` with a sign flip when it wraps past
        ``x^N = -1``.  This is the algebraic ground truth against which
        the hardware automorph unit (eq. 4 of the paper) is validated.
        """
        g = galois_element % (2 * self.ring_degree)
        if g % 2 == 0:
            raise ValueError("Galois element must be odd")
        was_ntt = self.is_ntt
        poly = self.to_coeff()
        n = self.ring_degree
        out = np.zeros_like(poly.limbs)
        idx = (np.arange(n, dtype=np.int64) * g) % (2 * n)
        wrap = idx >= n
        dest = np.where(wrap, idx - n, idx)
        primes = np.array(self.basis.primes, dtype=np.int64)[:, None]
        signed = np.where(wrap[None, :], -poly.limbs, poly.limbs)
        out[:, dest] = signed
        out %= primes
        result = RnsPolynomial(self.ring_degree, self.basis, out, is_ntt=False)
        return result.to_ntt() if was_ntt else result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def integer_coefficients(self) -> List[int]:
        """Exact centered integer coefficients via CRT (for tests/decode)."""
        from .modmath import crt_reconstruct_centered
        poly = self.to_coeff()
        coeffs = []
        primes = list(self.basis.primes)
        for col in range(self.ring_degree):
            residues = [int(poly.limbs[i, col]) for i in range(len(primes))]
            coeffs.append(crt_reconstruct_centered(residues, primes))
        return coeffs

    def __eq__(self, other) -> bool:
        return (isinstance(other, RnsPolynomial)
                and self.basis == other.basis
                and self.is_ntt == other.is_ntt
                and np.array_equal(self.limbs, other.limbs))

    def __repr__(self) -> str:
        rep = "ntt" if self.is_ntt else "coeff"
        return (f"RnsPolynomial(N={self.ring_degree}, limbs={len(self.basis)}, "
                f"rep={rep})")
