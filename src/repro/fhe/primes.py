"""NTT-friendly prime generation and roots of unity.

The negacyclic NTT over ``Z_q[x]/(x^N + 1)`` requires a prime
``q ≡ 1 (mod 2N)`` so that a primitive 2N-th root of unity ``psi``
exists in ``Z_q``.  This module generates such primes (Miller–Rabin)
and the associated roots.

The functional layer keeps primes below 2**31 so that products of two
residues fit in a signed 64-bit integer, which lets the NTT and all
pointwise kernels run vectorized in numpy with exact arithmetic.  The
paper's 54-bit limbs are modelled bit-exactly in :mod:`repro.core.arith`
and analytically everywhere else.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .modmath import modpow

#: Largest prime bit-width usable by the vectorized functional layer.
MAX_FUNCTIONAL_PRIME_BITS = 31

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97,
)


def is_prime(candidate: int, rounds: int = 40) -> bool:
    """Miller–Rabin primality test (deterministic for < 3.3e24 bases)."""
    if candidate < 2:
        return False
    for p in _SMALL_PRIMES:
        if candidate == p:
            return True
        if candidate % p == 0:
            return False
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # Deterministic witness set covers all 64-bit integers; extend with
    # random witnesses for larger candidates.
    witnesses = list(_SMALL_PRIMES[:12])
    rng = random.Random(candidate)
    while len(witnesses) < rounds:
        witnesses.append(rng.randrange(2, candidate - 1))
    for a in witnesses:
        a %= candidate
        if a in (0, 1, candidate - 1):
            continue
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = x * x % candidate
            if x == candidate - 1:
                break
        else:
            return False
    return True


def find_ntt_prime(bits: int, ring_degree: int, avoid: Sequence[int] = (),
                   below: Optional[int] = None) -> int:
    """Find a prime ``q ≡ 1 (mod 2N)`` of roughly ``bits`` bits.

    Args:
        bits: target bit-width of the prime.
        ring_degree: the ring dimension N (power of two).
        avoid: primes already in use (skipped).
        below: if given, search downward starting strictly below this value.

    Returns:
        An NTT-friendly prime.
    """
    m = 2 * ring_degree
    avoid_set = set(avoid)
    if below is not None:
        candidate = ((below - 1) // m) * m + 1
        while candidate >= below:
            candidate -= m
    else:
        candidate = ((1 << bits) // m) * m + 1
        # Start just under 2**bits.
        while candidate >= (1 << bits):
            candidate -= m
    while candidate > m:
        if candidate not in avoid_set and is_prime(candidate):
            return candidate
        candidate -= m
    raise ValueError(f"no NTT prime of {bits} bits for N={ring_degree}")


def generate_prime_chain(count: int, bits: int, ring_degree: int,
                         first_bits: Optional[int] = None) -> List[int]:
    """Generate ``count`` distinct NTT-friendly primes of ~``bits`` bits.

    ``first_bits`` optionally gives the first prime (the base modulus q0)
    a different width, as is common in CKKS parameterizations.
    """
    primes: List[int] = []
    if count == 0:
        return primes
    if first_bits is not None:
        primes.append(find_ntt_prime(first_bits, ring_degree))
    below = None
    while len(primes) < count:
        q = find_ntt_prime(bits, ring_degree, avoid=primes, below=below)
        primes.append(q)
        below = q
    return primes


def find_primitive_root(modulus: int) -> int:
    """Find a generator of the multiplicative group of ``Z_q``."""
    order = modulus - 1
    factors = _prime_factors(order)
    for g in range(2, modulus):
        if all(modpow(g, order // f, modulus) != 1 for f in factors):
            return g
    raise ValueError(f"no primitive root modulo {modulus}")


def _prime_factors(value: int) -> List[int]:
    """Return the distinct prime factors of ``value`` (trial division +
    Pollard rho for large cofactors)."""
    factors = set()
    for p in _SMALL_PRIMES:
        while value % p == 0:
            factors.add(p)
            value //= p
    stack = [value] if value > 1 else []
    while stack:
        n = stack.pop()
        if n == 1:
            continue
        if is_prime(n):
            factors.add(n)
            continue
        d = _pollard_rho(n)
        stack.append(d)
        stack.append(n // d)
    return sorted(factors)


def _pollard_rho(n: int) -> int:
    """Pollard's rho factorization; returns a nontrivial factor of n."""
    if n % 2 == 0:
        return 2
    rng = random.Random(n)
    while True:
        x = rng.randrange(2, n)
        y = x
        c = rng.randrange(1, n)
        d = 1
        while d == 1:
            x = (x * x + c) % n
            y = (y * y + c) % n
            y = (y * y + c) % n
            d = _gcd(abs(x - y), n)
        if d != n:
            return d


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


def primitive_root_of_unity(order: int, modulus: int) -> int:
    """Return a primitive ``order``-th root of unity modulo ``modulus``.

    ``order`` must divide ``modulus - 1``.
    """
    if (modulus - 1) % order != 0:
        raise ValueError(f"{order} does not divide {modulus}-1")
    generator = find_primitive_root(modulus)
    root = modpow(generator, (modulus - 1) // order, modulus)
    # Sanity: root^order == 1 and root^(order/2) == -1 for even order.
    if modpow(root, order, modulus) != 1:
        raise AssertionError("root order violated")
    if order % 2 == 0 and modpow(root, order // 2, modulus) != modulus - 1:
        raise AssertionError("root is not primitive")
    return root
