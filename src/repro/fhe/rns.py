"""Residue number system (RNS) bases and base conversion.

Implements the RNS machinery of §2.1.1 of the paper: a ciphertext
modulus ``Q = q_1 ... q_l`` is represented by its limbs, and the
``ModUp`` / ``ModDown`` key-switching subroutines rely on the (fast,
approximate) RNS base-conversion of Eq. (1):

    [x]_p = sum_i [x_i * Q~_i]_{q_i} * Q*_i  (mod p)

where ``Q*_i = Q / q_i`` and ``Q~_i = (Q*_i)^{-1} mod q_i``.  The fast
conversion omits the subtraction of the overflow multiple of ``Q`` and
therefore returns ``x + u*Q`` for a small ``u`` (0 <= u < l); this is
the standard HPS-style approximate conversion whose error is absorbed
into the scheme noise.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from .modmath import modinv


class RnsBasis:
    """An ordered set of pairwise-coprime NTT primes.

    Attributes:
        primes: the limb moduli ``(q_1, ..., q_l)``.
    """

    def __init__(self, primes: Sequence[int]):
        primes = tuple(int(q) for q in primes)
        if len(set(primes)) != len(primes):
            raise ValueError("RNS basis primes must be distinct")
        if not primes:
            raise ValueError("RNS basis must contain at least one prime")
        self.primes = primes

    def __len__(self) -> int:
        return len(self.primes)

    def __iter__(self):
        return iter(self.primes)

    def __eq__(self, other) -> bool:
        return isinstance(other, RnsBasis) and self.primes == other.primes

    def __hash__(self) -> int:
        return hash(self.primes)

    def __repr__(self) -> str:
        return f"RnsBasis({list(self.primes)})"

    @property
    def modulus(self) -> int:
        """The full modulus Q (exact big integer)."""
        product = 1
        for q in self.primes:
            product *= q
        return product

    def subbasis(self, count: int) -> "RnsBasis":
        """The basis formed by the first ``count`` primes."""
        if not 0 < count <= len(self.primes):
            raise ValueError(f"invalid subbasis size {count}")
        return RnsBasis(self.primes[:count])

    def q_star_mod(self, target: int) -> np.ndarray:
        """``Q*_i mod target`` for every limb i, as an int64 vector."""
        modulus = self.modulus
        return np.array(
            [(modulus // q) % target for q in self.primes], dtype=np.int64)

    def q_tilde(self) -> np.ndarray:
        """``Q~_i = (Q/q_i)^{-1} mod q_i`` for every limb i."""
        modulus = self.modulus
        return np.array(
            [modinv((modulus // q) % q, q) for q in self.primes],
            dtype=np.int64)


class BaseConverter:
    """Fast approximate RNS base conversion from ``source`` to ``target``.

    Precomputes the ``Q~_i`` and ``Q*_i mod p_j`` tables once; the
    conversion itself is a limb-parallel multiply-accumulate, which is
    exactly the inner product that FAB's smart operation scheduling
    optimizes (the ``x_i * Q~_i`` products are computed once and reused
    for every output limb — see §4.6 of the paper).
    """

    def __init__(self, source: RnsBasis, target: RnsBasis):
        self.source = source
        self.target = target
        self._q_tilde = source.q_tilde()
        # Matrix [j, i] = Q*_i mod p_j.
        self._q_star = np.stack(
            [source.q_star_mod(p) for p in target.primes])
        self._source_primes = np.array(source.primes, dtype=np.int64)
        self._target_primes = np.array(target.primes, dtype=np.int64)

    def convert(self, limbs: np.ndarray) -> np.ndarray:
        """Convert residue matrix ``(len(source), n)`` to the target basis.

        Returns an ``(len(target), n)`` int64 matrix congruent to
        ``x + u*Q`` in each target limb, with ``0 <= u < len(source)``.
        """
        limbs = np.asarray(limbs, dtype=np.int64)
        if limbs.ndim != 2 or limbs.shape[0] != len(self.source):
            raise ValueError(
                f"expected ({len(self.source)}, n) limbs, got {limbs.shape}")
        n = limbs.shape[1]
        # y_i = x_i * Q~_i mod q_i  (computed once, reused for all outputs —
        # the factor-of-two saving of the paper's smart scheduling).
        y = limbs * self._q_tilde[:, None] % self._source_primes[:, None]
        out = np.zeros((len(self.target), n), dtype=np.int64)
        for j, p in enumerate(self.target.primes):
            acc = np.zeros(n, dtype=np.int64)
            row = self._q_star[j]
            for i in range(len(self.source)):
                # Each product < 2^62; reduce every step to avoid overflow.
                acc = (acc + y[i] * int(row[i])) % p
            out[j] = acc
        return out

    def convert_exact_floor(self, limbs: np.ndarray) -> np.ndarray:
        """Exact conversion of the canonical lift ``x in [0, Q)``.

        Uses the float-correction technique standard in RNS-CKKS
        implementations: with ``y_i = [x_i * Q~_i]_{q_i}`` the exact lift
        is ``sum_i y_i * Q*_i - u * Q`` where ``u = floor(sum_i y_i/q_i)``.
        The correction integer ``u`` is computed in float64, which is
        exact except when ``x/Q`` is within ~l*2^-52 of an integer.
        """
        limbs = np.asarray(limbs, dtype=np.int64)
        if limbs.ndim != 2 or limbs.shape[0] != len(self.source):
            raise ValueError(
                f"expected ({len(self.source)}, n) limbs, got {limbs.shape}")
        n = limbs.shape[1]
        y = limbs * self._q_tilde[:, None] % self._source_primes[:, None]
        fractions = (y / self._source_primes[:, None]).sum(axis=0)
        u = np.floor(fractions + 1e-12).astype(np.int64)
        modulus = self.source.modulus
        out = np.zeros((len(self.target), n), dtype=np.int64)
        for j, p in enumerate(self.target.primes):
            acc = np.zeros(n, dtype=np.int64)
            row = self._q_star[j]
            for i in range(len(self.source)):
                acc = (acc + y[i] * int(row[i])) % p
            acc = (acc - u * (modulus % p)) % p
            out[j] = acc
        return out

    def convert_exact_centered(self, limbs: np.ndarray) -> np.ndarray:
        """Exact conversion via big-int CRT with centered lift.

        O(n * l) big-integer operations — reference implementation used
        by tests and by exact rounding paths, not by the hot path.
        """
        limbs = np.asarray(limbs, dtype=np.int64)
        modulus = self.source.modulus
        half = modulus // 2
        n = limbs.shape[1]
        out = np.zeros((len(self.target), n), dtype=np.int64)
        q_star = [modulus // q for q in self.source.primes]
        q_tilde = [int(t) for t in self._q_tilde]
        for col in range(n):
            value = 0
            for i, q in enumerate(self.source.primes):
                value += (int(limbs[i, col]) * q_tilde[i] % q) * q_star[i]
            value %= modulus
            if value >= half:
                value -= modulus
            for j, p in enumerate(self.target.primes):
                out[j, col] = value % p
        return out


_CONVERTER_CACHE: Dict[Tuple[RnsBasis, RnsBasis], BaseConverter] = {}


def get_base_converter(source: RnsBasis, target: RnsBasis) -> BaseConverter:
    """Return a cached :class:`BaseConverter` for the basis pair."""
    key = (source, target)
    conv = _CONVERTER_CACHE.get(key)
    if conv is None:
        conv = BaseConverter(source, target)
        _CONVERTER_CACHE[key] = conv
    return conv
