"""High-level homomorphic routines built on the public evaluator API.

The building blocks applications actually call: slot summation, inner
products, means/variances, and monomial-basis polynomial evaluation —
each a composition of the §2.1 primitives (Add / Mult / Rotate /
Conjugate) with correct scale management.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .align import ScaleAligner
from .ciphertext import Ciphertext
from .encoder import CkksEncoder
from .evaluator import Evaluator


def rotation_steps_for_sum(num_slots: int) -> List[int]:
    """Power-of-two steps of the rotate-and-add summation tree."""
    steps = []
    k = 1
    while k < num_slots:
        steps.append(k)
        k *= 2
    return steps


class HomomorphicRoutines:
    """Vector routines over encrypted data."""

    def __init__(self, evaluator: Evaluator, encoder: CkksEncoder):
        self.evaluator = evaluator
        self.encoder = encoder
        self.aligner = ScaleAligner(evaluator, encoder)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------

    def sum_slots(self, ct: Ciphertext,
                  num_slots: Optional[int] = None) -> Ciphertext:
        """Sum all slots; the total is replicated into every slot.

        log2(n) rotations (hoisted is not applicable — each step rotates
        the running sum, not the original ciphertext).
        """
        ev = self.evaluator
        n = num_slots or ct.num_slots
        acc = ct
        for step in rotation_steps_for_sum(n):
            acc = ev.add(acc, ev.rotate(acc, step))
        return acc

    def mean_slots(self, ct: Ciphertext,
                   num_slots: Optional[int] = None) -> Ciphertext:
        """Average of all slots, replicated (one extra level)."""
        n = num_slots or ct.num_slots
        total = self.sum_slots(ct, n)
        return self.aligner.mul_const(total, 1.0 / n)

    def inner_product(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        """``<a, b>`` replicated into every slot (two levels + tree)."""
        ev = self.evaluator
        prod = ev.rescale(ev.multiply(a, b))
        return self.sum_slots(prod, min(a.num_slots, b.num_slots))

    def squared_norm(self, ct: Ciphertext) -> Ciphertext:
        """``||x||^2`` replicated into every slot."""
        ev = self.evaluator
        sq = ev.rescale(ev.square(ct))
        return self.sum_slots(sq, ct.num_slots)

    def variance_slots(self, ct: Ciphertext) -> Ciphertext:
        """Population variance of the slots, replicated (three levels)."""
        ev = self.evaluator
        n = ct.num_slots
        mean = self.mean_slots(ct)
        centered = self.aligner.sub(ct, mean)
        sq = ev.rescale(ev.square(centered))
        total = self.sum_slots(sq, n)
        return self.aligner.mul_const(total, 1.0 / n)

    # ------------------------------------------------------------------
    # Polynomial evaluation (monomial basis, BSGS)
    # ------------------------------------------------------------------

    def evaluate_polynomial(self, ct: Ciphertext,
                            coeffs: Sequence[float]) -> Ciphertext:
        """Evaluate ``sum_j coeffs[j] x^j`` with BSGS power reuse.

        Suitable for low degrees (< ~16) where monomial coefficients are
        tame; bootstrapping's high-degree approximations use the
        numerically-stable Chebyshev evaluator instead.
        """
        coeffs = [float(c) for c in coeffs]
        while len(coeffs) > 1 and abs(coeffs[-1]) < 1e-14:
            coeffs.pop()
        degree = len(coeffs) - 1
        if degree == 0:
            zero = self.evaluator.multiply_scalar_int(ct, 0)
            return self.aligner.add_const(zero, coeffs[0])
        powers = self._compute_powers(ct, degree)
        total: Optional[Ciphertext] = None
        for j in range(1, degree + 1):
            if abs(coeffs[j]) < 1e-14 and j != 1:
                continue
            term = self.aligner.mul_const(powers[j], coeffs[j])
            total = term if total is None else self.aligner.add(total, term)
        assert total is not None
        return self.aligner.add_const(total, coeffs[0])

    def _compute_powers(self, ct: Ciphertext, degree: int):
        """x^1 .. x^degree via balanced products (depth ~ log2 degree)."""
        ev = self.evaluator
        powers = {1: ct}
        for j in range(2, degree + 1):
            a = j // 2
            b = j - a
            pa, pb = self.aligner.align_pair(powers[a], powers[b])
            powers[j] = ev.rescale(ev.multiply(pa, pb))
        return powers

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------

    def matvec(self, matrix: np.ndarray, ct: Ciphertext) -> Ciphertext:
        """``M @ slots(ct)`` via the BSGS diagonal method (one level).

        The same machinery bootstrapping uses for CoeffToSlot; the
        caller must hold Galois keys for the transform's rotations
        (query them with :meth:`matvec_rotations`).
        """
        from .bootstrap.linear_transform import LinearTransform
        lt = LinearTransform(matrix, ct.num_slots, self.encoder)
        return lt.apply(ct, self.evaluator)

    def matvec_rotations(self, matrix: np.ndarray,
                         num_slots: int) -> List[int]:
        """Rotation steps a :meth:`matvec` with this matrix needs."""
        from .bootstrap.linear_transform import LinearTransform
        lt = LinearTransform(matrix, num_slots, self.encoder)
        return sorted(lt.required_rotations())

    # ------------------------------------------------------------------
    # Complex-slot helpers
    # ------------------------------------------------------------------

    def real_part(self, ct: Ciphertext) -> Ciphertext:
        """``Re(x)`` per slot: ``(x + conj(x)) / 2`` (one level)."""
        ev = self.evaluator
        total = ev.add(ct, ev.conjugate(ct))
        return self.aligner.mul_const(total, 0.5)

    def imag_part(self, ct: Ciphertext) -> Ciphertext:
        """``Im(x)`` per slot: ``-i (x - conj(x)) / 2`` (one level)."""
        ev = self.evaluator
        diff = ev.sub(ct, ev.conjugate(ct))
        rotated = ev.multiply_by_i(diff, power=3)  # multiply by -i
        return self.aligner.mul_const(rotated, 0.5)
