"""LWE security estimation for CKKS parameter selection.

The paper selects ``N = 2^16`` with ``log(PQ) = 1728`` for a 128-bit
security level, citing Albrecht et al.'s estimator [3].  Running the
full lattice estimator offline is out of scope; instead we embed the
homomorphicencryption.org standard table (ternary secret, classical
hardness) and interpolate log-linearly, which reproduces the security
levels the paper quotes for its parameter choices.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

#: Maximum log2(Q) for a ternary-secret RLWE instance at the given
#: security level, per the HE standard (classical attacks).
_MAX_LOGQ_TABLE: Dict[int, Dict[int, int]] = {
    128: {1024: 27, 2048: 54, 4096: 109, 8192: 218, 16384: 438,
          32768: 881, 65536: 1761, 131072: 3524},
    192: {1024: 19, 2048: 37, 4096: 75, 8192: 152, 16384: 305,
          32768: 611, 65536: 1224, 131072: 2448},
    256: {1024: 14, 2048: 29, 4096: 58, 8192: 118, 16384: 237,
          32768: 476, 65536: 953, 131072: 1906},
}


def max_log_q(ring_degree: int, security_level: int = 128) -> int:
    """Largest log2 of the modulus keeping ``security_level`` bits.

    Ring degrees below 1024 have no secure parameterization and return 0.
    """
    if security_level not in _MAX_LOGQ_TABLE:
        raise ValueError(
            f"supported security levels: {sorted(_MAX_LOGQ_TABLE)}")
    table = _MAX_LOGQ_TABLE[security_level]
    if ring_degree in table:
        return table[ring_degree]
    if ring_degree < min(table):
        return 0
    if ring_degree > max(table):
        # log Q budget doubles with N in this regime.
        largest = max(table)
        return table[largest] * (ring_degree // largest)
    raise ValueError(f"ring degree {ring_degree} must be a power of two "
                     ">= 1024")


def security_level(ring_degree: int, log_q: float) -> float:
    """Approximate security (bits) of an RLWE instance.

    Interpolates between the table's security columns: within the
    bracketing pair the level scales with the ratio of log-Q budgets
    (security is roughly proportional to N / log Q).
    """
    if log_q <= 0:
        raise ValueError("log_q must be positive")
    levels: List[Tuple[int, int]] = []
    for lam in sorted(_MAX_LOGQ_TABLE):
        budget = max_log_q(ring_degree, lam)
        levels.append((lam, budget))
    # security ~ c * N / logQ: calibrate c from the 128-bit row.
    lam0, budget0 = levels[0]
    if budget0 == 0:
        return 0.0
    return lam0 * budget0 / log_q


def is_secure(ring_degree: int, log_q: float,
              target_bits: int = 128) -> bool:
    """True if the parameters reach the target security level."""
    return max_log_q(ring_degree, target_bits) >= math.ceil(log_q)


def minimum_ring_degree(log_q: float, target_bits: int = 128) -> int:
    """Smallest power-of-two N supporting ``log_q`` at the target level."""
    n = 1024
    while n <= 1 << 22:
        if max_log_q(n, target_bits) >= math.ceil(log_q):
            return n
        n *= 2
    raise ValueError(f"no supported ring degree for log_q={log_q}")
