"""Serialization of ciphertexts and keys, with seed-compressed keys.

Implements the key-compression technique credited to [15] in the
paper's Figure 1: the uniform halves ``a`` of public and switching keys
are pseudorandom, so they serialize as a 16-byte seed instead of
``dnum x (L+1+alpha) x N`` limbs — halving key material (the sizes
:mod:`repro.perf.keysize` accounts for).  Deserialization regenerates
``a`` from the seed and recomputes ``b`` is not possible (it contains
the secret-dependent part), so ``b`` ships in full.

The wire format is a simple self-describing binary layout (little
endian), independent of numpy's pickle, so it is stable across
versions.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, List, Tuple

import numpy as np

from .ciphertext import Ciphertext
from .context import CkksContext
from .keys import SwitchingKey
from .poly import RnsPolynomial
from .rns import RnsBasis

_MAGIC_CT = b"FABC"
_MAGIC_KEY = b"FABK"
_VERSION = 1


# ----------------------------------------------------------------------
# Low-level helpers
# ----------------------------------------------------------------------

def _write_poly(out: BinaryIO, poly: RnsPolynomial) -> None:
    out.write(struct.pack("<IIB", poly.ring_degree, len(poly.basis),
                          1 if poly.is_ntt else 0))
    for q in poly.basis.primes:
        out.write(struct.pack("<Q", q))
    out.write(poly.limbs.astype("<i8").tobytes())


def _read_poly(data: memoryview, offset: int) -> Tuple[RnsPolynomial, int]:
    ring_degree, num_limbs, is_ntt = struct.unpack_from("<IIB", data,
                                                        offset)
    offset += struct.calcsize("<IIB")
    primes = []
    for _ in range(num_limbs):
        (q,) = struct.unpack_from("<Q", data, offset)
        primes.append(q)
        offset += 8
    count = num_limbs * ring_degree
    limbs = np.frombuffer(data, dtype="<i8", count=count,
                          offset=offset).reshape(num_limbs, ring_degree)
    offset += count * 8
    poly = RnsPolynomial(ring_degree, RnsBasis(primes),
                         limbs.astype(np.int64), bool(is_ntt))
    return poly, offset


# ----------------------------------------------------------------------
# Ciphertexts
# ----------------------------------------------------------------------

def serialize_ciphertext(ct: Ciphertext) -> bytes:
    """Pack a ciphertext into bytes."""
    import io
    out = io.BytesIO()
    out.write(_MAGIC_CT)
    out.write(struct.pack("<BdI", _VERSION, ct.scale, ct.num_slots))
    _write_poly(out, ct.c0)
    _write_poly(out, ct.c1)
    return out.getvalue()


def deserialize_ciphertext(data: bytes) -> Ciphertext:
    """Unpack a ciphertext."""
    view = memoryview(data)
    if bytes(view[:4]) != _MAGIC_CT:
        raise ValueError("not a serialized ciphertext")
    version, scale, num_slots = struct.unpack_from("<BdI", view, 4)
    if version != _VERSION:
        raise ValueError(f"unsupported version {version}")
    offset = 4 + struct.calcsize("<BdI")
    c0, offset = _read_poly(view, offset)
    c1, offset = _read_poly(view, offset)
    return Ciphertext(c0, c1, scale, num_slots)


# ----------------------------------------------------------------------
# Switching keys (seed compression)
# ----------------------------------------------------------------------

def regenerate_uniform(seed: int, index: int, basis: RnsBasis,
                       ring_degree: int) -> RnsPolynomial:
    """Deterministically expand the uniform key half from a seed."""
    rng = np.random.default_rng(np.random.SeedSequence([seed, index]))
    limbs = np.empty((len(basis), ring_degree), dtype=np.int64)
    for i, q in enumerate(basis.primes):
        limbs[i] = rng.integers(0, q, ring_degree, dtype=np.int64)
    return RnsPolynomial(ring_degree, basis, limbs, is_ntt=True)


def generate_compressed_switching_key(context: CkksContext, secret,
                                      source_poly: RnsPolynomial,
                                      seed: int, tag: str) -> SwitchingKey:
    """A switching key whose ``a`` halves come from ``seed``.

    Functionally identical to ``KeyGenerator.gen_switching_key`` but the
    uniform halves are reproducible, enabling the compressed wire format
    of :func:`serialize_switching_key`.
    """
    basis = context.full_basis
    num_q = len(context.q_basis)
    digits = context.digit_indices(num_q)
    p_mod = context.p_modulus
    q_full = context.q_basis.modulus
    pairs: List[Tuple[RnsPolynomial, RnsPolynomial]] = []
    for j, digit in enumerate(digits):
        digit_mod = 1
        for idx in digit:
            digit_mod *= context.moduli[idx]
        q_over_d = q_full // digit_mod
        q_hat = q_over_d * pow(q_over_d % digit_mod, -1, digit_mod)
        factors = [(p_mod % prime) * (q_hat % prime) % prime
                   for prime in basis.primes]
        a_j = regenerate_uniform(seed, j, basis,
                                 context.params.ring_degree)
        e_j = context.poly_from_small_coeffs(context.sample_error_coeffs(),
                                             basis)
        b_j = -(a_j * secret.poly) + e_j \
            + source_poly.scalar_multiply(factors)
        pairs.append((b_j, a_j))
    key = SwitchingKey(pairs, tag)
    key.seed = seed  # type: ignore[attr-defined]
    return key


def serialize_switching_key(key: SwitchingKey,
                            compressed: bool = True) -> bytes:
    """Pack a switching key; compressed form ships seeds, not ``a``."""
    import io
    seed = getattr(key, "seed", None)
    if compressed and seed is None:
        raise ValueError(
            "key was not generated with a seed; use compressed=False or "
            "generate_compressed_switching_key")
    out = io.BytesIO()
    out.write(_MAGIC_KEY)
    out.write(struct.pack("<BBI", _VERSION, 1 if compressed else 0,
                          key.dnum))
    tag = key.source_tag.encode()
    out.write(struct.pack("<H", len(tag)))
    out.write(tag)
    if compressed:
        out.write(struct.pack("<q", seed))
        for b_j, _a_j in key.pairs:
            _write_poly(out, b_j)
    else:
        for b_j, a_j in key.pairs:
            _write_poly(out, b_j)
            _write_poly(out, a_j)
    return out.getvalue()


def deserialize_switching_key(data: bytes) -> SwitchingKey:
    """Unpack a switching key, re-expanding seeded halves."""
    view = memoryview(data)
    if bytes(view[:4]) != _MAGIC_KEY:
        raise ValueError("not a serialized switching key")
    version, compressed, dnum = struct.unpack_from("<BBI", view, 4)
    if version != _VERSION:
        raise ValueError(f"unsupported version {version}")
    offset = 4 + struct.calcsize("<BBI")
    (tag_len,) = struct.unpack_from("<H", view, offset)
    offset += 2
    tag = bytes(view[offset:offset + tag_len]).decode()
    offset += tag_len
    pairs = []
    if compressed:
        (seed,) = struct.unpack_from("<q", view, offset)
        offset += 8
        for j in range(dnum):
            b_j, offset = _read_poly(view, offset)
            a_j = regenerate_uniform(seed, j, b_j.basis, b_j.ring_degree)
            pairs.append((b_j, a_j))
    else:
        for _ in range(dnum):
            b_j, offset = _read_poly(view, offset)
            a_j, offset = _read_poly(view, offset)
            pairs.append((b_j, a_j))
    key = SwitchingKey(pairs, tag)
    if compressed:
        key.seed = seed  # type: ignore[attr-defined]
    return key
