"""``repro.obs``: zero-overhead observability for the FAB stack.

A :class:`Recorder` observes the scheduler + serving simulators
without perturbing them: the default :data:`NULL_RECORDER` keeps every
instrumented hot path bit-identical to the uninstrumented code, while
:class:`TimelineRecorder` emits Perfetto-loadable Chrome trace-event
timelines and :class:`MetricsRecorder` collects windowed time-series
(utilization, queue depth, key-cache churn, SLO attainment, price).
:func:`provenance` stamps every JSON artifact with seed + config
digest + git revision; :func:`render_metrics` is the ``repro
timeline`` terminal view.

This package is a dependency leaf: it never imports from the rest of
:mod:`repro`, so any layer may record into it.
"""

from .metrics import MetricsRecorder, window_index
from .provenance import config_digest, git_describe, provenance
from .recorder import (NULL_RECORDER, CompositeRecorder, NullRecorder,
                       Recorder, compose)
from .render import render_metrics
from .timeline import TimelineRecorder

__all__ = [
    "Recorder", "NullRecorder", "NULL_RECORDER", "CompositeRecorder",
    "compose", "TimelineRecorder", "MetricsRecorder", "provenance",
    "config_digest", "git_describe", "render_metrics", "window_index",
]
