"""Windowed time-series metrics of a serving run.

:class:`MetricsRecorder` buckets the recorder event stream into
fixed-width time windows and reports, per window:

* **per-board utilization** — busy seconds apportioned exactly across
  the windows each batch's service interval overlaps, so each board's
  utilization series integrates back to its ``DeviceState.busy_s``
  (the hypothesis property in ``tests/obs/test_metrics.py``);
* **queue depth** — the time-weighted mean of pending jobs, total and
  per (class, tenant) queue;
* **key-cache behaviour** — bytes loaded per window plus the rolling
  pool-wide hit rate, resident bytes, and cumulative evicted bytes
  (from :meth:`repro.runtime.serving.KeyCache.stats` snapshots);
* **SLO attainment** — deadline-carrying jobs finishing (or rejected)
  in the window, met/total, plus the rolling attainment;
* **price** — the mean :class:`PriceSignal` level over the window and
  the cumulative price-units spent.

The artifact (:meth:`MetricsRecorder.save`) is plain JSON; ``repro
timeline`` renders it as a terminal summary
(:func:`repro.obs.render.render_metrics`).
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .recorder import MemberLoad, Recorder

_CACHE_KEYS = ("hits", "misses", "bytes_loaded", "evictions",
               "bytes_evicted", "resident_bytes")


def window_index(t: float, window_s: float) -> int:
    """The window containing instant ``t``, boundary-exact.

    Naive ``int(t / window_s)`` misassigns exact boundary instants:
    IEEE-754 makes ``0.3 / 0.1 == 2.9999999999999996``, so an event at
    ``t == 3 * window_s`` lands in window 2 instead of the window it
    opens.  The quotient of a true boundary ``k * w`` is within a
    couple of ulps of ``k``, so a quotient within ``256 * ulp`` below
    the next integer is treated as that integer.  The tolerance is
    relative (ulp-scaled): it absorbs the rounding of ``(k*w)/w`` at
    any magnitude while staying vanishingly small next to the window
    width itself.
    """
    if t <= 0.0:
        return 0
    q = t / window_s
    i = int(q)
    if (i + 1) - q <= 256.0 * math.ulp(q):
        i += 1
    return i


def _grow(series: List[float], index: int) -> None:
    if index >= len(series):
        series.extend([0.0] * (index + 1 - len(series)))


class MetricsRecorder(Recorder):
    """Collect windowed time-series from one simulator run."""

    def __init__(self, window_s: float = 0.05,
                 meta: Optional[Mapping[str, Any]] = None,
                 track_queues: bool = True):
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = float(window_s)
        self._meta: Dict[str, Any] = dict(meta or {})
        self._track_queues = track_queues
        self._run_info: Dict[str, Any] = {}
        self._price: Optional[Any] = None
        # window series (lists indexed by window, grown on demand)
        self._busy: Dict[int, List[float]] = {}
        self._load_bytes: List[float] = []
        self._jobs: List[float] = []
        self._slo_met: List[float] = []
        self._slo_total: List[float] = []
        self._rejects: List[float] = []
        self._cost: List[float] = []
        self._queue_area: List[float] = []
        self._per_queue_area: Dict[str, List[float]] = {}
        #: window -> pool-aggregate cache snapshot (last seen wins).
        self._cache_snap: Dict[int, Dict[str, int]] = {}
        self._cache_last: Dict[int, Mapping[str, int]] = {}
        # queue-depth integration state
        self._q_last_t = 0.0
        self._q_last_total = 0
        self._q_last: Dict[Tuple[str, str], int] = {}
        self.peak_queue_depth = 0
        # fault-injection series: faults/repairs per window, plus a
        # sample-and-hold healthy-board count (None until the first
        # fault event reports one).
        self._faults: List[float] = []
        self._repairs: List[float] = []
        self._healthy_snap: Dict[int, int] = {}
        self._fault_count = 0
        self._repair_count = 0
        self._min_healthy: Optional[int] = None
        # autoscaler series: voluntary resizes per window plus a
        # sample-and-hold provisioned-board count.
        self._resizes: List[float] = []
        self._provisioned_snap: Dict[int, int] = {}
        self._resize_count = 0
        self._scale_ups = 0
        self._scale_downs = 0
        self._min_provisioned: Optional[int] = None
        # membership-ledger series: transitions per window, transition
        # counts keyed "old->new", and a per-state board-seconds
        # integral reconstructed from the transition stream (every
        # board starts active at t=0).
        self._ledger_events: List[float] = []
        self._ledger_transitions: Dict[str, int] = {}
        self._board_state: Dict[int, str] = {}
        self._board_state_since: Dict[int, float] = {}
        self._state_seconds: Dict[str, float] = {}
        self._max_t = 0.0
        self._makespan_s = 0.0
        self._device_busy_s: Tuple[float, ...] = ()
        self._jobs_done = 0

    # -- window helpers ------------------------------------------------

    def _index(self, t: float) -> int:
        return window_index(t, self.window_s)

    def _finite(self, t: float) -> float:
        """Clamp a non-finite event time to the run's current edge.

        A board parked "until the next arrival" wakes at ``inf`` when
        none remain, and jobs whose deadline already passed are
        rejected there; those events belong in the last window touched
        so far, not in an unboundedly distant one.
        """
        if math.isfinite(t):
            return t
        return max(self._max_t, self._q_last_t)

    def _add(self, series: List[float], t: float, value: float) -> None:
        index = self._index(t)
        _grow(series, index)
        series[index] += value
        if t > self._max_t:
            self._max_t = t

    def _spread(self, series: List[float], t0: float, t1: float,
                scale: float = 1.0) -> None:
        """Apportion ``scale`` * overlap-seconds of ``[t0, t1]`` into
        each window it intersects (exact, so integrals reconstruct)."""
        if t1 <= t0:
            return
        if t1 > self._max_t:
            self._max_t = t1
        w = self.window_s
        index = self._index(t0)
        _grow(series, self._index(t1))
        while True:
            hi = (index + 1) * w
            seg = min(t1, hi) - max(t0, index * w)
            if seg > 0:
                _grow(series, index)
                series[index] += seg * scale
            if hi >= t1:
                return
            index += 1

    # -- Recorder hooks ------------------------------------------------

    def run_begin(self, *, scenario: str, num_devices: int, policy: str,
                  price: Optional[Any] = None, max_batch: int = 1) -> None:
        self._run_info = {"scenario": scenario,
                          "num_devices": num_devices,
                          "policy": policy, "max_batch": max_batch}
        self._price = price
        for board in range(num_devices):
            self._busy.setdefault(board, [])

    def job_rejected(self, *, t: float, job_id: int, job_class: str,
                     tenant: str,
                     deadline_s: Optional[float] = None) -> None:
        # A rejected deadline-carrying job counts against SLO
        # attainment in the window of the rejection decision (the
        # report's accounting, windowed).
        t = self._finite(t)
        self._add(self._rejects, t, 1.0)
        self._add(self._slo_total, t, 1.0)
        _grow(self._slo_met, self._index(t))

    def batch(self, *, start: float, finish: float, job_class: str,
              tenant: str, batch_size: int, launch_s: float,
              members: Sequence[MemberLoad],
              cache_stats: Sequence[Mapping[str, int]] = (),
              slo_met: int = 0, slo_total: int = 0,
              cost: float = 0.0) -> None:
        for board, load_s, miss_bytes in members:
            self._spread(self._busy.setdefault(board, []), start, finish)
            if miss_bytes:
                self._add(self._load_bytes, start + launch_s,
                          float(miss_bytes))
        self._add(self._jobs, finish, float(batch_size))
        self._add(self._cost, finish, cost)
        if slo_total:
            self._add(self._slo_met, finish, float(slo_met))
            self._add(self._slo_total, finish, float(slo_total))
        if cache_stats:
            for member, stats in zip(members, cache_stats):
                self._cache_last[member[0]] = stats
            snap = {key: 0 for key in _CACHE_KEYS}
            for stats in self._cache_last.values():
                for key in _CACHE_KEYS:
                    snap[key] += int(stats.get(key, 0))
            self._cache_snap[self._index(finish)] = snap

    def board_fault(self, *, t: float, board: int,
                    permanent: bool = False,
                    healthy: Optional[int] = None,
                    killed_batch: bool = False) -> None:
        t = self._finite(t)
        self._add(self._faults, t, 1.0)
        self._fault_count += 1
        if healthy is not None:
            self._healthy_snap[self._index(t)] = healthy
            if (self._min_healthy is None
                    or healthy < self._min_healthy):
                self._min_healthy = healthy

    def board_repair(self, *, t: float, board: int,
                     healthy: Optional[int] = None) -> None:
        t = self._finite(t)
        self._add(self._repairs, t, 1.0)
        self._repair_count += 1
        if healthy is not None:
            self._healthy_snap[self._index(t)] = healthy

    def pool_resize(self, *, t: float, board: int, direction: str,
                    provisioned: Optional[int] = None) -> None:
        t = self._finite(t)
        self._add(self._resizes, t, 1.0)
        self._resize_count += 1
        if direction == "up":
            self._scale_ups += 1
        else:
            self._scale_downs += 1
        if provisioned is not None:
            self._provisioned_snap[self._index(t)] = provisioned
            if (self._min_provisioned is None
                    or provisioned < self._min_provisioned):
                self._min_provisioned = provisioned

    def ledger_transition(self, *, t: float, board: int, old: str,
                          new: str) -> None:
        t = self._finite(t)
        self._add(self._ledger_events, t, 1.0)
        key = f"{old}->{new}"
        self._ledger_transitions[key] = (
            self._ledger_transitions.get(key, 0) + 1)
        since = self._board_state_since.get(board, 0.0)
        state = self._board_state.get(board, old)
        if t > since:
            self._state_seconds[state] = (
                self._state_seconds.get(state, 0.0) + (t - since))
        self._board_state[board] = new
        self._board_state_since[board] = max(t, since)

    def queue_sample(self, *, t: float, total: int,
                     depths: Optional[Dict[Tuple[str, str], int]] = None
                     ) -> None:
        self._flush_queue_area(self._finite(t))
        self._q_last_total = total
        if total > self.peak_queue_depth:
            self.peak_queue_depth = total
        if self._track_queues and depths is not None:
            self._q_last = dict(depths)
        else:
            self._q_last = {}

    def _flush_queue_area(self, t: float) -> None:
        if t <= self._q_last_t:
            self._q_last_t = max(self._q_last_t, t)
            return
        if self._q_last_total:
            self._spread(self._queue_area, self._q_last_t, t,
                         scale=float(self._q_last_total))
        for (job_class, tenant), depth in self._q_last.items():
            if depth:
                series = self._per_queue_area.setdefault(
                    f"{job_class}/{tenant}", [])
                self._spread(series, self._q_last_t, t,
                             scale=float(depth))
        self._q_last_t = t

    def run_end(self, *, makespan_s: float,
                device_busy_s: Sequence[float] = (),
                jobs_done: int = 0) -> None:
        self._flush_queue_area(max(makespan_s, self._q_last_t))
        self._makespan_s = makespan_s
        self._device_busy_s = tuple(device_busy_s)
        self._jobs_done = jobs_done

    # -- assembly ------------------------------------------------------

    def _ledger_state_seconds(self) -> Dict[str, float]:
        """Per-state board-seconds, closed at the run horizon.

        Boards the ledger never moved spent the whole run ``active``;
        the closed integral therefore sums to ``num_devices * horizon``
        (the conservation property the membership tests assert)."""
        if not self._ledger_transitions:
            return {}
        horizon = max(self._makespan_s, self._max_t,
                      max(self._board_state_since.values(), default=0.0))
        seconds = dict(self._state_seconds)
        boards = self._run_info.get("num_devices", 0)
        for board in range(boards):
            state = self._board_state.get(board, "active")
            since = self._board_state_since.get(board, 0.0)
            if horizon > since:
                seconds[state] = (seconds.get(state, 0.0)
                                  + (horizon - since))
        return seconds

    @property
    def num_windows(self) -> int:
        # Derived from the same boundary-exact index every event went
        # through, so an event at exactly the horizon can never index
        # one past the final window (the old independent ceil could
        # disagree with the event index at boundary instants).
        horizon = max(self._makespan_s, self._max_t)
        if horizon <= 0:
            return 1
        return self._index(horizon) + 1

    def _padded(self, series: List[float], count: int) -> List[float]:
        return series + [0.0] * (count - len(series))

    def to_dict(self) -> Dict[str, Any]:
        count = self.num_windows
        w = self.window_s
        boards = sorted(self._busy)
        board_util = [
            [value / w for value in self._padded(self._busy[b], count)]
            for b in boards]
        queue_depth = [area / w
                       for area in self._padded(self._queue_area, count)]
        per_queue = {
            name: [area / w for area in self._padded(series, count)]
            for name, series in sorted(self._per_queue_area.items())}
        slo_met = self._padded(self._slo_met, count)
        slo_total = self._padded(self._slo_total, count)
        rolling: List[Optional[float]] = []
        met_cum = total_cum = 0.0
        for met, total in zip(slo_met, slo_total):
            met_cum += met
            total_cum += total
            rolling.append(met_cum / total_cum if total_cum else None)
        cost_cum: List[float] = []
        spent = 0.0
        for value in self._padded(self._cost, count):
            spent += value
            cost_cum.append(spent)
        price_mean = None
        if self._price is not None:
            price_mean = [
                self._price.integral(i * w, (i + 1) * w) / w
                for i in range(count)]
        # Forward-fill the cache snapshots: between batches the cache
        # state is whatever the last batch left behind.
        cache: Dict[str, List[Optional[float]]] = {
            key: [] for key in _CACHE_KEYS}
        hit_rate: List[Optional[float]] = []
        last: Optional[Dict[str, int]] = None
        for index in range(count):
            last = self._cache_snap.get(index, last)
            for key in _CACHE_KEYS:
                cache[key].append(
                    float(last[key]) if last is not None else None)
            if last is not None and (last["hits"] + last["misses"]):
                hit_rate.append(
                    last["hits"] / (last["hits"] + last["misses"]))
            else:
                hit_rate.append(None)
        windows: Dict[str, Any] = {
            "t0": [i * w for i in range(count)],
            "board_util": board_util,
            "queue_depth": queue_depth,
            "per_queue_depth": per_queue,
            "jobs_done": self._padded(self._jobs, count),
            "key_bytes_loaded": self._padded(self._load_bytes, count),
            "key_hit_rate": hit_rate,
            "key_resident_bytes": cache["resident_bytes"],
            "key_bytes_evicted": cache["bytes_evicted"],
            "slo_met": slo_met,
            "slo_total": slo_total,
            "slo_rolling": rolling,
            "rejections": self._padded(self._rejects, count),
            "cost_cum": cost_cum,
        }
        if price_mean is not None:
            windows["price_mean"] = price_mean
        if self._fault_count or self._repair_count:
            windows["board_faults"] = self._padded(self._faults, count)
            windows["board_repairs"] = self._padded(self._repairs,
                                                    count)
            # Sample-and-hold: between fault events the pool size is
            # whatever the last event reported (full pool before the
            # first fault).
            healthy_series: List[Optional[float]] = []
            level: Optional[int] = self._run_info.get("num_devices")
            for index in range(count):
                level = self._healthy_snap.get(index, level)
                healthy_series.append(
                    float(level) if level is not None else None)
            windows["healthy_boards"] = healthy_series
        if self._resize_count:
            windows["pool_resizes"] = self._padded(self._resizes, count)
            # Sample-and-hold like healthy_boards: between resize
            # events capacity is whatever the last event left behind
            # (the full pool before the first resize).
            provisioned_series: List[Optional[float]] = []
            level = self._run_info.get("num_devices")
            for index in range(count):
                level = self._provisioned_snap.get(index, level)
                provisioned_series.append(
                    float(level) if level is not None else None)
            windows["provisioned_boards"] = provisioned_series
        if self._ledger_transitions:
            windows["ledger_transitions"] = self._padded(
                self._ledger_events, count)
        return {
            "meta": dict(self._meta),
            **self._run_info,
            "window_s": w,
            "num_windows": count,
            "makespan_s": self._makespan_s,
            "jobs_done": self._jobs_done,
            "device_busy_s": list(self._device_busy_s),
            "boards": boards,
            "windows": windows,
            "summary": self.summary(),
        }

    def summary(self) -> Dict[str, Any]:
        """Scalar roll-up (what sweep grid points attach)."""
        busy = sum(sum(series) for series in self._busy.values())
        capacity = self._makespan_s * max(len(self._busy), 1)
        met = sum(self._slo_met)
        total = sum(self._slo_total)
        return {
            "makespan_s": self._makespan_s,
            "jobs_done": self._jobs_done,
            "mean_util": busy / capacity if capacity else 0.0,
            "peak_queue_depth": self.peak_queue_depth,
            "slo_attainment": met / total if total else None,
            "cost_price_units": sum(self._cost),
            "key_bytes_loaded": sum(self._load_bytes),
            "rejections": int(sum(self._rejects)),
            "board_faults": self._fault_count,
            "board_repairs": self._repair_count,
            "min_healthy_boards": self._min_healthy,
            "pool_resizes": self._resize_count,
            "scale_ups": self._scale_ups,
            "scale_downs": self._scale_downs,
            "min_provisioned_boards": self._min_provisioned,
            "ledger_transitions": dict(sorted(
                self._ledger_transitions.items())),
            "board_state_seconds": self._ledger_state_seconds(),
        }

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh)
