"""Reproducibility stamps for emitted JSON artifacts.

Every artifact the CLI writes (serving reports, timelines, metrics,
sweep grids) embeds the same three-field provenance dict: the RNG
seed, a digest of the :class:`~repro.core.params.FabConfig` the run
priced against, and the repository's ``git describe`` string — enough
to re-run the exact experiment that produced a file found on disk.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import subprocess
from typing import Any, Dict, Optional


def config_digest(config: Any) -> str:
    """Stable short digest of a configuration object.

    Dataclasses (e.g. ``FabConfig``) digest their field dict, so two
    configs digest equal iff their parameters are; anything else
    digests its ``repr``.
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload: Any = dataclasses.asdict(config)
    elif isinstance(config, dict):
        payload = config
    else:
        payload = repr(config)
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return "sha256:" + hashlib.sha256(blob.encode()).hexdigest()[:16]


def git_describe(cwd: Optional[str] = None) -> str:
    """``git describe --always --dirty`` of the source tree, or
    ``"unknown"`` outside a repository (artifacts must still write)."""
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            capture_output=True, text=True, timeout=10,
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)))
        if result.returncode == 0 and result.stdout.strip():
            return result.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def provenance(seed: Optional[int] = None, config: Any = None,
               **extra: Any) -> Dict[str, Any]:
    """The standard artifact stamp: seed + config digest + git rev."""
    info: Dict[str, Any] = {
        "seed": seed,
        "config_digest": (config_digest(config)
                          if config is not None else None),
        "git": git_describe(),
    }
    info.update(extra)
    return info
