"""The observer protocol instrumented subsystems record against.

:class:`Recorder` defines one no-op hook per observable event in the
scheduler + serving stack; concrete recorders
(:class:`~repro.obs.timeline.TimelineRecorder`,
:class:`~repro.obs.metrics.MetricsRecorder`) override the subset they
consume.  The contract with instrumented code is *zero overhead when
off*: every hot-path call site hoists the guard once —

    rec = recorder if recorder is not None and recorder.enabled else None
    ...
    if rec is not None:
        rec.batch(...)

— so a run without a recorder (or with :class:`NullRecorder`, whose
``enabled`` is ``False``) executes exactly the pre-instrumentation
instruction stream: no argument tuples are built, no per-event state
is gathered, and the serving reports stay bit-identical (the
regression suite asserts this float for float).

This package is a leaf: it imports nothing from :mod:`repro`, so the
runtime, core, and experiments layers can all depend on it freely.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

#: One gang member's contribution to a batch: ``(board_index,
#: key_load_seconds, key_miss_bytes)``.
MemberLoad = Tuple[int, float, int]


class Recorder:
    """Base recorder: every hook is a no-op.

    Hooks are keyword-only so call sites stay readable and recorders
    can ignore arguments they do not consume.  Times are seconds of
    simulator time unless suffixed otherwise.
    """

    #: Instrumented code skips every hook when this is ``False``.
    enabled: bool = True

    # -- run lifecycle -------------------------------------------------

    def run_begin(self, *, scenario: str, num_devices: int, policy: str,
                  price: Optional[Any] = None, max_batch: int = 1) -> None:
        """A simulator run is starting on ``num_devices`` boards."""

    def run_end(self, *, makespan_s: float,
                device_busy_s: Sequence[float] = (),
                jobs_done: int = 0) -> None:
        """The run finished; ``device_busy_s`` is ground-truth busy
        time per board (the integral every windowed utilization series
        must reproduce)."""

    # -- serving events ------------------------------------------------

    def job_arrival(self, *, t: float, job_id: int, job_class: str,
                    tenant: str, deadline_s: Optional[float] = None,
                    deferrable: bool = False) -> None:
        """A job was admitted into the policy's queues at ``t``."""

    def job_rejected(self, *, t: float, job_id: int, job_class: str,
                     tenant: str,
                     deadline_s: Optional[float] = None) -> None:
        """Admission control dropped a job at decision time ``t``."""

    def batch(self, *, start: float, finish: float, job_class: str,
              tenant: str, batch_size: int, launch_s: float,
              members: Sequence[MemberLoad],
              cache_stats: Sequence[Mapping[str, int]] = (),
              slo_met: int = 0, slo_total: int = 0,
              cost: float = 0.0) -> None:
        """A batch serviced on a gang of boards over
        ``[start, finish]``.  ``members`` aligns with the gang
        (master first); ``cache_stats`` (when provided) aligns with
        ``members`` and snapshots each board's key cache *after* the
        batch's key requests."""

    def defer(self, *, board: int, t: float, wake: float) -> None:
        """The policy left ``board`` idle at ``t``; the simulator
        sleeps it until ``wake`` (or an earlier arrival)."""

    def policy_event(self, *, t: float, name: str, **args: Any) -> None:
        """A policy decision point (skip, forced start, deferral)."""

    def queue_sample(self, *, t: float, total: int,
                     depths: Optional[Dict[Tuple[str, str], int]] = None
                     ) -> None:
        """Queue depths observed at a dispatch opportunity.
        ``depths`` maps ``(job_class, tenant)`` to queued jobs."""

    # -- fault events ----------------------------------------------------

    def board_fault(self, *, t: float, board: int,
                    permanent: bool = False,
                    healthy: Optional[int] = None,
                    killed_batch: bool = False) -> None:
        """``board`` went down at ``t`` (its HBM key cache is wiped).
        ``permanent`` marks a board that never repairs; ``healthy`` is
        the pool's healthy-board count *after* the fault;
        ``killed_batch`` is set when the fault aborted an in-flight
        batch."""

    def board_repair(self, *, t: float, board: int,
                     healthy: Optional[int] = None) -> None:
        """``board`` came back up (cold: its key cache is empty).
        ``healthy`` is the healthy-board count after the repair."""

    # -- autoscaler events -----------------------------------------------

    def pool_resize(self, *, t: float, board: int, direction: str,
                    provisioned: Optional[int] = None) -> None:
        """The autoscaler voluntarily resized the pool at ``t``:
        ``direction`` is ``"down"`` (``board`` parked, its key cache
        evicted) or ``"up"`` (``board`` returned, cold).
        ``provisioned`` is the in-service board count *after* the
        transition — the capacity actually being paid for."""

    # -- membership-ledger events ----------------------------------------

    def ledger_transition(self, *, t: float, board: int, old: str,
                          new: str) -> None:
        """The pool-membership ledger moved ``board`` from state
        ``old`` to ``new`` at ``t`` (states:
        ``active | draining | parked | failed | repairing``).  The
        unified arbitration trail — per-state board-seconds and
        transition counts derive from this stream."""

    # -- scheduler events ----------------------------------------------

    def schedule_task(self, *, group: str, track: str, name: str,
                      start_s: float, finish_s: float,
                      device: Optional[int] = None) -> None:
        """One placed task of a static schedule (see
        :meth:`repro.core.scheduler.ScheduleResult.record_timeline`).
        ``group`` names the schedule, ``track`` the resource lane."""


class NullRecorder(Recorder):
    """The default recorder: off.  Instrumented code checks
    ``enabled`` once and never calls a hook, so a run with this
    recorder is bit-identical to a run with none."""

    enabled = False


#: Shared no-op instance (recorders are stateless when disabled).
NULL_RECORDER = NullRecorder()


class CompositeRecorder(Recorder):
    """Fan one event stream out to several recorders (e.g. a timeline
    and a metrics collector from a single run)."""

    def __init__(self, recorders: Iterable[Recorder]):
        self.recorders = [r for r in recorders if r.enabled]
        self.enabled = bool(self.recorders)

    def run_begin(self, **kwargs: Any) -> None:
        for rec in self.recorders:
            rec.run_begin(**kwargs)

    def run_end(self, **kwargs: Any) -> None:
        for rec in self.recorders:
            rec.run_end(**kwargs)

    def job_arrival(self, **kwargs: Any) -> None:
        for rec in self.recorders:
            rec.job_arrival(**kwargs)

    def job_rejected(self, **kwargs: Any) -> None:
        for rec in self.recorders:
            rec.job_rejected(**kwargs)

    def batch(self, **kwargs: Any) -> None:
        for rec in self.recorders:
            rec.batch(**kwargs)

    def defer(self, **kwargs: Any) -> None:
        for rec in self.recorders:
            rec.defer(**kwargs)

    def policy_event(self, **kwargs: Any) -> None:
        for rec in self.recorders:
            rec.policy_event(**kwargs)

    def queue_sample(self, **kwargs: Any) -> None:
        for rec in self.recorders:
            rec.queue_sample(**kwargs)

    def board_fault(self, **kwargs: Any) -> None:
        for rec in self.recorders:
            rec.board_fault(**kwargs)

    def board_repair(self, **kwargs: Any) -> None:
        for rec in self.recorders:
            rec.board_repair(**kwargs)

    def pool_resize(self, **kwargs: Any) -> None:
        for rec in self.recorders:
            rec.pool_resize(**kwargs)

    def ledger_transition(self, **kwargs: Any) -> None:
        for rec in self.recorders:
            rec.ledger_transition(**kwargs)

    def schedule_task(self, **kwargs: Any) -> None:
        for rec in self.recorders:
            rec.schedule_task(**kwargs)


def compose(*recorders: Optional[Recorder]) -> Recorder:
    """Combine recorders, dropping ``None`` and disabled ones.

    Returns :data:`NULL_RECORDER` when nothing is live and the sole
    recorder itself when only one is, so the common single-recorder
    path pays no fan-out indirection.
    """
    live = [r for r in recorders if r is not None and r.enabled]
    if not live:
        return NULL_RECORDER
    if len(live) == 1:
        return live[0]
    return CompositeRecorder(live)
