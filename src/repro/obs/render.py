"""Terminal rendering of a metrics artifact (``repro timeline``).

Turns a :meth:`repro.obs.metrics.MetricsRecorder.to_dict` document
into a plain-text utilization / queue-depth strip chart: one row per
time window with pool-utilization and queue-depth bars, SLO and price
columns when the run recorded them, then per-board and per-queue
roll-ups.  Pure string formatting over the JSON — no simulator
imports — so saved artifacts from other machines render too.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

_BAR = "#"


def _bar(fraction: float, width: int) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return _BAR * filled + "." * (width - filled)


def _fmt_opt(value: Optional[float], spec: str, empty: str = "    -"
             ) -> str:
    return empty if value is None else format(value, spec)


def render_metrics(data: Dict[str, Any], width: int = 24,
                   max_rows: int = 48) -> str:
    """Render a metrics JSON document as a terminal summary."""
    windows = data.get("windows", {})
    t0: List[float] = windows.get("t0", [])
    board_util: List[List[float]] = windows.get("board_util", [])
    queue_depth: List[float] = windows.get("queue_depth", [])
    count = len(t0)
    if count == 0:
        return "(empty metrics artifact: no windows recorded)"
    # Aggregate pool utilization per window.
    boards = max(len(board_util), 1)
    pool_util = [
        sum(series[i] for series in board_util) / boards
        for i in range(count)]
    peak_queue = max(queue_depth, default=0.0)
    queue_scale = max(peak_queue, 1.0)
    slo = windows.get("slo_rolling", [None] * count)
    price = windows.get("price_mean")
    rejections = windows.get("rejections", [0.0] * count)

    meta = data.get("meta", {})
    head = [
        f"== {data.get('scenario', '?')} | policy "
        f"{data.get('policy', '?')} | {data.get('num_devices', boards)} "
        f"boards | {data.get('jobs_done', 0)} jobs in "
        f"{data.get('makespan_s', 0.0):.3f}s ==",
    ]
    stamp = ", ".join(f"{key}={meta[key]}"
                      for key in ("seed", "config_digest", "git")
                      if meta.get(key) is not None)
    if stamp:
        head.append(f"provenance: {stamp}")

    columns = f"{'t0':>8s}  {'util':<{width}s} {'%':>4s}  " \
              f"{'queue':<{width}s} {'depth':>6s}  {'slo%':>5s}"
    if price is not None:
        columns += f"  {'price':>6s}"
    lines = head + ["", columns]
    # Decimate long runs to at most ``max_rows`` rows (every k-th
    # window) so the chart fits a terminal; the roll-ups below always
    # cover every window.
    step = max(1, -(-count // max_rows))
    for i in range(0, count, step):
        slo_pct = (None if i >= len(slo) or slo[i] is None
                   else 100.0 * slo[i])
        row = (f"{t0[i]:8.3f}  {_bar(pool_util[i], width)} "
               f"{100 * pool_util[i]:4.0f}  "
               f"{_bar(queue_depth[i] / queue_scale, width)} "
               f"{queue_depth[i]:6.1f}  {_fmt_opt(slo_pct, '5.1f')}")
        if price is not None:
            row += f"  {price[i]:6.2f}"
        if i < len(rejections) and rejections[i]:
            row += f"  !{int(rejections[i])} rejected"
        lines.append(row)
    if step > 1:
        lines.append(f"({count} windows, showing every {step}rd/th)")

    lines.append("")
    busy = data.get("device_busy_s", [])
    makespan = data.get("makespan_s", 0.0) or 0.0
    board_ids = data.get("boards", list(range(len(board_util))))
    window_s = data.get("window_s", 0.0)
    for row_index, series in enumerate(board_util):
        integral = sum(series) * window_s
        util = integral / makespan if makespan else 0.0
        line = (f"board {board_ids[row_index]:>2}: "
                f"{_bar(util, width)} {100 * util:5.1f}% busy "
                f"({integral:.4f}s)")
        if row_index < len(busy):
            line += f" [device {busy[row_index]:.4f}s]"
        lines.append(line)

    per_queue = windows.get("per_queue_depth", {})
    if per_queue:
        lines.append("")
        lines.append("mean queue depth by (class/tenant):")
        means = sorted(
            ((sum(series) / count, name)
             for name, series in per_queue.items()), reverse=True)
        for mean, name in means[:8]:
            lines.append(f"  {name:<32s} {mean:8.2f}")
        if len(means) > 8:
            lines.append(f"  ... and {len(means) - 8} more queues")

    summary = data.get("summary", {})
    if summary:
        slo_pct = summary.get("slo_attainment")
        lines.append("")
        lines.append(
            f"totals: mean util "
            f"{100 * summary.get('mean_util', 0.0):.1f}%, peak queue "
            f"{summary.get('peak_queue_depth', 0)}, "
            f"slo {_fmt_opt(None if slo_pct is None else 100 * slo_pct, '.1f')}%, "
            f"cost {summary.get('cost_price_units', 0.0) * 1e3:.2f} "
            f"price-unit-ms, "
            f"{summary.get('key_bytes_loaded', 0) / 1e9:.2f} GB keys, "
            f"{summary.get('rejections', 0)} rejected")
    return "\n".join(lines)
