"""Chrome trace-event timelines of serving runs and FAB schedules.

:class:`TimelineRecorder` turns the :class:`~repro.obs.recorder.Recorder`
event stream into the Chrome trace-event JSON format, loadable at
``ui.perfetto.dev`` (or ``chrome://tracing``):

* one track (``tid``) per FAB board, carrying **B/E span pairs** for
  every serviced batch with the key-load segment nested inside, plus
  **X spans** for the windows a deferral policy kept the board idle;
* a ``host-pcie`` **counter track** of in-flight switching-key bytes
  (gang members load in parallel, so this is a counter, not spans);
* a ``queue`` counter track of pending jobs and a ``policy`` track of
  **instants** for admissions, rejections, and policy decision
  points;
* one process per recorded static schedule (a striped lowering's
  ``ScheduleResult``), with a track per device resource — including
  the shared CMAC ring — and overlapping tasks lane-packed onto
  sub-tracks so every track renders without slice collisions.

Timestamps are microseconds, the format's native unit.  Events are
buffered out of order (a batch's end is known at dispatch time) and
sorted at :meth:`TimelineRecorder.save`; ends sort before begins at
equal timestamps so back-to-back spans on one track always nest.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .recorder import MemberLoad, Recorder

_US = 1e6  # seconds -> trace-event microseconds

#: The serving pool's process id; schedule groups allocate upward.
SERVE_PID = 1


def _sort_key(event: Dict[str, Any]) -> Tuple[float, int]:
    # Metadata first, then by time; at equal timestamps an "E" must
    # precede the next "B" on the same track or viewers unbalance.
    if event["ph"] == "M":
        return (-1.0, 0)
    return (event["ts"], 0 if event["ph"] == "E" else 1)


class TimelineRecorder(Recorder):
    """Record a run as a Perfetto-loadable Chrome trace.

    ``meta`` (e.g. the :func:`repro.obs.provenance.provenance` dict)
    is embedded under ``otherData`` so every timeline artifact carries
    its seed, config digest, and git revision.
    """

    def __init__(self, meta: Optional[Mapping[str, Any]] = None):
        self._meta: Dict[str, Any] = dict(meta or {})
        self._events: List[Dict[str, Any]] = []
        self._board_tids: Dict[int, int] = {}
        self._aux_tids: Dict[str, int] = {}
        self._next_tid = 1
        #: board -> (start, wake) of its currently open deferral.
        self._open_defer: Dict[int, Tuple[float, float]] = {}
        #: (t_seconds, +/- bytes) deltas of the PCIe key-load counter.
        self._pcie_deltas: List[Tuple[float, int]] = []
        #: (t_seconds, healthy_count) samples of the pool-health
        #: counter, recorded at every fault/repair instant.
        self._healthy_points: List[Tuple[float, int]] = []
        #: (t_seconds, provisioned_count) samples of the pool-size
        #: counter, recorded at every voluntary resize instant.
        self._provisioned_points: List[Tuple[float, int]] = []
        #: group -> track -> [(start_s, finish_s, name, device)].
        self._sched: Dict[str, Dict[str, List[Tuple]]] = {}
        self._makespan_s = 0.0
        #: Latest finite timestamp seen; non-finite event times clamp
        #: here (a board parked "until arrivals" wakes at ``inf`` when
        #: none remain, and expired jobs are rejected there — those
        #: events belong at the end of the run, not off the timeline).
        self._clock = 0.0

    # -- track bookkeeping ---------------------------------------------

    def _finite(self, t: float) -> float:
        if math.isfinite(t):
            if t > self._clock:
                self._clock = t
            return t
        return self._clock

    def _board_tid(self, board: int) -> int:
        tid = self._board_tids.get(board)
        if tid is None:
            tid = self._board_tids[board] = self._next_tid
            self._next_tid += 1
        return tid

    def _aux_tid(self, label: str) -> int:
        tid = self._aux_tids.get(label)
        if tid is None:
            tid = self._aux_tids[label] = self._next_tid
            self._next_tid += 1
        return tid

    def _emit(self, ph: str, name: str, ts_s: float, tid: int,
              pid: int = SERVE_PID, **extra: Any) -> None:
        event = {"ph": ph, "name": name, "ts": ts_s * _US,
                 "pid": pid, "tid": tid, "cat": "serving"}
        event.update(extra)
        self._events.append(event)

    # -- Recorder hooks ------------------------------------------------

    def run_begin(self, *, scenario: str, num_devices: int, policy: str,
                  price: Optional[Any] = None, max_batch: int = 1) -> None:
        self._meta.setdefault("scenario", scenario)
        self._meta.setdefault("policy", policy)
        self._meta.setdefault("num_devices", num_devices)
        self._meta.setdefault("max_batch", max_batch)
        if price is not None:
            self._meta.setdefault("price", repr(price))
        for board in range(num_devices):
            self._board_tid(board)

    def job_arrival(self, *, t: float, job_id: int, job_class: str,
                    tenant: str, deadline_s: Optional[float] = None,
                    deferrable: bool = False) -> None:
        args: Dict[str, Any] = {"job_id": job_id, "tenant": tenant}
        if deadline_s is not None:
            args["deadline_s"] = deadline_s
        if deferrable:
            args["deferrable"] = True
        self._emit("i", f"admit {job_class}", self._finite(t),
                   self._aux_tid("policy"), s="t", args=args)

    def job_rejected(self, *, t: float, job_id: int, job_class: str,
                     tenant: str,
                     deadline_s: Optional[float] = None) -> None:
        self._emit("i", f"reject {job_class}", self._finite(t),
                   self._aux_tid("policy"), s="t",
                   args={"job_id": job_id, "tenant": tenant,
                         "deadline_s": deadline_s})

    def policy_event(self, *, t: float, name: str, **args: Any) -> None:
        self._emit("i", name, self._finite(t),
                   self._aux_tid("policy"), s="t", args=args or None)

    def queue_sample(self, *, t: float, total: int,
                     depths: Optional[Dict[Tuple[str, str], int]] = None
                     ) -> None:
        self._emit("C", "queue depth", self._finite(t),
                   self._aux_tid("queue"), args={"pending": total})

    def defer(self, *, board: int, t: float, wake: float) -> None:
        t = self._finite(t)
        self._close_defer(board, t)
        self._open_defer[board] = (t, wake)

    def _close_defer(self, board: int, t: float) -> None:
        opened = self._open_defer.pop(board, None)
        if opened is None:
            return
        start, wake = opened
        # The board stopped being "parked" at its wake time or at the
        # event that reclaimed it, whichever came first (event time is
        # monotone, so ``t`` is never before ``start``).  A wake of
        # ``inf`` means "until the next arrival": the board is simply
        # parked until the reclaiming event.
        end = self._finite(max(start, min(wake, t)))
        self._emit("X", "deferred", start, self._board_tid(board),
                   dur=(end - start) * _US,
                   args={"planned_wake_s":
                         wake if math.isfinite(wake) else None})

    def batch(self, *, start: float, finish: float, job_class: str,
              tenant: str, batch_size: int, launch_s: float,
              members: Sequence[MemberLoad],
              cache_stats: Sequence[Mapping[str, int]] = (),
              slo_met: int = 0, slo_total: int = 0,
              cost: float = 0.0) -> None:
        gang = [board for board, _, _ in members]
        name = f"{job_class} x{batch_size}"
        self._finite(finish)  # advance the clamp clock past the batch
        for board, load_s, miss_bytes in members:
            self._close_defer(board, start)
            tid = self._board_tid(board)
            args = {"tenant": tenant, "batch": batch_size,
                    "gang": gang, "cost": cost}
            if slo_total:
                args["slo"] = f"{slo_met}/{slo_total}"
            self._emit("B", name, start, tid, args=args)
            if load_s > 0.0:
                t0 = start + launch_s
                self._emit("B", "key load", t0, tid,
                           args={"bytes": miss_bytes})
                self._emit("E", "key load", t0 + load_s, tid)
                self._pcie_deltas.append((t0, miss_bytes))
                self._pcie_deltas.append((t0 + load_s, -miss_bytes))
            self._emit("E", name, finish, tid)

    def board_fault(self, *, t: float, board: int,
                    permanent: bool = False,
                    healthy: Optional[int] = None,
                    killed_batch: bool = False) -> None:
        t = self._finite(t)
        self._close_defer(board, t)
        args: Dict[str, Any] = {"board": board}
        if permanent:
            args["permanent"] = True
        if killed_batch:
            args["killed_batch"] = True
        name = "fault (permanent)" if permanent else "fault"
        self._emit("i", name, t, self._board_tid(board), s="t",
                   args=args)
        if healthy is not None:
            self._healthy_points.append((t, healthy))

    def board_repair(self, *, t: float, board: int,
                     healthy: Optional[int] = None) -> None:
        t = self._finite(t)
        self._emit("i", "repair", t, self._board_tid(board), s="t",
                   args={"board": board})
        if healthy is not None:
            self._healthy_points.append((t, healthy))

    def pool_resize(self, *, t: float, board: int, direction: str,
                    provisioned: Optional[int] = None) -> None:
        t = self._finite(t)
        self._close_defer(board, t)
        self._emit("i", f"scale-{direction}", t,
                   self._board_tid(board), s="t",
                   args={"board": board, "provisioned": provisioned})
        if provisioned is not None:
            self._provisioned_points.append((t, provisioned))

    def ledger_transition(self, *, t: float, board: int, old: str,
                          new: str) -> None:
        t = self._finite(t)
        self._emit("i", f"ledger {old}->{new}", t,
                   self._board_tid(board), s="t",
                   args={"board": board, "old": old, "new": new})

    def schedule_task(self, *, group: str, track: str, name: str,
                      start_s: float, finish_s: float,
                      device: Optional[int] = None) -> None:
        tracks = self._sched.setdefault(group, {})
        tracks.setdefault(track, []).append(
            (start_s, finish_s, name, device))

    def run_end(self, *, makespan_s: float,
                device_busy_s: Sequence[float] = (),
                jobs_done: int = 0) -> None:
        self._makespan_s = max(self._makespan_s, makespan_s)
        for board in list(self._open_defer):
            # A deferral may outlive the last completion; close it at
            # its own wake (capped below by its start; an ``inf`` wake
            # — parked until arrivals — closes at the makespan).
            start, wake = self._open_defer[board]
            end = max(makespan_s, start)
            if math.isfinite(wake):
                end = max(end, wake)
            self._close_defer(board, end)
        if device_busy_s:
            self._meta.setdefault(
                "device_busy_s", [round(b, 9) for b in device_busy_s])
        self._meta.setdefault("jobs_done", jobs_done)
        self._meta.setdefault("makespan_s", makespan_s)

    # -- assembly ------------------------------------------------------

    def _metadata_events(self) -> List[Dict[str, Any]]:
        events: List[Dict[str, Any]] = []

        def process(pid: int, label: str) -> None:
            events.append({"ph": "M", "name": "process_name", "ts": 0,
                           "pid": pid, "tid": 0,
                           "args": {"name": label}})

        def thread(pid: int, tid: int, label: str) -> None:
            events.append({"ph": "M", "name": "thread_name", "ts": 0,
                           "pid": pid, "tid": tid,
                           "args": {"name": label}})
            events.append({"ph": "M", "name": "thread_sort_index",
                           "ts": 0, "pid": pid, "tid": tid,
                           "args": {"sort_index": tid}})

        scenario = self._meta.get("scenario", "run")
        process(SERVE_PID, f"serving pool [{scenario}]")
        for board, tid in sorted(self._board_tids.items()):
            thread(SERVE_PID, tid, f"board {board}")
        for label, tid in sorted(self._aux_tids.items()):
            thread(SERVE_PID, tid, label)
        return events

    def _counter_events(self) -> List[Dict[str, Any]]:
        events: List[Dict[str, Any]] = []
        if self._pcie_deltas:
            tid = self._aux_tid("host-pcie")
            merged: Dict[float, int] = {}
            for t, delta in self._pcie_deltas:
                merged[t] = merged.get(t, 0) + delta
            level = 0
            for t in sorted(merged):
                level += merged[t]
                events.append(
                    {"ph": "C", "name": "key-load bytes in flight",
                     "ts": t * _US, "pid": SERVE_PID, "tid": tid,
                     "cat": "serving", "args": {"bytes": max(level, 0)}})
        if self._healthy_points:
            tid = self._aux_tid("pool-health")
            # Samples arrive in event order; keep the last value at
            # equal timestamps (a repair and a fault can coincide).
            for t, healthy in self._healthy_points:
                events.append(
                    {"ph": "C", "name": "healthy boards",
                     "ts": t * _US, "pid": SERVE_PID, "tid": tid,
                     "cat": "serving", "args": {"boards": healthy}})
        if self._provisioned_points:
            tid = self._aux_tid("pool-size")
            for t, provisioned in self._provisioned_points:
                events.append(
                    {"ph": "C", "name": "provisioned boards",
                     "ts": t * _US, "pid": SERVE_PID, "tid": tid,
                     "cat": "serving", "args": {"boards": provisioned}})
        return events

    def _schedule_events(self) -> Tuple[List[Dict[str, Any]],
                                        List[Dict[str, Any]]]:
        meta: List[Dict[str, Any]] = []
        spans: List[Dict[str, Any]] = []
        pid = SERVE_PID
        for group in sorted(self._sched):
            pid += 1
            meta.append({"ph": "M", "name": "process_name", "ts": 0,
                         "pid": pid, "tid": 0,
                         "args": {"name": group}})
            tid = 0
            for track in sorted(self._sched[group]):
                tasks = sorted(self._sched[group][track])
                # Lane-pack overlapping tasks (a multi-lane resource
                # such as a dual-port HBM model) onto sub-tracks so no
                # track carries overlapping slices.
                lanes: List[float] = []
                packed: List[List[Tuple]] = []
                for task in tasks:
                    start = task[0]
                    for lane, busy_until in enumerate(lanes):
                        if busy_until <= start:
                            break
                    else:
                        lane = len(lanes)
                        lanes.append(0.0)
                        packed.append([])
                    lanes[lane] = task[1]
                    packed[lane].append(task)
                for lane, lane_tasks in enumerate(packed):
                    tid += 1
                    label = track if len(packed) == 1 \
                        else f"{track}.{lane}"
                    meta.append({"ph": "M", "name": "thread_name",
                                 "ts": 0, "pid": pid, "tid": tid,
                                 "args": {"name": label}})
                    meta.append({"ph": "M",
                                 "name": "thread_sort_index",
                                 "ts": 0, "pid": pid, "tid": tid,
                                 "args": {"sort_index": tid}})
                    for start_s, finish_s, name, device in lane_tasks:
                        # dur as a difference of converted stamps so a
                        # back-to-back neighbor's ts equals ts + dur
                        # exactly (no a + (b-a) != b float drift).
                        ts = start_s * _US
                        event = {"ph": "X", "name": name,
                                 "ts": ts,
                                 "dur": finish_s * _US - ts,
                                 "pid": pid, "tid": tid,
                                 "cat": "schedule"}
                        if device is not None:
                            event["args"] = {"device": device}
                        spans.append(event)
        return meta, spans

    def to_dict(self) -> Dict[str, Any]:
        """The complete trace-event document (JSON object format)."""
        sched_meta, sched_spans = self._schedule_events()
        events = sorted(
            self._events + self._counter_events() + sched_spans,
            key=_sort_key)
        trace = self._metadata_events() + sched_meta + events
        other = {str(k): v for k, v in self._meta.items()}
        return {"traceEvents": trace, "displayTimeUnit": "ms",
                "otherData": other}

    def save(self, path: str) -> None:
        """Write the trace; open the file at ``ui.perfetto.dev``."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh)
