"""Performance framework: op counts, baseline devices, metrics, key sizes."""

from .devices import (AnalyticDevice, DeviceSpec, build_baseline_devices,
                      bts2_spec, f1_spec, gpu1_spec, gpu2_spec,
                      heax_spec, lattigo_cpu_spec)
from .keysize import (DnumPoint, dnum_sweep, limbs_for_budget,
                      switching_key_bytes)
from .metrics import (amortized_mult_per_slot, bootstrap_depth,
                      cycles_speedup, levels_after_bootstrap, speedup)
from .opcounts import BootstrapProfile, OpCounter, PrimitiveCounts

__all__ = [
    "AnalyticDevice", "BootstrapProfile", "DeviceSpec", "DnumPoint",
    "OpCounter", "PrimitiveCounts", "amortized_mult_per_slot",
    "bootstrap_depth", "build_baseline_devices", "bts2_spec",
    "cycles_speedup", "dnum_sweep", "f1_spec", "gpu1_spec", "gpu2_spec",
    "heax_spec", "lattigo_cpu_spec", "levels_after_bootstrap",
    "limbs_for_budget", "speedup", "switching_key_bytes",
]
