"""Analytic baseline device models: CPU, GPU, ASIC and FPGA comparators.

The paper compares FAB against published numbers from Lattigo (CPU),
Jung et al.'s GPU implementation (GPU-1 / GPU-2), the F1 and BTS ASICs,
and HEAX.  None of those testbeds is available here, so each baseline
is an analytic model:

* a :class:`DeviceSpec` records the published hardware characteristics
  (frequency, memory bandwidth, on-chip storage, parameter set) and the
  paper-reported anchor numbers;
* the model's sustained modular-multiply throughput is **calibrated
  once** against the device's published amortized bootstrapping time
  (Table 7), absorbing the cache/memory inefficiencies each original
  paper documents;
* every other prediction (basic ops, LR training) is then *derived* by
  pushing the same :class:`~repro.perf.opcounts.OpCounter` workloads
  through the calibrated throughput, bounded below by the memory-traffic
  time.

This reproduces the paper's comparative *shape* (who wins and by
roughly what factor) without pretending to re-measure closed systems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from .metrics import amortized_mult_per_slot
from .opcounts import OpCounter, PrimitiveCounts


@dataclass(frozen=True)
class DeviceSpec:
    """Published characteristics of one comparison system."""

    name: str
    freq_hz: float
    mem_bw_bytes: float
    onchip_bytes: int
    ring_degree: int
    num_limbs: int
    dnum: int
    boot_slots: int
    #: Paper-reported anchors: 'amortized_mult_us' (Table 7),
    #: optionally 'lr_iteration_s' (Table 8) and others.
    published: Dict[str, float] = field(default_factory=dict)
    modular_multipliers: Optional[int] = None
    notes: str = ""
    #: Homomorphic-FFT depth the device's bootstrapping uses; systems
    #: with short modulus chains (F1) must use shallower FFTs.
    fft_iter: int = 4


class AnalyticDevice:
    """A calibrated throughput/bandwidth model of one device."""

    def __init__(self, spec: DeviceSpec,
                 sustained_mults_per_sec: Optional[float] = None):
        self.spec = spec
        self.counter = OpCounter(ring_degree=spec.ring_degree,
                                 num_limbs=spec.num_limbs,
                                 dnum=spec.dnum)
        if sustained_mults_per_sec is None:
            sustained_mults_per_sec = self._calibrate()
        self.sustained_mults_per_sec = sustained_mults_per_sec

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------

    def _amortized_workload(self):
        """The Eq.-2 workload: one bootstrap + one multiply per level."""
        profile = self.counter.bootstrap(fft_iter=self.spec.fft_iter,
                                         slots=self.spec.boot_slots)
        counts = profile.counts
        for level in range(profile.levels_after + 1, 1, -1):
            counts = counts + self.counter.multiply(level)
            counts = counts + self.counter.rescale(level)
        return profile, counts

    def _calibrate(self) -> float:
        """Back out sustained throughput from the published Table 7 row."""
        anchor_us = self.spec.published.get("amortized_mult_us")
        if anchor_us is None:
            raise ValueError(
                f"{self.spec.name}: no amortized anchor to calibrate from")
        profile, counts = self._amortized_workload()
        levels = max(profile.levels_after, 1)
        target_seconds = anchor_us * 1e-6 * levels * self.spec.boot_slots
        return counts.mult_equivalents / max(target_seconds, 1e-12)

    # ------------------------------------------------------------------
    # Predictions
    # ------------------------------------------------------------------

    def seconds(self, counts: PrimitiveCounts) -> float:
        """Time for a counted workload: max(compute, memory traffic)."""
        compute = counts.mult_equivalents / self.sustained_mults_per_sec
        memory = counts.total_bytes / self.spec.mem_bw_bytes
        return max(compute, memory)

    def bootstrap_seconds(self, slots: Optional[int] = None) -> float:
        """Full-bootstrap latency at the device's parameter point."""
        profile = self.counter.bootstrap(
            fft_iter=self.spec.fft_iter,
            slots=slots if slots is not None else self.spec.boot_slots)
        return self.seconds(profile.counts)

    def amortized_mult_us(self) -> float:
        """Model-derived Table 7 value (microseconds per slot)."""
        profile, counts = self._amortized_workload()
        boot_seconds = self.seconds(profile.counts)
        mult_seconds = [
            self.seconds(self.counter.multiply(level)
                         + self.counter.rescale(level))
            for level in range(profile.levels_after + 1, 1, -1)
        ]
        return amortized_mult_per_slot(
            boot_seconds, mult_seconds, self.spec.boot_slots) * 1e6

    def lr_iteration_seconds(self, num_ciphertexts: int = 1024,
                             lr_slots: int = 256,
                             iteration_depth: int = 5,
                             refreshed_cts: int = 1) -> float:
        """Model-derived Table 8 value (average seconds per iteration).

        Each HELR iteration consumes ``iteration_depth`` levels and must
        refresh ``refreshed_cts`` aggregate ciphertexts of ``lr_slots``
        slots.  Devices whose bootstrapping refreshes fewer slots (F1
        bootstraps a single slot) or restores fewer levels pay
        proportionally more bootstraps — the effect that makes F1's LR
        training slow despite its enormous compute array.
        """
        boot_slots = min(self.spec.boot_slots, lr_slots)
        profile = self.counter.bootstrap(fft_iter=self.spec.fft_iter,
                                         slots=boot_slots)
        if profile.levels_after == 0:
            raise ValueError(
                f"{self.spec.name}: parameters too small for LR workload")
        boots = (refreshed_cts
                 * math.ceil(lr_slots / boot_slots)
                 * math.ceil(iteration_depth / profile.levels_after))
        update = self.counter.lr_iteration(num_ciphertexts=num_ciphertexts,
                                           slots=lr_slots)
        return boots * self.seconds(profile.counts) + self.seconds(update)


# ----------------------------------------------------------------------
# The paper's comparison systems
# ----------------------------------------------------------------------

def lattigo_cpu_spec() -> DeviceSpec:
    """Lattigo [5] on a 3.5 GHz CPU (Table 7/8 'Lattigo')."""
    return DeviceSpec(
        name="Lattigo", freq_hz=3.5e9, mem_bw_bytes=50e9,
        onchip_bytes=32 << 20, ring_degree=1 << 16, num_limbs=24, dnum=3,
        boot_slots=1 << 15,
        published={"amortized_mult_us": 101.78, "lr_iteration_s": 37.05},
        modular_multipliers=8, notes="single-node CPU implementation")


def gpu1_spec() -> DeviceSpec:
    """Jung et al. GPU, 97-bit security point (Table 7 'GPU-1')."""
    return DeviceSpec(
        name="GPU-1", freq_hz=1.2e9, mem_bw_bytes=900e9,
        onchip_bytes=40 << 20, ring_degree=1 << 16, num_limbs=28, dnum=4,
        boot_slots=1 << 15,
        published={"amortized_mult_us": 0.740},
        modular_multipliers=2560, notes="V100-class GPU, log Q = 1693")


def gpu2_spec() -> DeviceSpec:
    """Jung et al. GPU, 173-bit security point (Table 7/8 'GPU-2')."""
    return DeviceSpec(
        name="GPU-2", freq_hz=1.2e9, mem_bw_bytes=900e9,
        onchip_bytes=40 << 20, ring_degree=1 << 17, num_limbs=36, dnum=4,
        boot_slots=1 << 16,
        published={"amortized_mult_us": 0.716, "lr_iteration_s": 0.775},
        modular_multipliers=2560, notes="V100-class GPU, log Q = 2395")


def f1_spec() -> DeviceSpec:
    """The F1 ASIC [41] (non-packed bootstrapping only)."""
    return DeviceSpec(
        name="F1", freq_hz=1e9, mem_bw_bytes=1e12,
        onchip_bytes=64 << 20, ring_degree=1 << 14, num_limbs=14, dnum=14,
        boot_slots=1,
        published={"amortized_mult_us": 254.46, "lr_iteration_s": 1.024},
        modular_multipliers=18_432, notes="14/12nm ASIC, N = 2^14",
        fft_iter=1)


def bts2_spec() -> DeviceSpec:
    """The BTS ASIC [35], best-reported configuration (BTS-2)."""
    return DeviceSpec(
        name="BTS-2", freq_hz=1.2e9, mem_bw_bytes=1e12,
        onchip_bytes=512 << 20, ring_degree=1 << 17, num_limbs=36, dnum=6,
        boot_slots=1 << 16,
        published={"amortized_mult_us": 0.0455, "lr_iteration_s": 0.028},
        modular_multipliers=8_192, notes="ASAP7 ASIC")


def heax_spec() -> DeviceSpec:
    """HEAX [39]: an FPGA accelerating CKKS multiplication only."""
    return DeviceSpec(
        name="HEAX", freq_hz=300e6, mem_bw_bytes=21e9,
        onchip_bytes=30 << 20, ring_degree=1 << 14, num_limbs=8, dnum=8,
        boot_slots=1 << 13,
        published={"ntt_ops_per_sec": 42_000, "mult_ops_per_sec": 2_600},
        modular_multipliers=768, notes="no bootstrapping support")


def build_baseline_devices() -> Dict[str, AnalyticDevice]:
    """All Table 7 baselines, calibrated to their published anchors."""
    return {
        spec.name: AnalyticDevice(spec)
        for spec in (lattigo_cpu_spec(), gpu1_spec(), gpu2_spec(),
                     f1_spec(), bts2_spec())
    }
