"""FAB presented through the same device interface as the baselines.

Wraps :class:`repro.core.ops.FabOpModel` (the cycle-accounting model)
so the experiment drivers can iterate over FAB and the analytic
baselines uniformly, and adds the FAB-1 / FAB-2 logistic-regression
workload models of §5.5.
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.multi_fpga import MultiFpgaSystem
from ..core.ops import FabOpModel
from ..core.params import FabConfig


class FabDevice:
    """FAB-1 (single U280) through the device interface."""

    name = "FAB-1"

    def __init__(self, config: Optional[FabConfig] = None):
        self.config = config or FabConfig()
        self.model = FabOpModel(self.config)

    # ------------------------------------------------------------------
    # Table 7 interface
    # ------------------------------------------------------------------

    def bootstrap_seconds(self, slots: Optional[int] = None,
                          fft_iter: Optional[int] = None) -> float:
        """Latency of one bootstrap."""
        report = self.model.bootstrap(fft_iter=fft_iter, slots=slots)
        return report.seconds(self.config)

    def amortized_mult_us(self, slots: Optional[int] = None,
                          fft_iter: Optional[int] = None) -> float:
        """Equation-(2) metric in microseconds per slot."""
        return self.model.amortized_mult_per_slot(
            fft_iter=fft_iter, slots=slots) * 1e6

    # ------------------------------------------------------------------
    # Table 8: logistic-regression training
    # ------------------------------------------------------------------

    def lr_update_seconds(self, num_ciphertexts: int = 1024,
                          lr_slots: int = 256,
                          update_level: int = 6) -> float:
        """The non-bootstrap part of one HELR iteration on one board."""
        cfg = self.config
        per_ct = (2 * self.model.multiply_plain(update_level).cycles
                  + 3 * self.model.add(update_level).cycles)
        rotations = max(int(math.log2(lr_slots)), 1)
        rot_cycles = self.model.rotate(update_level).cycles
        rot_cycles += (rotations - 1) * self.model.rotate_hoisted(
            update_level).cycles
        sigmoid = 3 * (self.model.multiply(update_level).cycles
                       + self.model.rescale(update_level).cycles)
        update = self.model.multiply(update_level).cycles \
            + self.model.add(update_level).cycles
        total = num_ciphertexts * per_ct + rot_cycles + sigmoid + update
        return cfg.cycles_to_seconds(total)

    def lr_iteration_seconds(self, num_ciphertexts: int = 1024,
                             lr_slots: int = 256,
                             refreshed_cts: int = 1) -> float:
        """FAB-1: sparse bootstrap(s) + the update phase, sequential."""
        boot = self.bootstrap_seconds(slots=lr_slots)
        return (refreshed_cts * boot
                + self.lr_update_seconds(num_ciphertexts, lr_slots))


class Fab2Device:
    """FAB-2: eight boards; bootstrap stays serial (§5.5, Amdahl)."""

    name = "FAB-2"

    def __init__(self, config: Optional[FabConfig] = None,
                 num_fpgas: int = 8):
        self.config = config or FabConfig()
        self.single = FabDevice(self.config)
        self.system = MultiFpgaSystem(self.config, num_fpgas)

    def lr_iteration_seconds(self, num_ciphertexts: int = 1024,
                             lr_slots: int = 256,
                             refreshed_cts: int = 1) -> float:
        """Per-iteration time with the update parallelized 8 ways."""
        total = self.single.lr_iteration_seconds(num_ciphertexts, lr_slots,
                                                 refreshed_cts)
        serial = refreshed_cts * self.single.bootstrap_seconds(
            slots=lr_slots)
        return self.system.iteration_seconds(total, serial)
