"""Switching-key size and level accounting vs dnum (Figure 1).

Larger ``dnum`` shrinks the digit size alpha, which shrinks the raising
factor P and leaves more of the fixed ``log(PQ) = 1728`` budget for the
computation modulus Q — more compute levels after bootstrapping — but
each extra digit adds a pair of raised polynomials to every switching
key, growing the key material FAB must stream from HBM.  ``dnum = 3``
is the paper's sweet spot for the 43 MB on-chip memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from .metrics import levels_after_bootstrap


@dataclass(frozen=True)
class DnumPoint:
    """One x-position of Figure 1."""

    dnum: int
    num_limbs: int            # L + 1
    alpha: int
    levels_after_bootstrap: int
    key_bytes: int            # with the key compression of [15]
    key_bytes_uncompressed: int

    @property
    def key_mb(self) -> float:
        return self.key_bytes / (1 << 20)


def limbs_for_budget(dnum: int, log_pq: int = 1728,
                     limb_bits: int = 54) -> int:
    """Largest L+1 fitting the modulus budget with alpha extension limbs.

    The raised modulus P*Q spans ``(L+1) + alpha`` limbs with
    ``alpha = ceil((L+1)/dnum)``, so ``L+1 <= total * dnum/(dnum+1)``.
    """
    if dnum < 1:
        raise ValueError("dnum must be >= 1")
    total_limbs = log_pq // limb_bits
    num_limbs = total_limbs * dnum // (dnum + 1)
    # Adjust downward until the raised chain fits (ceil rounding).
    while num_limbs + math.ceil(num_limbs / dnum) > total_limbs:
        num_limbs -= 1
    return num_limbs


def switching_key_bytes(ring_degree: int, num_limbs: int, dnum: int,
                        limb_bits: int = 54,
                        compressed: bool = True) -> int:
    """Size of one switching key (eq. 3: a 2 x dnum matrix over P*Q).

    With the key-compression technique of [15] the uniform halves are
    regenerated from a seed, halving the size (the Fig. 1 note).
    """
    alpha = math.ceil(num_limbs / dnum)
    raised_limbs = num_limbs + alpha
    limb_bytes = ring_degree * limb_bits // 8
    size = 2 * dnum * raised_limbs * limb_bytes
    return size // 2 if compressed else size


def dnum_sweep(dnums: List[int], ring_degree: int = 1 << 16,
               log_pq: int = 1728, limb_bits: int = 54,
               fft_iter: int = 4) -> List[DnumPoint]:
    """The Figure 1 series: levels after bootstrap & key size vs dnum."""
    points = []
    for dnum in dnums:
        num_limbs = limbs_for_budget(dnum, log_pq, limb_bits)
        alpha = math.ceil(num_limbs / dnum)
        levels = levels_after_bootstrap(num_limbs - 1, fft_iter)
        points.append(DnumPoint(
            dnum=dnum,
            num_limbs=num_limbs,
            alpha=alpha,
            levels_after_bootstrap=levels,
            key_bytes=switching_key_bytes(ring_degree, num_limbs, dnum,
                                          limb_bits, compressed=True),
            key_bytes_uncompressed=switching_key_bytes(
                ring_degree, num_limbs, dnum, limb_bits, compressed=False)))
    return points
