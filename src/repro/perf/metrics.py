"""Bootstrapping performance metrics (§2.1.4 of the paper).

The headline metric is the *amortized multiplication time per slot*
(Eq. 2): a bootstrapping routine is only as good as the multiply budget
it buys, normalized by ciphertext packing.
"""

from __future__ import annotations

from typing import Sequence


def bootstrap_depth(fft_iter: int, eval_mod_depth: int = 9) -> int:
    """``LBoot = 2 * fftIter + eval_mod_depth`` (§2.1.4)."""
    if fft_iter < 1:
        raise ValueError("fft_iter must be >= 1")
    return 2 * fft_iter + eval_mod_depth


def levels_after_bootstrap(max_level: int, fft_iter: int,
                           eval_mod_depth: int = 9) -> int:
    """Compute levels remaining after one bootstrap (clamped at 0)."""
    return max(max_level - bootstrap_depth(fft_iter, eval_mod_depth), 0)


def amortized_mult_per_slot(bootstrap_seconds: float,
                            mult_seconds_per_level: Sequence[float],
                            slots: int) -> float:
    """Equation (2): ``(T_boot + sum_i T_mult(i)) / (l * n)``.

    Args:
        bootstrap_seconds: T_Boot.
        mult_seconds_per_level: T_Mult(i) for each usable level i.
        slots: packed slots n.

    Returns:
        Seconds per multiplication per slot; ``inf`` when no levels
        remain (bootstrapping that buys nothing is infinitely slow).
    """
    levels = len(mult_seconds_per_level)
    if slots < 1:
        raise ValueError("slots must be positive")
    if levels == 0:
        return float("inf")
    total = bootstrap_seconds + sum(mult_seconds_per_level)
    return total / (levels * slots)


def speedup(baseline_seconds: float, accelerated_seconds: float) -> float:
    """How many times faster the accelerated system is."""
    if accelerated_seconds <= 0:
        raise ValueError("accelerated time must be positive")
    return baseline_seconds / accelerated_seconds


def cycles_speedup(baseline_seconds: float, baseline_hz: float,
                   accelerated_seconds: float, accelerated_hz: float) -> float:
    """Speedup measured in clock cycles (the paper's second column)."""
    return speedup(baseline_seconds * baseline_hz,
                   accelerated_seconds * accelerated_hz)
