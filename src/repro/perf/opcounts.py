"""Primitive-operation counts for CKKS workloads.

Device-independent counting of modular multiplies, adds, NTT
butterflies and memory traffic for every CKKS operation, the full
bootstrapping pipeline, and one HELR logistic-regression iteration.
The counts feed both the FAB cycle model (:mod:`repro.core.ops`) and the
analytic baseline devices (:mod:`repro.perf.devices`), so every system
in Tables 5–8 is evaluated on identical workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass
class PrimitiveCounts:
    """Scalar-operation and traffic totals for one workload."""

    modmults: int = 0
    modadds: int = 0
    ntt_butterflies: int = 0
    automorph_elems: int = 0
    hbm_key_bytes: int = 0
    hbm_ct_bytes: int = 0

    def __add__(self, other: "PrimitiveCounts") -> "PrimitiveCounts":
        return PrimitiveCounts(
            self.modmults + other.modmults,
            self.modadds + other.modadds,
            self.ntt_butterflies + other.ntt_butterflies,
            self.automorph_elems + other.automorph_elems,
            self.hbm_key_bytes + other.hbm_key_bytes,
            self.hbm_ct_bytes + other.hbm_ct_bytes)

    def scaled(self, factor: int) -> "PrimitiveCounts":
        """The counts of ``factor`` repetitions."""
        return PrimitiveCounts(
            self.modmults * factor, self.modadds * factor,
            self.ntt_butterflies * factor, self.automorph_elems * factor,
            self.hbm_key_bytes * factor, self.hbm_ct_bytes * factor)

    @property
    def mult_equivalents(self) -> int:
        """Modular-multiply equivalents (butterfly = 1 multiply)."""
        return self.modmults + self.ntt_butterflies

    @property
    def total_bytes(self) -> int:
        return self.hbm_key_bytes + self.hbm_ct_bytes


@dataclass
class BootstrapProfile:
    """Counts plus pipeline metadata for one bootstrap."""

    counts: PrimitiveCounts
    rotations: int
    ct_mults: int
    limb_ntts: int
    levels_after: int
    slots: int


class OpCounter:
    """Counts primitive operations at a given CKKS parameter point."""

    def __init__(self, ring_degree: int = 1 << 16, num_limbs: int = 24,
                 dnum: int = 3, limb_bits: int = 54,
                 num_extension_limbs: Optional[int] = None,
                 eval_mod_depth: int = 9):
        self.ring_degree = ring_degree
        self.num_limbs = num_limbs
        self.dnum = dnum
        self.limb_bits = limb_bits
        self.alpha = (num_limbs + dnum - 1) // dnum
        self.num_extension_limbs = (num_extension_limbs
                                    if num_extension_limbs is not None
                                    else self.alpha)
        self.eval_mod_depth = eval_mod_depth
        self.log_degree = ring_degree.bit_length() - 1

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @property
    def limb_bytes(self) -> int:
        return self.ring_degree * self.limb_bits // 8

    def _level(self, level: Optional[int]) -> int:
        return level if level is not None else self.num_limbs

    def ntt(self, limbs: int = 1) -> PrimitiveCounts:
        """``limbs`` limb transforms: N/2 * log N butterflies each."""
        butterflies = limbs * (self.ring_degree // 2) * self.log_degree
        return PrimitiveCounts(ntt_butterflies=butterflies,
                               modadds=2 * butterflies)

    # ------------------------------------------------------------------
    # Basic operations
    # ------------------------------------------------------------------

    def add(self, level: Optional[int] = None) -> PrimitiveCounts:
        lvl = self._level(level)
        return PrimitiveCounts(modadds=2 * lvl * self.ring_degree)

    def multiply_plain(self, level: Optional[int] = None) -> PrimitiveCounts:
        lvl = self._level(level)
        return PrimitiveCounts(modmults=2 * lvl * self.ring_degree)

    def keyswitch(self, level: Optional[int] = None,
                  hoisted: bool = False) -> PrimitiveCounts:
        """Hybrid key switch with the smart-scheduling optimization."""
        lvl = self._level(level)
        n = self.ring_degree
        k = self.num_extension_limbs
        raised = lvl + k
        digits = []
        remaining = lvl
        while remaining > 0:
            digits.append(min(self.alpha, remaining))
            remaining -= self.alpha
        counts = PrimitiveCounts()
        for d in digits:
            new_limbs = raised - d
            if not hoisted:
                counts += self.ntt(d)                     # iNTT digit
                counts += PrimitiveCounts(                # BasisConvert
                    modmults=d * n + new_limbs * d * n,
                    modadds=new_limbs * d * n)
                counts += self.ntt(new_limbs)             # NTT new limbs
            counts += PrimitiveCounts(                    # KSKIP
                modmults=2 * raised * n, modadds=2 * raised * n,
                hbm_key_bytes=2 * raised * self.limb_bytes)
        for _poly in range(2):                            # ModDown
            counts += self.ntt(k)
            counts += PrimitiveCounts(
                modmults=k * n + lvl * k * n + lvl * n,
                modadds=lvl * k * n + lvl * n)
            counts += self.ntt(lvl)
        return counts

    def multiply(self, level: Optional[int] = None) -> PrimitiveCounts:
        lvl = self._level(level)
        n = self.ring_degree
        tensor = PrimitiveCounts(modmults=4 * lvl * n, modadds=3 * lvl * n)
        return tensor + self.keyswitch(lvl)

    def rescale(self, level: Optional[int] = None) -> PrimitiveCounts:
        lvl = self._level(level)
        n = self.ring_degree
        return self.ntt(2 * lvl) + PrimitiveCounts(
            modmults=2 * (lvl - 1) * n, modadds=2 * (lvl - 1) * n)

    def rotate(self, level: Optional[int] = None,
               hoisted: bool = False) -> PrimitiveCounts:
        lvl = self._level(level)
        return self.keyswitch(lvl, hoisted=hoisted) + PrimitiveCounts(
            automorph_elems=2 * lvl * self.ring_degree)

    # ------------------------------------------------------------------
    # Bootstrapping
    # ------------------------------------------------------------------

    def bootstrap(self, fft_iter: int = 4, slots: Optional[int] = None,
                  eval_mod_ct_mults: int = 20,
                  eval_mod_const_mults: int = 25) -> BootstrapProfile:
        """Counts for the full pipeline, tracking the level per stage.

        Sparse ciphertexts (slots < N/2) run a smaller homomorphic DFT
        and a single EvalMod branch (the standard sparse optimization);
        fully-packed ones run two EvalMod branches.
        """
        n = self.ring_degree
        slots = slots if slots is not None else n // 2
        log_slots = max(int(math.log2(slots)), 1)
        fully_packed = slots == n // 2
        level = self.num_limbs
        counts = PrimitiveCounts()
        rotations = 0
        ct_mults = 0

        # ModRaise.
        counts += self.ntt(2 * (1 + level))

        radix_bits = math.ceil(log_slots / fft_iter)
        diagonals = (1 << radix_bits) + 1

        def linear_transform(lvl: int) -> Tuple[PrimitiveCounts, int]:
            n1 = 1 << max(0, round(math.log2(diagonals) / 2))
            n2 = math.ceil(diagonals / n1)
            lt = PrimitiveCounts()
            rots = 0
            for idx in range(max(n1 - 1, 0)):
                lt += self.rotate(lvl, hoisted=idx > 0)
                rots += 1
            for _ in range(max(n2 - 1, 0)):
                lt += self.rotate(lvl)
                rots += 1
            lt += PrimitiveCounts(modmults=diagonals * 2 * lvl * n,
                                  modadds=diagonals * 2 * lvl * n)
            return lt + self.rescale(lvl), rots

        # CoeffToSlot (+1 conjugation for the real/imag split).
        for _ in range(fft_iter):
            lt, rots = linear_transform(level)
            counts += lt
            rotations += rots
            level -= 1
        counts += self.rotate(level)
        rotations += 1

        # EvalMod.
        branches = 2 if fully_packed else 1
        depth = self.eval_mod_depth
        base = eval_mod_ct_mults // depth
        extra = eval_mod_ct_mults - base * depth
        for _branch in range(branches):
            lvl = level
            for step in range(depth):
                here = base + (1 if step < extra else 0)
                for _ in range(here):
                    counts += self.multiply(lvl) + self.rescale(lvl)
                    ct_mults += 1
                lvl -= 1
            counts += PrimitiveCounts(
                modmults=eval_mod_const_mults * 2 * level * n)
        level -= depth

        # SlotToCoeff.
        for _ in range(fft_iter):
            lt, rots = linear_transform(level)
            counts += lt
            rotations += rots
            level -= 1

        butterflies = counts.ntt_butterflies
        limb_ntts = butterflies // ((n // 2) * self.log_degree)
        return BootstrapProfile(counts=counts, rotations=rotations,
                                ct_mults=ct_mults, limb_ntts=limb_ntts,
                                levels_after=max(level - 1, 0), slots=slots)

    # ------------------------------------------------------------------
    # HELR logistic regression (Table 8 workload)
    # ------------------------------------------------------------------

    def lr_iteration(self, num_ciphertexts: int = 1024,
                     slots: int = 256,
                     update_level: int = 6) -> PrimitiveCounts:
        """One HELR iteration over ``num_ciphertexts`` sparse ciphertexts.

        Per ciphertext: the gradient contribution (two plaintext
        multiplies, an inner-product rotation tree over the 196 packed
        features, and accumulations); per iteration: the degree-3
        polynomial sigmoid on the aggregate (3 ct multiplies + rescales)
        and the weight update, followed by one sparse bootstrap
        (counted separately via :meth:`bootstrap`).
        """
        counts = PrimitiveCounts()
        # Per-ciphertext gradient contribution (plaintext data x weights).
        per_ct = (self.multiply_plain(update_level).scaled(2)
                  + self.add(update_level).scaled(3))
        counts += per_ct.scaled(num_ciphertexts)
        # Inner-product rotation tree on the aggregate (196 features).
        rotations = max(int(math.log2(slots)), 1)
        first = True
        for _ in range(rotations):
            counts += self.rotate(update_level, hoisted=not first)
            counts += self.add(update_level)
            first = False
        # Degree-3 polynomial sigmoid + weight update.
        for _ in range(3):
            counts += self.multiply(update_level) + self.rescale(
                update_level)
        counts += self.multiply(update_level) + self.add(update_level)
        return counts
