"""Trace-driven runtime: capture, lowering, and multi-tenant serving.

The bridge between the functional CKKS layer (:mod:`repro.fhe`) and
the FAB performance model (:mod:`repro.core`):

* :mod:`~repro.runtime.optrace` — the serializable trace IR.
* :mod:`~repro.runtime.capture` — a tracing :class:`Evaluator` that
  records any application's homomorphic ops as it runs.
* :mod:`~repro.runtime.lowering` — compiles traces to
  :class:`repro.core.program.FabProgram` task graphs with per-op
  FAB costs and key-prefetch edges.
* :mod:`~repro.runtime.reference` — paper-scale traces of the
  evaluated workloads (LR iteration, bootstrap, inference, analytics).
* :mod:`~repro.runtime.serving` — a discrete-event, multi-tenant
  serving simulator over a FAB device pool: batching, per-tenant
  switching-key HBM residency, throughput and tail latency.
* :mod:`~repro.runtime.policies` — pluggable admission/scheduling
  policies for the simulator: ``fifo``, ``edf`` (deadline-ordered
  with admission control), and ``deferrable-window`` (price-aware
  batch windows), plus the :class:`PriceSignal` they schedule around.
* :mod:`~repro.runtime.autoscaler` — elastic pool autoscaling:
  pluggable scale policies (reactive thresholds, predictive rate
  trend) over windowed utilization/queue/arrival signals, driving
  voluntary board park/unpark with drain semantics and cold-cache
  rejoin.
* :mod:`~repro.runtime.membership` — the unified pool-membership
  ledger and event loop behind fault injection and autoscaling:
  per-board ``active | draining | parked | failed | repairing``
  states with explicit faults-vs-scaler arbitration rules.
* :mod:`~repro.runtime.fast_engine` — the vectorized second engine
  behind ``ServingSimulator.run(engine="fast")``: numpy-batched
  arrivals and bookkeeping at ~10x the DES event rate, held to the
  exact engine by a parity suite.
* :mod:`~repro.runtime.arrivals` — the arrival-process library both
  engines draw from: Poisson (seed-for-seed the historical default),
  diurnal curves, MMPP bursts, flash crowds, JSONL trace replay.
* :mod:`~repro.runtime.stats` — streaming percentile estimators
  (P-squared, bottom-k reservoir) for fleet-scale reports.
* :mod:`~repro.runtime.striped_lowering` — FAB-2 trace striping: shard
  one trace's batch dimension across the pool, schedule per-board
  lanes with CMAC gather/broadcast traffic.
"""

from .arrivals import (ARRIVAL_PROCESSES, ArrivalProcess, DiurnalProcess,
                       FlashCrowdProcess, MMPPProcess, PoissonProcess,
                       RateCurveProcess, TraceReplayProcess, make_process)
from .autoscaler import (AVAILABILITY_FLOOR, SCALE_POLICIES,
                         PredictiveScalePolicy, ReactiveScalePolicy,
                         ScalePolicy, ScaleSignals, ScheduleScalePolicy,
                         SpareScalePolicy, make_scale_policy,
                         run_with_autoscale)
from .capture import (CountingKeySwitcher, TracingEncoder,
                      TracingEvaluator, capture)
from .fast_engine import (STREAMING_AUTO_THRESHOLD, SetKeyCache, run_fast)
from .faults import (FAULT_PROCESSES, RETRY_POLICIES,
                     ExponentialBackoffRetry, FaultProcess,
                     FaultSchedule, ImmediateRetry, NoRetry,
                     PoissonFaultProcess, RetryPolicy,
                     TraceFaultProcess, WeibullFaultProcess,
                     make_fault_process, make_retry_policy,
                     run_with_faults)
from .membership import (BOARD_STATES, PoolLedger, run_with_ledger)
from .lowering import (KeyWorkingSet, LoweredCost, LOWERING_MAP,
                       cost_trace, key_working_set, lower_trace,
                       lowered_op, switching_key_bytes)
from .optrace import TRACE_KINDS, OpTrace, TraceOp
from .policies import (POLICIES, DeferrableWindowPolicy, EdfPolicy,
                       FifoPolicy, PolicyContext, PriceSignal,
                       SchedulingPolicy, make_policy)
from .reference import (REFERENCE_TRACES, analytics_trace,
                        bootstrap_trace, build_reference_trace,
                        lr_inference_trace, lr_iteration_trace)
from .serving import (ENGINES, ArrivalChunk, Job, JobClass, KeyCache,
                      Scenario, ServingReport, ServingSimulator, Stream,
                      WorkloadStats, build_job_classes, build_scenarios,
                      build_slo_scenario, default_interactive_slo_ms,
                      percentile)
from .serving_baseline import BaselineKeyCache, baseline_run
from .specs import SpecError
from .stats import LatencyAccumulator, P2Quantile, ReservoirQuantiles
from .striped_lowering import (BOARD_POLICIES, BoardStriper, StripePlan,
                               StripedCost, StripedProgram,
                               StripedReport, StripedTrace,
                               TraceSection, cost_striped_trace,
                               infer_plan, largest_viable_stripe,
                               lower_striped_trace, stripe_trace)

__all__ = [
    "ARRIVAL_PROCESSES", "AVAILABILITY_FLOOR", "ArrivalChunk",
    "ArrivalProcess",
    "BOARD_POLICIES", "BOARD_STATES", "BaselineKeyCache", "BoardStriper",
    "baseline_run",
    "CountingKeySwitcher", "DeferrableWindowPolicy", "DiurnalProcess",
    "EdfPolicy", "ENGINES", "ExponentialBackoffRetry",
    "FAULT_PROCESSES", "FaultProcess", "FaultSchedule",
    "FifoPolicy", "FlashCrowdProcess", "ImmediateRetry",
    "Job", "JobClass", "KeyCache",
    "KeyWorkingSet", "LOWERING_MAP", "LatencyAccumulator",
    "LoweredCost", "MMPPProcess", "NoRetry", "OpTrace",
    "P2Quantile", "POLICIES", "PoissonFaultProcess", "PoissonProcess",
    "PolicyContext", "PoolLedger", "PriceSignal",
    "PredictiveScalePolicy",
    "REFERENCE_TRACES", "RETRY_POLICIES", "RateCurveProcess",
    "ReactiveScalePolicy", "ReservoirQuantiles", "RetryPolicy",
    "SCALE_POLICIES", "STREAMING_AUTO_THRESHOLD", "ScalePolicy",
    "ScaleSignals", "Scenario", "ScheduleScalePolicy",
    "SchedulingPolicy",
    "ServingReport", "ServingSimulator", "SetKeyCache",
    "SpareScalePolicy", "SpecError",
    "Stream", "StripePlan", "StripedCost", "StripedProgram",
    "StripedReport", "StripedTrace", "TRACE_KINDS",
    "TraceFaultProcess", "TraceOp", "TraceReplayProcess",
    "TraceSection", "TracingEncoder",
    "TracingEvaluator", "WeibullFaultProcess", "WorkloadStats",
    "analytics_trace",
    "bootstrap_trace", "build_job_classes", "build_reference_trace",
    "build_scenarios", "build_slo_scenario", "capture",
    "cost_striped_trace", "cost_trace",
    "default_interactive_slo_ms", "infer_plan", "key_working_set",
    "largest_viable_stripe",
    "lower_striped_trace", "lower_trace", "lowered_op",
    "lr_inference_trace", "lr_iteration_trace", "make_fault_process",
    "make_policy", "make_process", "make_retry_policy",
    "make_scale_policy",
    "percentile", "run_fast", "run_with_autoscale",
    "run_with_faults", "run_with_ledger", "stripe_trace",
    "switching_key_bytes",
]
