"""Trace-driven runtime: capture, lowering, and multi-tenant serving.

The bridge between the functional CKKS layer (:mod:`repro.fhe`) and
the FAB performance model (:mod:`repro.core`):

* :mod:`~repro.runtime.optrace` — the serializable trace IR.
* :mod:`~repro.runtime.capture` — a tracing :class:`Evaluator` that
  records any application's homomorphic ops as it runs.
* :mod:`~repro.runtime.lowering` — compiles traces to
  :class:`repro.core.program.FabProgram` task graphs with per-op
  FAB costs and key-prefetch edges.
* :mod:`~repro.runtime.reference` — paper-scale traces of the
  evaluated workloads (LR iteration, bootstrap, inference, analytics).
* :mod:`~repro.runtime.serving` — a discrete-event, multi-tenant
  serving simulator over a FAB device pool: batching, per-tenant
  switching-key HBM residency, throughput and tail latency.
* :mod:`~repro.runtime.policies` — pluggable admission/scheduling
  policies for the simulator: ``fifo``, ``edf`` (deadline-ordered
  with admission control), and ``deferrable-window`` (price-aware
  batch windows), plus the :class:`PriceSignal` they schedule around.
* :mod:`~repro.runtime.striped_lowering` — FAB-2 trace striping: shard
  one trace's batch dimension across the pool, schedule per-board
  lanes with CMAC gather/broadcast traffic.
"""

from .capture import (CountingKeySwitcher, TracingEncoder,
                      TracingEvaluator, capture)
from .lowering import (KeyWorkingSet, LoweredCost, LOWERING_MAP,
                       cost_trace, key_working_set, lower_trace,
                       lowered_op, switching_key_bytes)
from .optrace import TRACE_KINDS, OpTrace, TraceOp
from .policies import (POLICIES, DeferrableWindowPolicy, EdfPolicy,
                       FifoPolicy, PolicyContext, PriceSignal,
                       SchedulingPolicy, make_policy)
from .reference import (REFERENCE_TRACES, analytics_trace,
                        bootstrap_trace, build_reference_trace,
                        lr_inference_trace, lr_iteration_trace)
from .serving import (Job, JobClass, KeyCache, Scenario, ServingReport,
                      ServingSimulator, Stream, WorkloadStats,
                      build_job_classes, build_scenarios,
                      build_slo_scenario, default_interactive_slo_ms,
                      percentile)
from .serving_baseline import BaselineKeyCache, baseline_run
from .striped_lowering import (BOARD_POLICIES, BoardStriper, StripePlan,
                               StripedCost, StripedProgram,
                               StripedReport, StripedTrace,
                               TraceSection, cost_striped_trace,
                               infer_plan, lower_striped_trace,
                               stripe_trace)

__all__ = [
    "BOARD_POLICIES", "BaselineKeyCache", "BoardStriper",
    "baseline_run",
    "CountingKeySwitcher", "DeferrableWindowPolicy", "EdfPolicy",
    "FifoPolicy", "Job", "JobClass", "KeyCache",
    "KeyWorkingSet", "LOWERING_MAP", "LoweredCost", "OpTrace",
    "POLICIES", "PolicyContext", "PriceSignal",
    "REFERENCE_TRACES", "Scenario", "SchedulingPolicy",
    "ServingReport", "ServingSimulator",
    "Stream", "StripePlan", "StripedCost", "StripedProgram",
    "StripedReport", "StripedTrace", "TRACE_KINDS", "TraceOp",
    "TraceSection", "TracingEncoder",
    "TracingEvaluator", "WorkloadStats", "analytics_trace",
    "bootstrap_trace", "build_job_classes", "build_reference_trace",
    "build_scenarios", "build_slo_scenario", "capture",
    "cost_striped_trace", "cost_trace",
    "default_interactive_slo_ms", "infer_plan", "key_working_set",
    "lower_striped_trace", "lower_trace", "lowered_op",
    "lr_inference_trace", "lr_iteration_trace", "make_policy",
    "percentile", "stripe_trace", "switching_key_bytes",
]
