"""Arrival-process library for the serving simulators.

Every :class:`~repro.runtime.serving.Stream` draws its job arrival
times from an :class:`ArrivalProcess`.  The default — and the only
behavior that existed before this module — is a homogeneous
:class:`PoissonProcess`; the library adds the datacenter-trace shapes
the fleet-scale scenarios need:

* :class:`DiurnalProcess` — a sinusoidal day/night rate curve
  (inhomogeneous Poisson, sampled exactly by Lewis–Shedler thinning).
* :class:`MMPPProcess` — a Markov-modulated Poisson process cycling
  through dwell states; the classic bursty-traffic model (its
  variance-to-mean ratio exceeds Poisson's 1.0).
* :class:`FlashCrowdProcess` — baseline traffic plus a rectangular
  surge window (a launch event, a breaking-news spike).
* :class:`TraceReplayProcess` — absolute arrival timestamps replayed
  from memory or a JSONL file, for measured production traces.

Each process exposes **two sampling paths** that draw from the same
distribution:

* :meth:`ArrivalProcess.iter_times` — a Python generator driven by a
  shared :class:`random.Random`.  This is the *exact* path:
  :meth:`repro.runtime.serving.Scenario.generate` consumes it, and
  for :class:`PoissonProcess` the draw sequence is bit-identical to
  the original inlined ``rng.expovariate`` loop, which the regression
  suite asserts seed-for-seed.
* :meth:`ArrivalProcess.sample_times` — chunked numpy sampling from a
  :class:`numpy.random.Generator`.  This is the *vectorized* path the
  fast engine uses at million-job scale; it draws from the same
  process but from an independent RNG stream, so runs that must share
  an arrival sequence across engines use the exact path (or replay a
  sampled trace).

``expected_jobs`` is the analytic rate integral over a horizon; the
unit tests reconcile empirical counts against it for every process.
"""

from __future__ import annotations

import json
import math
import random
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .specs import SpecError, parse_spec_kwargs, take_spec_options

#: Chunk size for vectorized sampling (arrivals drawn per numpy call).
SAMPLE_CHUNK = 65536


class ArrivalProcess:
    """Base class: a point process of job arrivals on ``[start, end)``.

    Subclasses implement both sampling paths and the analytic rate
    integral.  Processes are stateless value objects — every sampling
    call is independent given its RNG — so one instance may be shared
    by many streams and runs.
    """

    name = "base"

    def iter_times(self, rng: random.Random, start_s: float,
                   end_s: float) -> Iterator[float]:
        """Yield arrival times in ``[start_s, end_s)``, ascending,
        drawing only from ``rng`` (the exact shared-sequence path)."""
        raise NotImplementedError

    def sample_times(self, rng: np.random.Generator, start_s: float,
                     end_s: float) -> np.ndarray:
        """Vectorized draw: all arrival times in ``[start_s, end_s)``
        as an ascending float64 array (the fast-engine path)."""
        raise NotImplementedError

    def expected_jobs(self, start_s: float, end_s: float) -> float:
        """Analytic integral of the rate over ``[start_s, end_s)``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate_per_s``.

    The exact path reproduces the original ``Scenario.generate`` loop
    draw for draw: one ``rng.expovariate(rate)`` per candidate, the
    final (out-of-horizon) draw included, so pre-existing seeds
    produce bit-identical scenarios.
    """

    name = "poisson"

    def __init__(self, rate_per_s: float):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        self.rate_per_s = float(rate_per_s)

    def iter_times(self, rng, start_s, end_s):
        t = start_s
        rate = self.rate_per_s
        while True:
            t += rng.expovariate(rate)
            if t >= end_s:
                return
            yield t

    def sample_times(self, rng, start_s, end_s):
        chunks: List[np.ndarray] = []
        t = start_s
        scale = 1.0 / self.rate_per_s
        while t < end_s:
            gaps = rng.exponential(scale, size=SAMPLE_CHUNK)
            times = t + np.cumsum(gaps)
            if times[-1] >= end_s:
                chunks.append(times[times < end_s])
                break
            chunks.append(times)
            t = float(times[-1])
        return (np.concatenate(chunks) if chunks
                else np.empty(0, dtype=np.float64))

    def expected_jobs(self, start_s, end_s):
        return self.rate_per_s * max(end_s - start_s, 0.0)

    def __repr__(self):
        return f"PoissonProcess(rate_per_s={self.rate_per_s:g})"


class RateCurveProcess(ArrivalProcess):
    """Inhomogeneous Poisson with rate ``rate_fn(t) <= rate_max``.

    Sampled exactly by Lewis–Shedler thinning: candidates arrive as a
    homogeneous Poisson at ``rate_max`` and are accepted with
    probability ``rate_fn(t) / rate_max``.  Subclasses provide the
    curve and its analytic integral; the thinning machinery (both
    paths) lives here.
    """

    name = "rate-curve"

    def __init__(self, rate_max: float):
        if rate_max <= 0:
            raise ValueError("rate_max must be positive")
        self.rate_max = float(rate_max)

    def rate_at(self, t: float) -> float:
        raise NotImplementedError

    def rate_at_array(self, t: np.ndarray) -> np.ndarray:
        """Vectorized ``rate_at`` (subclasses override with pure-numpy
        curves; the fallback maps the scalar version)."""
        return np.array([self.rate_at(x) for x in t])

    def iter_times(self, rng, start_s, end_s):
        t = start_s
        rate_max = self.rate_max
        while True:
            t += rng.expovariate(rate_max)
            if t >= end_s:
                return
            if rng.random() * rate_max <= self.rate_at(t):
                yield t

    def sample_times(self, rng, start_s, end_s):
        chunks: List[np.ndarray] = []
        t = start_s
        scale = 1.0 / self.rate_max
        while t < end_s:
            gaps = rng.exponential(scale, size=SAMPLE_CHUNK)
            times = t + np.cumsum(gaps)
            done = bool(times[-1] >= end_s)
            accept = (rng.uniform(0.0, self.rate_max, size=times.size)
                      <= self.rate_at_array(times))
            if done:
                accept &= times < end_s
                chunks.append(times[accept])
                break
            chunks.append(times[accept])
            t = float(times[-1])
        return (np.concatenate(chunks) if chunks
                else np.empty(0, dtype=np.float64))


class DiurnalProcess(RateCurveProcess):
    """Sinusoidal day/night curve around ``base_rate``.

    ``rate(t) = base_rate * (1 + amplitude * sin(2 pi (t - phase_s)
    / period_s))`` — a full period is one simulated "day".
    ``amplitude`` in ``[0, 1)`` keeps the rate positive.
    """

    name = "diurnal"

    def __init__(self, base_rate: float, amplitude: float = 0.8,
                 period_s: float = 1.0, phase_s: float = 0.0):
        if base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        super().__init__(rate_max=base_rate * (1.0 + amplitude))
        self.base_rate = float(base_rate)
        self.amplitude = float(amplitude)
        self.period_s = float(period_s)
        self.phase_s = float(phase_s)

    def rate_at(self, t):
        omega = 2.0 * math.pi / self.period_s
        return self.base_rate * (
            1.0 + self.amplitude * math.sin(omega * (t - self.phase_s)))

    def rate_at_array(self, t):
        omega = 2.0 * math.pi / self.period_s
        return self.base_rate * (
            1.0 + self.amplitude * np.sin(omega * (t - self.phase_s)))

    def expected_jobs(self, start_s, end_s):
        if end_s <= start_s:
            return 0.0
        omega = 2.0 * math.pi / self.period_s

        def antiderivative(t: float) -> float:
            return self.base_rate * (
                t - self.amplitude / omega
                * math.cos(omega * (t - self.phase_s)))

        return antiderivative(end_s) - antiderivative(start_s)

    def __repr__(self):
        return (f"DiurnalProcess(base_rate={self.base_rate:g}, "
                f"amplitude={self.amplitude:g}, "
                f"period_s={self.period_s:g})")


class FlashCrowdProcess(RateCurveProcess):
    """Baseline Poisson traffic plus a rectangular surge window.

    During ``[at_s, at_s + width_s)`` the rate multiplies by
    ``factor`` — the flash-crowd moment an admission policy has to
    survive.
    """

    name = "flash"

    def __init__(self, base_rate: float, factor: float = 8.0,
                 at_s: float = 0.25, width_s: float = 0.1):
        if base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        if width_s <= 0:
            raise ValueError("width_s must be positive")
        super().__init__(rate_max=base_rate * factor)
        self.base_rate = float(base_rate)
        self.factor = float(factor)
        self.at_s = float(at_s)
        self.width_s = float(width_s)

    def rate_at(self, t):
        if self.at_s <= t < self.at_s + self.width_s:
            return self.base_rate * self.factor
        return self.base_rate

    def rate_at_array(self, t):
        surge = (t >= self.at_s) & (t < self.at_s + self.width_s)
        return self.base_rate * np.where(surge, self.factor, 1.0)

    def expected_jobs(self, start_s, end_s):
        if end_s <= start_s:
            return 0.0
        overlap = (min(end_s, self.at_s + self.width_s)
                   - max(start_s, self.at_s))
        overlap = max(overlap, 0.0)
        return self.base_rate * (
            (end_s - start_s) + (self.factor - 1.0) * overlap)

    def __repr__(self):
        return (f"FlashCrowdProcess(base_rate={self.base_rate:g}, "
                f"factor={self.factor:g}, at_s={self.at_s:g}, "
                f"width_s={self.width_s:g})")


class MMPPProcess(ArrivalProcess):
    """Markov-modulated Poisson process cycling through dwell states.

    The modulating chain visits ``rates[i]`` for an exponential dwell
    of mean ``dwell_s[i]``, then moves to the next state (cyclically).
    Within a state arrivals are Poisson at that state's rate — the
    standard two-timescale burst model.  With ``rates=(low, high)``
    and a short high-state dwell this produces the bursty arrival
    counts (variance-to-mean ratio > 1) that distinguish real traffic
    from Poisson.
    """

    name = "mmpp"

    def __init__(self, rates: Sequence[float],
                 dwell_s: Sequence[float] | float):
        rates = tuple(float(r) for r in rates)
        if len(rates) < 2:
            raise ValueError("an MMPP needs at least two states")
        if any(r < 0 for r in rates) or all(r == 0 for r in rates):
            raise ValueError("state rates must be >= 0, one positive")
        if isinstance(dwell_s, (int, float)):
            dwell_s = (float(dwell_s),) * len(rates)
        dwell = tuple(float(d) for d in dwell_s)
        if len(dwell) != len(rates):
            raise ValueError("need one dwell_s per state")
        if any(d <= 0 for d in dwell):
            raise ValueError("dwell_s must be positive")
        self.rates = rates
        self.dwell_s = dwell

    @property
    def mean_rate(self) -> float:
        """Long-run arrival rate (dwell-weighted state average)."""
        weight = sum(self.dwell_s)
        return sum(r * d for r, d in zip(self.rates, self.dwell_s)) / weight

    def iter_times(self, rng, start_s, end_s):
        state = 0
        t = start_s
        switch = start_s + rng.expovariate(1.0 / self.dwell_s[state])
        while t < end_s:
            rate = self.rates[state]
            # Memorylessness lets the pending arrival draw be
            # discarded at a state switch and redrawn in the new
            # state; candidates past the switch time advance the
            # chain instead of arriving.
            gap = (math.inf if rate == 0
                   else rng.expovariate(rate))
            if t + gap < switch:
                t += gap
                if t >= end_s:
                    return
                yield t
            else:
                t = switch
                state = (state + 1) % len(self.rates)
                switch = t + rng.expovariate(1.0 / self.dwell_s[state])

    def sample_times(self, rng, start_s, end_s):
        # Draw the state trajectory first, then fill each dwell
        # interval with a Poisson batch at that state's rate.
        chunks: List[np.ndarray] = []
        state = 0
        t = start_s
        while t < end_s:
            dwell = float(rng.exponential(self.dwell_s[state]))
            upper = min(t + dwell, end_s)
            rate = self.rates[state]
            if rate > 0 and upper > t:
                count = int(rng.poisson(rate * (upper - t)))
                if count:
                    times = rng.uniform(t, upper, size=count)
                    times.sort()
                    chunks.append(times)
            t += dwell
            state = (state + 1) % len(self.rates)
        return (np.concatenate(chunks) if chunks
                else np.empty(0, dtype=np.float64))

    def expected_jobs(self, start_s, end_s):
        # Steady-state approximation (exact as horizons span many
        # dwell cycles); the burstiness tests use wide tolerances.
        return self.mean_rate * max(end_s - start_s, 0.0)

    def __repr__(self):
        return f"MMPPProcess(rates={self.rates}, dwell_s={self.dwell_s})"


class TraceReplayProcess(ArrivalProcess):
    """Replay absolute arrival timestamps (e.g. a measured trace).

    Only timestamps inside the stream's ``[start, end)`` horizon are
    emitted.  ``to_jsonl``/``from_jsonl`` round-trip the trace through
    the one-object-per-line JSON format shared with the obs artifacts.
    """

    name = "replay"

    def __init__(self, times: Sequence[float]):
        arr = np.asarray(times, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("replay times must be one-dimensional")
        if arr.size and np.any(np.diff(arr) < 0):
            arr = np.sort(arr, kind="stable")
        self.times = arr

    @classmethod
    def from_jsonl(cls, path: str) -> "TraceReplayProcess":
        times = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                times.append(float(record["t"]))
        return cls(times)

    def to_jsonl(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            for t in self.times:
                fh.write(json.dumps({"t": float(t)}) + "\n")

    def iter_times(self, rng, start_s, end_s):
        lo = int(np.searchsorted(self.times, start_s, side="left"))
        for t in self.times[lo:]:
            if t >= end_s:
                return
            yield float(t)

    def sample_times(self, rng, start_s, end_s):
        lo = int(np.searchsorted(self.times, start_s, side="left"))
        hi = int(np.searchsorted(self.times, end_s, side="left"))
        return self.times[lo:hi].astype(np.float64, copy=True)

    def expected_jobs(self, start_s, end_s):
        lo = int(np.searchsorted(self.times, start_s, side="left"))
        hi = int(np.searchsorted(self.times, end_s, side="left"))
        return float(hi - lo)

    def __repr__(self):
        return f"TraceReplayProcess(<{self.times.size} arrivals>)"


# ----------------------------------------------------------------------
# CLI spec parsing
# ----------------------------------------------------------------------

#: Registry of spec names accepted by :func:`make_process`.
ARRIVAL_PROCESSES = ("poisson", "diurnal", "mmpp", "flash", "replay")


def _parse_kwargs(text: str) -> Dict[str, float]:
    return parse_spec_kwargs(text, what="arrival")


def _take(kwargs: Dict[str, float], spec: str,
          **defaults: float) -> Tuple[float, ...]:
    return take_spec_options(kwargs, spec, what="arrival process",
                             **defaults)


def make_process(spec: str, rate_per_s: float,
                 horizon_s: float = 1.0) -> ArrivalProcess:
    """Build an arrival process from a CLI spec string.

    ``spec`` is ``name`` or ``name:key=value,...`` — e.g. ``poisson``,
    ``diurnal:amplitude=0.9,period=0.5``, ``mmpp:burst=6,duty=0.2``,
    ``flash:factor=10,at=0.4,width=0.05`` — or ``replay:PATH`` for a
    JSONL trace.  ``rate_per_s`` is the stream's base rate (the mean
    rate for shaped processes) and ``horizon_s`` the arrival horizon
    the shape defaults scale to (diurnal period = one horizon, flash
    at 25% of it, MMPP dwells at 1/8 of it).
    """
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    name, _, rest = spec.partition(":")
    name = name.strip().lower()
    if name == "replay":
        if not rest:
            raise SpecError("replay needs a path: replay:PATH")
        return TraceReplayProcess.from_jsonl(rest)
    kwargs = _parse_kwargs(rest)
    if name == "poisson":
        _take(kwargs, spec)
        return PoissonProcess(rate_per_s)
    if name == "diurnal":
        amplitude, period, phase = _take(
            kwargs, spec, amplitude=0.8, period=horizon_s, phase=0.0)
        return DiurnalProcess(rate_per_s, amplitude=amplitude,
                              period_s=period, phase_s=phase)
    if name == "mmpp":
        burst, duty, dwell = _take(
            kwargs, spec, burst=5.0, duty=0.2, dwell=horizon_s / 8.0)
        if not 0.0 < duty < 1.0:
            raise SpecError("mmpp duty must be in (0, 1)")
        if burst <= 1.0:
            raise SpecError("mmpp burst must be > 1")
        # Two states around the requested mean rate: a low state and a
        # ``burst``-times-hotter high state occupying ``duty`` of the
        # time, dwell-weighted so the long-run mean stays rate_per_s.
        low = rate_per_s / (1.0 - duty + duty * burst)
        high = low * burst
        return MMPPProcess((low, high),
                           (dwell * (1.0 - duty), dwell * duty))
    if name == "flash":
        factor, at, width = _take(
            kwargs, spec, factor=8.0, at=0.25 * horizon_s,
            width=0.1 * horizon_s)
        # Deflate the baseline so the horizon-integrated mean rate
        # stays rate_per_s despite the surge.
        surge_fraction = min(width, max(horizon_s - at, 0.0)) / horizon_s
        base = rate_per_s / (1.0 + (factor - 1.0) * surge_fraction)
        return FlashCrowdProcess(base, factor=factor, at_s=at,
                                 width_s=width)
    raise SpecError(f"unknown arrival process {name!r}; "
                     f"try: {', '.join(ARRIVAL_PROCESSES)}")


__all__ = [
    "ARRIVAL_PROCESSES", "ArrivalProcess", "DiurnalProcess",
    "FlashCrowdProcess", "MMPPProcess", "PoissonProcess",
    "RateCurveProcess", "SAMPLE_CHUNK", "TraceReplayProcess",
    "make_process",
]
