"""Elastic autoscaling for the serving simulator.

PR 8 built the involuntary half of pool elasticity: boards leave and
rejoin the pool when a fault process says so.  This module adds the
*voluntary* half — a pluggable :class:`ScalePolicy` that watches
windowed queue-depth / utilization / arrival-rate signals and drives
the same board-down/board-up transitions on purpose:

* **Scale-down drains.**  A board leaves the pool only when it comes
  up free — an in-flight gang always finishes (or is re-planned when
  its planned stripe no longer fits the shrunken pool, via
  :func:`repro.runtime.striped_lowering.largest_viable_stripe` +
  :meth:`repro.runtime.serving.JobClass.restriped`); work is never
  silently killed.  Parking a board evicts its HBM switching-key
  cache, exactly like a fault does.
* **Scale-up is cold.**  A returning board starts with an empty key
  cache, so its first batches repay the switching-key reload over
  PCIe through the existing
  :func:`repro.runtime.serving.key_load_seconds` cost model — elastic
  capacity is never free capacity.
* **Signals are boundary-exact.**  Decision windows are indexed with
  :func:`repro.obs.metrics.window_index` (the ulp-tolerant index the
  windowed-metrics bugfix introduced), so an arrival at exactly a
  control-window boundary feeds the decision for the window it opens.

Policies share the ``name:key=value,...`` spec grammar of
:mod:`repro.runtime.specs`:

* ``reactive:low=0.3,high=0.85,cooldown=0.05`` — threshold control on
  windowed utilization (scale up past ``high`` or when the backlog
  exceeds one job per board; scale down below ``low`` with an empty
  queue), ``step`` boards at a time, with a ``cooldown`` between
  target changes to prevent flapping.
* ``predictive:window=0.1,horizon=0.05,target=0.7`` — least-squares
  rate trend over the last ``window`` seconds of arrival windows,
  extrapolated ``horizon`` seconds ahead and converted to boards via
  the measured board-seconds-per-job, aiming at ``target``
  utilization.

:func:`run_with_autoscale` delegates to the unified membership loop
(:func:`repro.runtime.membership.run_with_ledger`) with fault
injection off; every fault construct there is gated on faults being
present, so the autoscale-only path executes exactly the PR 9
instruction stream (the golden bit-identity suite pins this) while
the fixed-pool ``autoscale=None`` path in ``ServingSimulator.run``
stays byte-for-byte the pre-autoscale code.  Reports grow
``resize_events`` / ``scale_ups`` / ``scale_downs`` and
``board_seconds`` — the capacity actually paid for, the denominator
of cost-per-goodput — and recorders see ``pool_resize`` instants plus
a provisioned-boards counter track.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..obs import Recorder
from .policies import PriceSignal
from .serving import Scenario, ServingReport
from .specs import SpecError, parse_spec_kwargs, take_spec_options

#: Registry of spec names accepted by :func:`make_scale_policy`.
SCALE_POLICIES = ("reactive", "predictive", "spare")

#: Floor for the empirical-availability divisor in
#: availability-aware sizing: a window measured fully down would
#: otherwise demand an unbounded fleet.
AVAILABILITY_FLOOR = 0.05


# ----------------------------------------------------------------------
# Signals
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScaleSignals:
    """What a :class:`ScalePolicy` sees at one control instant.

    Windowed quantities cover the control interval that just closed at
    ``t``; ``busy_board_s`` / ``provisioned_board_s`` are exact
    board-second integrals over that interval, so
    :attr:`utilization` is the true windowed busy fraction, not an
    instantaneous sample.
    """

    #: The control instant (a window boundary ``k * interval_s``).
    t: float
    #: Width of the control window that just closed.
    interval_s: float
    #: Jobs pending in the policy's queues at ``t``.
    queue_depth: int
    #: In-service boards at ``t`` (capacity currently paid for).
    provisioned: int
    #: Busy board-seconds integrated over the closed window.
    busy_board_s: float
    #: Provisioned board-seconds integrated over the closed window.
    provisioned_board_s: float
    #: Jobs that arrived during the closed window.
    arrivals: int
    #: ``arrivals / interval_s`` — the window's offered rate.
    arrival_rate: float
    #: Measured board-seconds per completed job so far (0 until the
    #: first dispatch) — the capacity oracle predictive sizing uses.
    service_s_per_job: float
    #: Boards not permanently failed (in service + parked spares), or
    #: ``None`` outside the unified ledger loop.  The hard ceiling a
    #: spare-pool policy sizes against.
    alive: Optional[int] = None
    #: In-service boards down for repair at ``t`` (discovered faults
    #: only — lazy-settlement semantics).  0 without fault injection.
    down_in_service: int = 0
    #: Serviceable fraction of the provisioned board-seconds over the
    #: closed window (1 - down board-s / provisioned board-s); 1.0
    #: without fault injection.  The empirical-availability signal
    #: availability-aware predictive sizing divides through.
    availability: float = 1.0

    @property
    def utilization(self) -> float:
        """Busy fraction of provisioned capacity over the window."""
        if self.provisioned_board_s <= 0:
            return 0.0
        return self.busy_board_s / self.provisioned_board_s


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------

class ScalePolicy:
    """Base scale policy: decides the provisioned-board target.

    :meth:`begin` resolves the pool bounds; :meth:`decide` is called
    once per elapsed control interval (``interval_s`` seconds of sim
    time) and returns the desired in-service board count.  The loop
    applies it elastically: scale-up returns parked boards
    immediately (cold), scale-down parks boards as they drain free.
    Subclasses implement :meth:`desired`; the base class owns the
    clamp and the anti-flapping cooldown.
    """

    name = "base"

    def __init__(self, interval_s: float = 0.01,
                 cooldown_s: float = 0.0,
                 min_boards: int = 1,
                 max_boards: Optional[int] = None):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if min_boards < 1:
            raise ValueError("min_boards must be >= 1 (an empty pool "
                             "could never serve the queue again)")
        if max_boards is not None and max_boards < min_boards:
            raise ValueError("max_boards must be >= min_boards")
        self.interval_s = float(interval_s)
        self.cooldown_s = float(cooldown_s)
        self.min_boards = int(min_boards)
        self.max_boards = max_boards
        self._target = 0
        self._last_change_s = -math.inf

    def begin(self, num_devices: int) -> None:
        """Resolve bounds against the actual pool; the run starts
        fully provisioned (scale-down is an observed decision, never
        an initial condition)."""
        if self.max_boards is None:
            self.max_boards = num_devices
        self.max_boards = min(self.max_boards, num_devices)
        self.min_boards = min(self.min_boards, self.max_boards)
        self._target = num_devices
        self._last_change_s = -math.inf

    def desired(self, signals: ScaleSignals) -> int:
        raise NotImplementedError

    def decide(self, signals: ScaleSignals) -> int:
        want = self.desired(signals)
        want = max(self.min_boards, min(want, self.max_boards))
        if want != self._target:
            # Boundary-exact, like window_index: an eval landing
            # exactly ``cooldown`` after the last change may change
            # again — ``t - last`` carries a couple ulps of float
            # error that a plain ``<`` would turn into an extra
            # window of hold.
            elapsed = signals.t - self._last_change_s
            if elapsed < self.cooldown_s - 256.0 * math.ulp(signals.t):
                return self._target
            self._target = want
            self._last_change_s = signals.t
        return self._target

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ReactiveScalePolicy(ScalePolicy):
    """Threshold control on windowed utilization and backlog.

    Scale up ``step`` boards when the window's utilization reached
    ``high`` — or the queue backed up past one job per provisioned
    board, the leading edge of a burst a utilization average lags —
    and down ``step`` when utilization fell to ``low`` with an empty
    queue.  The inherited ``cooldown`` spaces target changes.
    """

    name = "reactive"

    def __init__(self, low: float = 0.3, high: float = 0.85,
                 step: int = 1, **kwargs):
        super().__init__(**kwargs)
        if not 0.0 <= low < high:
            raise ValueError("need 0 <= low < high")
        if step < 1:
            raise ValueError("step must be >= 1")
        self.low = float(low)
        self.high = float(high)
        self.step = int(step)

    def desired(self, signals: ScaleSignals) -> int:
        if (signals.utilization >= self.high
                or signals.queue_depth > signals.provisioned):
            return self._target + self.step
        if signals.utilization <= self.low and signals.queue_depth == 0:
            return self._target - self.step
        return self._target

    def __repr__(self):
        return (f"ReactiveScalePolicy(low={self.low:g}, "
                f"high={self.high:g}, step={self.step}, "
                f"cooldown_s={self.cooldown_s:g}, "
                f"interval_s={self.interval_s:g})")


class PredictiveScalePolicy(ScalePolicy):
    """Rate-trend sizing: provision for where the arrival rate is
    *going*, not where it was.

    Keeps the per-window arrival rates of the last ``window_s``
    seconds, fits a least-squares linear trend, extrapolates
    ``horizon_s`` ahead, and converts the predicted rate to boards
    with the measured board-seconds-per-job at ``target_util``
    utilization headroom.  Until a first batch completes there is no
    capacity oracle, so the policy holds the current target.

    With ``availability_aware`` (spec option ``avail=1``) the sized
    board count is divided by the window's empirical availability
    (floored at :data:`AVAILABILITY_FLOOR` so a fully-down window
    cannot demand an unbounded fleet): capacity planning prices
    expected failures — 10 boards of work at 80% availability needs
    12.5 provisioned boards, not 10.
    """

    name = "predictive"

    def __init__(self, window_s: float = 0.1, horizon_s: float = 0.05,
                 target_util: float = 0.7,
                 availability_aware: bool = False, **kwargs):
        super().__init__(**kwargs)
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if horizon_s < 0:
            raise ValueError("horizon_s must be >= 0")
        if not 0.0 < target_util <= 1.0:
            raise ValueError("target_util must be in (0, 1]")
        self.window_s = float(window_s)
        self.horizon_s = float(horizon_s)
        self.target_util = float(target_util)
        self.availability_aware = bool(availability_aware)
        self._history: "deque[Tuple[float, float]]" = deque()

    def begin(self, num_devices: int) -> None:
        super().begin(num_devices)
        self._history.clear()

    def _predicted_rate(self, t: float) -> float:
        points = self._history
        if len(points) >= 2 and points[-1][0] > points[0][0]:
            mean_t = sum(p[0] for p in points) / len(points)
            mean_r = sum(p[1] for p in points) / len(points)
            denom = sum((p[0] - mean_t) ** 2 for p in points)
            slope = sum((p[0] - mean_t) * (p[1] - mean_r)
                        for p in points) / denom
            intercept = mean_r - slope * mean_t
            rate = intercept + slope * (t + self.horizon_s)
        else:
            rate = points[-1][1]
        return max(rate, 0.0)

    def desired(self, signals: ScaleSignals) -> int:
        self._history.append((signals.t, signals.arrival_rate))
        while (self._history
               and self._history[0][0] < signals.t - self.window_s):
            self._history.popleft()
        if signals.service_s_per_job <= 0:
            return self._target
        rate = self._predicted_rate(signals.t)
        boards = rate * signals.service_s_per_job / self.target_util
        if self.availability_aware:
            boards /= max(signals.availability, AVAILABILITY_FLOOR)
        return int(math.ceil(boards)) if boards > 0 else self.min_boards

    def __repr__(self):
        return (f"PredictiveScalePolicy(window_s={self.window_s:g}, "
                f"horizon_s={self.horizon_s:g}, "
                f"target_util={self.target_util:g}, "
                f"availability_aware={self.availability_aware}, "
                f"cooldown_s={self.cooldown_s:g}, "
                f"interval_s={self.interval_s:g})")


class ScheduleScalePolicy(ScalePolicy):
    """Scripted targets: explicit ``(t_s, boards)`` steps.

    The deterministic chaos-test input for the autoscale loop (the
    analogue of :class:`repro.runtime.faults.TraceFaultProcess`):
    tests can force a scale-down mid-batch or a precise resize
    sequence without depending on a feedback policy's dynamics.
    """

    name = "schedule"

    def __init__(self, steps: Sequence[Tuple[float, int]], **kwargs):
        super().__init__(**kwargs)
        self.steps = sorted((float(t), int(boards))
                            for t, boards in steps)

    def desired(self, signals: ScaleSignals) -> int:
        want = self._target
        for t, boards in self.steps:
            if t <= signals.t:
                want = boards
            else:
                break
        return want

    def __repr__(self):
        return f"ScheduleScalePolicy({self.steps!r})"


class SpareScalePolicy(ScalePolicy):
    """Warm-standby sizing: keep ``n`` boards parked as spares that
    absorb failures before gangs re-stripe.

    The successor to PR 8's fixed-size degraded re-planning: instead
    of shrinking stripes the moment a board dies, the fleet holds
    ``n`` spares out of service (zero provisioned board-seconds) and
    returns one for every in-service board found down or dead — gangs
    keep their planned width until the spare pool is exhausted, and
    only then does degraded re-planning kick in.

    Standalone, the serving base is ``num_devices - n`` boards (the
    capacity a spares-provisioned fleet actually sells).  Composed
    around an inner policy (spec ``inner+spare:n=``, e.g.
    ``predictive:target=0.7+spare:n=1``), the inner policy sizes the
    base elastically — its own cooldown and bounds intact — and the
    spare layer adds one board per discovered in-service outage,
    capped at the surviving pool (``signals.alive``).
    """

    name = "spare"

    def __init__(self, n: int = 1, inner: Optional[ScalePolicy] = None,
                 **kwargs):
        if n < 0:
            raise ValueError("n must be >= 0")
        if inner is not None and "interval_s" not in kwargs:
            kwargs["interval_s"] = inner.interval_s
        super().__init__(**kwargs)
        self.spares = int(n)
        self.inner = inner
        self._base = 0

    def begin(self, num_devices: int) -> None:
        super().begin(num_devices)
        if self.inner is not None:
            self.inner.begin(num_devices)
        self._base = max(self.min_boards, num_devices - self.spares)

    def desired(self, signals: ScaleSignals) -> int:
        base = (self.inner.decide(signals)
                if self.inner is not None else self._base)
        want = base + signals.down_in_service
        if signals.alive is not None:
            want = min(want, signals.alive)
        return want

    def __repr__(self):
        return (f"SpareScalePolicy(n={self.spares}, "
                f"inner={self.inner!r}, "
                f"interval_s={self.interval_s:g})")


def make_scale_policy(spec) -> ScalePolicy:
    """Build a scale policy from a CLI spec string (or pass an
    instance through).

    ``reactive:low=0.3,high=0.85,step=1,cooldown=0.05`` ·
    ``predictive:window=0.1,horizon=0.05,target=0.7,cooldown=0.05``
    (add ``avail=1`` for availability-aware sizing) ·
    ``spare:n=1`` (hold ``n`` warm standbys).
    All accept ``interval=`` (control-window seconds), ``min=`` and
    ``max=`` (board bounds; ``max`` defaults to the pool size).
    Compose a spare layer around an elastic base with ``+``:
    ``predictive:target=0.7+spare:n=1``.
    """
    if isinstance(spec, ScalePolicy):
        return spec
    if "+" in spec:
        base_spec, _, spare_spec = spec.rpartition("+")
        spare_name, _, spare_rest = spare_spec.partition(":")
        if spare_name.strip().lower() != "spare":
            raise SpecError(
                f"composed scale spec {spec!r} must end in "
                f"spare:n=... (got {spare_name.strip()!r})")
        inner = make_scale_policy(base_spec)
        kwargs = parse_spec_kwargs(spare_rest, what="autoscale")
        n, cooldown = take_spec_options(
            kwargs, spec, what="scale policy", n=1, cooldown=0.0)
        return SpareScalePolicy(n=int(n), inner=inner,
                                cooldown_s=cooldown)
    name, _, rest = spec.partition(":")
    name = name.strip().lower()
    kwargs = parse_spec_kwargs(rest, what="autoscale")
    if name == "reactive":
        (low, high, step, cooldown, interval, min_boards,
         max_boards) = take_spec_options(
            kwargs, spec, what="scale policy", low=0.3, high=0.85,
            step=1, cooldown=0.0, interval=0.01, min=1, max=math.nan)
        return ReactiveScalePolicy(
            low=low, high=high, step=int(step), cooldown_s=cooldown,
            interval_s=interval, min_boards=int(min_boards),
            max_boards=(None if math.isnan(max_boards)
                        else int(max_boards)))
    if name == "predictive":
        (window, horizon, target, avail, cooldown, interval,
         min_boards, max_boards) = take_spec_options(
            kwargs, spec, what="scale policy", window=0.1,
            horizon=0.05, target=0.7, avail=0, cooldown=0.0,
            interval=0.01, min=1, max=math.nan)
        return PredictiveScalePolicy(
            window_s=window, horizon_s=horizon, target_util=target,
            availability_aware=bool(avail),
            cooldown_s=cooldown, interval_s=interval,
            min_boards=int(min_boards),
            max_boards=(None if math.isnan(max_boards)
                        else int(max_boards)))
    if name == "spare":
        (n, cooldown, interval, min_boards,
         max_boards) = take_spec_options(
            kwargs, spec, what="scale policy", n=1, cooldown=0.0,
            interval=0.01, min=1, max=math.nan)
        return SpareScalePolicy(
            n=int(n), cooldown_s=cooldown, interval_s=interval,
            min_boards=int(min_boards),
            max_boards=(None if math.isnan(max_boards)
                        else int(max_boards)))
    raise SpecError(f"unknown scale policy {name!r}; "
                    f"try: {', '.join(SCALE_POLICIES)}")


# ----------------------------------------------------------------------
# The autoscaling event loop
# ----------------------------------------------------------------------

def run_with_autoscale(sim, scenario: Scenario, seed: int = 0,
                       policy="fifo",
                       price: Optional[PriceSignal] = None,
                       recorder: Optional[Recorder] = None,
                       autoscale=None) -> ServingReport:
    """The DES loop of :meth:`ServingSimulator.run`, with elastic
    capacity.

    Since the membership unification this is a thin delegate onto
    :func:`repro.runtime.membership.run_with_ledger` with
    ``faults=None``: the unified loop gates every fault construct on
    fault injection being present, so the autoscale-only instruction
    stream — per-control-window signal accumulation, boundary-exact
    policy evaluation, drain-style parking, cold un-parking, degraded
    re-planning — is exactly the PR 9 loop (the golden bit-identity
    suite pins the reports).
    """
    if autoscale is None:
        raise ValueError("run_with_autoscale needs a scale policy")
    from .membership import run_with_ledger
    return run_with_ledger(sim, scenario, seed=seed, policy=policy,
                           price=price, recorder=recorder,
                           autoscale=autoscale)


__all__ = [
    "AVAILABILITY_FLOOR", "SCALE_POLICIES", "PredictiveScalePolicy",
    "ReactiveScalePolicy", "ScaleSignals", "ScalePolicy",
    "ScheduleScalePolicy", "SpareScalePolicy", "make_scale_policy",
    "run_with_autoscale",
]
