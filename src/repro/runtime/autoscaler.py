"""Elastic autoscaling for the serving simulator.

PR 8 built the involuntary half of pool elasticity: boards leave and
rejoin the pool when a fault process says so.  This module adds the
*voluntary* half — a pluggable :class:`ScalePolicy` that watches
windowed queue-depth / utilization / arrival-rate signals and drives
the same board-down/board-up transitions on purpose:

* **Scale-down drains.**  A board leaves the pool only when it comes
  up free — an in-flight gang always finishes (or is re-planned when
  its planned stripe no longer fits the shrunken pool, via
  :func:`repro.runtime.striped_lowering.largest_viable_stripe` +
  :meth:`repro.runtime.serving.JobClass.restriped`); work is never
  silently killed.  Parking a board evicts its HBM switching-key
  cache, exactly like a fault does.
* **Scale-up is cold.**  A returning board starts with an empty key
  cache, so its first batches repay the switching-key reload over
  PCIe through the existing
  :func:`repro.runtime.serving.key_load_seconds` cost model — elastic
  capacity is never free capacity.
* **Signals are boundary-exact.**  Decision windows are indexed with
  :func:`repro.obs.metrics.window_index` (the ulp-tolerant index the
  windowed-metrics bugfix introduced), so an arrival at exactly a
  control-window boundary feeds the decision for the window it opens.

Policies share the ``name:key=value,...`` spec grammar of
:mod:`repro.runtime.specs`:

* ``reactive:low=0.3,high=0.85,cooldown=0.05`` — threshold control on
  windowed utilization (scale up past ``high`` or when the backlog
  exceeds one job per board; scale down below ``low`` with an empty
  queue), ``step`` boards at a time, with a ``cooldown`` between
  target changes to prevent flapping.
* ``predictive:window=0.1,horizon=0.05,target=0.7`` — least-squares
  rate trend over the last ``window`` seconds of arrival windows,
  extrapolated ``horizon`` seconds ahead and converted to boards via
  the measured board-seconds-per-job, aiming at ``target``
  utilization.

:func:`run_with_autoscale` is a fork of the exact fault-free DES loop
in :meth:`repro.runtime.serving.ServingSimulator.run` — kept separate,
like :func:`repro.runtime.faults.run_with_faults`, so the
``autoscale=None`` path stays byte-for-byte the pre-autoscale code
(the golden bit-identity suite pins this).  Reports grow
``resize_events`` / ``scale_ups`` / ``scale_downs`` and
``board_seconds`` — the capacity actually paid for, the denominator
of cost-per-goodput — and recorders see ``pool_resize`` instants plus
a provisioned-boards counter track.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs import NULL_RECORDER, Recorder
from ..obs.metrics import window_index
from .policies import DispatchView, PolicyContext, PriceSignal, make_policy
from .serving import (DeviceState, Job, JobClass, KeyCache, Scenario,
                      ServingReport)
from .specs import SpecError, parse_spec_kwargs, take_spec_options
from .striped_lowering import largest_viable_stripe

#: Registry of spec names accepted by :func:`make_scale_policy`.
SCALE_POLICIES = ("reactive", "predictive")


# ----------------------------------------------------------------------
# Signals
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScaleSignals:
    """What a :class:`ScalePolicy` sees at one control instant.

    Windowed quantities cover the control interval that just closed at
    ``t``; ``busy_board_s`` / ``provisioned_board_s`` are exact
    board-second integrals over that interval, so
    :attr:`utilization` is the true windowed busy fraction, not an
    instantaneous sample.
    """

    #: The control instant (a window boundary ``k * interval_s``).
    t: float
    #: Width of the control window that just closed.
    interval_s: float
    #: Jobs pending in the policy's queues at ``t``.
    queue_depth: int
    #: In-service boards at ``t`` (capacity currently paid for).
    provisioned: int
    #: Busy board-seconds integrated over the closed window.
    busy_board_s: float
    #: Provisioned board-seconds integrated over the closed window.
    provisioned_board_s: float
    #: Jobs that arrived during the closed window.
    arrivals: int
    #: ``arrivals / interval_s`` — the window's offered rate.
    arrival_rate: float
    #: Measured board-seconds per completed job so far (0 until the
    #: first dispatch) — the capacity oracle predictive sizing uses.
    service_s_per_job: float

    @property
    def utilization(self) -> float:
        """Busy fraction of provisioned capacity over the window."""
        if self.provisioned_board_s <= 0:
            return 0.0
        return self.busy_board_s / self.provisioned_board_s


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------

class ScalePolicy:
    """Base scale policy: decides the provisioned-board target.

    :meth:`begin` resolves the pool bounds; :meth:`decide` is called
    once per elapsed control interval (``interval_s`` seconds of sim
    time) and returns the desired in-service board count.  The loop
    applies it elastically: scale-up returns parked boards
    immediately (cold), scale-down parks boards as they drain free.
    Subclasses implement :meth:`desired`; the base class owns the
    clamp and the anti-flapping cooldown.
    """

    name = "base"

    def __init__(self, interval_s: float = 0.01,
                 cooldown_s: float = 0.0,
                 min_boards: int = 1,
                 max_boards: Optional[int] = None):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if min_boards < 1:
            raise ValueError("min_boards must be >= 1 (an empty pool "
                             "could never serve the queue again)")
        if max_boards is not None and max_boards < min_boards:
            raise ValueError("max_boards must be >= min_boards")
        self.interval_s = float(interval_s)
        self.cooldown_s = float(cooldown_s)
        self.min_boards = int(min_boards)
        self.max_boards = max_boards
        self._target = 0
        self._last_change_s = -math.inf

    def begin(self, num_devices: int) -> None:
        """Resolve bounds against the actual pool; the run starts
        fully provisioned (scale-down is an observed decision, never
        an initial condition)."""
        if self.max_boards is None:
            self.max_boards = num_devices
        self.max_boards = min(self.max_boards, num_devices)
        self.min_boards = min(self.min_boards, self.max_boards)
        self._target = num_devices
        self._last_change_s = -math.inf

    def desired(self, signals: ScaleSignals) -> int:
        raise NotImplementedError

    def decide(self, signals: ScaleSignals) -> int:
        want = self.desired(signals)
        want = max(self.min_boards, min(want, self.max_boards))
        if want != self._target:
            # Boundary-exact, like window_index: an eval landing
            # exactly ``cooldown`` after the last change may change
            # again — ``t - last`` carries a couple ulps of float
            # error that a plain ``<`` would turn into an extra
            # window of hold.
            elapsed = signals.t - self._last_change_s
            if elapsed < self.cooldown_s - 256.0 * math.ulp(signals.t):
                return self._target
            self._target = want
            self._last_change_s = signals.t
        return self._target

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ReactiveScalePolicy(ScalePolicy):
    """Threshold control on windowed utilization and backlog.

    Scale up ``step`` boards when the window's utilization reached
    ``high`` — or the queue backed up past one job per provisioned
    board, the leading edge of a burst a utilization average lags —
    and down ``step`` when utilization fell to ``low`` with an empty
    queue.  The inherited ``cooldown`` spaces target changes.
    """

    name = "reactive"

    def __init__(self, low: float = 0.3, high: float = 0.85,
                 step: int = 1, **kwargs):
        super().__init__(**kwargs)
        if not 0.0 <= low < high:
            raise ValueError("need 0 <= low < high")
        if step < 1:
            raise ValueError("step must be >= 1")
        self.low = float(low)
        self.high = float(high)
        self.step = int(step)

    def desired(self, signals: ScaleSignals) -> int:
        if (signals.utilization >= self.high
                or signals.queue_depth > signals.provisioned):
            return self._target + self.step
        if signals.utilization <= self.low and signals.queue_depth == 0:
            return self._target - self.step
        return self._target

    def __repr__(self):
        return (f"ReactiveScalePolicy(low={self.low:g}, "
                f"high={self.high:g}, step={self.step}, "
                f"cooldown_s={self.cooldown_s:g}, "
                f"interval_s={self.interval_s:g})")


class PredictiveScalePolicy(ScalePolicy):
    """Rate-trend sizing: provision for where the arrival rate is
    *going*, not where it was.

    Keeps the per-window arrival rates of the last ``window_s``
    seconds, fits a least-squares linear trend, extrapolates
    ``horizon_s`` ahead, and converts the predicted rate to boards
    with the measured board-seconds-per-job at ``target_util``
    utilization headroom.  Until a first batch completes there is no
    capacity oracle, so the policy holds the current target.
    """

    name = "predictive"

    def __init__(self, window_s: float = 0.1, horizon_s: float = 0.05,
                 target_util: float = 0.7, **kwargs):
        super().__init__(**kwargs)
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        if horizon_s < 0:
            raise ValueError("horizon_s must be >= 0")
        if not 0.0 < target_util <= 1.0:
            raise ValueError("target_util must be in (0, 1]")
        self.window_s = float(window_s)
        self.horizon_s = float(horizon_s)
        self.target_util = float(target_util)
        self._history: "deque[Tuple[float, float]]" = deque()

    def begin(self, num_devices: int) -> None:
        super().begin(num_devices)
        self._history.clear()

    def _predicted_rate(self, t: float) -> float:
        points = self._history
        if len(points) >= 2 and points[-1][0] > points[0][0]:
            mean_t = sum(p[0] for p in points) / len(points)
            mean_r = sum(p[1] for p in points) / len(points)
            denom = sum((p[0] - mean_t) ** 2 for p in points)
            slope = sum((p[0] - mean_t) * (p[1] - mean_r)
                        for p in points) / denom
            intercept = mean_r - slope * mean_t
            rate = intercept + slope * (t + self.horizon_s)
        else:
            rate = points[-1][1]
        return max(rate, 0.0)

    def desired(self, signals: ScaleSignals) -> int:
        self._history.append((signals.t, signals.arrival_rate))
        while (self._history
               and self._history[0][0] < signals.t - self.window_s):
            self._history.popleft()
        if signals.service_s_per_job <= 0:
            return self._target
        rate = self._predicted_rate(signals.t)
        boards = rate * signals.service_s_per_job / self.target_util
        return int(math.ceil(boards)) if boards > 0 else self.min_boards

    def __repr__(self):
        return (f"PredictiveScalePolicy(window_s={self.window_s:g}, "
                f"horizon_s={self.horizon_s:g}, "
                f"target_util={self.target_util:g}, "
                f"cooldown_s={self.cooldown_s:g}, "
                f"interval_s={self.interval_s:g})")


class ScheduleScalePolicy(ScalePolicy):
    """Scripted targets: explicit ``(t_s, boards)`` steps.

    The deterministic chaos-test input for the autoscale loop (the
    analogue of :class:`repro.runtime.faults.TraceFaultProcess`):
    tests can force a scale-down mid-batch or a precise resize
    sequence without depending on a feedback policy's dynamics.
    """

    name = "schedule"

    def __init__(self, steps: Sequence[Tuple[float, int]], **kwargs):
        super().__init__(**kwargs)
        self.steps = sorted((float(t), int(boards))
                            for t, boards in steps)

    def desired(self, signals: ScaleSignals) -> int:
        want = self._target
        for t, boards in self.steps:
            if t <= signals.t:
                want = boards
            else:
                break
        return want

    def __repr__(self):
        return f"ScheduleScalePolicy({self.steps!r})"


def make_scale_policy(spec) -> ScalePolicy:
    """Build a scale policy from a CLI spec string (or pass an
    instance through).

    ``reactive:low=0.3,high=0.85,step=1,cooldown=0.05`` ·
    ``predictive:window=0.1,horizon=0.05,target=0.7,cooldown=0.05``.
    Both accept ``interval=`` (control-window seconds), ``min=`` and
    ``max=`` (board bounds; ``max`` defaults to the pool size).
    """
    if isinstance(spec, ScalePolicy):
        return spec
    name, _, rest = spec.partition(":")
    name = name.strip().lower()
    kwargs = parse_spec_kwargs(rest, what="autoscale")
    if name == "reactive":
        (low, high, step, cooldown, interval, min_boards,
         max_boards) = take_spec_options(
            kwargs, spec, what="scale policy", low=0.3, high=0.85,
            step=1, cooldown=0.0, interval=0.01, min=1, max=math.nan)
        return ReactiveScalePolicy(
            low=low, high=high, step=int(step), cooldown_s=cooldown,
            interval_s=interval, min_boards=int(min_boards),
            max_boards=(None if math.isnan(max_boards)
                        else int(max_boards)))
    if name == "predictive":
        (window, horizon, target, cooldown, interval, min_boards,
         max_boards) = take_spec_options(
            kwargs, spec, what="scale policy", window=0.1,
            horizon=0.05, target=0.7, cooldown=0.0, interval=0.01,
            min=1, max=math.nan)
        return PredictiveScalePolicy(
            window_s=window, horizon_s=horizon, target_util=target,
            cooldown_s=cooldown, interval_s=interval,
            min_boards=int(min_boards),
            max_boards=(None if math.isnan(max_boards)
                        else int(max_boards)))
    raise SpecError(f"unknown scale policy {name!r}; "
                    f"try: {', '.join(SCALE_POLICIES)}")


# ----------------------------------------------------------------------
# The autoscaling event loop
# ----------------------------------------------------------------------

def run_with_autoscale(sim, scenario: Scenario, seed: int = 0,
                       policy="fifo",
                       price: Optional[PriceSignal] = None,
                       recorder: Optional[Recorder] = None,
                       autoscale=None) -> ServingReport:
    """The DES loop of :meth:`ServingSimulator.run`, with elastic
    capacity.

    A fork of the exact fault-free loop (kept separate so that loop
    stays bit-identical), extended with: per-control-window signal
    accumulation (arrivals binned boundary-exactly, busy and
    provisioned board-seconds integrated exactly), policy evaluation
    at every elapsed window boundary, drain-style parking of boards a
    lowered target no longer wants (cache evicted, gangs always
    finish), cold un-parking on scale-up, and degraded re-planning of
    striped gangs wider than the in-service pool.
    """
    if autoscale is None:
        raise ValueError("run_with_autoscale needs a scale policy")
    scale = make_scale_policy(autoscale)
    rec = (recorder if recorder is not None and recorder.enabled
           else None)
    jobs = scenario.generate(seed)
    policy = make_policy(policy)
    price = price if price is not None else PriceSignal.flat()
    devices = [DeviceState(i, KeyCache(sim.key_cache_bytes))
               for i in range(sim.num_devices)]
    free_heap: List[Tuple[float, int]] = [
        (0.0, d.index) for d in devices]
    heapq.heapify(free_heap)
    completed: List[Job] = []
    rejected: List[Job] = []
    shed: List[Job] = []
    restripe_cache: Dict[Tuple[JobClass, int], Optional[JobClass]] = {}
    batches = 0
    batched_jobs = 0
    cost_price_units = 0.0
    i = 0
    n = len(jobs)
    launch_overhead_s = sim.host.kernel_launch_overhead_s
    now = 0.0
    device_index = 0

    # -- elasticity state ----------------------------------------------
    scale.begin(sim.num_devices)
    interval = scale.interval_s
    in_service = [True] * sim.num_devices
    in_service_count = sim.num_devices
    parked: List[int] = []        # LIFO: most recently parked first
    target = in_service_count
    eval_count = 0                # control windows already closed
    resize_events = 0
    scale_ups = 0
    scale_downs = 0
    # signal accumulators
    arrival_bins: Dict[int, int] = {}
    busy_deltas: List[Tuple[float, int, int]] = []   # (t, seq, +/-k)
    busy_seq = 0
    busy_level = 0
    busy_last_t = 0.0
    busy_area = 0.0               # busy board-s since the last eval
    prov_last_t = 0.0
    prov_area = 0.0               # provisioned board-s since last eval
    board_seconds = 0.0           # total provisioned board-s (paid)
    busy_total_s = 0.0            # dispatched board-s (capacity oracle)
    jobs_dispatched = 0

    def advance_busy(t: float) -> None:
        nonlocal busy_level, busy_last_t, busy_area
        while busy_deltas and busy_deltas[0][0] <= t:
            event_t, _, delta = heapq.heappop(busy_deltas)
            if event_t > busy_last_t:
                busy_area += busy_level * (event_t - busy_last_t)
                busy_last_t = event_t
            busy_level += delta
        if t > busy_last_t:
            busy_area += busy_level * (t - busy_last_t)
            busy_last_t = t

    def flush_provisioned(t: float) -> None:
        nonlocal prov_last_t, prov_area, board_seconds
        if t > prov_last_t:
            span = (t - prov_last_t) * in_service_count
            prov_area += span
            board_seconds += span
            prov_last_t = t

    def catch_up(t: float) -> None:
        """Close every control window whose boundary has passed.

        Called *before* the events at ``t`` are admitted: the
        boundary ``k * interval <= t`` lies in this event's past, so
        the decision there must see the queue as it stood at the
        boundary — admitting first would leak the event into its own
        control window and pin ``queue_depth >= 1`` at every eval
        that an arrival wakes (which is all of them in a trough).
        """
        nonlocal eval_count
        while (eval_count + 1) * interval <= t:
            eval_count += 1
            admit(eval_count * interval)
            evaluate(eval_count * interval, eval_count - 1)

    def evaluate(t_eval: float, window: int) -> None:
        nonlocal target, busy_area, prov_area
        advance_busy(t_eval)
        flush_provisioned(t_eval)
        arrivals = arrival_bins.pop(window, 0)
        signals = ScaleSignals(
            t=t_eval, interval_s=interval,
            queue_depth=policy.pending,
            provisioned=in_service_count,
            busy_board_s=busy_area,
            provisioned_board_s=prov_area,
            arrivals=arrivals,
            arrival_rate=arrivals / interval,
            service_s_per_job=(busy_total_s / jobs_dispatched
                               if jobs_dispatched else 0.0))
        busy_area = 0.0
        prov_area = 0.0
        target = max(1, min(scale.decide(signals), sim.num_devices))

    def reject_job(job: Job) -> None:
        rejected.append(job)
        if rec is not None:
            deadline = job.effective_deadline_s
            rec.job_rejected(
                t=now, job_id=job.job_id,
                job_class=job.job_class.name, tenant=job.tenant,
                deadline_s=(None if deadline == math.inf
                            else deadline))

    policy.begin(PolicyContext(
        max_batch=sim.max_batch, price=price,
        service_bound_s=sim.service_bound_s,
        best_case_s=sim.best_case_service_s,
        reject=reject_job,
        recorder=recorder if rec is not None else NULL_RECORDER))
    if rec is not None:
        rec.run_begin(scenario=scenario.name,
                      num_devices=sim.num_devices,
                      policy=policy.name, price=price,
                      max_batch=sim.max_batch)

    def admit(now: float) -> None:
        nonlocal i
        while i < n and jobs[i].arrival_s <= now:
            job = jobs[i]
            policy.enqueue(job)
            bin_index = window_index(job.arrival_s, interval)
            arrival_bins[bin_index] = arrival_bins.get(bin_index, 0) + 1
            if rec is not None:
                deadline = job.effective_deadline_s
                rec.job_arrival(
                    t=job.arrival_s, job_id=job.job_id,
                    job_class=job.job_class.name, tenant=job.tenant,
                    deadline_s=(None if deadline == math.inf
                                else deadline),
                    deferrable=job.deferrable)
            i += 1

    def shed_job(job: Job, reason: str, t: float) -> None:
        job.shed = True
        job.shed_reason = reason
        shed.append(job)
        if rec is not None:
            rec.policy_event(t=t, name=f"shed:{reason}",
                             job_id=job.job_id,
                             job_class=job.job_class.name,
                             tenant=job.tenant)

    def gang_start(k: int) -> float:
        if k <= 1:
            return now
        extra = heapq.nsmallest(k - 1, free_heap)
        free = max((devices[index].free_at_s for _, index in extra),
                   default=now)
        return max(now, free)

    def service_s(job: Job, batch_size: int) -> float:
        job_class = job.job_class
        members = [devices[device_index]]
        if job_class.num_fpgas > 1:
            members += [
                devices[index] for _, index in heapq.nsmallest(
                    job_class.num_fpgas - 1, free_heap)]
        load_s = max(
            sim._key_load_seconds(
                member.cache.peek_miss_bytes(job.tenant, job_class))
            for member in members)
        return (launch_overhead_s + load_s
                + batch_size * job_class.seconds(sim.config))

    view = DispatchView(now=0.0, gang_start=gang_start,
                        service_s=service_s)

    while i < n or policy.pending:
        free_at, device_index = heapq.heappop(free_heap)
        now = free_at
        # Catch the control loop up to ``now`` *before* admitting the
        # events at ``now``: one decision per elapsed window, each fed
        # exactly that window's signals.
        catch_up(now)
        admit(now)
        if not policy.pending:
            # Idle until the next arrival.
            now = max(now, jobs[i].arrival_s)
            catch_up(now)
            admit(now)
        # Scale-up applies immediately: parked boards rejoin cold
        # (their key caches were evicted when they parked).
        while parked and in_service_count < target:
            board = parked.pop()
            flush_provisioned(now)
            in_service[board] = True
            in_service_count += 1
            resize_events += 1
            scale_ups += 1
            heapq.heappush(free_heap, (now, board))
            if rec is not None:
                rec.pool_resize(t=now, board=board, direction="up",
                                provisioned=in_service_count)
        # Scale-down drains: this board just came up free, so parking
        # it never interrupts work.  Its gang (if any) already
        # finished; queued work re-plans below if the stripe no
        # longer fits.
        if in_service_count > target:
            flush_provisioned(now)
            in_service[device_index] = False
            in_service_count -= 1
            parked.append(device_index)
            devices[device_index].cache.drop_all()
            resize_events += 1
            scale_downs += 1
            if rec is not None:
                rec.pool_resize(t=now, board=device_index,
                                direction="down",
                                provisioned=in_service_count)
            continue

        view.now = now
        if rec is not None:
            rec.queue_sample(t=now, total=policy.pending,
                             depths=policy.queue_depths())
        batch = policy.next_batch(view)
        if not batch:
            if policy.pending:
                wake = policy.next_event_s(now)
                if i < n:
                    wake = min(wake, jobs[i].arrival_s)
                # Never sleep through a control boundary: a deferred
                # board must still wake to apply a pending resize.
                wake = min(wake, (eval_count + 1) * interval)
                if wake <= now:
                    wake = math.nextafter(now, math.inf)
                if rec is not None:
                    rec.defer(board=device_index, t=now, wake=wake)
                heapq.heappush(free_heap, (wake, device_index))
            else:
                heapq.heappush(free_heap, (now, device_index))
            continue
        job_class = batch[0].job_class

        if job_class.num_fpgas > in_service_count:
            # The in-service pool cannot seat this gang.  Capacity was
            # removed on purpose (and may not return), so re-plan onto
            # the widest stripe that fits now — or shed when none does
            # / the trace is unavailable.
            k = largest_viable_stripe(in_service_count,
                                      job_class.num_fpgas)
            key = (job_class, k)
            if key not in restripe_cache:
                restripe_cache[key] = (
                    job_class.restriped(k, sim.config) if k >= 1
                    else None)
            new_class = restripe_cache[key]
            if new_class is None:
                for job in batch:
                    shed_job(job, "degraded", now)
            else:
                if rec is not None:
                    rec.policy_event(
                        t=now, name="degrade",
                        job_class=job_class.name,
                        from_stripe=job_class.num_fpgas, to_stripe=k,
                        jobs=len(batch))
                for job in batch:
                    job.job_class = new_class
                    job.degraded = True
                    policy.enqueue(job)
            heapq.heappush(free_heap, (now, device_index))
            continue

        gang = [devices[device_index]]
        start = now
        if job_class.num_fpgas > 1:
            # Parked boards are not in the heap, so a gang only ever
            # assembles from in-service boards; the stripe check
            # above guarantees enough of them exist.
            for _ in range(job_class.num_fpgas - 1):
                _, extra_index = heapq.heappop(free_heap)
                member = devices[extra_index]
                gang.append(member)
                if member.free_at_s > start:
                    start = member.free_at_s
        load_s = 0.0
        member_loads = [] if rec is not None else None
        for member in gang:
            miss_bytes = member.cache.request(batch[0].tenant,
                                              job_class)
            member_load_s = sim._key_load_seconds(miss_bytes)
            member.key_load_s += member_load_s
            if member_loads is not None:
                member_loads.append(
                    (member.index, member_load_s, miss_bytes))
            if member_load_s > load_s:
                load_s = member_load_s
        compute_s = len(batch) * job_class.seconds(sim.config)
        batch_service_s = launch_overhead_s + load_s + compute_s
        finish = start + batch_service_s
        for job in batch:
            job.finish_s = finish
        completed.extend(batch)
        for member in gang:
            member.free_at_s = finish
            member.busy_s += batch_service_s
            heapq.heappush(free_heap, (finish, member.index))
        gang[0].jobs_done += len(batch)
        batches += 1
        batched_jobs += len(batch)
        busy_seq += 1
        heapq.heappush(busy_deltas, (start, busy_seq, len(gang)))
        busy_seq += 1
        heapq.heappush(busy_deltas, (finish, busy_seq, -len(gang)))
        busy_total_s += batch_service_s * len(gang)
        jobs_dispatched += len(batch)
        batch_cost = len(gang) * price.integral(start, finish)
        cost_price_units += batch_cost
        if rec is not None:
            slo_met = slo_total = 0
            for job in batch:
                deadline = job.effective_deadline_s
                if deadline != math.inf:
                    slo_total += 1
                    if finish <= deadline:
                        slo_met += 1
            rec.batch(
                start=start, finish=finish,
                job_class=job_class.name, tenant=batch[0].tenant,
                batch_size=len(batch), launch_s=launch_overhead_s,
                members=member_loads,
                cache_stats=tuple(m.cache.stats() for m in gang),
                slo_met=slo_met, slo_total=slo_total,
                cost=batch_cost)

    makespan = max((j.finish_s or 0.0 for j in completed), default=0.0)
    # Close the capacity integral at the end of the run: in-service
    # boards are paid for until the last completion (or the last
    # control event, whichever came later).
    flush_provisioned(max(makespan, prov_last_t))
    if rec is not None:
        rec.run_end(
            makespan_s=makespan,
            device_busy_s=tuple(d.busy_s for d in devices),
            jobs_done=len(completed))
    return sim._report(scenario, completed, devices, batches,
                       batched_jobs, policy=policy.name,
                       rejected=rejected,
                       deferred_jobs=policy.deferred_jobs,
                       cost_price_units=cost_price_units,
                       shed=shed,
                       resize_events=resize_events,
                       scale_ups=scale_ups, scale_downs=scale_downs,
                       board_seconds=board_seconds)


__all__ = [
    "SCALE_POLICIES", "PredictiveScalePolicy", "ReactiveScalePolicy",
    "ScaleSignals", "ScalePolicy", "ScheduleScalePolicy",
    "make_scale_policy", "run_with_autoscale",
]
