"""Trace capture: run any app once, get an :class:`OpTrace` out.

:class:`TracingEvaluator` is a drop-in :class:`repro.fhe.Evaluator`
that performs every operation normally (results are bit-identical) and
records it into an :class:`repro.runtime.optrace.OpTrace`.  The
:func:`capture` context manager swaps a scheme's evaluator and encoder
for tracing versions, so existing applications in :mod:`repro.apps`
are captured by simply constructing them inside the block::

    with capture(scheme, "lr-iteration") as trace:
        trainer = EncryptedLrTrainer(scheme)
        trainer.iteration(state, batch)
    program = lower_trace(trace)          # -> FabProgram task graph

Conventions mirroring the FAB cost model:

* The first rotation of a hoisted batch is recorded as a full
  ``rotate`` (it carries the shared ModUp), the rest as
  ``rotate_hoisted`` — the same accounting the hand-built
  linear-transform model uses.
* Level drops (``mod_down``) are recorded for fidelity but lower to
  nothing: on FAB, dropping limbs is bookkeeping, not compute.
* KeySwitcher and CkksEncoder entry points are counted in the trace
  metadata (``keyswitch_calls``, ``hoisted_keyswitch_calls``,
  ``hoisted_decompose_calls``, ``encodes``, ``decodes``), which the
  tests use to cross-check the recorded op mix.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence

from ..fhe.ciphertext import Ciphertext
from ..fhe.encoder import CkksEncoder, Plaintext
from ..fhe.evaluator import Evaluator
from ..fhe.keyswitch import KeySwitcher
from .optrace import OpTrace


class CountingKeySwitcher(KeySwitcher):
    """KeySwitcher that tallies its entry points into the trace meta."""

    def __init__(self, context, trace: OpTrace):
        super().__init__(context)
        self.trace = trace

    def _bump(self, key: str) -> None:
        self.trace.meta[key] = int(self.trace.meta.get(key, 0)) + 1

    def switch(self, *args, **kwargs):
        self._bump("keyswitch_calls")
        return super().switch(*args, **kwargs)

    def switch_hoisted(self, *args, **kwargs):
        self._bump("hoisted_keyswitch_calls")
        return super().switch_hoisted(*args, **kwargs)

    def hoisted_decompose(self, *args, **kwargs):
        self._bump("hoisted_decompose_calls")
        return super().hoisted_decompose(*args, **kwargs)


class TracingEncoder:
    """Delegating CkksEncoder wrapper counting encode/decode calls."""

    def __init__(self, encoder: CkksEncoder, trace: OpTrace):
        self._encoder = encoder
        self.trace = trace

    def encode(self, *args, **kwargs) -> Plaintext:
        self.trace.meta["encodes"] = \
            int(self.trace.meta.get("encodes", 0)) + 1
        return self._encoder.encode(*args, **kwargs)

    def decode(self, *args, **kwargs):
        self.trace.meta["decodes"] = \
            int(self.trace.meta.get("decodes", 0)) + 1
        return self._encoder.decode(*args, **kwargs)

    def __getattr__(self, name):
        return getattr(self._encoder, name)


class TracingEvaluator(Evaluator):
    """An Evaluator that records every operation it performs."""

    def __init__(self, context, relin_key=None, galois_keys=None,
                 trace: Optional[OpTrace] = None):
        super().__init__(context, relin_key, galois_keys)
        self.trace = trace if trace is not None else OpTrace()
        self.key_switcher = CountingKeySwitcher(context, self.trace)
        self._paused = 0
        # Trace ids are assigned per ciphertext object; pinning the
        # objects keeps id() values from being recycled mid-capture.
        self._ids: Dict[int, int] = {}
        self._pinned: List[Ciphertext] = []

    @classmethod
    def wrap(cls, evaluator: Evaluator,
             trace: Optional[OpTrace] = None) -> "TracingEvaluator":
        """A tracing evaluator sharing ``evaluator``'s context and keys."""
        return cls(evaluator.context, evaluator.relin_key,
                   evaluator.galois_keys, trace)

    # ------------------------------------------------------------------
    # Recording machinery
    # ------------------------------------------------------------------

    def _tid(self, ct: Ciphertext) -> int:
        """Stable trace id for a ciphertext object."""
        key = id(ct)
        if key not in self._ids:
            self._ids[key] = len(self._ids)
            self._pinned.append(ct)
        return self._ids[key]

    @contextmanager
    def _pause(self):
        """Suppress recording inside composite operations."""
        self._paused += 1
        try:
            yield
        finally:
            self._paused -= 1

    def _record(self, kind: str, level: int, step: Optional[int] = None,
                operands: Sequence[Ciphertext] = (),
                result: Optional[Ciphertext] = None) -> None:
        if self._paused:
            return
        self.trace.record(kind, level, step,
                          [self._tid(ct) for ct in operands],
                          self._tid(result) if result is not None else None)

    # ------------------------------------------------------------------
    # Level management
    # ------------------------------------------------------------------

    def mod_down_to(self, ct, num_limbs):
        dropped = ct.level_count > num_limbs
        result = super().mod_down_to(ct, num_limbs)
        if dropped:
            self._record("mod_down", num_limbs, operands=[ct],
                         result=result)
        return result

    # ------------------------------------------------------------------
    # Addition family
    # ------------------------------------------------------------------

    def add(self, a, b):
        result = super().add(a, b)
        self._record("add", result.level_count, operands=[a, b],
                     result=result)
        return result

    def sub(self, a, b):
        result = super().sub(a, b)
        self._record("sub", result.level_count, operands=[a, b],
                     result=result)
        return result

    def negate(self, a):
        result = super().negate(a)
        self._record("negate", result.level_count, operands=[a],
                     result=result)
        return result

    def add_plain(self, ct, pt):
        result = super().add_plain(ct, pt)
        self._record("add_plain", result.level_count, operands=[ct],
                     result=result)
        return result

    def sub_plain(self, ct, pt):
        result = super().sub_plain(ct, pt)
        self._record("sub_plain", result.level_count, operands=[ct],
                     result=result)
        return result

    # ------------------------------------------------------------------
    # Multiplication family
    # ------------------------------------------------------------------

    def multiply(self, a, b, relin_key=None):
        result = super().multiply(a, b, relin_key)
        self._record("multiply", result.level_count, operands=[a, b],
                     result=result)
        return result

    def square(self, a, relin_key=None):
        result = super().square(a, relin_key)
        self._record("square", result.level_count, operands=[a],
                     result=result)
        return result

    def multiply_plain(self, ct, pt):
        result = super().multiply_plain(ct, pt)
        self._record("multiply_plain", result.level_count, operands=[ct],
                     result=result)
        return result

    def multiply_scalar_int(self, ct, scalar):
        result = super().multiply_scalar_int(ct, scalar)
        self._record("multiply_scalar", result.level_count, operands=[ct],
                     result=result)
        return result

    def multiply_by_monomial(self, ct, exponent):
        effective = exponent % (2 * ct.ring_degree)
        result = super().multiply_by_monomial(ct, exponent)
        if effective:  # exponent 0 is a copy, not an operation
            self._record("multiply_plain", result.level_count,
                         operands=[ct], result=result)
        return result

    # ------------------------------------------------------------------
    # Rescale
    # ------------------------------------------------------------------

    def rescale(self, ct):
        result = super().rescale(ct)
        # Cost models key rescale on the limb count before the drop.
        self._record("rescale", ct.level_count, operands=[ct],
                     result=result)
        return result

    # ------------------------------------------------------------------
    # Rotation family
    # ------------------------------------------------------------------

    def rotate(self, ct, steps, galois_keys=None):
        steps_mod = steps % (ct.ring_degree // 2)
        with self._pause():
            result = super().rotate(ct, steps, galois_keys)
        if steps_mod:  # step 0 is a copy
            self._record("rotate", result.level_count, step=steps_mod,
                         operands=[ct], result=result)
        return result

    def conjugate(self, ct, galois_keys=None):
        with self._pause():
            result = super().conjugate(ct, galois_keys)
        self._record("conjugate", result.level_count, operands=[ct],
                     result=result)
        return result

    def apply_galois(self, ct, galois_element, galois_keys=None):
        result = super().apply_galois(ct, galois_element, galois_keys)
        # Raw automorphisms outside rotate/conjugate cost a rotation;
        # the negative step encodes the Galois element so distinct
        # Galois keys stay distinct in the key working set.
        self._record("rotate", result.level_count,
                     step=-int(galois_element), operands=[ct],
                     result=result)
        return result

    def rotate_hoisted(self, ct, steps, galois_keys=None):
        with self._pause():
            results = super().rotate_hoisted(ct, steps, galois_keys)
        first = True
        n_half = ct.ring_degree // 2
        for step in steps:
            if step % n_half == 0:
                continue  # copies are free
            # The first rotation carries the shared ModUp (full price),
            # the rest reuse the raised decomposition — matching the
            # cost model's linear-transform accounting.
            kind = "rotate" if first else "rotate_hoisted"
            first = False
            self._record(kind, results[step].level_count,
                         step=step % n_half, operands=[ct],
                         result=results[step])
        return results


@contextmanager
def capture(scheme, name: str = "capture",
            trace: Optional[OpTrace] = None):
    """Swap a scheme's evaluator/encoder for tracing versions.

    Yields the :class:`OpTrace` being filled.  Applications must be
    constructed *inside* the block (they snapshot
    ``scheme.evaluator``/``scheme.encoder`` at construction time).
    """
    params = scheme.params
    if trace is None:
        trace = OpTrace(name, meta={
            "ring_degree": params.ring_degree,
            "num_limbs": params.num_limbs,
            "scale_bits": params.scale_bits,
        })
    original_evaluator = scheme.evaluator
    original_encoder = scheme.encoder
    scheme.evaluator = TracingEvaluator.wrap(original_evaluator, trace)
    scheme.encoder = TracingEncoder(original_encoder, trace)
    try:
        yield trace
    finally:
        scheme.evaluator = original_evaluator
        scheme.encoder = original_encoder
