"""CLI for the runtime subsystem: ``trace``, ``serve``, ``serve-sweep``,
``slo-sweep``, ``fault-sweep``, ``stripe-scale``.

``trace`` lowers a workload trace to a FAB program and prints its op
mix, key working set, and scheduled cost.  By default it uses the
paper-scale reference traces; ``--capture`` instead runs the
functional LR app at test-scale parameters under the tracing
evaluator, proving the capture path end to end.

``serve`` runs the multi-tenant serving simulator on a named scenario
and prints throughput + tail-latency tables per workload; ``--stripe
K`` additionally stripes the training workload across K boards per job
(the FAB-2 gang-scheduling mode), ``--policy`` selects the
admission/scheduling policy (``fifo``, ``edf``,
``deferrable-window``), and ``--price diurnal`` turns on the square-
wave price/carbon signal the ``slo_mixed`` scenario's deferrable tier
schedules around.  ``--engine fast`` swaps in the vectorized event
core (~10x the DES event rate at fleet scale, parity-tested) and
``--arrivals SPEC`` reshapes every stream's arrival process (diurnal,
MMPP bursts, flash crowds, JSONL trace replay); both flags also apply
per grid point in the sweep drivers below.

``serve-sweep`` fans the simulator out over the pool-size x cache-size
x tenant-count x load grid (multiprocessing), prints the full grid
with the cost-optimal configuration, and writes a JSON artifact.

``slo-sweep`` fans out over policy x load x interactive/batch mix x
pool size on the SLO-annotated two-tier scenario, prints per-point
policy comparisons with the cost/SLO Pareto frontier, and writes a
JSON artifact.

``fault-sweep`` fans out over board MTBF x retry policy x pool size
with fault injection on (``serve`` gets the same machinery via
``--faults``/``--retry``), prints backoff-vs-none goodput per point
and the goodput/wasted-service resilience frontier, and writes a JSON
artifact.

``stripe-scale`` sweeps boards x batch x board-assignment policy for
one trace striped across the FAB-2 pool and reconciles the
trace-driven speedup against the analytic ``MultiFpgaSystem`` model.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from typing import List, Optional

from ..core.params import FabConfig
from ..experiments.common import print_result
from ..obs import (MetricsRecorder, TimelineRecorder, compose,
                   provenance, render_metrics)
from .arrivals import ARRIVAL_PROCESSES
from .autoscaler import SCALE_POLICIES, make_scale_policy
from .capture import capture
from .faults import (FAULT_PROCESSES, RETRY_POLICIES, make_fault_process,
                     make_retry_policy)
from .lowering import cost_trace
from .optrace import OpTrace
from .policies import POLICIES, PriceSignal
from .reference import REFERENCE_TRACES, build_reference_trace
from .serving import (ENGINES, ServingSimulator, build_scenarios,
                      build_slo_scenario)


def _capture_lr_trace() -> OpTrace:
    """Capture a real (tiny-N) encrypted LR iteration."""
    import numpy as np

    from ..apps.lr.data import Dataset
    from ..apps.lr.encrypted import EncryptedLrTrainer
    from ..fhe import CkksParams, CkksScheme

    rng = np.random.default_rng(0)
    scheme = CkksScheme(CkksParams(ring_degree=64, num_limbs=8,
                                   scale_bits=30))
    features = rng.random(size=(4, 3))
    labels = (rng.random(4) > 0.5).astype(float)
    dataset = Dataset(features, labels)
    with capture(scheme, "lr_iteration_captured") as trace:
        trainer = EncryptedLrTrainer(scheme)
        state = trainer.init_state(dataset.num_features)
        trainer.iteration(state, dataset)
    return trace


def run_trace(argv: List[str]) -> int:
    """Entry point for ``python -m repro trace``."""
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="lower a workload trace to a FAB program and cost it")
    parser.add_argument("workload", nargs="?", default="lr_iteration",
                        choices=sorted(REFERENCE_TRACES) + ["captured_lr"],
                        help="reference trace (or captured_lr to capture "
                             "a functional tiny-N LR iteration)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also dump the trace IR as JSON")
    parser.add_argument("--timeline", metavar="PATH", default=None,
                        help="write the scheduled program as a "
                             "Perfetto-loadable Chrome trace")
    parser.add_argument("--no-prefetch", action="store_true",
                        help="schedule without key prefetching")
    args = parser.parse_args(argv)

    config = FabConfig()
    if args.workload == "captured_lr":
        trace = _capture_lr_trace()
    else:
        trace = build_reference_trace(args.workload, config)
    cost = cost_trace(trace, config, prefetch=not args.no_prefetch)

    print(trace.summary())
    print(f"lowered: {len(cost.report.schedule.tasks)} tasks, "
          f"{cost.report.num_ops} ops")
    print(f"cycles: {cost.cycles:,} scheduled "
          f"({cost.serial_cycles:,} serial) = {cost.seconds * 1e3:.3f} ms "
          f"at {config.clock_hz / 1e6:.0f} MHz")
    print(f"utilization: fu={100 * cost.report.fu_utilization:.0f}% "
          f"hbm={100 * cost.report.hbm_utilization:.0f}%")
    print(f"switching keys: {cost.keys.num_keys} "
          f"({cost.keys.total_bytes / 1e6:.1f} MB)")
    if args.json:
        trace.save(args.json)
        print(f"trace written to {args.json}")
    if args.timeline:
        recorder = TimelineRecorder(
            meta=provenance(config=config, workload=args.workload))
        cost.report.schedule.record_timeline(
            recorder, seconds_per_cycle=config.cycles_to_seconds(1),
            group=f"{trace.name} schedule")
        recorder.save(args.timeline)
        print(f"timeline written to {args.timeline} "
              f"(open at ui.perfetto.dev)")
    return 0


def run_serve(argv: List[str]) -> int:
    """Entry point for ``python -m repro serve``."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="simulate multi-tenant serving on a FAB pool")
    parser.add_argument("--scenario", default="mixed",
                        help="scenario name or 'all' (default: mixed)")
    parser.add_argument("--devices", type=int, default=8)
    parser.add_argument("--duration", type=float, default=2.0,
                        help="arrival horizon in seconds")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--load", type=float, default=0.6,
                        help="offered load fraction of pool capacity")
    parser.add_argument("--stripe", type=int, default=1, metavar="K",
                        help="stripe each training job across K boards "
                             "(FAB-2 gang scheduling; default 1)")
    parser.add_argument("--policy", default="fifo",
                        choices=sorted(POLICIES),
                        help="admission/scheduling policy (default: "
                             "fifo, the historical order)")
    parser.add_argument("--engine", default="des", choices=list(ENGINES),
                        help="event core: the exact DES or the "
                             "vectorized fast engine (~10x at fleet "
                             "scale, parity-tested; default: des)")
    parser.add_argument("--arrivals", default=None, metavar="SPEC",
                        help="arrival process for every stream: "
                             f"{', '.join(ARRIVAL_PROCESSES)} as "
                             "NAME[:key=value,...] or replay:PATH "
                             "(default: the scenario's own processes "
                             "- Poisson)")
    parser.add_argument("--price", default="flat",
                        choices=["flat", "diurnal"],
                        help="price/carbon signal: flat unit price or "
                             "a square wave with four slots per "
                             "arrival horizon (default: flat)")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="inject board faults: "
                             f"{', '.join(FAULT_PROCESSES)} as "
                             "NAME[:key=value,...] or trace:PATH, e.g. "
                             "poisson:mtbf=2,mttr=0.2 (DES engine "
                             "only; default: no faults)")
    parser.add_argument("--retry", default=None, metavar="SPEC",
                        help="recovery for fault-killed jobs: "
                             f"{', '.join(RETRY_POLICIES)} as "
                             "NAME[:key=value,...], e.g. "
                             "backoff:base=0.01,max=6 (needs --faults; "
                             "default: none - shed killed jobs)")
    parser.add_argument("--autoscale", default=None, metavar="SPEC",
                        help="elastic pool autoscaling: "
                             "reactive:low=0.3,high=0.85,cooldown=0.05, "
                             "predictive:window=0.1,horizon=0.05,"
                             "target=0.7, spare:n=1, or a composed "
                             "predictive:...+spare:n=1 (--engine des "
                             "only; combines with --faults through the "
                             "membership ledger; default: fixed pool)")
    parser.add_argument("--timeline", metavar="PATH", default=None,
                        help="write a Perfetto-loadable Chrome trace "
                             "of the run (single scenario only)")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="write windowed time-series metrics JSON "
                             "(single scenario only; render with "
                             "'repro timeline PATH')")
    parser.add_argument("--metrics-window", type=float, default=None,
                        metavar="S",
                        help="metrics window width in seconds "
                             "(default: duration / 40)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the serving report(s) as "
                             "JSON with provenance")
    args = parser.parse_args(argv)
    if args.devices < 1:
        parser.error("--devices must be >= 1")
    if args.duration <= 0:
        parser.error("--duration must be positive")
    if args.max_batch < 1:
        parser.error("--max-batch must be >= 1")
    if args.load <= 0:
        parser.error("--load must be positive")
    if args.stripe < 1:
        parser.error("--stripe must be >= 1")
    if args.stripe > 1 and args.stripe % 2:
        parser.error("--stripe must be 1 or even (boards pair up)")
    if args.stripe > args.devices:
        parser.error("--stripe cannot exceed --devices")
    faults = retry = None
    if args.retry and not args.faults:
        parser.error("--retry only applies under --faults")
    if args.faults:
        if args.engine == "fast":
            parser.error("--faults requires --engine des (the fast "
                         "engine is the fault-free parity oracle)")
        try:
            faults = make_fault_process(args.faults)
        except (ValueError, OSError) as exc:
            parser.error(f"--faults: {exc}")
        if args.retry:
            try:
                retry = make_retry_policy(args.retry)
            except ValueError as exc:
                parser.error(f"--retry: {exc}")
    autoscale = None
    if args.autoscale:
        if args.engine == "fast":
            parser.error("--autoscale requires --engine des (the fast "
                         "engine is the fixed-pool parity oracle)")
        try:
            autoscale = make_scale_policy(args.autoscale)
        except ValueError as exc:
            parser.error(f"--autoscale: {exc}")

    config = FabConfig()
    scenarios = build_scenarios(config, num_devices=args.devices,
                                duration_s=args.duration,
                                target_load=args.load,
                                training_stripe=args.stripe)
    scenarios["slo_mixed"] = build_slo_scenario(
        config, num_devices=args.devices, duration_s=args.duration,
        target_load=args.load, training_stripe=args.stripe)
    if args.scenario == "all":
        selected = list(scenarios)
    elif args.scenario in scenarios:
        selected = [args.scenario]
    else:
        print(f"unknown scenario {args.scenario!r}; "
              f"try: {', '.join(scenarios)} or all")
        return 1
    if (args.timeline or args.metrics) and len(selected) != 1:
        parser.error("--timeline/--metrics record one run: pick a "
                     "single --scenario, not 'all'")
    if args.arrivals:
        try:
            scenarios = {name: scenarios[name].with_arrivals(args.arrivals)
                         for name in selected}
        except (ValueError, OSError) as exc:
            parser.error(f"--arrivals: {exc}")
    price = (PriceSignal.diurnal(slot_s=args.duration / 4.0)
             if args.price == "diurnal" else PriceSignal.flat())
    simulator = ServingSimulator(config, num_devices=args.devices,
                                 max_batch=args.max_batch)
    stamp = provenance(seed=args.seed, config=config,
                       policy=args.policy, price=args.price,
                       engine=args.engine,
                       arrivals=args.arrivals or "default",
                       faults=args.faults or "none",
                       retry=args.retry or "none",
                       autoscale=args.autoscale or "none")
    timeline: Optional[TimelineRecorder] = None
    metrics: Optional[MetricsRecorder] = None
    if args.timeline:
        timeline = TimelineRecorder(meta=dict(stamp))
    if args.metrics:
        window_s = (args.metrics_window if args.metrics_window
                    else args.duration / 40.0)
        if window_s <= 0:
            parser.error("--metrics-window must be positive")
        metrics = MetricsRecorder(window_s=window_s, meta=dict(stamp))
    recorder = compose(timeline, metrics)
    reports = []
    for name in selected:
        report = simulator.run(scenarios[name], seed=args.seed,
                               policy=args.policy, price=price,
                               recorder=recorder, engine=args.engine,
                               faults=faults, retry=retry,
                               autoscale=autoscale)
        reports.append(report)
        print_result(report.to_experiment_result())
        print(report.format())
        print()
    if timeline is not None:
        if args.stripe > 1:
            # Embed the striped training schedule as its own process:
            # per-board FU/HBM tracks plus the shared CMAC link, so
            # the gang spans on the serving tracks can be opened up
            # into the intra-job synchronization structure.
            from .reference import lr_training_trace
            from .striped_lowering import lower_striped_trace
            training, plan = lr_training_trace(config)
            lower_striped_trace(
                training, args.stripe, config,
                plan=plan).schedule().record_timeline(timeline, config)
        timeline.save(args.timeline)
        print(f"timeline written to {args.timeline} "
              f"(open at ui.perfetto.dev)")
    if metrics is not None:
        metrics.save(args.metrics)
        print(f"metrics written to {args.metrics} "
              f"(render with: python -m repro timeline "
              f"{args.metrics})")
    if args.json:
        payload = {
            "meta": stamp,
            "reports": [dataclasses.asdict(r) for r in reports],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=1)
        print(f"report written to {args.json}")
    return 0


def run_timeline(argv: List[str]) -> int:
    """Entry point for ``python -m repro timeline``: render a metrics
    artifact (``repro serve --metrics``) as a terminal summary."""
    parser = argparse.ArgumentParser(
        prog="repro timeline",
        description="render a serving metrics artifact as a terminal "
                    "utilization/queue-depth summary")
    parser.add_argument("artifact", help="metrics JSON written by "
                                         "'repro serve --metrics'")
    parser.add_argument("--width", type=int, default=24,
                        help="bar width in characters (default 24)")
    parser.add_argument("--rows", type=int, default=48,
                        help="max chart rows before decimation")
    args = parser.parse_args(argv)
    if args.width < 1 or args.rows < 1:
        parser.error("--width and --rows must be >= 1")
    with open(args.artifact) as fh:
        data = json.load(fh)
    if "traceEvents" in data:
        print(f"{args.artifact} is a timeline artifact — load it at "
              f"ui.perfetto.dev; this command renders --metrics "
              f"output")
        return 1
    if "windows" not in data:
        print(f"{args.artifact} is not a serving metrics artifact")
        return 1
    print(render_metrics(data, width=args.width, max_rows=args.rows))
    return 0


def run_serve_sweep(argv: List[str]) -> int:
    """Entry point for ``python -m repro serve-sweep``."""
    from ..experiments.serve_sweep import (DEFAULT_CACHE_FRACTIONS,
                                           DEFAULT_DEVICES, DEFAULT_LOADS,
                                           DEFAULT_TENANTS, run_sweep)
    parser = argparse.ArgumentParser(
        prog="repro serve-sweep",
        description="sweep pool x cache x tenants x load for the "
                    "cost-optimal serving configuration")
    parser.add_argument("--devices", type=int, nargs="+",
                        default=list(DEFAULT_DEVICES),
                        help="pool sizes to sweep")
    parser.add_argument("--cache-fracs", type=float, nargs="+",
                        default=list(DEFAULT_CACHE_FRACTIONS),
                        help="key-cache sizes as fractions of HBM")
    parser.add_argument("--tenants", type=int, nargs="+",
                        default=list(DEFAULT_TENANTS),
                        help="tenants per stream to sweep")
    parser.add_argument("--loads", type=float, nargs="+",
                        default=list(DEFAULT_LOADS),
                        help="offered loads (fraction of pool capacity)")
    parser.add_argument("--duration", type=float, default=1.0,
                        help="arrival horizon per grid point (seconds)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--slo-ms", type=float, default=None,
                        help="p99 SLO in ms (default: 8x the heaviest "
                             "workload's service time)")
    parser.add_argument("--workers", type=int, default=None,
                        help="simulation processes (default: one per "
                             "core, capped at the grid; 1 = inline)")
    parser.add_argument("--engine", default="des", choices=list(ENGINES),
                        help="event core per grid point (default: des)")
    parser.add_argument("--arrivals", default=None, metavar="SPEC",
                        help="arrival process for every stream "
                             "(NAME[:key=value,...] or replay:PATH; "
                             "default: Poisson)")
    parser.add_argument("--json", metavar="PATH",
                        default="serve_sweep.json",
                        help="JSON artifact path ('' to skip)")
    parser.add_argument("--point-metrics", action="store_true",
                        help="attach a windowed-metrics summary to "
                             "every grid point in the JSON artifact")
    args = parser.parse_args(argv)
    if args.duration <= 0:
        parser.error("--duration must be positive")
    if any(d < 1 for d in args.devices):
        parser.error("--devices must be >= 1")
    if any(not 0 < c <= 1 for c in args.cache_fracs):
        parser.error("--cache-fracs must be in (0, 1]")
    if any(t < 1 for t in args.tenants):
        parser.error("--tenants must be >= 1")
    if any(load <= 0 for load in args.loads):
        parser.error("--loads must be positive")

    report = run_sweep(FabConfig(), devices=args.devices,
                       cache_fractions=args.cache_fracs,
                       tenants=args.tenants, loads=args.loads,
                       duration_s=args.duration, seed=args.seed,
                       max_batch=args.max_batch, slo_p99_ms=args.slo_ms,
                       workers=args.workers,
                       point_metrics=args.point_metrics,
                       engine=args.engine, arrivals=args.arrivals)
    print_result(report.to_experiment_result())
    best = report.best
    if best is None:
        print("no feasible configuration met the SLO")
    else:
        print(f"cost-optimal: {best.point.devices} devices, "
              f"{best.point.cache_fraction:g} HBM key cache, "
              f"{best.point.tenants} tenants/stream at load "
              f"{best.point.load:g} -> "
              f"{best.cost_device_ms_per_job:.2f} device-ms/job, "
              f"p99 {best.worst_p99_ms:.1f} ms")
    if args.json:
        report.save_json(args.json)
        print(f"sweep written to {args.json}")
    return 0


def run_slo_sweep(argv: List[str]) -> int:
    """Entry point for ``python -m repro slo-sweep``."""
    from ..experiments.slo_sweep import (DEFAULT_DEVICES, DEFAULT_LOADS,
                                         DEFAULT_MIXES, DEFAULT_PEAK,
                                         DEFAULT_POLICIES, DEFAULT_TROUGH,
                                         run_sweep)
    parser = argparse.ArgumentParser(
        prog="repro slo-sweep",
        description="sweep policy x load x mix x pool size on the "
                    "SLO-annotated two-tier scenario; report per-point "
                    "comparisons and the cost/SLO Pareto frontier")
    parser.add_argument("--policies", nargs="+",
                        default=list(DEFAULT_POLICIES),
                        choices=list(DEFAULT_POLICIES),
                        help="policies to sweep")
    parser.add_argument("--devices", type=int, nargs="+",
                        default=list(DEFAULT_DEVICES),
                        help="pool sizes to sweep")
    parser.add_argument("--loads", type=float, nargs="+",
                        default=list(DEFAULT_LOADS),
                        help="offered loads (fraction of pool capacity)")
    parser.add_argument("--mixes", type=float, nargs="+",
                        default=list(DEFAULT_MIXES),
                        help="interactive fraction of the offered load")
    parser.add_argument("--duration", type=float, default=0.5,
                        help="arrival horizon per grid point (seconds)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--stripe", type=int, default=1, metavar="K",
                        help="stripe the batch tier across K boards "
                             "(gang scheduling; default 1)")
    parser.add_argument("--peak", type=float, default=DEFAULT_PEAK,
                        help="price during expensive slots")
    parser.add_argument("--trough", type=float, default=DEFAULT_TROUGH,
                        help="price during cheap slots")
    parser.add_argument("--workers", type=int, default=None,
                        help="simulation processes (default: one per "
                             "core, capped at the grid; 1 = inline)")
    parser.add_argument("--engine", default="des", choices=list(ENGINES),
                        help="event core per grid point (default: des)")
    parser.add_argument("--arrivals", default=None, metavar="SPEC",
                        help="arrival process for every stream "
                             "(NAME[:key=value,...] or replay:PATH; "
                             "default: Poisson)")
    parser.add_argument("--json", metavar="PATH",
                        default="slo_sweep.json",
                        help="JSON artifact path ('' to skip)")
    parser.add_argument("--point-metrics", action="store_true",
                        help="attach a windowed-metrics summary to "
                             "every grid point in the JSON artifact")
    args = parser.parse_args(argv)
    if args.duration <= 0:
        parser.error("--duration must be positive")
    if any(d < 1 for d in args.devices):
        parser.error("--devices must be >= 1")
    if any(load <= 0 for load in args.loads):
        parser.error("--loads must be positive")
    if any(not 0 <= m <= 1 for m in args.mixes):
        parser.error("--mixes must be in [0, 1]")
    if args.stripe < 1 or (args.stripe > 1 and args.stripe % 2):
        parser.error("--stripe must be 1 or even (boards pair up)")
    if args.stripe > min(args.devices):
        parser.error("--stripe cannot exceed the smallest pool")
    if args.peak < args.trough or args.trough < 0:
        parser.error("need 0 <= --trough <= --peak")

    report = run_sweep(FabConfig(), policies=args.policies,
                       devices=args.devices, loads=args.loads,
                       mixes=args.mixes, duration_s=args.duration,
                       seed=args.seed, max_batch=args.max_batch,
                       training_stripe=args.stripe, peak=args.peak,
                       trough=args.trough, workers=args.workers,
                       point_metrics=args.point_metrics,
                       engine=args.engine, arrivals=args.arrivals)
    print_result(report.to_experiment_result())
    frontier = report.pareto_frontier()
    print("cost/SLO Pareto frontier (price-units/job, attainment):")
    for outcome in frontier:
        print(f"  {outcome.point.label():>16s} {outcome.policy:>18s} "
              f"{outcome.cost_per_job * 1e3:8.2f} "
              f"{100 * outcome.slo_attainment:6.1f}%")
    if args.json:
        report.save_json(args.json)
        print(f"sweep written to {args.json}")
    return 0


def run_fault_sweep(argv: List[str]) -> int:
    """Entry point for ``python -m repro fault-sweep``."""
    from ..experiments.fault_sweep import (DEFAULT_ARRIVALS,
                                           DEFAULT_DEVICES,
                                           DEFAULT_MTBFS, DEFAULT_MTTR,
                                           DEFAULT_RETRIES,
                                           DEFAULT_SLO_SCALE, run_sweep)
    parser = argparse.ArgumentParser(
        prog="repro fault-sweep",
        description="sweep board MTBF x retry policy x pool size "
                    "under fault injection; report per-point "
                    "backoff-vs-none goodput and the resilience "
                    "(goodput vs wasted-service) frontier")
    parser.add_argument("--retries", nargs="+",
                        default=list(DEFAULT_RETRIES), metavar="SPEC",
                        help="retry policy specs to sweep "
                             "(NAME[:key=value,...]; one per policy "
                             "name)")
    parser.add_argument("--devices", type=int, nargs="+",
                        default=list(DEFAULT_DEVICES),
                        help="pool sizes to sweep")
    parser.add_argument("--mtbfs", type=float, nargs="+",
                        default=list(DEFAULT_MTBFS),
                        help="per-board mean time between failures "
                             "(seconds) to sweep")
    parser.add_argument("--mttr", type=float, default=DEFAULT_MTTR,
                        help="mean time to repair in seconds "
                             f"(default {DEFAULT_MTTR:g})")
    parser.add_argument("--duration", type=float, default=0.5,
                        help="arrival horizon per grid point (seconds)")
    parser.add_argument("--load", type=float, default=0.8,
                        help="offered load fraction of pool capacity")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--stripe", type=int, default=1, metavar="K",
                        help="stripe the batch tier across K boards "
                             "(gang scheduling; default 1)")
    parser.add_argument("--slo-scale", type=float,
                        default=DEFAULT_SLO_SCALE,
                        help="interactive deadline as a multiple of "
                             "the fault-free default - resilience "
                             "headroom for retries to land in "
                             f"(default {DEFAULT_SLO_SCALE:g}; at 1 "
                             "retried jobs miss their deadlines and "
                             "no-retry wins on goodput)")
    parser.add_argument("--arrivals", default=DEFAULT_ARRIVALS,
                        metavar="SPEC",
                        help="arrival process for every stream "
                             "(NAME[:key=value,...], '' to keep each "
                             "stream's own Poisson process; default: "
                             f"{DEFAULT_ARRIVALS})")
    parser.add_argument("--workers", type=int, default=None,
                        help="simulation processes (default: one per "
                             "core, capped at the grid; 1 = inline)")
    parser.add_argument("--json", metavar="PATH",
                        default="fault_sweep.json",
                        help="JSON artifact path ('' to skip)")
    args = parser.parse_args(argv)
    if args.duration <= 0:
        parser.error("--duration must be positive")
    if any(d < 1 for d in args.devices):
        parser.error("--devices must be >= 1")
    if any(m <= 0 for m in args.mtbfs):
        parser.error("--mtbfs must be positive")
    if args.mttr <= 0:
        parser.error("--mttr must be positive")
    if args.load <= 0:
        parser.error("--load must be positive")
    if args.stripe < 1 or (args.stripe > 1 and args.stripe % 2):
        parser.error("--stripe must be 1 or even (boards pair up)")
    if args.stripe > min(args.devices):
        parser.error("--stripe cannot exceed the smallest pool")
    if args.slo_scale <= 0:
        parser.error("--slo-scale must be positive")
    for spec in args.retries:
        try:
            make_retry_policy(spec)
        except ValueError as exc:
            parser.error(f"--retries: {exc}")

    report = run_sweep(FabConfig(), retries=args.retries,
                       devices=args.devices, mtbfs=args.mtbfs,
                       mttr_s=args.mttr, duration_s=args.duration,
                       target_load=args.load, seed=args.seed,
                       max_batch=args.max_batch,
                       training_stripe=args.stripe,
                       slo_scale=args.slo_scale,
                       arrivals=args.arrivals or None,
                       workers=args.workers)
    print_result(report.to_experiment_result())
    print("backoff vs none (goodput jobs at equal fault schedule):")
    for label, faults, none_good, backoff_good in (
            report.headline()["backoff_vs_none"]):
        print(f"  {label:>14s} {faults:4d} faults: "
              f"none {none_good:5d} -> backoff {backoff_good:5d}")
    frontier = report.resilience_frontier()
    print("resilience frontier (wasted board-seconds, goodput/s):")
    for outcome in frontier:
        print(f"  {outcome.point.label():>14s} "
              f"{outcome.retry.partition(':')[0]:>10s} "
              f"{outcome.wasted_service_s:8.3f}s "
              f"{outcome.goodput_jps:8.1f}/s")
    if args.json:
        report.save_json(args.json)
        print(f"sweep written to {args.json}")
    return 0


def run_autoscale_sweep(argv: List[str]) -> int:
    """Entry point for ``python -m repro autoscale-sweep``."""
    from ..experiments.autoscale_sweep import (DEFAULT_ARRIVALS,
                                               DEFAULT_POLICIES,
                                               DEFAULT_TARGET_LOAD,
                                               run_sweep)
    parser = argparse.ArgumentParser(
        prog="repro autoscale-sweep",
        description="sweep scale policy x arrival pattern on "
                    "interactive SLO serving; report cost per goodput "
                    "(board-seconds per deadline-met job) vs the "
                    "static-pool baseline")
    parser.add_argument("--policies", nargs="+",
                        default=list(DEFAULT_POLICIES), metavar="SPEC",
                        help="scale policy specs to sweep ('static' "
                             "for the fixed pool, else "
                             "NAME[:key=value,...] with NAME in "
                             f"{'/'.join(SCALE_POLICIES)}; one per "
                             "policy name)")
    parser.add_argument("--devices", type=int, nargs="+", default=[8],
                        help="pool sizes to sweep")
    parser.add_argument("--arrivals", nargs="+", metavar="SPEC",
                        default=[spec for _, spec in DEFAULT_ARRIVALS],
                        help="arrival process specs to sweep "
                             "(NAME[:key=value,...]; default: "
                             "diurnal wave, MMPP bursts, flash crowd)")
    parser.add_argument("--duration", type=float, default=1.0,
                        help="arrival horizon per grid point (seconds; "
                             "long enough for a full diurnal trough)")
    parser.add_argument("--load", type=float,
                        default=DEFAULT_TARGET_LOAD,
                        help="mean offered load fraction of pool "
                             "capacity (the diurnal wave swings "
                             "around this; default "
                             f"{DEFAULT_TARGET_LOAD:g})")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--workers", type=int, default=None,
                        help="simulation processes (default: one per "
                             "core, capped at the grid; 1 = inline)")
    parser.add_argument("--json", metavar="PATH",
                        default="autoscale_sweep.json",
                        help="JSON artifact path ('' to skip)")
    args = parser.parse_args(argv)
    if args.duration <= 0:
        parser.error("--duration must be positive")
    if any(d < 1 for d in args.devices):
        parser.error("--devices must be >= 1")
    if args.load <= 0:
        parser.error("--load must be positive")
    for spec in args.policies:
        if spec == "static":
            continue
        try:
            make_scale_policy(spec)
        except ValueError as exc:
            parser.error(f"--policies: {exc}")
    arrivals = [(spec.partition(":")[0], spec)
                for spec in args.arrivals]

    report = run_sweep(FabConfig(), policies=args.policies,
                       arrivals=arrivals, devices=args.devices,
                       duration_s=args.duration,
                       target_load=args.load, seed=args.seed,
                       max_batch=args.max_batch, workers=args.workers)
    print_result(report.to_experiment_result())
    print("autoscale vs static (board-ms per deadline-met job):")
    for label, static_cost, best, best_cost in (
            report.headline()["autoscale_vs_static"]):
        verdict = ("beats static" if best_cost < static_cost
                   else "does NOT beat static")
        print(f"  {label:>12s}: static {static_cost * 1e3:7.3f} -> "
              f"{best} {best_cost * 1e3:7.3f}  ({verdict})")
    if args.json:
        report.save_json(args.json)
        print(f"sweep written to {args.json}")
    return 0


def run_resilience_autoscale_sweep(argv: List[str]) -> int:
    """Entry point for ``python -m repro resilience-autoscale-sweep``."""
    from ..experiments.resilience_autoscale_sweep import (
        DEFAULT_ARRIVALS, DEFAULT_FAULTS, DEFAULT_MECHANISMS,
        DEFAULT_RETRY, DEFAULT_TARGET_LOAD, run_sweep)
    parser = argparse.ArgumentParser(
        prog="repro resilience-autoscale-sweep",
        description="sweep pool-membership mechanisms (static / "
                    "elastic / spares / combined) under faulty "
                    "diurnal SLO serving; report cost per goodput "
                    "through the unified membership ledger")
    parser.add_argument("--devices", type=int, nargs="+", default=[8],
                        help="pool sizes to sweep")
    parser.add_argument("--arrivals", nargs="+", metavar="SPEC",
                        default=[spec for _, spec in DEFAULT_ARRIVALS],
                        help="arrival process specs to sweep "
                             "(NAME[:key=value,...]; default: "
                             "diurnal wave)")
    parser.add_argument("--faults", default=DEFAULT_FAULTS,
                        metavar="SPEC",
                        help="fault process shared by every mechanism "
                             f"(default {DEFAULT_FAULTS})")
    parser.add_argument("--retry", default=DEFAULT_RETRY,
                        metavar="SPEC",
                        help="retry policy shared by every mechanism "
                             f"(default {DEFAULT_RETRY})")
    parser.add_argument("--duration", type=float, default=1.0,
                        help="arrival horizon per grid point (seconds; "
                             "long enough for several faults and a "
                             "full diurnal trough)")
    parser.add_argument("--load", type=float,
                        default=DEFAULT_TARGET_LOAD,
                        help="mean offered load fraction of pool "
                             "capacity (default "
                             f"{DEFAULT_TARGET_LOAD:g})")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--workers", type=int, default=None,
                        help="simulation processes (default: one per "
                             "core, capped at the grid; 1 = inline)")
    parser.add_argument("--json", metavar="PATH",
                        default="resilience_autoscale_sweep.json",
                        help="JSON artifact path ('' to skip)")
    args = parser.parse_args(argv)
    if args.duration <= 0:
        parser.error("--duration must be positive")
    if any(d < 1 for d in args.devices):
        parser.error("--devices must be >= 1")
    if args.load <= 0:
        parser.error("--load must be positive")
    try:
        make_fault_process(args.faults)
    except (ValueError, OSError) as exc:
        parser.error(f"--faults: {exc}")
    try:
        make_retry_policy(args.retry)
    except ValueError as exc:
        parser.error(f"--retry: {exc}")
    arrivals = [(spec.partition(":")[0], spec)
                for spec in args.arrivals]

    report = run_sweep(FabConfig(), mechanisms=DEFAULT_MECHANISMS,
                       arrivals=arrivals, devices=args.devices,
                       faults=args.faults, retry=args.retry,
                       duration_s=args.duration,
                       target_load=args.load, seed=args.seed,
                       max_batch=args.max_batch, workers=args.workers)
    print_result(report.to_experiment_result())
    print("combined vs single mechanisms "
          "(board-ms per deadline-met job):")
    for row in report.headline()["combined_vs_single"]:
        costs = row["costs"]
        verdict = ("combined wins" if row["combined_wins"]
                   else "combined does NOT win")
        parts = ", ".join(
            f"{name} {cost * 1e3:7.3f}"
            for name, cost in sorted(costs.items()))
        print(f"  {row['point']:>12s}: {parts}  ({verdict})")
    if args.json:
        report.save_json(args.json)
        print(f"sweep written to {args.json}")
    return 0


def run_stripe_scale(argv: List[str]) -> int:
    """Entry point for ``python -m repro stripe-scale``."""
    from ..experiments.striping_scale import (DEFAULT_BATCHES,
                                              DEFAULT_BOARDS,
                                              DEFAULT_POLICIES,
                                              run_sweep)
    parser = argparse.ArgumentParser(
        prog="repro stripe-scale",
        description="stripe one trace across the FAB-2 pool and "
                    "reconcile the trace-driven speedup against the "
                    "analytic MultiFpgaSystem model")
    parser.add_argument("--boards", type=int, nargs="+",
                        default=list(DEFAULT_BOARDS),
                        help="pool sizes to sweep (1 or even)")
    parser.add_argument("--batches", type=int, nargs="+",
                        default=list(DEFAULT_BATCHES),
                        help="batched ciphertexts per training step")
    parser.add_argument("--policies", nargs="+",
                        default=list(DEFAULT_POLICIES),
                        choices=list(DEFAULT_POLICIES),
                        help="board-assignment policies to sweep")
    parser.add_argument("--no-prefetch", action="store_true",
                        help="schedule without key prefetching")
    parser.add_argument("--json", metavar="PATH",
                        default="stripe_scale.json",
                        help="JSON artifact path ('' to skip)")
    args = parser.parse_args(argv)
    if any(k < 1 or (k > 1 and k % 2) for k in args.boards):
        parser.error("--boards must be 1 or even (boards pair up)")
    if any(b < 1 for b in args.batches):
        parser.error("--batches must be >= 1")

    report = run_sweep(FabConfig(), boards=args.boards,
                       batches=args.batches, policies=args.policies,
                       prefetch=not args.no_prefetch)
    print_result(report.to_experiment_result())
    worst = report.worst_round_robin_error
    if worst is None:
        print("no multi-board round-robin points: nothing reconciled "
              "against the analytic model")
    else:
        print(f"worst round-robin |rel error| vs analytic: "
              f"{100 * worst:.3f}%")
    if args.json:
        report.save_json(args.json)
        print(f"sweep written to {args.json}")
    return 0
