"""Vectorized fast engine for the serving simulator.

Drop-in second engine behind
:meth:`repro.runtime.serving.ServingSimulator.run` (``engine="fast"``):
same :class:`Stream`/:class:`Scenario`/policy API, same
:class:`ServingReport`, ~10x the DES event rate at million-job scale.

Where the speed comes from — and why the results still match the DES
oracle job for job:

* **Static queue membership.**  Which per-(class, tenant) queue a job
  joins is fully determined at generation time, so arrivals are
  pre-grouped once into per-queue contiguous index arrays (numpy
  argsort) and the event loop never does per-job admission work: a
  dispatch takes a whole batch as an array slice, and "how many jobs
  of this queue have arrived by now" is one bisect on the queue's
  time array instead of a per-job cursor walk.
* **Two-heap queue activation.**  Queue heads that have not arrived
  yet sit in an *activation* heap keyed by arrival time; arrived
  heads sit in the policy's *ready* heap keyed by its priority
  (arrival for fifo, effective deadline for edf, forced start for
  the deferrable tier) with the same lazy invalidation the DES
  head-heap uses — so the engine sees exactly the queue fronts the
  DES policy would see, at O(log queues) per dispatch.
* **Working-set key cache.**  A job class's switching keys are always
  requested together, so per-key LRU state collapses to one
  ``(tenant, key-set) -> resident-key-count`` entry with partial-
  count evictions — bit-exact to :class:`KeyCache` whenever no two
  overlapping key sets share a tenant namespace (checked at setup;
  the engine falls back to the real per-key cache otherwise).
* **Vectorized bookkeeping.**  Completion times are recorded as
  (batch size, finish) run-lengths per queue and expanded with
  ``np.repeat`` at the end; latency percentiles, SLO attainment, and
  per-tenant accounting are ``np.sort``/``np.bincount`` passes over
  the full arrays (or reservoir estimators past 100k jobs per class,
  see :mod:`repro.runtime.stats`) instead of per-job Python loops.

Service times, starts, finishes, busy time, and price-integrated cost
are computed with the same floating-point expressions in the same
order as the DES, so throughput, utilization, percentiles, SLO
attainment, and cost are *equal* (not merely statistically close) on
a shared exact arrival sequence (streaming quantiles, when opted in,
are the one estimator in the report).  The hypothesis parity suite
in ``tests/runtime/test_fast_engine.py`` pins this across policy x
stripe x tenant grids.
"""

from __future__ import annotations

import heapq
import math
from bisect import bisect_right
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs import Recorder
from .policies import POLICIES, PriceSignal
from .serving import (KeyCache, Scenario, ServingReport,
                      WorkloadStats, percentile)
from .stats import ReservoirQuantiles

#: Per-class job count above which the fast engine switches from exact
#: latency percentiles to a reservoir estimator (when
#: ``streaming_quantiles`` is left at ``None``).
STREAMING_AUTO_THRESHOLD = 100_000

#: Reservoir capacity for streaming percentile estimation.
STREAMING_RESERVOIR = 8192


class SetKeyCache:
    """Working-set-granularity LRU over one device's HBM.

    Equivalent to :class:`repro.runtime.serving.KeyCache` when every
    request touches a full key set and no two *different* sets that
    can share a tenant overlap: residency then collapses to a
    resident-key *count* per (tenant, set) entry, evicted oldest-first
    (partially when a set is only partly displaced), with identical
    hit/miss/byte accounting.  ``sets[set_id]`` is
    ``(n_keys, bytes_per_key, set_bytes)``.
    """

    __slots__ = ("capacity_bytes", "_sets", "_resident", "_bytes",
                 "hits", "misses", "bytes_loaded", "evictions",
                 "bytes_evicted")

    def __init__(self, capacity_bytes: int,
                 sets: List[Tuple[int, int, int]]):
        self.capacity_bytes = capacity_bytes
        self._sets = sets
        self._resident: "OrderedDict[Tuple[int, int], int]" = \
            OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.bytes_loaded = 0
        self.evictions = 0
        self.bytes_evicted = 0

    def peek_miss_bytes(self, tid: int, set_id: int) -> int:
        n_keys, bytes_per_key, _ = self._sets[set_id]
        count = self._resident.get((tid, set_id), 0)
        return (n_keys - count) * bytes_per_key

    def request(self, tid: int, set_id: int) -> int:
        n_keys, bytes_per_key, set_bytes = self._sets[set_id]
        if n_keys == 0:
            return 0
        entry = (tid, set_id)
        resident = self._resident
        count = resident.get(entry)
        if count is None:
            missed = n_keys
            resident[entry] = n_keys
            self._bytes += set_bytes
        elif count == n_keys and self._bytes <= self.capacity_bytes:
            # Full hit under capacity: refresh recency, nothing else
            # moves.  (Over capacity — an oversized pinned set — the
            # general path below still runs its eviction sweep, as
            # the per-key cache would on any request.)
            self.hits += n_keys
            resident.move_to_end(entry)
            return 0
        else:
            self.hits += count
            missed = n_keys - count
            resident.move_to_end(entry)
            resident[entry] = n_keys
            self._bytes += missed * bytes_per_key
        self.misses += missed
        miss_bytes = missed * bytes_per_key
        self.bytes_loaded += miss_bytes
        capacity = self.capacity_bytes
        if self._bytes > capacity:
            # The requesting set is pinned at the MRU end; evict from
            # the LRU front, a set (or the oldest part of one) at a
            # time, exactly as the per-key loop would.
            while self._bytes > capacity:
                victim = next(iter(resident))
                if victim == entry:
                    break
                v_count = resident[victim]
                v_bpk = self._sets[victim[1]][1]
                if v_bpk == 0:
                    # Zero-byte keys free no space; the per-key loop
                    # pops them one by one and moves on.
                    del resident[victim]
                    self.evictions += v_count
                    continue
                need_keys = -((capacity - self._bytes) // v_bpk)
                evict = min(v_count, need_keys)
                if evict == v_count:
                    del resident[victim]
                else:
                    # Partial: the set's oldest keys go; the entry
                    # keeps its LRU-front position.
                    resident[victim] = v_count - evict
                self._bytes -= evict * v_bpk
                self.evictions += evict
                self.bytes_evicted += evict * v_bpk
        return miss_bytes

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_loaded": self.bytes_loaded,
            "evictions": self.evictions,
            "bytes_evicted": self.bytes_evicted,
            "resident_bytes": self._bytes,
        }


class _QueueDomain:
    """One priority domain of queues (a DES ``_QueueSet`` mirror).

    ``ready`` holds heads that have arrived, keyed by the policy
    priority plus the DES tie-breakers ``(seq, qid, pos)``; ``act``
    holds not-yet-arrived heads keyed by arrival.  Both are lazily
    invalidated against the shared per-queue head cursor.
    """

    __slots__ = ("ready", "act", "times", "consumed", "arrived",
                 "qids", "code")

    def __init__(self):
        #: Priority code: 0 arrival (fifo), 1 (deadline, arrival)
        #: (edf / interactive tier), 2 (forced start, arrival)
        #: (deferrable tier).
        self.code = 0
        self.ready: List[Tuple] = []
        self.act: List[Tuple[float, int, int]] = []
        #: All of this domain's arrivals, ascending (for ``pending``).
        self.times: List[float] = []
        self.consumed = 0
        self.arrived = 0
        self.qids: List[int] = []

    def pending(self) -> int:
        return self.arrived - self.consumed


class _FastEngine:
    """One fast-engine run: setup, event loop, report assembly."""

    def __init__(self, sim, scenario: Scenario, seed: int,
                 policy: str, price: PriceSignal,
                 recorder: Optional[Recorder],
                 arrival_mode: str,
                 streaming_quantiles: Optional[bool]):
        if not isinstance(policy, str):
            raise ValueError(
                "the fast engine replicates the built-in policies "
                "only; pass a policy name or use engine='des' for "
                "custom policy instances")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; "
                             f"try: {', '.join(sorted(POLICIES))}")
        if streaming_quantiles not in (None, False, True, "auto"):
            raise ValueError(
                "streaming_quantiles must be None/False (exact), "
                "True (always stream), or 'auto' (stream past "
                f"{STREAMING_AUTO_THRESHOLD} jobs per class)")
        self.sim = sim
        self.scenario = scenario
        self.policy_name = policy
        self.policy_code = {"fifo": 0, "edf": 1,
                            "deferrable-window": 2}[policy]
        self.price = price
        self.rec = (recorder if recorder is not None
                    and recorder.enabled else None)
        self.streaming = streaming_quantiles

        # ---- arrivals: SoA in global arrival order -------------------
        chunks = list(scenario.arrivals(seed, mode=arrival_mode))
        if chunks:
            arr_np = np.concatenate([c.arrival_s for c in chunks])
            stream_np = np.concatenate([c.stream_index for c in chunks])
            tenant_np = np.concatenate([c.tenant_index for c in chunks])
        else:
            arr_np = np.empty(0, dtype=np.float64)
            stream_np = np.empty(0, dtype=np.int32)
            tenant_np = np.empty(0, dtype=np.int32)
        self.n = n = int(arr_np.size)
        self.arr_np = arr_np
        self.stream_np = stream_np
        self.arr_list = arr_np.tolist()

        # ---- per-stream attributes ----------------------------------
        streams = scenario.streams
        config, host = sim.config, sim.host
        self.s_class = [st.job_class for st in streams]
        self.s_name = [st.job_class.name for st in streams]
        self.s_secs = [st.job_class.seconds(config) for st in streams]
        self.s_nf = [st.job_class.num_fpgas for st in streams]
        self.launch_s = host.kernel_launch_overhead_s
        self.pcie_denom = host.pcie_gbytes_per_sec * 1e9
        self.pcie_lat = host.pcie_latency_s

        # ---- tenants ------------------------------------------------
        tenant_ids: Dict[str, int] = {}
        self.s_tenants: List[List[str]] = []
        s_tid: List[np.ndarray] = []
        for st in streams:
            names = [f"{st.tenant_prefix}{t}"
                     for t in range(st.num_tenants)]
            self.s_tenants.append(names)
            s_tid.append(np.asarray(
                [tenant_ids.setdefault(name, len(tenant_ids))
                 for name in names], dtype=np.int64))
        self.tenant_names = [name for name, _ in sorted(
            tenant_ids.items(), key=lambda kv: kv[1])]
        tid_np = np.zeros(n, dtype=np.int64)
        for s in range(len(streams)):
            mask = stream_np == s
            tid_np[mask] = s_tid[s][tenant_np[mask]]
        self.tid_np = tid_np

        # ---- key-set interning + cache-mode check -------------------
        set_ids: Dict[Tuple, int] = {}
        self.key_sets: List[Tuple[int, int, int]] = []
        self.s_setid: List[int] = []
        for jc in self.s_class:
            sig = (jc.key_ids, jc.bytes_per_key)
            sid = set_ids.get(sig)
            if sid is None:
                sid = set_ids[sig] = len(self.key_sets)
                self.key_sets.append((len(jc.key_ids),
                                      jc.bytes_per_key, jc.key_bytes))
            self.s_setid.append(sid)
        # Set-granularity caching is exact only when no two *distinct*
        # key sets that can share a tenant namespace overlap: group
        # streams by tenant prefix and compare their key sets.
        self.set_cache_ok = True
        by_prefix: Dict[str, List[int]] = {}
        for s, st in enumerate(streams):
            by_prefix.setdefault(st.tenant_prefix, []).append(s)
        for members in by_prefix.values():
            sigs = {}
            for s in members:
                sigs[self.s_setid[s]] = set(self.s_class[s].key_ids)
            sids = list(sigs)
            for i in range(len(sids)):
                for j in range(i + 1, len(sids)):
                    if sigs[sids[i]] & sigs[sids[j]]:
                        self.set_cache_ok = False

        # ---- per-job deadlines / windows ----------------------------
        dead_np = np.full(n, math.inf)
        forced_np = np.full(n, math.inf)
        self.def_mask = np.zeros(n, dtype=bool)
        for s, st in enumerate(streams):
            mask = stream_np == s
            if st.slo_ms is not None:
                dead_np[mask] = arr_np[mask] + st.slo_ms / 1e3
            elif st.window_s is not None:
                dead_np[mask] = arr_np[mask] + st.window_s
            if st.deferrable:
                self.def_mask |= mask
        if self.policy_code == 2:
            for s, st in enumerate(streams):
                if st.deferrable:
                    mask = stream_np == s
                    forced_np[mask] = dead_np[mask] - \
                        sim.service_bound_s(st.job_class, 1)
        self.dead_np = dead_np
        # Python-list copies only where the event loop indexes
        # per job; fifo without a recorder touches neither.
        self.dead_list = (dead_np.tolist()
                          if self.policy_code != 0
                          or self.rec is not None else None)
        self.forced_list = (forced_np.tolist()
                            if self.policy_code == 2 else None)

        # ---- queues -------------------------------------------------
        # A queue key is (tier,) class-name, tenant — the DES
        # _QueueSet key, split per tier under deferrable-window.
        two_tier = self.policy_code == 2
        qid_of: Dict[Tuple, int] = {}
        s_qid: List[np.ndarray] = []
        q_meta: List[Tuple[int, str, str, bool]] = []
        for s, st in enumerate(streams):
            lookup = np.empty(st.num_tenants, dtype=np.int64)
            tier = st.deferrable if two_tier else False
            for t, tenant in enumerate(self.s_tenants[s]):
                key = (tier, st.job_class.name, tenant)
                qid = qid_of.get(key)
                if qid is None:
                    qid = qid_of[key] = len(q_meta)
                    q_meta.append((int(s_tid[s][t]),
                                   st.job_class.name, tenant, tier))
                lookup[t] = qid
            s_qid.append(lookup)
        nq = len(q_meta)
        qid_np = np.zeros(n, dtype=np.int64)
        for s in range(len(streams)):
            mask = stream_np == s
            qid_np[mask] = s_qid[s][tenant_np[mask]]
        self.q_tid = [m[0] for m in q_meta]
        self.q_name = [m[1] for m in q_meta]
        self.q_tenant = [m[2] for m in q_meta]
        q_tier = [m[3] for m in q_meta]
        order = np.argsort(qid_np, kind="stable")
        counts = np.bincount(qid_np, minlength=nq).astype(np.int64)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        self.q_jobs_np = [order[bounds[q]:bounds[q + 1]]
                          for q in range(nq)]
        # edf/dw walk queue members per job (prefix minima, held-back
        # notes): python lists index ~3x faster there.  fifo touches
        # one member per batch: the numpy views are fine as-is.
        self.q_jobs = (self.q_jobs_np if self.policy_code == 0
                       else [ids.tolist() for ids in self.q_jobs_np])
        self.q_times = [arr_np[ids].tolist() for ids in self.q_jobs_np]
        self.q_head = [0] * nq
        self.q_total = [int(c) for c in counts]
        # Queues whose jobs all carry infinite deadlines skip the
        # prefix-min/trim work in admission entirely.
        self.q_has_dl = (np.bincount(
            qid_np, weights=np.isfinite(dead_np),
            minlength=nq) > 0).tolist()

        # ---- priority domains ---------------------------------------
        # code 0: fifo (arrival); 1: edf (deadline, arrival);
        # 2: deferrable tier (forced start, arrival).
        if two_tier:
            self.idom = _QueueDomain()
            self.ddom = _QueueDomain()
            self.idom.code, self.ddom.code = 1, 2
            self.domains = [self.idom, self.ddom]
            dom_of = [self.ddom if t else self.idom for t in q_tier]
        else:
            dom = _QueueDomain()
            dom.code = self.policy_code  # 0 or 1
            self.domains = [dom]
            self.idom = dom
            self.ddom = None
            dom_of = [dom] * nq
        self.q_dom = dom_of
        # seq: first-enqueue order within a domain = order of each
        # queue's first job in the global arrival order.
        self.q_seq = [0] * nq
        for dom in self.domains:
            dom.qids = sorted(
                (q for q in range(nq)
                 if dom_of[q] is dom and self.q_total[q]),
                key=lambda q: self.q_jobs[q][0])
            for seq, q in enumerate(dom.qids):
                self.q_seq[q] = seq
            if not two_tier:
                dom.times = self.arr_list  # already ascending
            else:
                dom.times = np.sort(
                    arr_np[self.def_mask] if dom is self.ddom
                    else arr_np[~self.def_mask]).tolist()
            for q in dom.qids:
                heapq.heappush(dom.act,
                               (self.q_times[q][0], q, 0))

        # ---- deferral stamps (deferrable-window only) ---------------
        self.deferral_events = 0
        self.deferred_count = 0
        if two_tier:
            def_ids = np.nonzero(self.def_mask)[0]
            self.def_times = arr_np[def_ids].tolist()
            self.def_pos = np.full(n, -1, dtype=np.int64)
            self.def_pos[def_ids] = np.arange(def_ids.size)
            self.stamps = np.zeros(def_ids.size, dtype=np.int64)
            self.def_cursor = 0

        # ---- devices ------------------------------------------------
        nd = sim.num_devices
        self.dev_free = [0.0] * nd
        self.dev_busy = [0.0] * nd
        self.dev_keyload = [0.0] * nd
        self.dev_jobs = [0] * nd
        if self.set_cache_ok:
            self.caches = [SetKeyCache(sim.key_cache_bytes,
                                       self.key_sets)
                           for _ in range(nd)]
        else:
            self.caches = [KeyCache(sim.key_cache_bytes)
                           for _ in range(nd)]
        self.free_heap = [(0.0, d) for d in range(nd)]
        heapq.heapify(self.free_heap)

        # ---- run accumulators ---------------------------------------
        # Arrival high-water mark (the DES admit cursor); -inf so the
        # first _advance processes t=0 arrivals (trace replay).
        self.clock = -math.inf
        self.done = 0
        self.batches = 0
        self.batched_jobs = 0
        self.cost = 0.0
        self.makespan = 0.0
        self.rec_sizes: List[List[int]] = [[] for _ in range(nq)]
        self.rec_fin: List[List[float]] = [[] for _ in range(nq)]
        self.seen_classes: Dict[str, None] = {}
        self.rejected_ids: List[int] = []
        self.rej_classes: Dict[str, int] = {}
        self.arrival_cursor = 0  # recorder job_arrival sweep
        #: Deferral-event count at the top of the current
        #: ``_next_batch`` call (the DW held-back baseline).
        self._events_at_entry = 0

    # ------------------------------------------------------------------
    # queue-domain machinery (DES _QueueSet mirror)
    # ------------------------------------------------------------------

    def _push_ready(self, dom: _QueueDomain, qid: int,
                    pos: int) -> None:
        jid = self.q_jobs[qid][pos]
        code = dom.code
        if code == 0:
            entry = (self.arr_list[jid], self.q_seq[qid], qid, pos)
        elif code == 1:
            entry = (self.dead_list[jid], self.arr_list[jid],
                     self.q_seq[qid], qid, pos)
        else:
            entry = (self.forced_list[jid], self.arr_list[jid],
                     self.q_seq[qid], qid, pos)
        heapq.heappush(dom.ready, entry)

    def _advance(self, now: float) -> None:
        # The DES admit cursor is a high-water mark: a board popping
        # with an earlier free time than the last dispatch must still
        # see every job already enqueued.  All arrival counting runs
        # against this clock; only dispatch timing uses the board's
        # ``now``.
        if now <= self.clock:
            return
        self.clock = clock = now
        for dom in self.domains:
            dom.arrived = bisect_right(dom.times, clock)
            act = dom.act
            q_head = self.q_head
            while act and act[0][0] <= clock:
                _, qid, pos = heapq.heappop(act)
                if q_head[qid] == pos:
                    self._push_ready(dom, qid, pos)
        if self.policy_code == 2:
            idx = bisect_right(self.def_times, clock, self.def_cursor)
            if idx > self.def_cursor:
                self.stamps[self.def_cursor:idx] = self.deferral_events
                self.def_cursor = idx

    def _pop_valid(self, dom: _QueueDomain) -> Optional[Tuple]:
        ready = dom.ready
        q_head = self.q_head
        while ready:
            entry = heapq.heappop(ready)
            if q_head[entry[-2]] == entry[-1]:
                return entry
        return None

    def _peek(self, dom: _QueueDomain) -> Optional[Tuple]:
        ready = dom.ready
        q_head = self.q_head
        while ready:
            entry = ready[0]
            if q_head[entry[-2]] == entry[-1]:
                return entry
            heapq.heappop(ready)
        return None

    def _requeue(self, qid: int, now: float) -> None:
        pos = self.q_head[qid]
        if pos < self.q_total[qid]:
            t = self.q_times[qid][pos]
            dom = self.q_dom[qid]
            if t <= self.clock:
                self._push_ready(dom, qid, pos)
            else:
                heapq.heappush(dom.act, (t, qid, pos))

    def _take(self, qid: int, size: int) -> Tuple[int, int, int]:
        pos = self.q_head[qid]
        self.q_head[qid] = pos + size
        self.q_dom[qid].consumed += size
        self.done += size
        return (qid, pos, size)

    def _note_held_back(self, jid: int, events_at_entry: int) -> None:
        if self.stamps[self.def_pos[jid]] < events_at_entry:
            self.deferred_count += 1

    def _reject_head(self, qid: int, now: float, note: bool,
                     events_at_entry: int) -> None:
        pos = self.q_head[qid]
        jid = self.q_jobs[qid][pos]
        self.q_head[qid] = pos + 1
        self.q_dom[qid].consumed += 1
        self.done += 1
        if note:
            self._note_held_back(jid, events_at_entry)
        self.rejected_ids.append(jid)
        name = self.q_name[qid]
        self.rej_classes[name] = self.rej_classes.get(name, 0) + 1
        self.rec_sizes[qid].append(1)
        self.rec_fin[qid].append(math.nan)
        if self.rec is not None:
            deadline = self.dead_list[jid]
            self.rec.job_rejected(
                t=now, job_id=int(jid), job_class=name,
                tenant=self.q_tenant[qid],
                deadline_s=(None if deadline == math.inf
                            else deadline))

    # ------------------------------------------------------------------
    # admission (the DES _edf_admit, against array-backed queues)
    # ------------------------------------------------------------------

    def _gang_start(self, now: float, nf: int) -> float:
        if nf <= 1:
            return now
        extra = heapq.nsmallest(nf - 1, self.free_heap)
        free = max((self.dev_free[i] for _, i in extra), default=now)
        return max(now, free)

    def _load_seconds(self, miss_bytes: int) -> float:
        if miss_bytes == 0:
            return 0.0
        return miss_bytes / self.pcie_denom + self.pcie_lat

    def _load_preview(self, dev: int, qid: int, s: int,
                      nf: int) -> float:
        tid = self.q_tid[qid]
        caches = self.caches
        if nf <= 1:
            if self.set_cache_ok:
                return self._load_seconds(caches[dev].peek_miss_bytes(
                    tid, self.s_setid[s]))
            return self._load_seconds(caches[dev].peek_miss_bytes(
                self.tenant_names[tid], self.s_class[s]))
        members = [dev]
        members += [i for _, i in
                    heapq.nsmallest(nf - 1, self.free_heap)]
        if self.set_cache_ok:
            sid = self.s_setid[s]
            return max(self._load_seconds(
                caches[m].peek_miss_bytes(tid, sid)) for m in members)
        tenant = self.tenant_names[tid]
        jc = self.s_class[s]
        return max(self._load_seconds(
            caches[m].peek_miss_bytes(tenant, jc)) for m in members)

    def _edf_admit(self, dom: _QueueDomain, now: float, dev: int,
                   urgent_only: bool = False,
                   note: bool = False) -> Optional[Tuple[int, int, int]]:
        skipped: List[int] = []
        max_batch = self.sim.max_batch
        q_head = self.q_head
        q_jobs = self.q_jobs
        q_times = self.q_times
        q_has_dl = self.q_has_dl
        dead = self.dead_list
        launch = self.launch_s
        clock = self.clock
        inf = math.inf
        events_at_entry = self._events_at_entry
        try:
            while True:
                entry = self._pop_valid(dom)
                if entry is None:
                    return None
                qid = entry[-2]
                if urgent_only and entry[0] > now:
                    self._requeue(qid, now)
                    return None
                pos = q_head[qid]
                jobs = q_jobs[qid]
                size = min(max_batch,
                           bisect_right(q_times[qid], clock) - pos)
                if q_has_dl[qid]:
                    # prefix[i]: tightest effective deadline among
                    # the first i + 1 queued jobs (the whole batch
                    # shares one finish time).
                    prefix: List[float] = []
                    tight = inf
                    for k in range(pos, pos + size):
                        d = dead[jobs[k]]
                        if d < tight:
                            tight = d
                        prefix.append(tight)
                    if prefix[size - 1] != inf:
                        head_jid = jobs[pos]
                        s = self.stream_np[head_jid]
                        secs = self.s_secs[s]
                        start = self._gang_start(now, self.s_nf[s])
                        load_s = self._load_preview(dev, qid, s,
                                                    self.s_nf[s])
                        while size and (
                            prefix[size - 1] != inf
                            and start + (launch + load_s + size * secs)
                            > prefix[size - 1]
                        ):
                            size -= 1
                        if size == 0:
                            deadline = dead[head_jid]
                            if urgent_only or (
                                start + (launch + 1 * secs) > deadline
                            ):
                                self._reject_head(qid, now, note,
                                                  events_at_entry)
                                self._requeue(qid, now)
                            else:
                                skipped.append(qid)
                                if self.rec is not None:
                                    self.rec.policy_event(
                                        t=now, name="skip cold board",
                                        job_class=self.q_name[qid],
                                        tenant=self.q_tenant[qid],
                                        job_id=int(head_jid))
                            continue
                taken = self._take(qid, size)
                self._requeue(qid, now)
                if note:
                    for k in range(taken[1], taken[1] + size):
                        self._note_held_back(jobs[k], events_at_entry)
                return taken
        finally:
            for qid in skipped:
                self._requeue(qid, now)

    # ------------------------------------------------------------------
    # policy dispatch
    # ------------------------------------------------------------------

    def _mark_deferred(self, now: float) -> None:
        self.deferral_events += 1
        if self.rec is not None:
            self.rec.policy_event(
                t=now, name="defer batch tier",
                pending=self.ddom.arrived - self.ddom.consumed,
                cheap=self.price.is_cheap(now))

    def _next_batch(self, now: float,
                    dev: int) -> Optional[Tuple[int, int, int]]:
        code = self.policy_code
        if code == 0:
            entry = self._pop_valid(self.idom)
            if entry is None:
                return None
            qid = entry[-2]
            arrived = (bisect_right(self.q_times[qid], self.clock)
                       - self.q_head[qid])
            taken = self._take(qid, min(self.sim.max_batch, arrived))
            self._requeue(qid, now)
            return taken
        if code == 1:
            return self._edf_admit(self.idom, now, dev)
        self._events_at_entry = self.deferral_events
        ddom = self.ddom
        # 1. Batch jobs whose forced start has arrived run first.
        entry = self._peek(ddom)
        if entry is not None and entry[0] <= now:
            taken = self._edf_admit(ddom, now, dev, urgent_only=True,
                                    note=True)
            if taken is not None:
                if self.rec is not None:
                    self.rec.policy_event(
                        t=now, name="forced start",
                        job_class=self.q_name[taken[0]],
                        tenant=self.q_tenant[taken[0]],
                        batch=taken[2])
                return taken
        # 2. Interactive traffic owns the pool otherwise.
        if self.idom.arrived - self.idom.consumed > 0:
            if ddom.arrived - ddom.consumed > 0:
                self._mark_deferred(now)
            taken = self._edf_admit(self.idom, now, dev)
            if taken is not None:
                return taken
        # 3. Remaining batch work runs only while the signal is cheap.
        if ddom.arrived - ddom.consumed > 0:
            if self.price.is_cheap(now):
                return self._edf_admit(ddom, now, dev, note=True)
            self._mark_deferred(now)
        return None

    def _next_event(self, now: float) -> float:
        if self.policy_code != 2:
            return math.inf
        wake = math.inf
        ddom = self.ddom
        if ddom.arrived - ddom.consumed > 0:
            entry = self._peek(ddom)
            if entry is not None and entry[0] > now:
                wake = entry[0]
            if not self.price.is_cheap(now):
                wake = min(wake, self.price.next_cheap(now))
        return wake

    # ------------------------------------------------------------------
    # recorder mirrors (only entered when a recorder is live)
    # ------------------------------------------------------------------

    def _rec_admissions(self, now: float) -> None:
        arrived_total = 0
        for dom in self.domains:
            arrived_total += dom.arrived
        rec = self.rec
        for j in range(self.arrival_cursor, arrived_total):
            s = self.stream_np[j]
            deadline = self.dead_list[j]
            rec.job_arrival(
                t=self.arr_list[j], job_id=j,
                job_class=self.s_name[s],
                tenant=self.tenant_names[int(self.tid_np[j])],
                deadline_s=(None if deadline == math.inf
                            else deadline),
                deferrable=bool(self.def_mask[j]))
        self.arrival_cursor = arrived_total
        depths: Dict[Tuple[str, str], int] = {}
        for dom in self.domains:
            for qid in dom.qids:
                depth = (bisect_right(self.q_times[qid], self.clock)
                         - self.q_head[qid])
                if depth > 0:
                    key = (self.q_name[qid], self.q_tenant[qid])
                    depths[key] = depths.get(key, 0) + depth
        rec.queue_sample(t=now, total=arrived_total - self.done,
                         depths=depths)

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------

    def run(self) -> ServingReport:
        rec = self.rec
        sim = self.sim
        if rec is not None:
            rec.run_begin(scenario=self.scenario.name,
                          num_devices=sim.num_devices,
                          policy=self.policy_name, price=self.price,
                          max_batch=sim.max_batch)
        heappush, heappop = heapq.heappush, heapq.heappop
        free_heap = self.free_heap
        arr_list = self.arr_list
        n = self.n
        dev_free = self.dev_free
        dev_busy = self.dev_busy
        dev_keyload = self.dev_keyload
        launch = self.launch_s
        denom = self.pcie_denom
        pcie_lat = self.pcie_lat
        s_secs = self.s_secs
        s_nf = self.s_nf
        s_setid = self.s_setid
        s_class = self.s_class
        stream_np = self.stream_np
        q_jobs = self.q_jobs
        q_tid = self.q_tid
        q_name = self.q_name
        dead_list = self.dead_list
        caches = self.caches
        set_mode = self.set_cache_ok
        tenant_names = self.tenant_names
        rec_sizes = self.rec_sizes
        rec_fin = self.rec_fin
        seen = self.seen_classes
        integral = self.price.integral
        domains = self.domains
        advance = self._advance
        next_batch = self._next_batch
        makespan = 0.0
        cost = 0.0
        batches = 0
        batched_jobs = 0
        while self.done < n:
            free_at, dev = heappop(free_heap)
            now = free_at
            advance(now)
            pending = 0
            for dom in domains:
                pending += dom.arrived - dom.consumed
            if pending == 0:
                # Idle until the next arrival (global order == id
                # order, so the next unadmitted job is arr[done]).
                now = arr_list[self.done]
                advance(now)
            if rec is not None:
                self._rec_admissions(now)
            taken = next_batch(now, dev)
            if taken is None:
                pending = 0
                arrived_total = 0
                for dom in domains:
                    pending += dom.arrived - dom.consumed
                    arrived_total += dom.arrived
                if pending:
                    wake = self._next_event(now)
                    if arrived_total < n:
                        t = arr_list[arrived_total]
                        if t < wake:
                            wake = t
                    if wake <= now:
                        wake = math.nextafter(now, math.inf)
                    if rec is not None:
                        rec.defer(board=dev, t=now, wake=wake)
                    heappush(free_heap, (wake, dev))
                else:
                    heappush(free_heap, (now, dev))
                continue
            qid, pos, size = taken
            jid = q_jobs[qid][pos]
            s = stream_np[jid]
            nf = s_nf[s]
            start = now
            gang = [dev]
            if nf > 1:
                for _ in range(nf - 1):
                    _, extra = heappop(free_heap)
                    gang.append(extra)
                    free = dev_free[extra]
                    if free > start:
                        start = free
            tid = q_tid[qid]
            load_s = 0.0
            member_loads = [] if rec is not None else None
            if set_mode:
                sid = s_setid[s]
                for di in gang:
                    miss = caches[di].request(tid, sid)
                    load = miss / denom + pcie_lat if miss else 0.0
                    dev_keyload[di] += load
                    if member_loads is not None:
                        member_loads.append((di, load, miss))
                    if load > load_s:
                        load_s = load
            else:
                tenant = tenant_names[tid]
                jc = s_class[s]
                for di in gang:
                    miss = caches[di].request(tenant, jc)
                    load = miss / denom + pcie_lat if miss else 0.0
                    dev_keyload[di] += load
                    if member_loads is not None:
                        member_loads.append((di, load, miss))
                    if load > load_s:
                        load_s = load
            compute_s = size * s_secs[s]
            service = launch + load_s + compute_s
            finish = start + service
            for di in gang:
                dev_free[di] = finish
                dev_busy[di] += service
                heappush(free_heap, (finish, di))
            self.dev_jobs[gang[0]] += size
            batches += 1
            batched_jobs += size
            batch_cost = len(gang) * integral(start, finish)
            cost += batch_cost
            rec_sizes[qid].append(size)
            rec_fin[qid].append(finish)
            if finish > makespan:
                makespan = finish
            name = q_name[qid]
            if name not in seen:
                seen[name] = None
            if rec is not None:
                slo_met = slo_total = 0
                for k in range(pos, pos + size):
                    deadline = dead_list[q_jobs[qid][k]]
                    if deadline != math.inf:
                        slo_total += 1
                        if finish <= deadline:
                            slo_met += 1
                rec.batch(
                    start=start, finish=finish, job_class=name,
                    tenant=self.q_tenant[qid], batch_size=size,
                    launch_s=launch, members=member_loads,
                    cache_stats=tuple(caches[di].stats()
                                      for di in gang),
                    slo_met=slo_met, slo_total=slo_total,
                    cost=batch_cost)
        self.makespan = makespan
        self.cost = cost
        self.batches = batches
        self.batched_jobs = batched_jobs
        if rec is not None:
            rec.run_end(makespan_s=makespan,
                        device_busy_s=tuple(dev_busy),
                        jobs_done=n - len(self.rejected_ids))
        return self._report()

    # ------------------------------------------------------------------
    # report assembly
    # ------------------------------------------------------------------

    def _report(self) -> ServingReport:
        n = self.n
        finish_all = np.full(n, math.nan)
        for qid in range(len(self.q_name)):
            sizes = self.rec_sizes[qid]
            if sizes:
                # Run-length expansion: batch k's finish applies to
                # the next `size` jobs of the queue; rejected heads
                # were recorded as (1, NaN).
                finish_all[self.q_jobs_np[qid]] = np.repeat(
                    np.asarray(self.rec_fin[qid]),
                    np.asarray(sizes, dtype=np.int64))
        completed_mask = ~np.isnan(finish_all)
        lat_np = finish_all - self.arr_np
        makespan = self.makespan
        names = list(self.seen_classes)
        rid_of = {name: rid for rid, name in enumerate(names)}
        rid_stream = np.asarray(
            [rid_of.get(nm, -1) for nm in self.s_name], dtype=np.int64)
        rid_job = (rid_stream[self.stream_np] if n
                   else np.empty(0, dtype=np.int64))
        nclasses = len(names)
        # SLO accounting: completed deadline-carrying jobs first...
        has_dl = np.isfinite(self.dead_np)
        cm_idx = np.nonzero(completed_mask & has_dl)[0]
        met_idx = cm_idx[finish_all[cm_idx] <= self.dead_np[cm_idx]]
        slo_met: Dict[str, int] = {}
        slo_total: Dict[str, int] = {}
        tenant_met: Dict[str, int] = {}
        tenant_total: Dict[str, int] = {}
        if cm_idx.size:
            tot_c = np.bincount(rid_job[cm_idx], minlength=nclasses)
            met_c = np.bincount(rid_job[met_idx], minlength=nclasses)
            for rid, name in enumerate(names):
                if tot_c[rid]:
                    slo_total[name] = int(tot_c[rid])
                    slo_met[name] = int(met_c[rid])
            ntenants = len(self.tenant_names)
            tot_t = np.bincount(self.tid_np[cm_idx],
                                minlength=ntenants)
            met_t = np.bincount(self.tid_np[met_idx],
                                minlength=ntenants)
            for tid, tname in enumerate(self.tenant_names):
                if tot_t[tid]:
                    tenant_total[tname] = int(tot_t[tid])
                    tenant_met[tname] = int(met_t[tid])
        # ... then every rejected job joins the denominators.
        for jid in self.rejected_ids:
            name = self.s_name[self.stream_np[jid]]
            slo_total[name] = slo_total.get(name, 0) + 1
            slo_met.setdefault(name, 0)
            tname = self.tenant_names[int(self.tid_np[jid])]
            tenant_total[tname] = tenant_total.get(tname, 0) + 1
            tenant_met.setdefault(tname, 0)
        stats: List[WorkloadStats] = []
        for rid, name in enumerate(names):
            lat_cls = lat_np[completed_mask & (rid_job == rid)]
            count = int(lat_cls.size)
            streaming = (self.streaming is True
                         or (self.streaming == "auto"
                             and count > STREAMING_AUTO_THRESHOLD))
            if streaming:
                reservoir = ReservoirQuantiles(STREAMING_RESERVOIR,
                                               seed=0)
                reservoir.add_array(lat_cls)
                p50 = reservoir.quantile(0.50) * 1e3
                p95 = reservoir.quantile(0.95) * 1e3
                p99 = reservoir.quantile(0.99) * 1e3
                mean = float(np.sum(lat_cls)) / count * 1e3
            else:
                # Sequential sum over the sorted list reproduces the
                # DES mean bit for bit (numpy's pairwise summation
                # would drift in the last ulp).
                ordered = np.sort(lat_cls).tolist()
                p50 = percentile(ordered, 50) * 1e3
                p95 = percentile(ordered, 95) * 1e3
                p99 = percentile(ordered, 99) * 1e3
                mean = sum(ordered) / count * 1e3
            stats.append(WorkloadStats(
                name=name, jobs=count,
                throughput_jps=count / makespan if makespan else 0.0,
                p50_ms=p50, p95_ms=p95, p99_ms=p99, mean_ms=mean,
                slo_attainment=(slo_met[name] / slo_total[name]
                                if slo_total.get(name) else None),
                rejected=self.rej_classes.get(name, 0)))
        # A class may be rejected out of existence: report it anyway.
        for name, dropped in self.rej_classes.items():
            if name not in rid_of:
                stats.append(WorkloadStats(
                    name=name, jobs=0, throughput_jps=0.0,
                    p50_ms=float("nan"), p95_ms=float("nan"),
                    p99_ms=float("nan"), mean_ms=float("nan"),
                    slo_attainment=0.0, rejected=dropped))
        busy = sum(self.dev_busy)
        hits = sum(c.hits for c in self.caches)
        misses = sum(c.misses for c in self.caches)
        total_slo = sum(slo_total.values())
        num_devices = self.sim.num_devices
        # Goodput mirrors the DES count of completed jobs with
        # ``finish <= effective deadline`` — a job without a deadline
        # (dead_np inf) always counts, so the integer numerator (and
        # hence the division) is bit-identical across engines.
        good = int((completed_mask & ~has_dl).sum()) + int(met_idx.size)
        return ServingReport(
            scenario=self.scenario.name,
            makespan_s=makespan,
            jobs_done=n - len(self.rejected_ids),
            per_workload=stats,
            device_utilization=(busy / (makespan * num_devices)
                                if makespan else 0.0),
            key_hit_rate=(hits / (hits + misses)
                          if hits + misses else 0.0),
            key_bytes_loaded=sum(c.bytes_loaded for c in self.caches),
            batches=self.batches,
            mean_batch_size=(self.batched_jobs / self.batches
                             if self.batches else 0.0),
            per_device_jobs=tuple(self.dev_jobs),
            policy=self.policy_name,
            rejected_jobs=len(self.rejected_ids),
            deferred_jobs=self.deferred_count,
            cost_price_units=self.cost,
            slo_attainment=(sum(slo_met.values()) / total_slo
                            if total_slo else None),
            per_tenant_slo=tuple(
                (tname, tenant_met[tname] / tenant_total[tname])
                for tname in sorted(tenant_total)),
            goodput_jps=good / makespan if makespan else 0.0,
            # Fixed pool: every board is paid for the whole run, the
            # same expression the DES report uses (parity-compared).
            board_seconds=makespan * num_devices)


def run_fast(sim, scenario: Scenario, seed: int = 0,
             policy: str = "fifo",
             price: Optional[PriceSignal] = None,
             recorder: Optional[Recorder] = None,
             arrival_mode: str = "exact",
             streaming_quantiles: Optional[bool] = None,
             faults=None) -> ServingReport:
    """Run ``scenario`` through the vectorized engine.

    Same contract as :meth:`ServingSimulator.run` with
    ``engine="fast"`` (which is the intended entry point); see the
    module docstring for the equivalence guarantees.

    The fast engine is strictly fault-free: it is the parity oracle
    the fault-disabled DES is held to, so ``faults`` must be ``None``
    (fault injection lives in :mod:`repro.runtime.faults`, DES-only).
    """
    if faults is not None:
        raise ValueError(
            "the fast engine does not support fault injection; "
            "run faults with engine='des'")
    if price is None:
        price = PriceSignal.flat()
    engine = _FastEngine(sim, scenario, seed, policy, price, recorder,
                         arrival_mode, streaming_quantiles)
    return engine.run()


__all__ = ["STREAMING_AUTO_THRESHOLD", "STREAMING_RESERVOIR",
           "SetKeyCache", "run_fast"]
