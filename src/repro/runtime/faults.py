"""Board-fault injection and recovery for the serving simulator.

Real accelerator fleets lose boards — transiently (a thermal trip, an
XRT reset) and permanently (wear-out).  This module adds that failure
surface to the serving stack in three pieces:

* **Fault processes** — :class:`PoissonFaultProcess` (exponential
  time-to-failure at an MTBF with exponential MTTR repairs),
  :class:`WeibullFaultProcess` (wear-out hazard, ``shape > 1``), and
  :class:`TraceFaultProcess` (scripted per-board fault traces, JSONL
  round-trippable — the deterministic chaos-test input).  Draws are
  seeded per ``(run seed, board)``, so fault schedules are exactly
  reproducible and independent of arrival randomness.
* **Retry policies** — what happens to the jobs of a batch a fault
  killed: :class:`NoRetry` sheds them, :class:`ImmediateRetry`
  re-enqueues instantly up to a retry budget, and
  :class:`ExponentialBackoffRetry` re-enqueues after a capped,
  jittered exponential backoff.  Retried jobs keep their original
  arrival time and deadline — latency and SLO accounting never reset.
* **The fault-aware event loop** — :func:`run_with_faults`, now a
  delegate onto the unified membership loop
  (:func:`repro.runtime.membership.run_with_ledger`) with elasticity
  off.  It stays out of the fault-free loop in
  :meth:`repro.runtime.serving.ServingSimulator.run`, so the
  ``faults=None`` path stays byte-for-byte the pre-fault code (the
  golden bit-identity suite pins this).

Fault semantics
---------------

A board's fault timeline is an alternating renewal process of
``(down_at, up_at)`` intervals, consumed lazily.  When a board goes
down its HBM switching-key cache is wiped (counted as evictions), so
a repaired board is *cold*: its first batches re-replicate their key
working sets over PCIe at the usual
:func:`repro.runtime.serving.key_load_seconds` price — re-replication
is charged through the existing cost model, not a bolted-on constant.
``up_at = inf`` is a permanent failure: the board leaves the pool.

A fault during an in-flight batch **kills the whole gang**: every
member's work since the batch start is wasted (reported as
``wasted_service_s``, still billed under the price signal), and each
job goes to the retry policy.  A striped job whose planned gang no
longer fits the pool — fewer non-dead boards than ``num_fpgas`` — is
**re-planned** onto the largest viable smaller stripe (degraded mode,
via :meth:`repro.runtime.serving.JobClass.restriped`) or shed with
reason ``"degraded"`` when no stripe fits or the class was built
without its trace.  Transient shortages are simply waited out: a gang
treats a down board like a busy one and starts when it repairs.

Reports grow ``board_faults``/``failures``/``retries``/``shed_jobs``/
``shed_degraded``/``degraded_jobs``/``wasted_service_s`` and
``goodput_jps`` (completed-by-deadline jobs per second — the useful
rate to weigh against ``throughput_jps``); recorders see
``board_fault``/``board_repair`` instants and a healthy-board counter.
"""

from __future__ import annotations

import json
import math
import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..obs import Recorder
from .policies import PriceSignal
from .serving import Job, Scenario, ServingReport
from .specs import SpecError, parse_spec_kwargs, take_spec_options

#: Registry of spec names accepted by :func:`make_fault_process`.
FAULT_PROCESSES = ("poisson", "weibull", "trace")

#: Registry of spec names accepted by :func:`make_retry_policy`.
RETRY_POLICIES = ("none", "immediate", "backoff")


# ----------------------------------------------------------------------
# Fault processes
# ----------------------------------------------------------------------

class FaultProcess:
    """Base class: a per-board alternating up/down renewal process.

    Subclasses implement :meth:`intervals` — an infinite stream of
    ``(time_to_failure_s, time_to_repair_s)`` pairs drawn from a
    board-local RNG (``time_to_repair_s = inf`` ends the board
    permanently).  :meth:`board_intervals` converts them into absolute
    ``(down_at_s, up_at_s)`` intervals, seeding the RNG from the run
    seed and the board index (string seeds: tuple seeding raises on
    modern Pythons), so every board's schedule is independent and
    reproducible.
    """

    name = "base"

    def intervals(self, rng: random.Random
                  ) -> Iterator[Tuple[float, float]]:
        raise NotImplementedError

    def board_intervals(self, board: int, seed: int
                        ) -> Iterator[Tuple[float, float]]:
        rng = random.Random(f"faults:{seed}:{board}")
        t = 0.0
        for ttf, ttr in self.intervals(rng):
            down = t + ttf
            up = math.inf if math.isinf(ttr) else down + ttr
            yield down, up
            if math.isinf(up):
                return
            t = up

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PoissonFaultProcess(FaultProcess):
    """Memoryless faults: exponential time-to-failure at ``mtbf_s``,
    exponential repairs at ``mttr_s`` (the classic availability
    model; steady-state availability is ``mtbf / (mtbf + mttr)``)."""

    name = "poisson"

    def __init__(self, mtbf_s: float, mttr_s: float):
        if mtbf_s <= 0:
            raise ValueError("mtbf_s must be positive")
        if mttr_s <= 0:
            raise ValueError("mttr_s must be positive")
        self.mtbf_s = float(mtbf_s)
        self.mttr_s = float(mttr_s)

    def intervals(self, rng):
        fail = 1.0 / self.mtbf_s
        repair = 1.0 / self.mttr_s
        while True:
            yield rng.expovariate(fail), rng.expovariate(repair)

    def __repr__(self):
        return (f"PoissonFaultProcess(mtbf_s={self.mtbf_s:g}, "
                f"mttr_s={self.mttr_s:g})")


class WeibullFaultProcess(FaultProcess):
    """Wear-out faults: Weibull time-to-failure (``shape > 1`` gives
    an increasing hazard — old boards fail more), exponential repairs.
    A ``permanent_after``-th fault, when set, retires the board for
    good (the wear-out end state)."""

    name = "weibull"

    def __init__(self, scale_s: float, shape: float = 2.0,
                 mttr_s: float = 0.1,
                 permanent_after: Optional[int] = None):
        if scale_s <= 0:
            raise ValueError("scale_s must be positive")
        if shape <= 0:
            raise ValueError("shape must be positive")
        if mttr_s <= 0:
            raise ValueError("mttr_s must be positive")
        if permanent_after is not None and permanent_after < 1:
            raise ValueError("permanent_after must be >= 1")
        self.scale_s = float(scale_s)
        self.shape = float(shape)
        self.mttr_s = float(mttr_s)
        self.permanent_after = permanent_after

    def intervals(self, rng):
        repair = 1.0 / self.mttr_s
        count = 0
        while True:
            ttf = rng.weibullvariate(self.scale_s, self.shape)
            count += 1
            if (self.permanent_after is not None
                    and count >= self.permanent_after):
                yield ttf, math.inf
                return
            yield ttf, rng.expovariate(repair)

    def __repr__(self):
        return (f"WeibullFaultProcess(scale_s={self.scale_s:g}, "
                f"shape={self.shape:g}, mttr_s={self.mttr_s:g}, "
                f"permanent_after={self.permanent_after})")


class TraceFaultProcess(FaultProcess):
    """Scripted faults: explicit ``(board, down_at_s, up_at_s)``
    events (``up_at_s = None``/``inf`` marks a permanent failure).
    The deterministic input for chaos tests and for replaying measured
    fleet incident logs; JSONL round-trip via :meth:`from_jsonl` /
    :meth:`to_jsonl` (one ``{"board":, "down":, "up":}`` object per
    line, mirroring the arrival-trace format)."""

    name = "trace"

    def __init__(self, events: Sequence[Tuple[int, float,
                                              Optional[float]]]):
        per_board: Dict[int, List[Tuple[float, float]]] = {}
        for board, down, up in events:
            up_f = math.inf if up is None else float(up)
            if down < 0:
                raise ValueError("fault times must be >= 0")
            if up_f <= down:
                raise ValueError(
                    f"fault interval ({down}, {up_f}) on board "
                    f"{board} must have up > down")
            per_board.setdefault(int(board), []).append(
                (float(down), up_f))
        for board, intervals in per_board.items():
            intervals.sort()
            for (d0, u0), (d1, _u1) in zip(intervals, intervals[1:]):
                if d1 < u0:
                    raise ValueError(
                        f"overlapping fault intervals on board "
                        f"{board}: ({d0}, {u0}) and ({d1}, ...)")
        self.per_board = per_board

    def board_intervals(self, board, seed):
        return iter(self.per_board.get(board, ()))

    def intervals(self, rng):  # pragma: no cover - not reachable
        raise NotImplementedError("TraceFaultProcess is per-board")

    @classmethod
    def from_jsonl(cls, path: str) -> "TraceFaultProcess":
        events = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                events.append((int(record["board"]),
                               float(record["down"]),
                               record.get("up")))
        return cls(events)

    def to_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            for board in sorted(self.per_board):
                for down, up in self.per_board[board]:
                    fh.write(json.dumps(
                        {"board": board, "down": down,
                         "up": None if math.isinf(up) else up}) + "\n")

    def __repr__(self):
        count = sum(len(v) for v in self.per_board.values())
        return f"TraceFaultProcess({count} events)"


def make_fault_process(spec) -> FaultProcess:
    """Build a fault process from a CLI spec string (or pass an
    instance through).

    ``poisson:mtbf=2,mttr=0.2`` · ``weibull:scale=5,shape=2,mttr=0.5``
    (add ``permanent_after=N`` to retire boards at their N-th fault) ·
    ``trace:PATH`` for a JSONL fault trace.  Times are seconds.
    """
    if isinstance(spec, FaultProcess):
        return spec
    name, _, rest = spec.partition(":")
    name = name.strip().lower()
    if name == "trace":
        if not rest:
            raise SpecError("trace faults need a path: trace:PATH")
        return TraceFaultProcess.from_jsonl(rest)
    kwargs = parse_spec_kwargs(rest, what="fault")
    if name == "poisson":
        mtbf, mttr = take_spec_options(
            kwargs, spec, what="fault process", mtbf=1.0, mttr=0.1)
        return PoissonFaultProcess(mtbf, mttr)
    if name == "weibull":
        scale, shape, mttr, permanent_after = take_spec_options(
            kwargs, spec, what="fault process", scale=1.0, shape=2.0,
            mttr=0.1, permanent_after=math.nan)
        return WeibullFaultProcess(
            scale, shape=shape, mttr_s=mttr,
            permanent_after=(None if math.isnan(permanent_after)
                             else int(permanent_after)))
    raise SpecError(f"unknown fault process {name!r}; "
                    f"try: {', '.join(FAULT_PROCESSES)}")


# ----------------------------------------------------------------------
# Retry policies
# ----------------------------------------------------------------------

class RetryPolicy:
    """Decides when (and whether) a fault-killed job runs again.

    :meth:`next_attempt_s` returns the absolute time the job should
    re-enter the queues, or ``None`` to shed it.  ``job.retries`` is
    the number of re-enqueues already performed — the attempt counter
    budgets and backoffs key off.
    """

    name = "base"

    def next_attempt_s(self, job: Job, now: float,
                       rng: random.Random) -> Optional[float]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoRetry(RetryPolicy):
    """Shed every fault-killed job (the pre-recovery baseline)."""

    name = "none"

    def next_attempt_s(self, job, now, rng):
        return None


class ImmediateRetry(RetryPolicy):
    """Re-enqueue instantly, up to ``max_retries`` per job."""

    name = "immediate"

    def __init__(self, max_retries: int = 3):
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        self.max_retries = int(max_retries)

    def next_attempt_s(self, job, now, rng):
        if job.retries >= self.max_retries:
            return None
        return now

    def __repr__(self):
        return f"ImmediateRetry(max_retries={self.max_retries})"


class ExponentialBackoffRetry(RetryPolicy):
    """Exponential backoff with a cap and deterministic jitter.

    Attempt ``k`` (0-based) waits ``min(cap_s, base_s * factor**k)``
    scaled by ``1 + jitter * U`` with ``U ~ Uniform[0, 1)`` drawn from
    the run's seeded retry RNG — jitter de-synchronizes the retry
    herd a mass failure creates without sacrificing reproducibility.
    ``max_retries`` is the per-job budget; past it the job is shed.
    """

    name = "backoff"

    def __init__(self, base_s: float = 0.01, factor: float = 2.0,
                 cap_s: float = 1.0, max_retries: int = 6,
                 jitter: float = 0.25):
        if base_s <= 0:
            raise ValueError("base_s must be positive")
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        if cap_s < base_s:
            raise ValueError("cap_s must be >= base_s")
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.base_s = float(base_s)
        self.factor = float(factor)
        self.cap_s = float(cap_s)
        self.max_retries = int(max_retries)
        self.jitter = float(jitter)

    def next_attempt_s(self, job, now, rng):
        if job.retries >= self.max_retries:
            return None
        delay = min(self.cap_s, self.base_s * self.factor ** job.retries)
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return now + delay

    def __repr__(self):
        return (f"ExponentialBackoffRetry(base_s={self.base_s:g}, "
                f"factor={self.factor:g}, cap_s={self.cap_s:g}, "
                f"max_retries={self.max_retries}, "
                f"jitter={self.jitter:g})")


def make_retry_policy(spec) -> RetryPolicy:
    """Build a retry policy from a CLI spec (or pass an instance
    through; ``None`` means :class:`NoRetry`).

    ``none`` · ``immediate:max=3`` ·
    ``backoff:base=0.01,factor=2,cap=1,max=6,jitter=0.25``.
    """
    if spec is None:
        return NoRetry()
    if isinstance(spec, RetryPolicy):
        return spec
    name, _, rest = spec.partition(":")
    name = name.strip().lower()
    kwargs = parse_spec_kwargs(rest, what="retry")
    if name == "none":
        take_spec_options(kwargs, spec, what="retry policy")
        return NoRetry()
    if name == "immediate":
        (max_retries,) = take_spec_options(
            kwargs, spec, what="retry policy", max=3)
        return ImmediateRetry(int(max_retries))
    if name == "backoff":
        base, factor, cap, max_retries, jitter = take_spec_options(
            kwargs, spec, what="retry policy", base=0.01, factor=2.0,
            cap=1.0, max=6, jitter=0.25)
        return ExponentialBackoffRetry(
            base_s=base, factor=factor, cap_s=cap,
            max_retries=int(max_retries), jitter=jitter)
    raise SpecError(f"unknown retry policy {name!r}; "
                    f"try: {', '.join(RETRY_POLICIES)}")


# ----------------------------------------------------------------------
# The per-run fault schedule
# ----------------------------------------------------------------------

class FaultSchedule:
    """Lazy per-board fault timelines for one run.

    Each board holds its *current* ``(down_at, up_at)`` interval plus
    a ``processed`` flag (the fault's side effects — cache wipe,
    recorder instants, health bookkeeping — must fire exactly once
    even when the interval is consulted repeatedly while the board is
    down).  Exhausted timelines pin ``(inf, inf)``: no more faults.
    """

    def __init__(self, process: FaultProcess, num_boards: int,
                 seed: int):
        self._iters = [process.board_intervals(b, seed)
                       for b in range(num_boards)]
        self._down = [math.inf] * num_boards
        self._up = [math.inf] * num_boards
        self._processed = [False] * num_boards
        for b in range(num_boards):
            self._pull(b)

    def _pull(self, b: int) -> None:
        try:
            self._down[b], self._up[b] = next(self._iters[b])
        except StopIteration:
            self._down[b] = self._up[b] = math.inf
        self._processed[b] = False

    def current(self, b: int) -> Tuple[float, float]:
        return self._down[b], self._up[b]

    def next_down_s(self, b: int) -> float:
        return self._down[b]

    def processed(self, b: int) -> bool:
        return self._processed[b]

    def mark_processed(self, b: int) -> None:
        self._processed[b] = True

    def advance(self, b: int) -> None:
        self._pull(b)


# ----------------------------------------------------------------------
# The fault-aware event loop
# ----------------------------------------------------------------------

def run_with_faults(sim, scenario: Scenario, seed: int = 0,
                    policy="fifo",
                    price: Optional[PriceSignal] = None,
                    recorder: Optional[Recorder] = None,
                    faults=None,
                    retry=None) -> ServingReport:
    """The DES loop of :meth:`ServingSimulator.run`, with faults.

    Since the membership unification this is a thin delegate onto
    :func:`repro.runtime.membership.run_with_ledger` with
    ``autoscale=None``: the unified loop gates every elasticity
    construct on a scale policy being present, so the faults-only
    instruction stream — lazy fault settlement when a board is
    popped, gang members waiting on repairs like they wait on busy
    boards, mid-batch kills feeding the retry policy, degraded
    re-planning for gangs the shrunken pool can no longer seat, and
    pool-death shedding — is exactly the PR 8 loop (the golden
    bit-identity suite pins the reports).  Dispatch previews
    (``gang_start`` / ``service_s``) stay fault-blind: admission
    decisions are made against the healthy-pool oracle and faults
    then land where they may — which is exactly the operational
    reality being modeled.
    """
    if faults is None:
        raise ValueError("run_with_faults needs a fault process")
    from .membership import run_with_ledger
    return run_with_ledger(sim, scenario, seed=seed, policy=policy,
                           price=price, recorder=recorder,
                           faults=faults, retry=retry)


__all__ = [
    "FAULT_PROCESSES", "RETRY_POLICIES", "ExponentialBackoffRetry",
    "FaultProcess", "FaultSchedule", "ImmediateRetry", "NoRetry",
    "PoissonFaultProcess", "RetryPolicy", "TraceFaultProcess",
    "WeibullFaultProcess", "make_fault_process", "make_retry_policy",
    "run_with_faults",
]
