"""Board-fault injection and recovery for the serving simulator.

Real accelerator fleets lose boards — transiently (a thermal trip, an
XRT reset) and permanently (wear-out).  This module adds that failure
surface to the serving stack in three pieces:

* **Fault processes** — :class:`PoissonFaultProcess` (exponential
  time-to-failure at an MTBF with exponential MTTR repairs),
  :class:`WeibullFaultProcess` (wear-out hazard, ``shape > 1``), and
  :class:`TraceFaultProcess` (scripted per-board fault traces, JSONL
  round-trippable — the deterministic chaos-test input).  Draws are
  seeded per ``(run seed, board)``, so fault schedules are exactly
  reproducible and independent of arrival randomness.
* **Retry policies** — what happens to the jobs of a batch a fault
  killed: :class:`NoRetry` sheds them, :class:`ImmediateRetry`
  re-enqueues instantly up to a retry budget, and
  :class:`ExponentialBackoffRetry` re-enqueues after a capped,
  jittered exponential backoff.  Retried jobs keep their original
  arrival time and deadline — latency and SLO accounting never reset.
* **The fault-aware event loop** — :func:`run_with_faults`, a fork of
  the exact DES in :meth:`repro.runtime.serving.ServingSimulator.run`.
  It lives here, not as branches inside the fault-free loop, so the
  ``faults=None`` path stays byte-for-byte the pre-fault code (the
  golden bit-identity suite pins this).

Fault semantics
---------------

A board's fault timeline is an alternating renewal process of
``(down_at, up_at)`` intervals, consumed lazily.  When a board goes
down its HBM switching-key cache is wiped (counted as evictions), so
a repaired board is *cold*: its first batches re-replicate their key
working sets over PCIe at the usual
:func:`repro.runtime.serving.key_load_seconds` price — re-replication
is charged through the existing cost model, not a bolted-on constant.
``up_at = inf`` is a permanent failure: the board leaves the pool.

A fault during an in-flight batch **kills the whole gang**: every
member's work since the batch start is wasted (reported as
``wasted_service_s``, still billed under the price signal), and each
job goes to the retry policy.  A striped job whose planned gang no
longer fits the pool — fewer non-dead boards than ``num_fpgas`` — is
**re-planned** onto the largest viable smaller stripe (degraded mode,
via :meth:`repro.runtime.serving.JobClass.restriped`) or shed with
reason ``"degraded"`` when no stripe fits or the class was built
without its trace.  Transient shortages are simply waited out: a gang
treats a down board like a busy one and starts when it repairs.

Reports grow ``board_faults``/``failures``/``retries``/``shed_jobs``/
``shed_degraded``/``degraded_jobs``/``wasted_service_s`` and
``goodput_jps`` (completed-by-deadline jobs per second — the useful
rate to weigh against ``throughput_jps``); recorders see
``board_fault``/``board_repair`` instants and a healthy-board counter.
"""

from __future__ import annotations

import heapq
import json
import math
import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..obs import NULL_RECORDER, Recorder
from .policies import DispatchView, PolicyContext, PriceSignal, make_policy
from .serving import (DeviceState, Job, JobClass, KeyCache, Scenario,
                      ServingReport, key_load_seconds)
from .specs import SpecError, parse_spec_kwargs, take_spec_options
from .striped_lowering import largest_viable_stripe

#: Registry of spec names accepted by :func:`make_fault_process`.
FAULT_PROCESSES = ("poisson", "weibull", "trace")

#: Registry of spec names accepted by :func:`make_retry_policy`.
RETRY_POLICIES = ("none", "immediate", "backoff")


# ----------------------------------------------------------------------
# Fault processes
# ----------------------------------------------------------------------

class FaultProcess:
    """Base class: a per-board alternating up/down renewal process.

    Subclasses implement :meth:`intervals` — an infinite stream of
    ``(time_to_failure_s, time_to_repair_s)`` pairs drawn from a
    board-local RNG (``time_to_repair_s = inf`` ends the board
    permanently).  :meth:`board_intervals` converts them into absolute
    ``(down_at_s, up_at_s)`` intervals, seeding the RNG from the run
    seed and the board index (string seeds: tuple seeding raises on
    modern Pythons), so every board's schedule is independent and
    reproducible.
    """

    name = "base"

    def intervals(self, rng: random.Random
                  ) -> Iterator[Tuple[float, float]]:
        raise NotImplementedError

    def board_intervals(self, board: int, seed: int
                        ) -> Iterator[Tuple[float, float]]:
        rng = random.Random(f"faults:{seed}:{board}")
        t = 0.0
        for ttf, ttr in self.intervals(rng):
            down = t + ttf
            up = math.inf if math.isinf(ttr) else down + ttr
            yield down, up
            if math.isinf(up):
                return
            t = up

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PoissonFaultProcess(FaultProcess):
    """Memoryless faults: exponential time-to-failure at ``mtbf_s``,
    exponential repairs at ``mttr_s`` (the classic availability
    model; steady-state availability is ``mtbf / (mtbf + mttr)``)."""

    name = "poisson"

    def __init__(self, mtbf_s: float, mttr_s: float):
        if mtbf_s <= 0:
            raise ValueError("mtbf_s must be positive")
        if mttr_s <= 0:
            raise ValueError("mttr_s must be positive")
        self.mtbf_s = float(mtbf_s)
        self.mttr_s = float(mttr_s)

    def intervals(self, rng):
        fail = 1.0 / self.mtbf_s
        repair = 1.0 / self.mttr_s
        while True:
            yield rng.expovariate(fail), rng.expovariate(repair)

    def __repr__(self):
        return (f"PoissonFaultProcess(mtbf_s={self.mtbf_s:g}, "
                f"mttr_s={self.mttr_s:g})")


class WeibullFaultProcess(FaultProcess):
    """Wear-out faults: Weibull time-to-failure (``shape > 1`` gives
    an increasing hazard — old boards fail more), exponential repairs.
    A ``permanent_after``-th fault, when set, retires the board for
    good (the wear-out end state)."""

    name = "weibull"

    def __init__(self, scale_s: float, shape: float = 2.0,
                 mttr_s: float = 0.1,
                 permanent_after: Optional[int] = None):
        if scale_s <= 0:
            raise ValueError("scale_s must be positive")
        if shape <= 0:
            raise ValueError("shape must be positive")
        if mttr_s <= 0:
            raise ValueError("mttr_s must be positive")
        if permanent_after is not None and permanent_after < 1:
            raise ValueError("permanent_after must be >= 1")
        self.scale_s = float(scale_s)
        self.shape = float(shape)
        self.mttr_s = float(mttr_s)
        self.permanent_after = permanent_after

    def intervals(self, rng):
        repair = 1.0 / self.mttr_s
        count = 0
        while True:
            ttf = rng.weibullvariate(self.scale_s, self.shape)
            count += 1
            if (self.permanent_after is not None
                    and count >= self.permanent_after):
                yield ttf, math.inf
                return
            yield ttf, rng.expovariate(repair)

    def __repr__(self):
        return (f"WeibullFaultProcess(scale_s={self.scale_s:g}, "
                f"shape={self.shape:g}, mttr_s={self.mttr_s:g}, "
                f"permanent_after={self.permanent_after})")


class TraceFaultProcess(FaultProcess):
    """Scripted faults: explicit ``(board, down_at_s, up_at_s)``
    events (``up_at_s = None``/``inf`` marks a permanent failure).
    The deterministic input for chaos tests and for replaying measured
    fleet incident logs; JSONL round-trip via :meth:`from_jsonl` /
    :meth:`to_jsonl` (one ``{"board":, "down":, "up":}`` object per
    line, mirroring the arrival-trace format)."""

    name = "trace"

    def __init__(self, events: Sequence[Tuple[int, float,
                                              Optional[float]]]):
        per_board: Dict[int, List[Tuple[float, float]]] = {}
        for board, down, up in events:
            up_f = math.inf if up is None else float(up)
            if down < 0:
                raise ValueError("fault times must be >= 0")
            if up_f <= down:
                raise ValueError(
                    f"fault interval ({down}, {up_f}) on board "
                    f"{board} must have up > down")
            per_board.setdefault(int(board), []).append(
                (float(down), up_f))
        for board, intervals in per_board.items():
            intervals.sort()
            for (d0, u0), (d1, _u1) in zip(intervals, intervals[1:]):
                if d1 < u0:
                    raise ValueError(
                        f"overlapping fault intervals on board "
                        f"{board}: ({d0}, {u0}) and ({d1}, ...)")
        self.per_board = per_board

    def board_intervals(self, board, seed):
        return iter(self.per_board.get(board, ()))

    def intervals(self, rng):  # pragma: no cover - not reachable
        raise NotImplementedError("TraceFaultProcess is per-board")

    @classmethod
    def from_jsonl(cls, path: str) -> "TraceFaultProcess":
        events = []
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                events.append((int(record["board"]),
                               float(record["down"]),
                               record.get("up")))
        return cls(events)

    def to_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            for board in sorted(self.per_board):
                for down, up in self.per_board[board]:
                    fh.write(json.dumps(
                        {"board": board, "down": down,
                         "up": None if math.isinf(up) else up}) + "\n")

    def __repr__(self):
        count = sum(len(v) for v in self.per_board.values())
        return f"TraceFaultProcess({count} events)"


def make_fault_process(spec) -> FaultProcess:
    """Build a fault process from a CLI spec string (or pass an
    instance through).

    ``poisson:mtbf=2,mttr=0.2`` · ``weibull:scale=5,shape=2,mttr=0.5``
    (add ``permanent_after=N`` to retire boards at their N-th fault) ·
    ``trace:PATH`` for a JSONL fault trace.  Times are seconds.
    """
    if isinstance(spec, FaultProcess):
        return spec
    name, _, rest = spec.partition(":")
    name = name.strip().lower()
    if name == "trace":
        if not rest:
            raise SpecError("trace faults need a path: trace:PATH")
        return TraceFaultProcess.from_jsonl(rest)
    kwargs = parse_spec_kwargs(rest, what="fault")
    if name == "poisson":
        mtbf, mttr = take_spec_options(
            kwargs, spec, what="fault process", mtbf=1.0, mttr=0.1)
        return PoissonFaultProcess(mtbf, mttr)
    if name == "weibull":
        scale, shape, mttr, permanent_after = take_spec_options(
            kwargs, spec, what="fault process", scale=1.0, shape=2.0,
            mttr=0.1, permanent_after=math.nan)
        return WeibullFaultProcess(
            scale, shape=shape, mttr_s=mttr,
            permanent_after=(None if math.isnan(permanent_after)
                             else int(permanent_after)))
    raise SpecError(f"unknown fault process {name!r}; "
                    f"try: {', '.join(FAULT_PROCESSES)}")


# ----------------------------------------------------------------------
# Retry policies
# ----------------------------------------------------------------------

class RetryPolicy:
    """Decides when (and whether) a fault-killed job runs again.

    :meth:`next_attempt_s` returns the absolute time the job should
    re-enter the queues, or ``None`` to shed it.  ``job.retries`` is
    the number of re-enqueues already performed — the attempt counter
    budgets and backoffs key off.
    """

    name = "base"

    def next_attempt_s(self, job: Job, now: float,
                       rng: random.Random) -> Optional[float]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoRetry(RetryPolicy):
    """Shed every fault-killed job (the pre-recovery baseline)."""

    name = "none"

    def next_attempt_s(self, job, now, rng):
        return None


class ImmediateRetry(RetryPolicy):
    """Re-enqueue instantly, up to ``max_retries`` per job."""

    name = "immediate"

    def __init__(self, max_retries: int = 3):
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        self.max_retries = int(max_retries)

    def next_attempt_s(self, job, now, rng):
        if job.retries >= self.max_retries:
            return None
        return now

    def __repr__(self):
        return f"ImmediateRetry(max_retries={self.max_retries})"


class ExponentialBackoffRetry(RetryPolicy):
    """Exponential backoff with a cap and deterministic jitter.

    Attempt ``k`` (0-based) waits ``min(cap_s, base_s * factor**k)``
    scaled by ``1 + jitter * U`` with ``U ~ Uniform[0, 1)`` drawn from
    the run's seeded retry RNG — jitter de-synchronizes the retry
    herd a mass failure creates without sacrificing reproducibility.
    ``max_retries`` is the per-job budget; past it the job is shed.
    """

    name = "backoff"

    def __init__(self, base_s: float = 0.01, factor: float = 2.0,
                 cap_s: float = 1.0, max_retries: int = 6,
                 jitter: float = 0.25):
        if base_s <= 0:
            raise ValueError("base_s must be positive")
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        if cap_s < base_s:
            raise ValueError("cap_s must be >= base_s")
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.base_s = float(base_s)
        self.factor = float(factor)
        self.cap_s = float(cap_s)
        self.max_retries = int(max_retries)
        self.jitter = float(jitter)

    def next_attempt_s(self, job, now, rng):
        if job.retries >= self.max_retries:
            return None
        delay = min(self.cap_s, self.base_s * self.factor ** job.retries)
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return now + delay

    def __repr__(self):
        return (f"ExponentialBackoffRetry(base_s={self.base_s:g}, "
                f"factor={self.factor:g}, cap_s={self.cap_s:g}, "
                f"max_retries={self.max_retries}, "
                f"jitter={self.jitter:g})")


def make_retry_policy(spec) -> RetryPolicy:
    """Build a retry policy from a CLI spec (or pass an instance
    through; ``None`` means :class:`NoRetry`).

    ``none`` · ``immediate:max=3`` ·
    ``backoff:base=0.01,factor=2,cap=1,max=6,jitter=0.25``.
    """
    if spec is None:
        return NoRetry()
    if isinstance(spec, RetryPolicy):
        return spec
    name, _, rest = spec.partition(":")
    name = name.strip().lower()
    kwargs = parse_spec_kwargs(rest, what="retry")
    if name == "none":
        take_spec_options(kwargs, spec, what="retry policy")
        return NoRetry()
    if name == "immediate":
        (max_retries,) = take_spec_options(
            kwargs, spec, what="retry policy", max=3)
        return ImmediateRetry(int(max_retries))
    if name == "backoff":
        base, factor, cap, max_retries, jitter = take_spec_options(
            kwargs, spec, what="retry policy", base=0.01, factor=2.0,
            cap=1.0, max=6, jitter=0.25)
        return ExponentialBackoffRetry(
            base_s=base, factor=factor, cap_s=cap,
            max_retries=int(max_retries), jitter=jitter)
    raise SpecError(f"unknown retry policy {name!r}; "
                    f"try: {', '.join(RETRY_POLICIES)}")


# ----------------------------------------------------------------------
# The per-run fault schedule
# ----------------------------------------------------------------------

class FaultSchedule:
    """Lazy per-board fault timelines for one run.

    Each board holds its *current* ``(down_at, up_at)`` interval plus
    a ``processed`` flag (the fault's side effects — cache wipe,
    recorder instants, health bookkeeping — must fire exactly once
    even when the interval is consulted repeatedly while the board is
    down).  Exhausted timelines pin ``(inf, inf)``: no more faults.
    """

    def __init__(self, process: FaultProcess, num_boards: int,
                 seed: int):
        self._iters = [process.board_intervals(b, seed)
                       for b in range(num_boards)]
        self._down = [math.inf] * num_boards
        self._up = [math.inf] * num_boards
        self._processed = [False] * num_boards
        for b in range(num_boards):
            self._pull(b)

    def _pull(self, b: int) -> None:
        try:
            self._down[b], self._up[b] = next(self._iters[b])
        except StopIteration:
            self._down[b] = self._up[b] = math.inf
        self._processed[b] = False

    def current(self, b: int) -> Tuple[float, float]:
        return self._down[b], self._up[b]

    def next_down_s(self, b: int) -> float:
        return self._down[b]

    def processed(self, b: int) -> bool:
        return self._processed[b]

    def mark_processed(self, b: int) -> None:
        self._processed[b] = True

    def advance(self, b: int) -> None:
        self._pull(b)


# ----------------------------------------------------------------------
# The fault-aware event loop
# ----------------------------------------------------------------------

def run_with_faults(sim, scenario: Scenario, seed: int = 0,
                    policy="fifo",
                    price: Optional[PriceSignal] = None,
                    recorder: Optional[Recorder] = None,
                    faults=None,
                    retry=None) -> ServingReport:
    """The DES loop of :meth:`ServingSimulator.run`, with faults.

    A fork of the exact fault-free loop (kept separate so that loop
    stays bit-identical), extended with: lazy fault settlement when a
    board is popped, gang members waiting on repairs like they wait on
    busy boards, mid-batch kills feeding the retry policy, degraded
    re-planning for gangs the shrunken pool can no longer seat, and
    pool-death shedding.  Dispatch previews (``gang_start`` /
    ``service_s``) stay fault-blind: admission decisions are made
    against the healthy-pool oracle and faults then land where they
    may — which is exactly the operational reality being modeled.
    """
    if faults is None:
        raise ValueError("run_with_faults needs a fault process")
    faults = make_fault_process(faults)
    retry = make_retry_policy(retry)
    rec = (recorder if recorder is not None and recorder.enabled
           else None)
    jobs = scenario.generate(seed)
    policy = make_policy(policy)
    price = price if price is not None else PriceSignal.flat()
    devices = [DeviceState(i, KeyCache(sim.key_cache_bytes))
               for i in range(sim.num_devices)]
    schedule = FaultSchedule(faults, sim.num_devices, seed)
    retry_rng = random.Random(f"retry:{seed}")
    free_heap: List[Tuple[float, int]] = [
        (0.0, d.index) for d in devices]
    heapq.heapify(free_heap)
    completed: List[Job] = []
    rejected: List[Job] = []
    shed: List[Job] = []
    retry_heap: List[Tuple[float, int, Job]] = []
    retry_seq = 0
    #: job_id -> Job for every job currently inside the policy's
    #: queues (pool death must shed them; policies have no drain API).
    in_policy: Dict[int, Job] = {}
    restripe_cache: Dict[Tuple[JobClass, int], Optional[JobClass]] = {}
    batches = 0
    batched_jobs = 0
    cost_price_units = 0.0
    board_faults = 0
    failures = 0
    wasted_service_s = 0.0
    alive = sim.num_devices      # boards not permanently dead
    healthy = sim.num_devices    # recorder-visible up-board counter
    i = 0
    n = len(jobs)
    launch_overhead_s = sim.host.kernel_launch_overhead_s
    now = 0.0
    device_index = 0

    def reject_job(job: Job) -> None:
        rejected.append(job)
        in_policy.pop(job.job_id, None)
        if rec is not None:
            deadline = job.effective_deadline_s
            rec.job_rejected(
                t=now, job_id=job.job_id,
                job_class=job.job_class.name, tenant=job.tenant,
                deadline_s=(None if deadline == math.inf
                            else deadline))

    policy.begin(PolicyContext(
        max_batch=sim.max_batch, price=price,
        service_bound_s=sim.service_bound_s,
        best_case_s=sim.best_case_service_s,
        reject=reject_job,
        recorder=recorder if rec is not None else NULL_RECORDER))
    if rec is not None:
        rec.run_begin(scenario=scenario.name,
                      num_devices=sim.num_devices,
                      policy=policy.name, price=price,
                      max_batch=sim.max_batch)

    def enqueue(job: Job) -> None:
        policy.enqueue(job)
        in_policy[job.job_id] = job

    def admit(now: float) -> None:
        nonlocal i
        while i < n and jobs[i].arrival_s <= now:
            job = jobs[i]
            enqueue(job)
            if rec is not None:
                deadline = job.effective_deadline_s
                rec.job_arrival(
                    t=job.arrival_s, job_id=job.job_id,
                    job_class=job.job_class.name, tenant=job.tenant,
                    deadline_s=(None if deadline == math.inf
                                else deadline),
                    deferrable=job.deferrable)
            i += 1
        while retry_heap and retry_heap[0][0] <= now:
            _, _, job = heapq.heappop(retry_heap)
            enqueue(job)

    def next_pending_s() -> float:
        t = jobs[i].arrival_s if i < n else math.inf
        if retry_heap and retry_heap[0][0] < t:
            t = retry_heap[0][0]
        return t

    def shed_job(job: Job, reason: str, t: float) -> None:
        job.shed = True
        job.shed_reason = reason
        shed.append(job)
        in_policy.pop(job.job_id, None)
        if rec is not None:
            rec.policy_event(t=t, name=f"shed:{reason}",
                             job_id=job.job_id,
                             job_class=job.job_class.name,
                             tenant=job.tenant)

    def settle_board(b: int, t: float, killed_batch: bool = False):
        """Process board ``b``'s fault timeline up to ``t``.

        Returns ``"dead"`` (permanent failure discovered), a float
        repair time ``> t`` (board is down at ``t``), or ``None``
        (board healthy at ``t``).  Fault side effects — cache wipe,
        recorder instants, alive/healthy bookkeeping — fire exactly
        once per interval.
        """
        nonlocal board_faults, alive, healthy
        device = devices[b]
        while True:
            down, up = schedule.current(b)
            if down > t:
                return None
            if not schedule.processed(b):
                schedule.mark_processed(b)
                device.cache.drop_all()
                board_faults += 1
                permanent = math.isinf(up)
                healthy -= 1
                if rec is not None:
                    rec.board_fault(t=down, board=b,
                                    permanent=permanent,
                                    healthy=healthy,
                                    killed_batch=killed_batch)
                if permanent:
                    alive -= 1
                    return "dead"
                # The repair instant is known now; record it at its
                # own timestamp (trace events are buffered + sorted).
                healthy += 1
                if rec is not None:
                    rec.board_repair(t=up, board=b, healthy=healthy)
            if math.isinf(up):
                return "dead"
            if up > t:
                return up
            schedule.advance(b)

    def fail_batch(batch: List[Job], gang, start: float,
                   fail_t: float, launched: bool) -> None:
        """A fault killed ``batch`` at ``fail_t``; route every job
        through the retry policy and free the surviving boards."""
        nonlocal failures, wasted_service_s, cost_price_units
        nonlocal retry_seq
        failures += 1
        run_s = fail_t - start
        if launched and run_s > 0:
            wasted_service_s += run_s * len(gang)
            cost_price_units += len(gang) * price.integral(start, fail_t)
        for member in gang:
            if launched and run_s > 0:
                member.busy_s += run_s
        for job in batch:
            wake = retry.next_attempt_s(job, fail_t, retry_rng)
            if wake is None:
                shed_job(job, "retry_budget", fail_t)
            else:
                job.retries += 1
                retry_seq += 1
                heapq.heappush(retry_heap, (wake, retry_seq, job))
        for member in gang:
            status = settle_board(member.index, fail_t,
                                  killed_batch=True)
            if status == "dead":
                member.free_at_s = fail_t
                continue
            if status is not None:
                member.free_at_s = status
                heapq.heappush(free_heap, (status, member.index))
            else:
                member.free_at_s = fail_t
                heapq.heappush(free_heap, (fail_t, member.index))

    def gang_start(k: int) -> float:
        if k <= 1:
            return now
        extra = heapq.nsmallest(k - 1, free_heap)
        free = max((devices[index].free_at_s for _, index in extra),
                   default=now)
        return max(now, free)

    def service_s(job: Job, batch_size: int) -> float:
        job_class = job.job_class
        members = [devices[device_index]]
        if job_class.num_fpgas > 1:
            members += [
                devices[index] for _, index in heapq.nsmallest(
                    job_class.num_fpgas - 1, free_heap)]
        load_s = max(
            key_load_seconds(
                sim.host,
                member.cache.peek_miss_bytes(job.tenant, job_class))
            for member in members)
        return (launch_overhead_s + load_s
                + batch_size * job_class.seconds(sim.config))

    view = DispatchView(now=0.0, gang_start=gang_start,
                        service_s=service_s)

    while i < n or policy.pending or retry_heap:
        if not free_heap:
            # Every board is permanently dead: shed all remaining
            # work (queued, awaiting retry, and not yet arrived).
            for job in list(in_policy.values()):
                shed_job(job, "pool_dead", now)
            while retry_heap:
                _, _, job = heapq.heappop(retry_heap)
                shed_job(job, "pool_dead", now)
            while i < n:
                shed_job(jobs[i], "pool_dead", now)
                i += 1
            break
        free_at, device_index = heapq.heappop(free_heap)
        now = free_at
        admit(now)
        if not policy.pending:
            # Idle until the next arrival or retry wake.
            now = max(now, next_pending_s())
            admit(now)
        status = settle_board(device_index, now)
        if status == "dead":
            continue
        if status is not None:
            heapq.heappush(free_heap, (status, device_index))
            continue

        view.now = now
        if rec is not None:
            rec.queue_sample(t=now, total=policy.pending,
                             depths=policy.queue_depths())
        batch = policy.next_batch(view)
        if not batch:
            if policy.pending:
                wake = policy.next_event_s(now)
                if i < n:
                    wake = min(wake, jobs[i].arrival_s)
                if retry_heap:
                    wake = min(wake, retry_heap[0][0])
                if wake <= now:
                    wake = math.nextafter(now, math.inf)
                if rec is not None:
                    rec.defer(board=device_index, t=now, wake=wake)
                heapq.heappush(free_heap, (wake, device_index))
            else:
                heapq.heappush(free_heap, (now, device_index))
            continue
        for job in batch:
            in_policy.pop(job.job_id, None)
        job_class = batch[0].job_class

        if job_class.num_fpgas > alive:
            # Permanent shortage: the pool can never again seat this
            # gang.  Re-plan onto the widest viable smaller stripe,
            # or shed when none fits / the trace is unavailable.
            k = largest_viable_stripe(alive, job_class.num_fpgas)
            key = (job_class, k)
            if key not in restripe_cache:
                restripe_cache[key] = (
                    job_class.restriped(k, sim.config) if k >= 1
                    else None)
            new_class = restripe_cache[key]
            if new_class is None:
                for job in batch:
                    shed_job(job, "degraded", now)
            else:
                if rec is not None:
                    rec.policy_event(
                        t=now, name="degrade",
                        job_class=job_class.name,
                        from_stripe=job_class.num_fpgas, to_stripe=k,
                        jobs=len(batch))
                for job in batch:
                    job.job_class = new_class
                    job.degraded = True
                    enqueue(job)
            heapq.heappush(free_heap, (now, device_index))
            continue

        gang = [devices[device_index]]
        start = now
        if job_class.num_fpgas > 1:
            # Gang-assemble: a down board is just a board that frees
            # at its repair time; a board found permanently dead is
            # skipped (and may leave the gang short — see below).
            needed = job_class.num_fpgas - 1
            while needed and free_heap:
                _, extra_index = heapq.heappop(free_heap)
                member = devices[extra_index]
                avail = max(now, member.free_at_s)
                mstatus = settle_board(extra_index, avail)
                if mstatus == "dead":
                    continue
                if mstatus is not None and mstatus > avail:
                    avail = mstatus
                    member.free_at_s = mstatus
                gang.append(member)
                needed -= 1
                if avail > start:
                    start = avail
            if needed:
                # The heap dried up before the gang filled: newly
                # discovered dead boards shrank the pool below the
                # stripe.  Put everything back; the next dispatch
                # sees the updated ``alive`` and re-plans.
                for member in gang:
                    if member.index != device_index:
                        heapq.heappush(
                            free_heap,
                            (max(now, member.free_at_s), member.index))
                for job in batch:
                    enqueue(job)
                heapq.heappush(
                    free_heap,
                    (math.nextafter(now, math.inf), device_index))
                continue

        # Settle every member to the (possibly repair-delayed) start:
        # waiting boards can fault while idle, which may push the
        # start further out or kill the dispatch before launch.
        while True:
            moved = False
            aborted = False
            for member in gang:
                mstatus = settle_board(member.index, start)
                if mstatus == "dead":
                    # A member died while the gang was forming: the
                    # batch never launches.
                    dead_index = member.index
                    fail_batch(batch,
                               [m for m in gang
                                if m.index != dead_index],
                               start, start, launched=False)
                    aborted = True
                    break
                if mstatus is not None and mstatus > start:
                    start = mstatus
                    moved = True
            if aborted or not moved:
                break
        if aborted:
            continue

        # Key loads previewed without mutation so the finish time (and
        # hence the kill window) is known before committing residency.
        load_s = 0.0
        for member in gang:
            member_load_s = key_load_seconds(
                sim.host,
                member.cache.peek_miss_bytes(batch[0].tenant,
                                             job_class))
            if member_load_s > load_s:
                load_s = member_load_s
        compute_s = len(batch) * job_class.seconds(sim.config)
        batch_service_s = launch_overhead_s + load_s + compute_s
        finish = start + batch_service_s
        fail_t = min(schedule.next_down_s(m.index) for m in gang)
        if fail_t < finish:
            # The gang loses a board mid-batch (or at the starting
            # line): everything since ``start`` is wasted and every
            # job goes to the retry policy.  Key residency is
            # committed — the loads were in flight — and the failed
            # board's cache is wiped by its fault settlement.
            member_loads = [] if rec is not None else None
            for member in gang:
                miss_bytes = member.cache.request(batch[0].tenant,
                                                  job_class)
                member_load_s = key_load_seconds(sim.host, miss_bytes)
                member.key_load_s += member_load_s
                if member_loads is not None:
                    member_loads.append(
                        (member.index, member_load_s, miss_bytes))
            if rec is not None and fail_t > start:
                rec.batch(
                    start=start, finish=fail_t,
                    job_class=job_class.name, tenant=batch[0].tenant,
                    batch_size=len(batch),
                    launch_s=launch_overhead_s,
                    members=member_loads,
                    cache_stats=tuple(m.cache.stats() for m in gang),
                    cost=len(gang) * price.integral(start, fail_t))
                rec.policy_event(t=fail_t, name="batch_killed",
                                 job_class=job_class.name,
                                 jobs=len(batch))
            fail_batch(batch, gang, start, fail_t, launched=True)
            continue

        member_loads = [] if rec is not None else None
        for member in gang:
            miss_bytes = member.cache.request(batch[0].tenant,
                                              job_class)
            member_load_s = key_load_seconds(sim.host, miss_bytes)
            member.key_load_s += member_load_s
            if member_loads is not None:
                member_loads.append(
                    (member.index, member_load_s, miss_bytes))
        for job in batch:
            job.finish_s = finish
        completed.extend(batch)
        for member in gang:
            member.free_at_s = finish
            member.busy_s += batch_service_s
            heapq.heappush(free_heap, (finish, member.index))
        gang[0].jobs_done += len(batch)
        batches += 1
        batched_jobs += len(batch)
        batch_cost = len(gang) * price.integral(start, finish)
        cost_price_units += batch_cost
        if rec is not None:
            slo_met = slo_total = 0
            for job in batch:
                deadline = job.effective_deadline_s
                if deadline != math.inf:
                    slo_total += 1
                    if finish <= deadline:
                        slo_met += 1
            rec.batch(
                start=start, finish=finish,
                job_class=job_class.name, tenant=batch[0].tenant,
                batch_size=len(batch), launch_s=launch_overhead_s,
                members=member_loads,
                cache_stats=tuple(m.cache.stats() for m in gang),
                slo_met=slo_met, slo_total=slo_total,
                cost=batch_cost)

    if rec is not None:
        rec.run_end(
            makespan_s=max((j.finish_s or 0.0 for j in completed),
                           default=0.0),
            device_busy_s=tuple(d.busy_s for d in devices),
            jobs_done=len(completed))
    return sim._report(scenario, completed, devices, batches,
                       batched_jobs, policy=policy.name,
                       rejected=rejected,
                       deferred_jobs=policy.deferred_jobs,
                       cost_price_units=cost_price_units,
                       shed=shed, board_faults=board_faults,
                       failures=failures,
                       wasted_service_s=wasted_service_s)


__all__ = [
    "FAULT_PROCESSES", "RETRY_POLICIES", "ExponentialBackoffRetry",
    "FaultProcess", "FaultSchedule", "ImmediateRetry", "NoRetry",
    "PoissonFaultProcess", "RetryPolicy", "TraceFaultProcess",
    "WeibullFaultProcess", "make_fault_process", "make_retry_policy",
    "run_with_faults",
]
