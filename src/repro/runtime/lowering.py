"""Lowering: compile an :class:`OpTrace` to a FAB task-graph program.

Each trace kind maps to the :data:`repro.core.program.OP_KINDS` entry
whose :class:`repro.core.ops.FabOpModel` method prices it (the mapping
collapses cost-equivalent kinds: ``sub`` schedules like ``add``,
``square`` like ``multiply``).  Limb-management records (``mod_down``)
lower to nothing — on FAB dropping limbs is bookkeeping.

The result is an ordinary :class:`repro.core.program.FabProgram`, so
everything the hand-built programs support — key-prefetch edges,
scheduling, utilization reports, prefetch ablation — applies to traced
workloads for free.  :func:`key_working_set` additionally derives the
switching-key material the trace needs resident in HBM, which the
serving simulator's key cache is modelled on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.params import FabConfig
from ..core.program import FabProgram, ProgramReport
from .optrace import OpTrace

#: Trace kind -> schedulable program kind (None = lowered away).
LOWERING_MAP: Dict[str, Optional[str]] = {
    "add": "add",
    "sub": "add",                   # same element-wise cost as add
    "negate": "add",
    "add_plain": "add",
    "sub_plain": "add",
    "multiply": "multiply",
    "square": "multiply",           # one tensor mult fewer; same model
    "multiply_plain": "multiply_plain",
    "multiply_scalar": "multiply_plain",
    "rescale": "rescale",
    "rotate": "rotate",
    "rotate_hoisted": "rotate_hoisted",
    "conjugate": "conjugate",
    "ntt_poly": "ntt_poly",
    "mod_down": None,               # free: limb bookkeeping only
}

#: Program kinds that consume a switching key when executed.
_KEYED_KINDS = {"multiply": "relin", "square": "relin",
                "conjugate": "conj"}


def lower_trace(trace: OpTrace,
                config: Optional[FabConfig] = None) -> FabProgram:
    """Compile a trace into a schedulable :class:`FabProgram`.

    Levels are clamped to the config's limb chain: traces captured at
    test-scale parameters (tiny N, few limbs) lower onto the paper's
    full-scale config unchanged, while synthetic paper-scale traces
    pass through exactly.
    """
    program = FabProgram(config)
    fhe = program.config.fhe
    for op in trace:
        kind = _lowered_kind(op.kind)
        if kind is None:
            continue
        # ntt_poly may legitimately run over the raised basis Q*P
        # (ModRaise spans L + 1 + alpha limbs); everything else is
        # bounded by the computation chain.
        max_level = (fhe.max_raised_limbs if kind == "ntt_poly"
                     else fhe.num_limbs)
        program.append(kind, max(1, min(op.level, max_level)))
    return program


def _lowered_kind(trace_kind: str) -> Optional[str]:
    try:
        return LOWERING_MAP[trace_kind]
    except KeyError:
        raise ValueError(f"no lowering for trace kind {trace_kind!r}; "
                         f"known: {sorted(LOWERING_MAP)}") from None


@dataclass(frozen=True)
class KeyWorkingSet:
    """Switching-key material a lowered program needs resident in HBM."""

    key_ids: Tuple[str, ...]
    bytes_per_key: int

    @property
    def total_bytes(self) -> int:
        return len(self.key_ids) * self.bytes_per_key

    @property
    def num_keys(self) -> int:
        return len(self.key_ids)


def switching_key_bytes(config: FabConfig) -> int:
    """Size of one switching key: dnum digit pairs of raised polys."""
    fhe = config.fhe
    return 2 * fhe.dnum * fhe.max_raised_limbs * fhe.limb_bytes


def key_working_set(trace: OpTrace,
                    config: Optional[FabConfig] = None) -> KeyWorkingSet:
    """The distinct switching keys a trace touches.

    One relinearization key if the trace multiplies, one Galois key per
    distinct rotation step, one conjugation key if it conjugates.
    """
    config = config or FabConfig()
    key_ids: list = []
    seen = set()
    for op in trace:
        key = _KEYED_KINDS.get(op.kind)
        if op.kind in ("rotate", "rotate_hoisted"):
            if op.step is None:
                key = "rot?"
            elif op.step < 0:
                # Negative steps encode a raw Galois element recorded
                # by a direct apply_galois call (see capture.py).
                key = f"gal{-op.step}"
            else:
                key = f"rot{op.step}"
        if key is not None and key not in seen:
            seen.add(key)
            key_ids.append(key)
    return KeyWorkingSet(tuple(key_ids), switching_key_bytes(config))


@dataclass
class LoweredCost:
    """Cost summary of one lowered trace on one FAB device."""

    name: str
    report: ProgramReport
    keys: KeyWorkingSet
    config: FabConfig

    @property
    def cycles(self) -> int:
        """Makespan with key prefetch (the FAB schedule)."""
        return self.report.cycles

    @property
    def serial_cycles(self) -> int:
        """Sum of per-op compute cycles (no cross-op overlap)."""
        return self.report.fu_busy

    @property
    def seconds(self) -> float:
        return self.config.cycles_to_seconds(self.report.cycles)


def cost_trace(trace: OpTrace, config: Optional[FabConfig] = None,
               prefetch: bool = True) -> LoweredCost:
    """Lower, schedule, and summarize a trace in one call."""
    config = config or FabConfig()
    program = lower_trace(trace, config)
    return LoweredCost(trace.name, program.schedule(prefetch=prefetch),
                       key_working_set(trace, config), config)
