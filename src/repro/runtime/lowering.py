"""Lowering: compile an :class:`OpTrace` to a FAB task-graph program.

Each trace kind maps to the :data:`repro.core.program.OP_KINDS` entry
whose :class:`repro.core.ops.FabOpModel` method prices it (the mapping
collapses cost-equivalent kinds: ``sub`` schedules like ``add``,
``square`` like ``multiply``).  Limb-management records (``mod_down``)
lower to nothing — on FAB dropping limbs is bookkeeping.

The result is an ordinary :class:`repro.core.program.FabProgram`, so
everything the hand-built programs support — key-prefetch edges,
scheduling, utilization reports, prefetch ablation — applies to traced
workloads for free.  :func:`key_working_set` additionally derives the
switching-key material the trace needs resident in HBM, which the
serving simulator's key cache is modelled on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.params import FabConfig
from ..core.program import FabProgram, ProgramReport
from .optrace import OpTrace

#: Trace kind -> schedulable program kind (None = lowered away).
LOWERING_MAP: Dict[str, Optional[str]] = {
    "add": "add",
    "sub": "add",                   # same element-wise cost as add
    "negate": "add",
    "add_plain": "add",
    "sub_plain": "add",
    "multiply": "multiply",
    "square": "multiply",           # one tensor mult fewer; same model
    "multiply_plain": "multiply_plain",
    "multiply_scalar": "multiply_plain",
    "rescale": "rescale",
    "rotate": "rotate",
    "rotate_hoisted": "rotate_hoisted",
    "conjugate": "conjugate",
    "ntt_poly": "ntt_poly",
    "mod_down": None,               # free: limb bookkeeping only
}

#: Program kinds that consume a switching key when executed.
_KEYED_KINDS = {"multiply": "relin", "square": "relin",
                "conjugate": "conj"}


def lowered_op(fhe, trace_kind: str, level: int
               ) -> Optional[Tuple[str, int]]:
    """Map one trace op to its schedulable (kind, clamped level).

    Returns ``None`` for ops that lower away (``mod_down``).  Levels
    are clamped to the config's limb chain: traces captured at
    test-scale parameters (tiny N, few limbs) lower onto the paper's
    full-scale config unchanged, while synthetic paper-scale traces
    pass through exactly.  Shared by the single-board
    :func:`lower_trace` and the multi-FPGA
    :mod:`repro.runtime.striped_lowering` so both price an op
    identically.
    """
    kind = _lowered_kind(trace_kind)
    if kind is None:
        return None
    # ntt_poly may legitimately run over the raised basis Q*P
    # (ModRaise spans L + 1 + alpha limbs); everything else is
    # bounded by the computation chain.
    max_level = (fhe.max_raised_limbs if kind == "ntt_poly"
                 else fhe.num_limbs)
    return kind, max(1, min(level, max_level))


def lower_trace(trace: OpTrace,
                config: Optional[FabConfig] = None) -> FabProgram:
    """Compile a trace into a schedulable :class:`FabProgram`."""
    program = FabProgram(config)
    fhe = program.config.fhe
    for op in trace:
        lowered = lowered_op(fhe, op.kind, op.level)
        if lowered is None:
            continue
        program.append(*lowered)
    return program


def _lowered_kind(trace_kind: str) -> Optional[str]:
    try:
        return LOWERING_MAP[trace_kind]
    except KeyError:
        raise ValueError(f"no lowering for trace kind {trace_kind!r}; "
                         f"known: {sorted(LOWERING_MAP)}") from None


@dataclass(frozen=True)
class KeyWorkingSet:
    """Switching-key material a lowered program needs resident in HBM.

    For a trace striped across ``num_boards`` FPGAs the switching keys
    are *replicated* on every board (each board key-switches its own
    shard), so per-board and pool-wide footprints differ by a factor of
    ``num_boards`` and must not be conflated: HBM capacity planning is
    per board, host-offload traffic is pool-total.
    """

    key_ids: Tuple[str, ...]
    bytes_per_key: int
    num_boards: int = 1

    @property
    def per_board_bytes(self) -> int:
        """Bytes resident in ONE board's HBM (the capacity question)."""
        return len(self.key_ids) * self.bytes_per_key

    @property
    def pool_bytes(self) -> int:
        """Bytes across the whole pool (the offload-traffic question):
        keys are replicated, so this is ``num_boards`` x per-board."""
        return self.num_boards * self.per_board_bytes

    @property
    def total_bytes(self) -> int:
        """Per-board footprint (kept as the pre-striping name).

        Deliberately NOT the pool total: callers sizing a single HBM
        key cache (the serving simulator) must never see the keys
        double-counted across boards.  Use :attr:`pool_bytes` for the
        replicated pool-wide figure.
        """
        return self.per_board_bytes

    @property
    def num_keys(self) -> int:
        return len(self.key_ids)


def switching_key_bytes(config: FabConfig) -> int:
    """Size of one switching key: dnum digit pairs of raised polys."""
    fhe = config.fhe
    return 2 * fhe.dnum * fhe.max_raised_limbs * fhe.limb_bytes


def key_working_set(trace: OpTrace,
                    config: Optional[FabConfig] = None,
                    num_fpgas: int = 1) -> KeyWorkingSet:
    """The distinct switching keys a trace touches.

    One relinearization key if the trace multiplies, one Galois key per
    distinct rotation step, one conjugation key if it conjugates.
    ``num_fpgas > 1`` records that the set is replicated on every board
    of a striped pool — see :class:`KeyWorkingSet` for the per-board
    vs pool-total distinction.
    """
    if num_fpgas < 1:
        raise ValueError("num_fpgas must be >= 1")
    config = config or FabConfig()
    key_ids: list = []
    seen = set()
    for op in trace:
        key = _KEYED_KINDS.get(op.kind)
        if op.kind in ("rotate", "rotate_hoisted"):
            if op.step is None:
                key = "rot?"
            elif op.step < 0:
                # Negative steps encode a raw Galois element recorded
                # by a direct apply_galois call (see capture.py).
                key = f"gal{-op.step}"
            else:
                key = f"rot{op.step}"
        if key is not None and key not in seen:
            seen.add(key)
            key_ids.append(key)
    return KeyWorkingSet(tuple(key_ids), switching_key_bytes(config),
                         num_boards=num_fpgas)


@dataclass
class LoweredCost:
    """Cost summary of one lowered trace on one FAB device."""

    name: str
    report: ProgramReport
    keys: KeyWorkingSet
    config: FabConfig

    @property
    def cycles(self) -> int:
        """Makespan with key prefetch (the FAB schedule)."""
        return self.report.cycles

    @property
    def serial_cycles(self) -> int:
        """Sum of per-op compute cycles (no cross-op overlap)."""
        return self.report.fu_busy

    @property
    def seconds(self) -> float:
        return self.config.cycles_to_seconds(self.report.cycles)


def cost_trace(trace: OpTrace, config: Optional[FabConfig] = None,
               prefetch: bool = True) -> LoweredCost:
    """Lower, schedule, and summarize a trace in one call."""
    config = config or FabConfig()
    program = lower_trace(trace, config)
    return LoweredCost(trace.name, program.schedule(prefetch=prefetch),
                       key_working_set(trace, config), config)
