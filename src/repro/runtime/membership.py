"""The unified pool-membership ledger and its event loop.

PR 8 (``runtime/faults.py``) and PR 9 (``runtime/autoscaler.py``) each
forked the exact DES loop of
:meth:`repro.runtime.serving.ServingSimulator.run` — one for
involuntary membership changes (faults), one for voluntary ones
(elastic scaling) — and the two were mutually exclusive.  A real fleet
experiences both at once: a board the scaler is draining can die
mid-drain, a parked spare can fail while parked, and capacity planning
must price expected failures.  This module merges the two forks into
one ledger-driven loop:

* :class:`PoolLedger` — the single owner of per-board membership
  state (``active | draining | parked | failed | repairing``), the
  per-state board-second integrals, and the key-cache eviction flag
  (a board's cache is evicted exactly once per departure, no matter
  how many mechanisms want it gone).
* :func:`run_with_ledger` — the merged event loop.  With ``faults=``
  only or ``autoscale=`` only it reduces *bit-identically* to the
  PR 8 / PR 9 loops (the golden suites pin this); with both it applies
  the arbitration rules below.

Arbitration rules
-----------------

* **A fault completes a drain.**  When a board the scaler wants gone
  (``in_service_count > target``) is found down, it parks immediately
  instead of waiting out the repair — the fleet stops paying for
  capacity it neither wants nor has.  The ledger's eviction flag
  guarantees the key cache is dropped once, not once per mechanism.
* **A repair rejoins only if the scaler wants it.**  Parked boards are
  settled lazily at un-park time: a repaired spare stays ``parked``
  (zero provisioned board-seconds) until the scale policy raises the
  target; a spare found *still down* rejoins at its repair time; a
  spare found permanently dead is discarded (``failed``) and the next
  spare is tried.
* **Permanent death reconciles accounting.**  A dead in-service board
  stops accruing ``board_seconds`` at discovery time and silently
  leaves the provisioned pool; a board that died while parked never
  accrued any — the ledger's per-state integrals conserve
  ``num_boards * elapsed`` exactly either way.
* **Spares absorb failures before gangs re-stripe.**  With a
  :class:`repro.runtime.autoscaler.SpareScalePolicy` (``spare:n=``),
  warm standbys replace boards found down or dead, so striped gangs
  keep their planned width until the spare pool is exhausted — only
  then does PR 8's degraded re-planning kick in.  If every in-service
  board is dead the loop performs an emergency un-park before
  declaring the pool dead.

Signals gain ``alive`` / ``down_in_service`` / ``availability``
(1 − down board-seconds ÷ provisioned board-seconds per closed
window), which the availability-aware predictive sizer divides through
— capacity planning priced at the fleet's *empirical* availability.

Observability: every ledger transition fires the
``ledger_transition`` recorder hook (a state-transition track in the
timeline, per-state board-seconds in the metrics summary).  All of it
is lazy-discovery semantics: a fault on a board nobody touches is
accounted when the loop next settles that board, exactly like PR 8.
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Dict, List, Optional, Tuple

from ..obs import NULL_RECORDER, Recorder
from ..obs.metrics import window_index
from .autoscaler import ScaleSignals, make_scale_policy
from .faults import FaultSchedule, make_fault_process, make_retry_policy
from .policies import DispatchView, PolicyContext, PriceSignal, make_policy
from .serving import (
    DeviceState,
    Job,
    JobClass,
    KeyCache,
    Scenario,
    ServingReport,
    key_load_seconds,
)
from .striped_lowering import largest_viable_stripe

#: Ledger board states.
ACTIVE = "active"
DRAINING = "draining"
PARKED = "parked"
FAILED = "failed"
REPAIRING = "repairing"

#: Every state a board can be in, in display order.
BOARD_STATES = (ACTIVE, DRAINING, PARKED, FAILED, REPAIRING)


class PoolLedger:
    """The single source of truth for per-board membership state.

    Owns three things the two pool-membership mechanisms used to track
    (and fight over) separately:

    * the per-board **state machine** over :data:`BOARD_STATES`, with
      per-board monotonic transition times (a lazily-discovered fault
      may carry a timestamp earlier than the board's last transition;
      the ledger clamps it so per-state integrals never go negative);
    * the per-state **board-second integrals** — ``state_seconds()``
      after :meth:`close` conserves ``num_boards * elapsed`` exactly;
    * the **eviction flag** — :meth:`evict` drops a board's key cache
      only if it holds residency, so a fault landing mid-drain (or a
      double park) evicts exactly once per departure.

    The ledger is pure bookkeeping: it never touches the event loop's
    heaps, so running it alongside the single-mechanism paths leaves
    their reports bit-identical.
    """

    def __init__(self, num_boards: int, recorder: Optional[Recorder] = None):
        if num_boards < 1:
            raise ValueError("need at least one board")
        self.num_boards = int(num_boards)
        self._state = [ACTIVE] * self.num_boards
        self._since = [0.0] * self.num_boards
        self._seconds: Dict[str, float] = {s: 0.0 for s in BOARD_STATES}
        self._evicted = [False] * self.num_boards
        #: ``"old->new"`` -> count, the chaos-smoke arbitration counters.
        self.transitions: Dict[str, int] = {}
        self.recorder = recorder
        self.closed_at: Optional[float] = None

    def state(self, board: int) -> str:
        return self._state[board]

    def states(self) -> Tuple[str, ...]:
        return tuple(self._state)

    def counts(self) -> Dict[str, int]:
        """Boards currently in each state (zero-count states included)."""
        out = {s: 0 for s in BOARD_STATES}
        for state in self._state:
            out[state] += 1
        return out

    def transition(self, board: int, new_state: str, t: float) -> None:
        """Move ``board`` to ``new_state`` at ``t`` (clamped to the
        board's last transition time).  Same-state moves are no-ops so
        call sites never need to pre-check."""
        old = self._state[board]
        if new_state == old:
            return
        t = max(t, self._since[board])
        self._seconds[old] += t - self._since[board]
        self._state[board] = new_state
        self._since[board] = t
        key = f"{old}->{new_state}"
        self.transitions[key] = self.transitions.get(key, 0) + 1
        if self.recorder is not None:
            self.recorder.ledger_transition(t=t, board=board, old=old, new=new_state)

    def evict(self, board: int, cache: KeyCache) -> bool:
        """Drop ``board``'s key cache if it still holds residency.

        Returns whether an eviction actually happened.  The flag is
        the double-eviction fix: once a departure (fault settlement or
        park) has wiped the cache, further departures before the board
        next serves a batch are no-ops.
        """
        if self._evicted[board]:
            return False
        cache.drop_all()
        self._evicted[board] = True
        return True

    def warmed(self, board: int) -> None:
        """``board`` repopulated its cache (served a batch): the next
        departure must evict again."""
        self._evicted[board] = False

    def close(self, t: float) -> float:
        """Accrue every board's open interval to a common end time
        (the max of ``t`` and all transition times) and return it.
        After closing, ``sum(state_seconds().values())`` equals
        ``num_boards * end`` exactly up to float summation."""
        end = max(t, max(self._since))
        for board in range(self.num_boards):
            self._seconds[self._state[board]] += end - self._since[board]
            self._since[board] = end
        self.closed_at = end
        return end

    def state_seconds(self) -> Dict[str, float]:
        """Board-seconds accrued per state (call :meth:`close` first
        to include the open tail)."""
        return dict(self._seconds)

    def __repr__(self) -> str:
        counts = {s: c for s, c in self.counts().items() if c}
        return f"PoolLedger({self.num_boards} boards, {counts})"


# ----------------------------------------------------------------------
# The unified event loop
# ----------------------------------------------------------------------
def run_with_ledger(
    sim,
    scenario: Scenario,
    seed: int = 0,
    policy="fifo",
    price: Optional[PriceSignal] = None,
    recorder: Optional[Recorder] = None,
    faults=None,
    retry=None,
    autoscale=None,
    ledger: Optional[PoolLedger] = None,
) -> ServingReport:
    """The DES loop of :meth:`ServingSimulator.run` with unified pool
    membership.

    The superset of :func:`repro.runtime.faults.run_with_faults` and
    :func:`repro.runtime.autoscaler.run_with_autoscale`: every
    fault-only construct is gated on ``faults`` being set and every
    elasticity construct on ``autoscale``, so each single mechanism
    executes exactly its PR 8 / PR 9 instruction stream (bit-identical
    reports, golden-pinned) while the combination applies the module's
    arbitration rules.  Pass ``ledger=`` to inspect the membership
    state machine after the run (tests do); by default one is created
    per run.
    """
    if faults is None and autoscale is None:
        raise ValueError(
            "run_with_ledger needs faults= and/or autoscale=; the "
            "fixed-pool loop lives in ServingSimulator.run"
        )
    scale = make_scale_policy(autoscale) if autoscale is not None else None
    retry = make_retry_policy(retry)
    rec = recorder if recorder is not None and recorder.enabled else None
    jobs = scenario.generate(seed)
    policy = make_policy(policy)
    price = price if price is not None else PriceSignal.flat()
    devices = [
        DeviceState(i, KeyCache(sim.key_cache_bytes)) for i in range(sim.num_devices)
    ]
    schedule = (
        FaultSchedule(make_fault_process(faults), sim.num_devices, seed)
        if faults is not None
        else None
    )
    retry_rng = random.Random(f"retry:{seed}")
    if ledger is None:
        ledger = PoolLedger(sim.num_devices)
    ledger.recorder = rec
    free_heap: List[Tuple[float, int]] = [(0.0, d.index) for d in devices]
    heapq.heapify(free_heap)
    completed: List[Job] = []
    rejected: List[Job] = []
    shed: List[Job] = []
    retry_heap: List[Tuple[float, int, Job]] = []
    retry_seq = 0
    #: job_id -> Job for every job currently inside the policy's
    #: queues (pool death must shed them; policies have no drain API).
    in_policy: Dict[int, Job] = {}
    restripe_cache: Dict[Tuple[JobClass, int], Optional[JobClass]] = {}
    batches = 0
    batched_jobs = 0
    cost_price_units = 0.0
    board_faults = 0
    failures = 0
    wasted_service_s = 0.0
    alive = sim.num_devices  # boards not permanently dead
    healthy = sim.num_devices  # recorder-visible up-board counter
    i = 0
    n = len(jobs)
    launch_overhead_s = sim.host.kernel_launch_overhead_s
    now = 0.0
    device_index = 0

    # -- elasticity state ----------------------------------------------
    interval = scale.interval_s if scale is not None else math.inf
    in_service = [True] * sim.num_devices
    in_service_count = sim.num_devices
    parked: List[int] = []  # LIFO: most recently parked first
    target = in_service_count
    eval_count = 0  # control windows already closed
    resize_events = 0
    scale_ups = 0
    scale_downs = 0
    # signal accumulators
    arrival_bins: Dict[int, int] = {}
    busy_deltas: List[Tuple[float, int, int]] = []  # (t, seq, +/-k)
    busy_seq = 0
    busy_level = 0
    busy_last_t = 0.0
    busy_area = 0.0  # busy board-s since the last eval
    prov_last_t = 0.0
    prov_area = 0.0  # provisioned board-s since last eval
    board_seconds = 0.0  # total provisioned board-s (paid)
    busy_total_s = 0.0  # dispatched board-s (capacity oracle)
    jobs_dispatched = 0
    # in-service down-time integral (the availability signal): +1 when
    # an in-service board is discovered down, -1 at its repair (or at
    # a departure — park / death — that takes it out of service).
    down_deltas: List[Tuple[float, int, int]] = []
    down_seq = 0
    down_level = 0
    down_last_t = 0.0
    down_area = 0.0
    if scale is not None:
        scale.begin(sim.num_devices)

    def advance_busy(t: float) -> None:
        nonlocal busy_level, busy_last_t, busy_area
        while busy_deltas and busy_deltas[0][0] <= t:
            event_t, _, delta = heapq.heappop(busy_deltas)
            if event_t > busy_last_t:
                busy_area += busy_level * (event_t - busy_last_t)
                busy_last_t = event_t
            busy_level += delta
        if t > busy_last_t:
            busy_area += busy_level * (t - busy_last_t)
            busy_last_t = t

    def advance_down(t: float) -> None:
        nonlocal down_level, down_last_t, down_area
        while down_deltas and down_deltas[0][0] <= t:
            event_t, _, delta = heapq.heappop(down_deltas)
            if event_t > down_last_t:
                down_area += down_level * (event_t - down_last_t)
                down_last_t = event_t
            down_level += delta
        if t > down_last_t:
            down_area += down_level * (t - down_last_t)
            down_last_t = t

    def mark_down(start: float, end: float) -> None:
        nonlocal down_seq
        down_seq += 1
        heapq.heappush(down_deltas, (start, down_seq, 1))
        down_seq += 1
        heapq.heappush(down_deltas, (end, down_seq, -1))

    def flush_provisioned(t: float) -> None:
        nonlocal prov_last_t, prov_area, board_seconds
        if t > prov_last_t:
            span = (t - prov_last_t) * in_service_count
            prov_area += span
            board_seconds += span
            prov_last_t = t

    def catch_up(t: float) -> None:
        """Close every control window whose boundary has passed.

        Called *before* the events at ``t`` are admitted: the
        boundary ``k * interval <= t`` lies in this event's past, so
        the decision there must see the queue as it stood at the
        boundary — admitting first would leak the event into its own
        control window and pin ``queue_depth >= 1`` at every eval
        that an arrival wakes (which is all of them in a trough).
        """
        nonlocal eval_count
        while (eval_count + 1) * interval <= t:
            eval_count += 1
            admit(eval_count * interval)
            evaluate(eval_count * interval, eval_count - 1)

    def evaluate(t_eval: float, window: int) -> None:
        nonlocal target, busy_area, prov_area, down_area
        advance_busy(t_eval)
        advance_down(t_eval)
        flush_provisioned(t_eval)
        arrivals = arrival_bins.pop(window, 0)
        if prov_area > 0.0:
            availability = min(1.0, max(0.0, 1.0 - down_area / prov_area))
        else:
            availability = 1.0
        signals = ScaleSignals(
            t=t_eval,
            interval_s=interval,
            queue_depth=policy.pending,
            provisioned=in_service_count,
            busy_board_s=busy_area,
            provisioned_board_s=prov_area,
            arrivals=arrivals,
            arrival_rate=arrivals / interval,
            service_s_per_job=(
                busy_total_s / jobs_dispatched if jobs_dispatched else 0.0
            ),
            alive=alive,
            down_in_service=down_level,
            availability=availability,
        )
        busy_area = 0.0
        prov_area = 0.0
        down_area = 0.0
        target = max(1, min(scale.decide(signals), sim.num_devices))

    def reject_job(job: Job) -> None:
        rejected.append(job)
        in_policy.pop(job.job_id, None)
        if rec is not None:
            deadline = job.effective_deadline_s
            rec.job_rejected(
                t=now,
                job_id=job.job_id,
                job_class=job.job_class.name,
                tenant=job.tenant,
                deadline_s=(None if deadline == math.inf else deadline),
            )

    policy.begin(
        PolicyContext(
            max_batch=sim.max_batch,
            price=price,
            service_bound_s=sim.service_bound_s,
            best_case_s=sim.best_case_service_s,
            reject=reject_job,
            recorder=recorder if rec is not None else NULL_RECORDER,
        )
    )
    if rec is not None:
        rec.run_begin(
            scenario=scenario.name,
            num_devices=sim.num_devices,
            policy=policy.name,
            price=price,
            max_batch=sim.max_batch,
        )

    def enqueue(job: Job) -> None:
        policy.enqueue(job)
        in_policy[job.job_id] = job

    def admit(now: float) -> None:
        nonlocal i
        while i < n and jobs[i].arrival_s <= now:
            job = jobs[i]
            enqueue(job)
            if scale is not None:
                bin_index = window_index(job.arrival_s, interval)
                arrival_bins[bin_index] = arrival_bins.get(bin_index, 0) + 1
            if rec is not None:
                deadline = job.effective_deadline_s
                rec.job_arrival(
                    t=job.arrival_s,
                    job_id=job.job_id,
                    job_class=job.job_class.name,
                    tenant=job.tenant,
                    deadline_s=(None if deadline == math.inf else deadline),
                    deferrable=job.deferrable,
                )
            i += 1
        while retry_heap and retry_heap[0][0] <= now:
            _, _, job = heapq.heappop(retry_heap)
            enqueue(job)

    def next_pending_s() -> float:
        t = jobs[i].arrival_s if i < n else math.inf
        if retry_heap and retry_heap[0][0] < t:
            t = retry_heap[0][0]
        return t

    def shed_job(job: Job, reason: str, t: float) -> None:
        job.shed = True
        job.shed_reason = reason
        shed.append(job)
        in_policy.pop(job.job_id, None)
        if rec is not None:
            rec.policy_event(
                t=t,
                name=f"shed:{reason}",
                job_id=job.job_id,
                job_class=job.job_class.name,
                tenant=job.tenant,
            )

    def settle_board(b: int, t: float, killed_batch: bool = False):
        """Process board ``b``'s fault timeline up to ``t``.

        Returns ``"dead"`` (permanent failure discovered), a float
        repair time ``> t`` (board is down at ``t``), or ``None``
        (board healthy at ``t``).  Fault side effects — ledger-owned
        cache eviction, recorder instants, alive/healthy/in-service
        bookkeeping — fire exactly once per interval.
        """
        nonlocal board_faults, alive, healthy, in_service_count
        device = devices[b]
        while True:
            down, up = schedule.current(b)
            if down > t:
                return None
            if not schedule.processed(b):
                schedule.mark_processed(b)
                ledger.evict(b, device.cache)
                board_faults += 1
                permanent = math.isinf(up)
                healthy -= 1
                if rec is not None:
                    rec.board_fault(
                        t=down,
                        board=b,
                        permanent=permanent,
                        healthy=healthy,
                        killed_batch=killed_batch,
                    )
                if permanent:
                    alive -= 1
                    if scale is not None and in_service[b]:
                        # Stop paying for the dead board at discovery
                        # time; its down-time since the fault feeds
                        # the availability signal.
                        flush_provisioned(t)
                        in_service[b] = False
                        in_service_count -= 1
                        mark_down(down, t)
                    ledger.transition(b, FAILED, down)
                    return "dead"
                # The repair instant is known now; record it at its
                # own timestamp (trace events are buffered + sorted).
                healthy += 1
                if rec is not None:
                    rec.board_repair(t=up, board=b, healthy=healthy)
                if in_service[b]:
                    ledger.transition(b, REPAIRING, down)
                    if scale is not None:
                        mark_down(down, up)
            if math.isinf(up):
                return "dead"
            if up > t:
                return up
            schedule.advance(b)
            if ledger.state(b) == REPAIRING:
                ledger.transition(b, ACTIVE, up)

    def park_board(b: int, t: float) -> None:
        """Take board ``b`` out of service at ``t`` (the drain just
        completed — voluntarily, or because a fault finished it)."""
        nonlocal in_service_count, resize_events, scale_downs
        flush_provisioned(t)
        in_service[b] = False
        in_service_count -= 1
        parked.append(b)
        ledger.evict(b, devices[b].cache)
        ledger.transition(b, DRAINING, t)
        ledger.transition(b, PARKED, t)
        resize_events += 1
        scale_downs += 1
        if rec is not None:
            rec.pool_resize(
                t=t, board=b, direction="down", provisioned=in_service_count
            )

    def unpark_board(t: float) -> bool:
        """Return one parked board to service at ``t`` (cold).

        Settles the spare first: a permanently dead spare is
        discarded (``failed``) and the next one tried; a spare still
        under repair rejoins at its repair time.  Returns whether a
        board actually rejoined.
        """
        nonlocal in_service_count, resize_events, scale_ups
        while parked:
            board = parked.pop()
            status = settle_board(board, t) if schedule is not None else None
            if status == "dead":
                continue
            flush_provisioned(t)
            in_service[board] = True
            in_service_count += 1
            resize_events += 1
            scale_ups += 1
            if status is not None:
                ledger.transition(board, REPAIRING, t)
                mark_down(t, status)
                heapq.heappush(free_heap, (status, board))
            else:
                ledger.transition(board, ACTIVE, t)
                heapq.heappush(free_heap, (t, board))
            if rec is not None:
                rec.pool_resize(
                    t=t, board=board, direction="up", provisioned=in_service_count
                )
            return True
        return False

    def fail_batch(
        batch: List[Job],
        gang,
        start: float,
        fail_t: float,
        launched: bool,
    ) -> None:
        """A fault killed ``batch`` at ``fail_t``; route every job
        through the retry policy and free the surviving boards."""
        nonlocal failures, wasted_service_s, cost_price_units
        nonlocal retry_seq
        failures += 1
        run_s = fail_t - start
        if launched and run_s > 0:
            wasted_service_s += run_s * len(gang)
            cost_price_units += len(gang) * price.integral(start, fail_t)
        for member in gang:
            if launched and run_s > 0:
                member.busy_s += run_s
        for job in batch:
            wake = retry.next_attempt_s(job, fail_t, retry_rng)
            if wake is None:
                shed_job(job, "retry_budget", fail_t)
            else:
                job.retries += 1
                retry_seq += 1
                heapq.heappush(retry_heap, (wake, retry_seq, job))
        for member in gang:
            status = settle_board(member.index, fail_t, killed_batch=True)
            if status == "dead":
                member.free_at_s = fail_t
                continue
            if status is not None:
                member.free_at_s = status
                heapq.heappush(free_heap, (status, member.index))
            else:
                member.free_at_s = fail_t
                heapq.heappush(free_heap, (fail_t, member.index))

    def gang_start(k: int) -> float:
        if k <= 1:
            return now
        extra = heapq.nsmallest(k - 1, free_heap)
        free = max((devices[index].free_at_s for _, index in extra), default=now)
        return max(now, free)

    def service_s(job: Job, batch_size: int) -> float:
        job_class = job.job_class
        members = [devices[device_index]]
        if job_class.num_fpgas > 1:
            members += [
                devices[index]
                for _, index in heapq.nsmallest(job_class.num_fpgas - 1, free_heap)
            ]
        load_s = max(
            key_load_seconds(
                sim.host, member.cache.peek_miss_bytes(job.tenant, job_class)
            )
            for member in members
        )
        return launch_overhead_s + load_s + batch_size * job_class.seconds(sim.config)

    view = DispatchView(now=0.0, gang_start=gang_start, service_s=service_s)

    while i < n or policy.pending or retry_heap:
        if not free_heap:
            # Every in-service board is permanently dead.  With
            # spares parked, perform an emergency un-park (the ledger
            # discards dead spares); otherwise the pool is dead: shed
            # all remaining work (queued, awaiting retry, unarrived).
            if scale is not None and unpark_board(now):
                continue
            for job in list(in_policy.values()):
                shed_job(job, "pool_dead", now)
            while retry_heap:
                _, _, job = heapq.heappop(retry_heap)
                shed_job(job, "pool_dead", now)
            while i < n:
                shed_job(jobs[i], "pool_dead", now)
                i += 1
            break
        free_at, device_index = heapq.heappop(free_heap)
        now = free_at
        # Catch the control loop up to ``now`` *before* admitting the
        # events at ``now``: one decision per elapsed window, each fed
        # exactly that window's signals.
        if scale is not None:
            catch_up(now)
        admit(now)
        if not policy.pending:
            # Idle until the next arrival or retry wake.
            now = max(now, next_pending_s())
            if scale is not None:
                catch_up(now)
            admit(now)
        if schedule is not None:
            status = settle_board(device_index, now)
            if status == "dead":
                continue
            if status is not None:
                if scale is not None and in_service_count > target:
                    # Arbitration: the fault completes the drain.  The
                    # scaler wanted this board gone; park it now
                    # instead of paying until its repair.  Its cache
                    # was already evicted by the fault settlement, so
                    # the park's eviction is the ledger no-op — one
                    # eviction per departure.
                    mark_down(now, status)  # cancels [now, status)
                    park_board(device_index, now)
                    continue
                heapq.heappush(free_heap, (status, device_index))
                continue
        # Scale-up applies immediately: parked boards rejoin cold
        # (their key caches were evicted when they parked).
        if scale is not None:
            while in_service_count < target and unpark_board(now):
                pass
            # Scale-down drains: this board just came up free, so
            # parking it never interrupts work.  Its gang (if any)
            # already finished; queued work re-plans below if the
            # stripe no longer fits.
            if in_service_count > target:
                park_board(device_index, now)
                continue

        view.now = now
        if rec is not None:
            rec.queue_sample(t=now, total=policy.pending, depths=policy.queue_depths())
        batch = policy.next_batch(view)
        if not batch:
            if policy.pending:
                wake = policy.next_event_s(now)
                if i < n:
                    wake = min(wake, jobs[i].arrival_s)
                if retry_heap:
                    wake = min(wake, retry_heap[0][0])
                if scale is not None:
                    # Never sleep through a control boundary: a
                    # deferred board must still wake to apply a
                    # pending resize.
                    wake = min(wake, (eval_count + 1) * interval)
                if wake <= now:
                    wake = math.nextafter(now, math.inf)
                if rec is not None:
                    rec.defer(board=device_index, t=now, wake=wake)
                heapq.heappush(free_heap, (wake, device_index))
            else:
                heapq.heappush(free_heap, (now, device_index))
            continue
        for job in batch:
            in_policy.pop(job.job_id, None)
        job_class = batch[0].job_class

        pool_limit = in_service_count if scale is not None else alive
        if job_class.num_fpgas > pool_limit:
            # The pool can no longer seat this gang — capacity left
            # permanently (deaths) or on purpose (parks).  Re-plan
            # onto the widest viable smaller stripe, or shed when
            # none fits / the trace is unavailable.
            k = largest_viable_stripe(pool_limit, job_class.num_fpgas)
            key = (job_class, k)
            if key not in restripe_cache:
                restripe_cache[key] = (
                    job_class.restriped(k, sim.config) if k >= 1 else None
                )
            new_class = restripe_cache[key]
            if new_class is None:
                for job in batch:
                    shed_job(job, "degraded", now)
            else:
                if rec is not None:
                    rec.policy_event(
                        t=now,
                        name="degrade",
                        job_class=job_class.name,
                        from_stripe=job_class.num_fpgas,
                        to_stripe=k,
                        jobs=len(batch),
                    )
                for job in batch:
                    job.job_class = new_class
                    job.degraded = True
                    enqueue(job)
            heapq.heappush(free_heap, (now, device_index))
            continue

        gang = [devices[device_index]]
        start = now
        if job_class.num_fpgas > 1:
            # Gang-assemble: a down board is just a board that frees
            # at its repair time; a board found permanently dead is
            # skipped (and may leave the gang short — see below).
            # Parked boards are not in the heap, so the gang only
            # ever recruits in-service boards.
            needed = job_class.num_fpgas - 1
            while needed and free_heap:
                _, extra_index = heapq.heappop(free_heap)
                member = devices[extra_index]
                avail = max(now, member.free_at_s)
                if schedule is not None:
                    mstatus = settle_board(extra_index, avail)
                    if mstatus == "dead":
                        continue
                    if mstatus is not None and mstatus > avail:
                        avail = mstatus
                        member.free_at_s = mstatus
                gang.append(member)
                needed -= 1
                if avail > start:
                    start = avail
            if needed:
                # The heap dried up before the gang filled: newly
                # discovered dead boards shrank the pool below the
                # stripe.  Put everything back; the next dispatch
                # sees the updated pool and re-plans.
                for member in gang:
                    if member.index != device_index:
                        heapq.heappush(
                            free_heap, (max(now, member.free_at_s), member.index)
                        )
                for job in batch:
                    enqueue(job)
                heapq.heappush(free_heap, (math.nextafter(now, math.inf), device_index))
                continue

        if schedule is not None:
            # Settle every member to the (possibly repair-delayed)
            # start: waiting boards can fault while idle, which may
            # push the start further out or kill the dispatch before
            # launch.
            aborted = False
            while True:
                moved = False
                for member in gang:
                    mstatus = settle_board(member.index, start)
                    if mstatus == "dead":
                        # A member died while the gang was forming:
                        # the batch never launches.
                        dead_index = member.index
                        fail_batch(
                            batch,
                            [m for m in gang if m.index != dead_index],
                            start,
                            start,
                            launched=False,
                        )
                        aborted = True
                        break
                    if mstatus is not None and mstatus > start:
                        start = mstatus
                        moved = True
                if aborted or not moved:
                    break
            if aborted:
                continue

        # Key loads previewed without mutation so the finish time (and
        # hence the kill window) is known before committing residency.
        load_s = 0.0
        for member in gang:
            member_load_s = key_load_seconds(
                sim.host, member.cache.peek_miss_bytes(batch[0].tenant, job_class)
            )
            if member_load_s > load_s:
                load_s = member_load_s
        compute_s = len(batch) * job_class.seconds(sim.config)
        batch_service_s = launch_overhead_s + load_s + compute_s
        finish = start + batch_service_s
        if schedule is not None:
            fail_t = min(schedule.next_down_s(m.index) for m in gang)
            if fail_t < finish:
                # The gang loses a board mid-batch (or at the starting
                # line): everything since ``start`` is wasted and
                # every job goes to the retry policy.  Key residency
                # is committed — the loads were in flight — and the
                # failed board's cache is wiped by its fault
                # settlement.
                member_loads = [] if rec is not None else None
                for member in gang:
                    miss_bytes = member.cache.request(batch[0].tenant, job_class)
                    member_load_s = key_load_seconds(sim.host, miss_bytes)
                    member.key_load_s += member_load_s
                    ledger.warmed(member.index)
                    if member_loads is not None:
                        member_loads.append((member.index, member_load_s, miss_bytes))
                if rec is not None and fail_t > start:
                    rec.batch(
                        start=start,
                        finish=fail_t,
                        job_class=job_class.name,
                        tenant=batch[0].tenant,
                        batch_size=len(batch),
                        launch_s=launch_overhead_s,
                        members=member_loads,
                        cache_stats=tuple(m.cache.stats() for m in gang),
                        cost=len(gang) * price.integral(start, fail_t),
                    )
                    rec.policy_event(
                        t=fail_t,
                        name="batch_killed",
                        job_class=job_class.name,
                        jobs=len(batch),
                    )
                if scale is not None:
                    busy_seq += 1
                    heapq.heappush(busy_deltas, (start, busy_seq, len(gang)))
                    busy_seq += 1
                    heapq.heappush(busy_deltas, (fail_t, busy_seq, -len(gang)))
                fail_batch(batch, gang, start, fail_t, launched=True)
                continue

        member_loads = [] if rec is not None else None
        for member in gang:
            miss_bytes = member.cache.request(batch[0].tenant, job_class)
            member_load_s = key_load_seconds(sim.host, miss_bytes)
            member.key_load_s += member_load_s
            ledger.warmed(member.index)
            if member_loads is not None:
                member_loads.append((member.index, member_load_s, miss_bytes))
        for job in batch:
            job.finish_s = finish
        completed.extend(batch)
        for member in gang:
            member.free_at_s = finish
            member.busy_s += batch_service_s
            heapq.heappush(free_heap, (finish, member.index))
        gang[0].jobs_done += len(batch)
        batches += 1
        batched_jobs += len(batch)
        if scale is not None:
            busy_seq += 1
            heapq.heappush(busy_deltas, (start, busy_seq, len(gang)))
            busy_seq += 1
            heapq.heappush(busy_deltas, (finish, busy_seq, -len(gang)))
            busy_total_s += batch_service_s * len(gang)
            jobs_dispatched += len(batch)
        batch_cost = len(gang) * price.integral(start, finish)
        cost_price_units += batch_cost
        if rec is not None:
            slo_met = slo_total = 0
            for job in batch:
                deadline = job.effective_deadline_s
                if deadline != math.inf:
                    slo_total += 1
                    if finish <= deadline:
                        slo_met += 1
            rec.batch(
                start=start,
                finish=finish,
                job_class=job_class.name,
                tenant=batch[0].tenant,
                batch_size=len(batch),
                launch_s=launch_overhead_s,
                members=member_loads,
                cache_stats=tuple(m.cache.stats() for m in gang),
                slo_met=slo_met,
                slo_total=slo_total,
                cost=batch_cost,
            )

    makespan = max((j.finish_s or 0.0 for j in completed), default=0.0)
    if scale is not None:
        # Close the capacity integral at the end of the run:
        # in-service boards are paid for until the last completion
        # (or the last control event, whichever came later).
        flush_provisioned(max(makespan, prov_last_t))
    ledger.close(max(makespan, now, prov_last_t))
    if rec is not None:
        rec.run_end(
            makespan_s=makespan,
            device_busy_s=tuple(d.busy_s for d in devices),
            jobs_done=len(completed),
        )
    report_kwargs: Dict[str, object] = {}
    if schedule is not None:
        report_kwargs.update(
            board_faults=board_faults,
            failures=failures,
            wasted_service_s=wasted_service_s,
        )
    if scale is not None:
        report_kwargs.update(
            resize_events=resize_events,
            scale_ups=scale_ups,
            scale_downs=scale_downs,
            board_seconds=board_seconds,
        )
    return sim._report(
        scenario,
        completed,
        devices,
        batches,
        batched_jobs,
        policy=policy.name,
        rejected=rejected,
        deferred_jobs=policy.deferred_jobs,
        cost_price_units=cost_price_units,
        shed=shed,
        **report_kwargs,
    )


__all__ = [
    "ACTIVE",
    "BOARD_STATES",
    "DRAINING",
    "FAILED",
    "PARKED",
    "PoolLedger",
    "REPAIRING",
    "run_with_ledger",
]
