"""The trace IR: a serializable log of homomorphic operations.

An :class:`OpTrace` is the bridge between the functional CKKS layer
(:mod:`repro.fhe`) and the performance layer (:mod:`repro.core`): run
any application once under the tracing evaluator
(:mod:`repro.runtime.capture`) and every homomorphic operation —
kind, level, rotation step, operand identities — lands here, ready to
be lowered to a :class:`repro.core.program.FabProgram` task graph
(:mod:`repro.runtime.lowering`) or replayed through the serving
simulator (:mod:`repro.runtime.serving`).

The IR is deliberately tiny: a trace is a list of :class:`TraceOp`
records plus free-form metadata, serializable to/from JSON so traces
captured once can be archived and re-costed under different hardware
configurations.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Every operation kind the tracer may record.  A superset of the
#: schedulable :data:`repro.core.program.OP_KINDS`; the lowering table
#: in :mod:`repro.runtime.lowering` maps each to its cost-model kind
#: (or drops it, for limb-management ops that are free on FAB).
TRACE_KINDS = (
    "add", "sub", "negate", "add_plain", "sub_plain",
    "multiply", "square", "multiply_plain", "multiply_scalar",
    "rescale", "rotate", "rotate_hoisted", "conjugate",
    "mod_down", "ntt_poly",
)


@dataclass(frozen=True, slots=True)
class TraceOp:
    """One recorded homomorphic operation.

    Attributes:
        seq: position in the trace (0-based).
        kind: one of :data:`TRACE_KINDS`.
        level: limb count ``l`` the operation ran at (what the cost
            models key on).
        step: rotation step for ``rotate``/``rotate_hoisted`` (a
            negative value encodes a raw Galois element recorded from
            a direct ``apply_galois`` call); None otherwise.
        operands: trace ids of the input ciphertexts.
        result: trace id of the output ciphertext, if any.
    """

    seq: int
    kind: str
    level: int
    step: Optional[int] = None
    operands: Tuple[int, ...] = ()
    result: Optional[int] = None

    def __post_init__(self):
        if self.kind not in TRACE_KINDS:
            raise ValueError(f"unknown trace kind {self.kind!r}; "
                             f"choose from {TRACE_KINDS}")
        if self.level < 1:
            raise ValueError(f"level must be >= 1, got {self.level}")


def _with_seq(proto: TraceOp, seq: int) -> TraceOp:
    """Clone an already-validated record at a new trace position.

    Bypasses ``__init__`` (the record is immutable and was validated
    when first constructed), so re-sequencing in ``extend`` /
    ``repeated`` and replaying interned records costs six slot writes
    instead of a full dataclass construction + validation.
    """
    op = object.__new__(TraceOp)
    setattr_ = object.__setattr__
    setattr_(op, "seq", seq)
    setattr_(op, "kind", proto.kind)
    setattr_(op, "level", proto.level)
    setattr_(op, "step", proto.step)
    setattr_(op, "operands", proto.operands)
    setattr_(op, "result", proto.result)
    return op


#: Interned prototypes for dataflow-free records, keyed by
#: (kind, level, step).  Synthetic reference traces (a bootstrap is
#: thousands of ops over a few dozen distinct shapes) hit this cache;
#: captured traces carry per-op operand ids and construct normally.
_RECORD_INTERN: Dict[Tuple[str, int, Optional[int]], TraceOp] = {}


class OpTrace:
    """A recorded (or synthesized) sequence of homomorphic operations."""

    def __init__(self, name: str = "trace",
                 meta: Optional[Dict[str, object]] = None):
        self.name = name
        self.meta: Dict[str, object] = dict(meta or {})
        self.ops: List[TraceOp] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def record(self, kind: str, level: int, step: Optional[int] = None,
               operands: Sequence[int] = (),
               result: Optional[int] = None) -> TraceOp:
        """Append one operation; returns the record."""
        if not operands and result is None:
            key = (kind, level, step)
            proto = _RECORD_INTERN.get(key)
            if proto is None:
                proto = _RECORD_INTERN[key] = TraceOp(0, kind, level, step)
            op = _with_seq(proto, len(self.ops))
        else:
            op = TraceOp(len(self.ops), kind, level, step,
                         tuple(operands), result)
        self.ops.append(op)
        return op

    def extend(self, other: "OpTrace") -> "OpTrace":
        """Append another trace's ops (re-sequenced); returns self."""
        ops = self.ops
        for op in other.ops:
            ops.append(_with_seq(op, len(ops)))
        return self

    def repeated(self, times: int, name: Optional[str] = None) -> "OpTrace":
        """A new trace with this one's ops repeated ``times`` times."""
        if times < 1:
            raise ValueError("times must be >= 1")
        out = OpTrace(name or f"{self.name}x{times}", self.meta)
        for _ in range(times):
            out.extend(self)
        return out

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[TraceOp]:
        return iter(self.ops)

    def op_counts(self) -> Dict[str, int]:
        """Histogram of op kinds, insertion-ordered."""
        counts: Dict[str, int] = {}
        for op in self.ops:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    def rotation_steps(self) -> List[int]:
        """Distinct rotation steps used (the Galois keys required)."""
        steps = []
        for op in self.ops:
            if op.kind in ("rotate", "rotate_hoisted") \
                    and op.step is not None and op.step not in steps:
                steps.append(op.step)
        return steps

    def levels(self) -> Tuple[int, int]:
        """(min, max) level across the trace (0, 0 when empty)."""
        if not self.ops:
            return (0, 0)
        lvls = [op.level for op in self.ops]
        return (min(lvls), max(lvls))

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        lo, hi = self.levels()
        counts = ", ".join(f"{k}={v}" for k, v in self.op_counts().items())
        return (f"{self.name}: {len(self.ops)} ops, levels {lo}..{hi}, "
                f"{len(self.rotation_steps())} rotation keys; {counts}")

    def __repr__(self) -> str:
        return f"OpTrace({self.name!r}, ops={len(self.ops)})"

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize the full trace (ops + metadata) to JSON."""
        return json.dumps({
            "name": self.name,
            "meta": self.meta,
            "ops": [asdict(op) for op in self.ops],
        }, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "OpTrace":
        """Rebuild a trace serialized by :meth:`to_json`."""
        data = json.loads(text)
        trace = cls(data.get("name", "trace"), data.get("meta"))
        for op in data.get("ops", []):
            trace.record(op["kind"], op["level"], op.get("step"),
                         tuple(op.get("operands", ())), op.get("result"))
        return trace

    def save(self, path: str, indent: int = 0) -> None:
        """Write the trace to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(indent=indent or None))

    @classmethod
    def load(cls, path: str) -> "OpTrace":
        """Read a trace written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())
