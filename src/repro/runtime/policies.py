"""Admission and scheduling policies for the serving simulator.

The serving simulator (:mod:`repro.runtime.serving`) dispatches work
from per-(class, tenant) FIFO queues onto free FAB boards.  *Which*
queue runs next — and whether a queued job should run at all — is a
policy decision, pluggable through this module:

* ``fifo`` — :class:`FifoPolicy`: oldest queue head first.  This is
  the pre-policy dispatch order, bit-identical to the original event
  loop preserved in :mod:`repro.runtime.serving_baseline` (the
  regression suite asserts it).
* ``edf`` — :class:`EdfPolicy`: earliest effective deadline first,
  with admission control.  A batch is admitted only when its exact
  dispatch-time service preview meets every member's deadline from
  the batch's start time; a head that misses only because *this*
  board's key cache is cold stays queued for a warmer board, while a
  job that cannot meet its SLO even best-case (keys resident, solo)
  is rejected instead of poisoning the queue behind it.  For a
  striped job class the start time is the *gang* start — all
  ``num_fpgas`` boards must be free and able to meet the deadline.
* ``deferrable-window`` — :class:`DeferrableWindowPolicy`: two-tier
  scheduling in the style of carbon/price-aware deferrable workload
  systems (cf. pennsail/cr).  Interactive traffic owns the pool;
  ``deferrable`` batch jobs wait for cheap slots of a time-varying
  :class:`PriceSignal` and are force-started just in time to finish
  inside their execution window, so deferral never starves a batch
  job past its window end.

Policies never look inside the device pool: the simulator hands them
a :class:`DispatchView` per freed board — ``now``, a ``gang_start``
oracle, and an exact dispatch-time service preview (the gang's
key-cache state peeked without mutation) — plus a run-scoped
:class:`PolicyContext` with a conservative cold-key service bound for
decisions made away from a board (forced starts).  Every completed
job admitted by a deadline-checking policy therefore finishes by its
deadline under the simulator clock — the property the hypothesis
suite in ``tests/runtime/test_policies.py`` hammers on.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
)

from ..obs import NULL_RECORDER, Recorder
from .specs import SpecError

if TYPE_CHECKING:
    from .serving import Job, JobClass


# ----------------------------------------------------------------------
# Time-varying price / carbon signal
# ----------------------------------------------------------------------


class PriceSignal:
    """A piecewise-constant, periodic price (or carbon) signal.

    ``levels[i]`` is the cost per device-second during slot ``i``;
    slots are ``slot_s`` seconds wide and the pattern repeats every
    ``len(levels) * slot_s`` seconds.  A slot is *cheap* when its
    level is at or below ``cheap_threshold`` (default: the minimum
    level, so at least one slot per period is always cheap — which is
    what guarantees deferrable scheduling makes progress).
    """

    def __init__(
        self,
        levels: Tuple[float, ...] = (1.0,),
        slot_s: float = 1.0,
        cheap_threshold: Optional[float] = None,
    ):
        levels = tuple(float(level) for level in levels)
        if not levels:
            raise ValueError("need at least one price level")
        if any(level < 0 for level in levels):
            raise ValueError("price levels must be non-negative")
        if slot_s <= 0:
            raise ValueError("slot_s must be positive")
        if cheap_threshold is not None and cheap_threshold < min(levels):
            # The deferrable tier's progress guarantee (and
            # next_cheap's contract) requires at least one cheap slot
            # per period; a threshold below every level would make
            # deferral wait forever.
            raise ValueError(
                f"cheap_threshold {cheap_threshold:g} is below the "
                f"cheapest level {min(levels):g}: no slot would ever "
                f"be cheap")
        self.levels = levels
        self.slot_s = float(slot_s)
        self.cheap_threshold = (
            min(levels) if cheap_threshold is None else float(cheap_threshold)
        )
        self._flat = len(set(levels)) == 1

    @classmethod
    def flat(cls, price: float = 1.0) -> "PriceSignal":
        """A constant signal (the default: every instant is cheap)."""
        return cls((price,))

    @classmethod
    def diurnal(
        cls,
        peak: float = 2.0,
        trough: float = 0.5,
        slot_s: float = 0.25,
    ) -> "PriceSignal":
        """A square wave: an expensive half-period, then a cheap one."""
        return cls((peak, trough), slot_s=slot_s)

    @property
    def period_s(self) -> float:
        return len(self.levels) * self.slot_s

    def _slot(self, t: float) -> int:
        t = max(t, 0.0)
        slot = int(t // self.slot_s)
        # Float floor-division can attribute an exact slot boundary to
        # the slot *before* it (e.g. 0.125 // 0.025 == 4.0 because the
        # float 0.025 is a hair above 1/40), which would make
        # ``integral`` loop forever at ``upper == t`` and
        # ``next_change`` return a time not strictly after ``t``.  A
        # boundary instant belongs to the slot it opens.
        if (slot + 1) * self.slot_s <= t:
            slot += 1
        return slot

    def price_at(self, t: float) -> float:
        return self.levels[self._slot(t) % len(self.levels)]

    def is_cheap(self, t: float) -> bool:
        return self.price_at(t) <= self.cheap_threshold

    def price_at_array(self, t):
        """Vectorized :meth:`price_at` over a numpy array of times.

        Element-for-element equal to the scalar version, including
        its slot-boundary correction, so vectorized consumers (the
        fleet examples, analysis notebooks) can reconcile against
        event-loop accounting exactly.
        """
        import numpy as np

        t = np.maximum(np.asarray(t, dtype=np.float64), 0.0)
        slot = (t // self.slot_s).astype(np.int64)
        slot[(slot + 1) * self.slot_s <= t] += 1
        return np.asarray(self.levels)[slot % len(self.levels)]

    def is_cheap_array(self, t):
        """Vectorized :meth:`is_cheap` over a numpy array of times."""
        return self.price_at_array(t) <= self.cheap_threshold

    def next_change(self, t: float) -> float:
        """Earliest time strictly after ``t`` with a different price
        (``inf`` for a flat signal)."""
        if self._flat:
            return math.inf
        slot = self._slot(t)
        here = self.levels[slot % len(self.levels)]
        for ahead in range(1, len(self.levels) + 1):
            if self.levels[(slot + ahead) % len(self.levels)] != here:
                return (slot + ahead) * self.slot_s
        return math.inf

    def next_cheap(self, t: float) -> float:
        """Earliest time at or after ``t`` that is cheap (``t`` itself
        when the current slot already is)."""
        at = max(t, 0.0)
        for _ in range(len(self.levels) + 1):
            if self.is_cheap(at):
                return max(at, t)
            at = self.next_change(at)
        return at

    def integral(self, t0: float, t1: float) -> float:
        """Exact integral of the price over ``[t0, t1]``."""
        if t1 <= t0:
            return 0.0
        if self._flat:
            return (t1 - t0) * self.levels[0]
        total = 0.0
        t = t0
        while t < t1:
            slot = self._slot(t)
            upper = min((slot + 1) * self.slot_s, t1)
            if upper <= t:  # pragma: no cover — _slot guarantees progress
                upper = t1
            total += (upper - t) * self.levels[slot % len(self.levels)]
            t = upper
        return total

    def __repr__(self) -> str:
        return (
            f"PriceSignal(levels={self.levels}, slot_s={self.slot_s:g})"
        )


# ----------------------------------------------------------------------
# The simulator-facing contract
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyContext:
    """What the simulator exposes to a policy for one run.

    ``service_bound_s(job_class, batch_size)`` is an *upper* bound on
    the service time of a batch (launch overhead + worst-case
    cold-key load + compute), so decisions made against it without
    device context — e.g. a deferrable job's forced start — are
    conservative: the actual batch can only finish earlier than the
    bound predicts.  ``best_case_s(job_class, batch_size)`` is the
    matching *lower* bound (launch + compute, every key resident):
    a job that misses its deadline even against it is infeasible on
    any board, so rejecting it is final rather than board-local.
    """

    max_batch: int
    price: PriceSignal
    service_bound_s: Callable[["JobClass", int], float]
    best_case_s: Callable[["JobClass", int], float]
    reject: Callable[["Job"], None]
    #: Observes policy decision points (skips, deferrals, forced
    #: starts); disabled by default, and policies must gate every hook
    #: on ``recorder.enabled`` so unobserved runs stay bit-identical.
    recorder: Recorder = NULL_RECORDER


@dataclass
class DispatchView:
    """One dispatch opportunity: a board freed up at ``now``.

    ``gang_start(k)`` is the earliest time a gang of ``k`` boards
    (this one plus the ``k - 1`` next free) could all start.
    ``service_s(job, batch_size)`` is the *exact* service time a
    batch led by ``job`` would take if dispatched right now: the
    simulator previews the gang's key-cache state without mutating
    it, so an admission test against this oracle is tight — an
    admitted batch finishes exactly when predicted.

    The simulator reuses one instance across dispatches (updating it
    in place on its hot loop), so a view is only valid for the
    duration of the ``next_batch`` call it was passed to — policies
    must not retain it.
    """

    now: float
    gang_start: Callable[[int], float]
    service_s: Callable[["Job", int], float]


class SchedulingPolicy:
    """Base class: queue discipline + admission for the simulator.

    Lifecycle: the simulator calls :meth:`begin` once per run, feeds
    arrivals through :meth:`enqueue`, and asks :meth:`next_batch`
    whenever a board frees up.  ``next_batch`` may return ``None`` to
    leave the board idle; the simulator then sleeps it until the next
    arrival or :meth:`next_event_s`, whichever is earlier.
    """

    name = "base"

    def begin(self, ctx: PolicyContext) -> None:
        self.ctx = ctx

    def enqueue(self, job: "Job") -> None:
        raise NotImplementedError

    @property
    def pending(self) -> int:
        """Number of queued (not yet dispatched or rejected) jobs."""
        raise NotImplementedError

    def next_batch(self, view: DispatchView) -> Optional[List["Job"]]:
        """Pick the next batch (same class + tenant) to dispatch.

        Returning ``None`` defers: nothing should run on this board
        right now.
        """
        raise NotImplementedError

    def next_event_s(self, now: float) -> float:
        """When to re-evaluate after a deferral (``inf``: arrivals
        only).  Must be strictly greater than ``now`` whenever jobs
        are pending, or the simulator could not make progress."""
        return math.inf

    @property
    def deferred_jobs(self) -> int:
        """Distinct jobs this policy has explicitly held back."""
        return 0

    @property
    def deferral_events(self) -> int:
        """Decision points at which queued work was held back."""
        return 0

    def queue_depths(self) -> Dict[Tuple[str, str], int]:
        """Pending jobs per (class, tenant) queue — recorder food,
        only called when a recorder is live."""
        return {}


# ----------------------------------------------------------------------
# Queue bookkeeping shared by every policy
# ----------------------------------------------------------------------


class _QueueSet:
    """Per-(class, tenant) FIFO queues under one priority head-heap.

    ``priority(job)`` maps a queue head to a totally ordered tuple;
    the heap is lazily invalidated (entries whose job was swept into
    an earlier batch are discarded on pop), so a dispatch costs
    O(log) rather than a scan over every queue — the same structure
    the pre-policy event loop used, generalized over the key.
    """

    def __init__(self, priority: Callable[["Job"], Tuple]):
        self.priority = priority
        self._queues: Dict[Tuple[str, str], Deque["Job"]] = {}
        self._seq: Dict[Tuple[str, str], int] = {}
        self._heads: List[Tuple] = []
        self.pending = 0

    def enqueue(self, job: "Job") -> None:
        key = (job.job_class.name, job.tenant)
        queue = self._queues.get(key)
        if queue is None:
            queue = self._queues[key] = deque()
            self._seq[key] = len(self._seq)
        queue.append(job)
        if len(queue) == 1:
            self._push(key, job)
        self.pending += 1

    def _push(self, key: Tuple[str, str], job: "Job") -> None:
        entry = (*self.priority(job), self._seq[key], key, job.job_id)
        heapq.heappush(self._heads, entry)

    def pop_valid(self):
        """Pop the best live queue: ``(key, queue)`` or ``None``."""
        while self._heads:
            entry = heapq.heappop(self._heads)
            key, job_id = entry[-2], entry[-1]
            queue = self._queues[key]
            if queue and queue[0].job_id == job_id:
                return key, queue
        return None

    def peek_priority(self) -> Optional[Tuple]:
        """Priority tuple of the best live head (``None`` if empty)."""
        while self._heads:
            entry = self._heads[0]
            key, job_id = entry[-2], entry[-1]
            queue = self._queues[key]
            if queue and queue[0].job_id == job_id:
                return entry[:-3]
            heapq.heappop(self._heads)
        return None

    def requeue_head(self, key: Tuple[str, str]) -> None:
        queue = self._queues[key]
        if queue:
            self._push(key, queue[0])

    def take(self, queue: Deque["Job"], count: int) -> List["Job"]:
        batch = [queue.popleft() for _ in range(count)]
        self.pending -= count
        return batch

    def reject_head(
        self,
        queue: Deque["Job"],
        reject: Callable[["Job"], None],
    ) -> None:
        job = queue.popleft()
        self.pending -= 1
        job.rejected = True
        reject(job)

    def depths(self) -> Dict[Tuple[str, str], int]:
        """Live queue lengths (empty queues omitted)."""
        return {key: len(queue)
                for key, queue in self._queues.items() if queue}

    def __bool__(self) -> bool:
        return self.pending > 0


def _edf_priority(job: "Job") -> Tuple[float, float]:
    return (job.effective_deadline_s, job.arrival_s)


def _edf_admit(
    qset: _QueueSet,
    ctx: PolicyContext,
    view: DispatchView,
    urgent_only: bool = False,
) -> Optional[List["Job"]]:
    """Deadline-checked admission from one queue set.

    Pops the most urgent live queue and trims its batch to the
    largest size whose exact dispatch-time finish still meets every
    member's effective deadline from the gang start (all members of
    a batch finish together, and a later-arriving member may carry a
    *tighter* SLO than the head, so the binding deadline is the
    prefix minimum).  A head that misses its deadline on *this*
    board is not necessarily infeasible — this board's key cache may
    simply be cold — so it is rejected only when even the best-case
    service (``ctx.best_case_s``: launch + compute, keys resident)
    from the earliest possible start misses, which no board can
    beat; otherwise the head is *skipped* (left queued for a warmer
    board or a later dispatch) and the scan moves to the next queue.
    With ``urgent_only``, heads whose priority lies in the future
    are left queued (the deferrable tier's "forced start" gate) and
    a miss is *final*: the forced start was computed from the
    conservative service bound as the last safe start, so a head
    that can no longer make its window on this board must be
    rejected, not skipped — lingering past the forced start gambles
    the window away while head-of-line-blocking the jobs behind it.
    """
    skipped: List[Tuple[str, str]] = []
    try:
        while True:
            popped = qset.pop_valid()
            if popped is None:
                return None
            key, queue = popped
            head = queue[0]
            if urgent_only and qset.priority(head)[0] > view.now:
                qset.requeue_head(key)
                return None
            size = min(ctx.max_batch, len(queue))
            # prefix_min[i]: tightest effective deadline among the
            # first i + 1 queued jobs — the deadline a batch of size
            # i + 1 must meet, since the whole batch shares one
            # finish time.
            prefix_min: List[float] = []
            for index in range(size):
                deadline = queue[index].effective_deadline_s
                if prefix_min and prefix_min[-1] < deadline:
                    deadline = prefix_min[-1]
                prefix_min.append(deadline)
            if prefix_min and prefix_min[size - 1] != math.inf:
                start = view.gang_start(head.job_class.num_fpgas)
                while size and (
                    prefix_min[size - 1] != math.inf
                    and start + view.service_s(head, size)
                    > prefix_min[size - 1]
                ):
                    size -= 1
                if size == 0:
                    deadline = head.effective_deadline_s
                    if urgent_only or (
                        start + ctx.best_case_s(head.job_class, 1)
                        > deadline
                    ):
                        # Final rejection: infeasible on any board, or
                        # past the forced start (see docstring).
                        qset.reject_head(queue, ctx.reject)
                        qset.requeue_head(key)
                    else:
                        # Only this board (cold keys) misses: leave
                        # the job queued for a warmer/later dispatch.
                        skipped.append(key)
                        if ctx.recorder.enabled:
                            ctx.recorder.policy_event(
                                t=view.now, name="skip cold board",
                                job_class=key[0], tenant=key[1],
                                job_id=head.job_id)
                    continue
            batch = qset.take(queue, size)
            qset.requeue_head(key)
            return batch
    finally:
        for key in skipped:
            qset.requeue_head(key)


# ----------------------------------------------------------------------
# The policies
# ----------------------------------------------------------------------


class FifoPolicy(SchedulingPolicy):
    """Oldest queue head first: today's dispatch order, exactly.

    The head-heap entries are ``(arrival, queue-creation-order, key,
    job-id)`` — the same ordering the pre-policy event loop used —
    so a run under this policy is bit-identical to
    :func:`repro.runtime.serving_baseline.baseline_run`.
    """

    name = "fifo"

    def begin(self, ctx: PolicyContext) -> None:
        super().begin(ctx)
        self._queues = _QueueSet(lambda job: (job.arrival_s,))

    def enqueue(self, job: "Job") -> None:
        self._queues.enqueue(job)

    @property
    def pending(self) -> int:
        return self._queues.pending

    def next_batch(self, view: DispatchView) -> Optional[List["Job"]]:
        popped = self._queues.pop_valid()
        if popped is None:
            return None
        key, queue = popped
        size = min(self.ctx.max_batch, len(queue))
        batch = self._queues.take(queue, size)
        self._queues.requeue_head(key)
        return batch

    def queue_depths(self) -> Dict[Tuple[str, str], int]:
        return self._queues.depths()


class EdfPolicy(SchedulingPolicy):
    """Earliest deadline first with conservative admission control.

    Jobs without annotations carry an infinite effective deadline, so
    on an unannotated scenario EDF orders exactly like FIFO (the
    regression suite asserts bit-identical reports).
    """

    name = "edf"

    def begin(self, ctx: PolicyContext) -> None:
        super().begin(ctx)
        self._queues = _QueueSet(_edf_priority)

    def enqueue(self, job: "Job") -> None:
        self._queues.enqueue(job)

    @property
    def pending(self) -> int:
        return self._queues.pending

    def next_batch(self, view: DispatchView) -> Optional[List["Job"]]:
        return _edf_admit(self._queues, self.ctx, view)

    def queue_depths(self) -> Dict[Tuple[str, str], int]:
        return self._queues.depths()


class DeferrableWindowPolicy(SchedulingPolicy):
    """Two-tier price-aware scheduling with execution windows.

    Interactive jobs are served EDF-with-admission.  ``deferrable``
    jobs wait: they run during cheap slots of the price signal, yield
    to interactive traffic otherwise, and are force-started when
    waiting any longer would push them past their window end (the
    *forced start*: window end minus the conservative single-job
    service bound).  A deferrable job whose window cannot be met even
    by an immediate solo run is rejected, never silently starved.
    """

    name = "deferrable-window"

    def begin(self, ctx: PolicyContext) -> None:
        super().begin(ctx)
        self._interactive = _QueueSet(_edf_priority)
        self._deferrable = _QueueSet(
            lambda job: (self._forced_start_s(job), job.arrival_s)
        )
        self._deferred_ids = set()
        self._deferral_events = 0
        #: job_id -> deferral-event count at enqueue; a batch job was
        #: "held back" iff a deferral decision happened while it was
        #: queued, i.e. the count grew past its stamp.
        self._enqueue_stamp: Dict[int, int] = {}
        self._events_at_entry = 0
        self._batch_ctx = replace(ctx, reject=self._reject_deferrable)

    def _forced_start_s(self, job: "Job") -> float:
        window_end = job.effective_deadline_s
        if window_end == math.inf:
            return math.inf
        return window_end - self.ctx.service_bound_s(job.job_class, 1)

    def enqueue(self, job: "Job") -> None:
        if job.deferrable:
            self._enqueue_stamp[job.job_id] = self._deferral_events
            self._deferrable.enqueue(job)
        else:
            self._interactive.enqueue(job)

    @property
    def pending(self) -> int:
        return self._interactive.pending + self._deferrable.pending

    @property
    def deferred_jobs(self) -> int:
        return len(self._deferred_ids)

    @property
    def deferral_events(self) -> int:
        return self._deferral_events

    def _mark_deferred(self, now: float) -> None:
        self._deferral_events += 1
        if self.ctx.recorder.enabled:
            self.ctx.recorder.policy_event(
                t=now, name="defer batch tier",
                pending=self._deferrable.pending,
                cheap=self.ctx.price.is_cheap(now))

    def _note_held_back(self, job: "Job") -> None:
        """Mark a batch job that waited through >= 1 deferral event.

        Measured against the event count at the *start* of the
        current ``next_batch`` call: a deferral decision made moments
        ago in this same call (e.g. step 2 yielding to interactive
        work that then turned out unserviceable) did not hold this
        job back — it is dispatching at its first real opportunity.
        """
        stamp = self._enqueue_stamp.pop(job.job_id, None)
        if stamp is not None and stamp < self._events_at_entry:
            if job.job_id not in self._deferred_ids:
                self._deferred_ids.add(job.job_id)
                job.deferred = True

    def _reject_deferrable(self, job: "Job") -> None:
        self._note_held_back(job)
        self.ctx.reject(job)

    def _batch_admit(self, view: DispatchView,
                     urgent_only: bool = False
                     ) -> Optional[List["Job"]]:
        batch = _edf_admit(
            self._deferrable, self._batch_ctx, view,
            urgent_only=urgent_only,
        )
        if batch is not None:
            for job in batch:
                self._note_held_back(job)
        return batch

    def next_batch(self, view: DispatchView) -> Optional[List["Job"]]:
        self._events_at_entry = self._deferral_events
        # 1. Batch jobs that cannot wait any longer run first: their
        #    forced start has arrived, so one more deferral would push
        #    them past their window end.
        priority = self._deferrable.peek_priority()
        if priority is not None and priority[0] <= view.now:
            batch = self._batch_admit(view, urgent_only=True)
            if batch is not None:
                if self.ctx.recorder.enabled:
                    self.ctx.recorder.policy_event(
                        t=view.now, name="forced start",
                        job_class=batch[0].job_class.name,
                        tenant=batch[0].tenant, batch=len(batch))
                return batch
        # 2. Interactive traffic owns the pool otherwise.
        if self._interactive.pending:
            if self._deferrable.pending:
                self._mark_deferred(view.now)
            batch = _edf_admit(self._interactive, self.ctx, view)
            if batch is not None:
                return batch
        # 3. Remaining batch work runs only while the signal is cheap.
        if self._deferrable.pending:
            if self.ctx.price.is_cheap(view.now):
                return self._batch_admit(view)
            self._mark_deferred(view.now)
        return None

    def queue_depths(self) -> Dict[Tuple[str, str], int]:
        depths = self._interactive.depths()
        for key, depth in self._deferrable.depths().items():
            depths[key] = depths.get(key, 0) + depth
        return depths

    def next_event_s(self, now: float) -> float:
        wake = math.inf
        if self._deferrable.pending:
            # A forced start already in the past means the urgent head
            # was merely *skipped* (only cold boards were free); the
            # next chance to serve it is a board or arrival event,
            # which the simulator owns — a past wake here would only
            # spin the event loop, so only strictly-future forced
            # starts count.
            priority = self._deferrable.peek_priority()
            if priority is not None and priority[0] > now:
                wake = priority[0]
            if not self.ctx.price.is_cheap(now):
                wake = min(wake, self.ctx.price.next_cheap(now))
        return wake


#: Registry of selectable policies, keyed by CLI/report name.
POLICIES = {
    FifoPolicy.name: FifoPolicy,
    EdfPolicy.name: EdfPolicy,
    DeferrableWindowPolicy.name: DeferrableWindowPolicy,
}


def make_policy(policy) -> SchedulingPolicy:
    """Resolve a policy name (or pass through an instance)."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    try:
        return POLICIES[policy]()
    except KeyError:
        raise SpecError(
            f"unknown policy {policy!r}; "
            f"try: {', '.join(sorted(POLICIES))}"
        ) from None
