"""Reference traces: paper-scale workloads expressed in the trace IR.

The functional layer runs at test-scale parameters (tiny N), so traces
captured from it exercise the capture/lowering machinery but not the
paper's operating point.  This module synthesizes paper-scale traces
op-for-op from the same workload descriptions the hand-built models in
:mod:`repro.core` use:

* :func:`lr_iteration_trace` mirrors
  :meth:`repro.core.program.FabProgram.lr_iteration` (Table 8's update
  phase) — lowering it must reproduce the hand-built program's cycles
  exactly, which the test suite asserts to within 1%.
* :func:`bootstrap_trace` walks the same pipeline as
  :meth:`repro.core.ops.FabOpModel.bootstrap` (Table 7), tracking the
  level limb-for-limb; its lowered serial cost must match the
  hand-built bootstrap cycles to within 1%.
* :func:`lr_inference_trace` and :func:`analytics_trace` are the
  serving simulator's interactive workloads (the deployment half of
  §5.5 and the private-analytics example).
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.params import FabConfig
from .optrace import OpTrace


def lr_iteration_trace(num_ciphertexts: int = 32,
                       update_level: int = 6) -> OpTrace:
    """The update phase of one HELR iteration (§5.5), as a trace.

    Op-for-op identical to ``FabProgram.lr_iteration``: per-ciphertext
    gradient accumulation, a rotation tree (one full + seven hoisted),
    the degree-3 sigmoid, and the weight update.
    """
    trace = OpTrace("lr_iteration", meta={
        "num_ciphertexts": num_ciphertexts, "update_level": update_level})
    for _ in range(num_ciphertexts):
        trace.record("multiply_plain", update_level)
        trace.record("multiply_plain", update_level)
        trace.record("add", update_level)
        trace.record("add", update_level)
        trace.record("add", update_level)
    trace.record("rotate", update_level, step=1)
    for i in range(7):
        trace.record("rotate_hoisted", update_level, step=1 << (i + 1))
    for _ in range(3):
        trace.record("multiply", update_level)
        trace.record("rescale", update_level)
    trace.record("multiply", update_level)
    trace.record("add", update_level)
    return trace


def _linear_transform_ops(trace: OpTrace, level: int, diagonals: int,
                          stride: int = 1,
                          plain_levels: int = 1) -> None:
    """One BSGS linear-transform factor, mirroring
    ``FabOpModel._linear_transform``: hoisted baby steps (first at full
    price), full giant steps, per-diagonal plaintext multiplies, and
    the trailing rescale(s).

    ``stride`` scales the rotation steps: in a grouped DFT, factor k
    rotates by multiples of radix^k, so each factor needs its own set
    of Galois keys — which is what makes the bootstrap's switching-key
    working set as large as it is.
    """
    n1 = 1 << max(0, round(math.log2(max(diagonals, 1)) / 2))
    n2 = math.ceil(diagonals / n1)
    baby_rotations = max(n1 - 1, 0)
    giant_rotations = max(n2 - 1, 0)
    for idx in range(baby_rotations):
        kind = "rotate" if idx == 0 else "rotate_hoisted"
        trace.record(kind, level, step=(idx + 1) * stride)
    for g in range(giant_rotations):
        trace.record("rotate", level, step=(g + 1) * n1 * stride)
    for _ in range(diagonals):
        trace.record("multiply_plain", level)
    for _ in range(plain_levels):
        trace.record("rescale", level)


def bootstrap_trace(config: Optional[FabConfig] = None,
                    fft_iter: Optional[int] = None,
                    slots: Optional[int] = None,
                    eval_mod_ct_mults: int = 20,
                    eval_mod_const_mults: int = 25) -> OpTrace:
    """The full bootstrapping pipeline (Table 7) as a trace.

    Walks ModRaise, fftIter CoeffToSlot factors, the two-branch
    EvalMod, and fftIter SlotToCoeff factors with the identical level
    bookkeeping of ``FabOpModel.bootstrap``.
    """
    config = config or FabConfig()
    fhe = config.fhe
    fft_iter = fft_iter if fft_iter is not None else fhe.fft_iter
    n = fhe.ring_degree
    slots = slots if slots is not None else n // 2
    log_slots = max(int(math.log2(slots)), 1)
    level = fhe.num_limbs
    trace = OpTrace("bootstrap", meta={
        "slots": slots, "fft_iter": fft_iter, "num_limbs": level})

    # ModRaise: iNTT the last limb and NTT the raised chain, for both
    # ciphertext polynomials — 2 * (1 + L) limb NTTs.
    trace.record("ntt_poly", 1 + level)
    trace.record("ntt_poly", 1 + level)

    radix_bits = math.ceil(log_slots / fft_iter)
    diagonals = (1 << radix_bits) + 1

    radix = 1 << radix_bits

    # CoeffToSlot: fftIter grouped DFT factors + one conjugation.
    # Factor k rotates by multiples of radix^k (distinct key sets).
    for factor in range(fft_iter):
        _linear_transform_ops(trace, level, diagonals,
                              stride=radix ** factor)
        level -= 1
    trace.record("conjugate", level)

    # EvalMod: the depth-9 sine polynomial on each coefficient half.
    depth = fhe.eval_mod_depth
    base = eval_mod_ct_mults // depth
    extra = eval_mod_ct_mults - base * depth
    branches = 2 if slots == n // 2 else 1
    for _half in range(branches):
        lvl = level
        for step in range(depth):
            mults_here = base + (1 if step < extra else 0)
            for _ in range(mults_here):
                trace.record("multiply", lvl)
                trace.record("rescale", lvl)
            lvl -= 1
        for _ in range(eval_mod_const_mults):
            trace.record("multiply_plain", level)
    level -= depth

    # SlotToCoeff: fftIter factors (strides descending), no fold
    # constants.
    for factor in range(fft_iter):
        _linear_transform_ops(trace, level, diagonals,
                              stride=radix ** (fft_iter - 1 - factor))
        level -= 1
    return trace


def lr_inference_trace(level: int = 6, num_slots: int = 256) -> OpTrace:
    """Scoring one encrypted sample against a plaintext model.

    The deployment workload: one plaintext inner product, a
    rotation-tree slot sum, and the degree-3 sigmoid.
    """
    trace = OpTrace("lr_inference", meta={
        "level": level, "num_slots": num_slots})
    trace.record("multiply_plain", level)
    trace.record("rescale", level)
    tree_depth = max(int(math.log2(num_slots)), 1)
    for i in range(tree_depth):
        trace.record("rotate", level - 1, step=1 << i)
        trace.record("add", level - 1)
    # poly_sigmoid: z^2, c3*z, the cubic combine, linear term, adds.
    trace.record("square", level - 1)
    trace.record("rescale", level - 1)
    trace.record("multiply_plain", level - 1)
    trace.record("rescale", level - 1)
    trace.record("multiply", level - 2)
    trace.record("rescale", level - 2)
    trace.record("multiply_plain", level - 1)
    trace.record("rescale", level - 1)
    trace.record("add", level - 3)
    trace.record("add_plain", level - 3)
    return trace


def analytics_trace(level: int = 8, num_slots: int = 4096) -> OpTrace:
    """Private aggregate statistics: masked mean + variance over slots.

    The :mod:`repro.apps.stats` workload shape: a masking multiply, a
    rotation-tree sum (hoisted), and a squared-deviation pass.
    """
    trace = OpTrace("analytics", meta={
        "level": level, "num_slots": num_slots})
    trace.record("multiply_plain", level)
    trace.record("rescale", level)
    tree_depth = max(int(math.log2(num_slots)), 1)
    for i in range(tree_depth):
        kind = "rotate" if i == 0 else "rotate_hoisted"
        trace.record(kind, level - 1, step=1 << i)
        trace.record("add", level - 1)
    # Variance: subtract the mean, square, and re-aggregate.
    trace.record("sub", level - 1)
    trace.record("square", level - 1)
    trace.record("rescale", level - 1)
    for i in range(tree_depth):
        kind = "rotate" if i == 0 else "rotate_hoisted"
        trace.record(kind, level - 2, step=1 << i)
        trace.record("add", level - 2)
    trace.record("multiply_plain", level - 2)
    trace.record("rescale", level - 2)
    return trace


#: Ops per batched ciphertext in the HELR update phase: two plaintext
#: multiplies + three adds (the block :func:`lr_iteration_trace`
#: repeats per ciphertext — the unit the FAB-2 striping deals out).
OPS_PER_CIPHERTEXT = 5


def lr_training_trace(config: Optional[FabConfig] = None,
                      batch: int = 32, slots: int = 256):
    """One FAB-2 training step and its striping plan.

    The §5.5 structure stated explicitly: bootstrapping the weight
    vector is serial on the master board (parallelizing it across
    boards is the paper's future work), the ``batch`` per-ciphertext
    gradient blocks are the stripeable batch dimension, and the
    rotation-tree/sigmoid/update tail is serial again.  Returns
    ``(trace, plan)`` — the one canonical definition shared by the
    serving workloads and the ``stripe-scale`` sweep.
    """
    from .striped_lowering import StripePlan
    config = config or FabConfig()
    boot = bootstrap_trace(config, slots=slots)
    update = lr_iteration_trace(num_ciphertexts=batch)
    trace = OpTrace(f"lr_training_b{batch}" if batch != 32
                    else "lr_training",
                    meta={"batch": batch, "slots": slots})
    trace.extend(boot).extend(update)
    tail = len(update) - batch * OPS_PER_CIPHERTEXT
    plan = StripePlan.chain([
        (len(boot), False, 1),
        (batch * OPS_PER_CIPHERTEXT, True, OPS_PER_CIPHERTEXT),
        (tail, False, 1),
    ])
    return trace, plan


#: Registry used by the CLI and the serving scenarios.
REFERENCE_TRACES = {
    "lr_iteration": lr_iteration_trace,
    "bootstrap": bootstrap_trace,
    "lr_inference": lr_inference_trace,
    "analytics": analytics_trace,
}


def build_reference_trace(name: str,
                          config: Optional[FabConfig] = None) -> OpTrace:
    """Instantiate a reference trace by name at paper-scale defaults."""
    if name not in REFERENCE_TRACES:
        raise KeyError(f"unknown reference trace {name!r}; "
                       f"choose from {sorted(REFERENCE_TRACES)}")
    if name == "bootstrap":
        return bootstrap_trace(config)
    return REFERENCE_TRACES[name]()
