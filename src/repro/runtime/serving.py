"""Discrete-event multi-tenant FHE serving simulator.

Models a pool of FAB devices (the :class:`MultiFpgaSystem` topology)
serving streams of traced jobs:

* **Jobs** are lowered traces: a :class:`JobClass` caches the
  scheduled device cycles and the switching-key working set of one
  trace (see :mod:`repro.runtime.lowering`).  A *striped* class
  (``num_fpgas > 1``, lowered by
  :mod:`repro.runtime.striped_lowering`) gang-occupies that many
  boards per batch, FAB-2 style.
* **Admission/batching**: arriving jobs queue per (class, tenant);
  a free device takes up to ``max_batch`` compatible jobs at once.
  Compatible means same program *and* same tenant — switching keys
  are per-tenant secrets, so only same-tenant jobs share key state.
  *Which* queue runs next — and whether a job is admitted at all —
  is delegated to a pluggable :mod:`repro.runtime.policies` policy:
  ``fifo`` (the historical order, bit-identical to the preserved
  baseline loop), ``edf`` (deadline-ordered with admission control),
  or ``deferrable-window`` (batch jobs yield to interactive traffic
  and run in cheap slots of a time-varying price signal).
* **SLO annotations**: a :class:`Stream` may carry ``slo_ms`` (each
  job's deadline is its arrival plus the SLO) or be ``deferrable``
  with a ``window_s`` execution window; reports then grow SLO
  attainment (overall, per workload, and per tenant), rejection and
  deferral counts, and the device-time cost integrated under the
  price signal.
* **Key residency**: each device's HBM holds a finite LRU cache of
  switching keys.  A batch whose keys are not resident pays the
  host-to-HBM PCIe transfer (the §3 offload path) before compute;
  resident keys ride for free.  Batching therefore amortizes both the
  XRT launch overhead and the key loads — the serving-level analogue
  of the paper's intra-op prefetching.
* **Metrics**: per-workload throughput and p50/p95/p99 latency, device
  utilization, and key-cache hit rates.

The simulator is deterministic for a given scenario seed, which the
test suite relies on.
"""

from __future__ import annotations

import heapq
import math
import random
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.hbm import HbmModel
from ..core.host import HostConfig
from ..core.params import FabConfig
from ..core.trace import format_table
from ..experiments.common import ExperimentResult, ExperimentRow
from ..obs import NULL_RECORDER, Recorder
from .arrivals import ArrivalProcess, PoissonProcess, make_process
from .lowering import cost_trace
from .optrace import OpTrace
from .policies import (DispatchView, PolicyContext, PriceSignal,
                       make_policy)

#: Engines selectable in :meth:`ServingSimulator.run`: the exact DES
#: (bit-identical to the preserved baseline under fifo) and the
#: vectorized fast engine in :mod:`repro.runtime.fast_engine`.
ENGINES = ("des", "fast")


# ----------------------------------------------------------------------
# Workload description
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TraceSource:
    """How a :class:`JobClass` was lowered from its trace.

    Retained (``compare=False``, so class identity/hashing ignores it)
    to let the fault-tolerant serving path *re-lower* a striped class
    onto a smaller gang when boards die — degraded-mode re-planning
    needs the original trace and lowering knobs, not just the priced
    result.
    """

    trace: OpTrace
    prefetch: bool = True
    policy: str = "round_robin"
    plan: object = None
    comm_scale: float = 1.0


@dataclass(frozen=True)
class JobClass:
    """A traced program, priced once and shared by all its jobs.

    ``num_fpgas > 1`` marks a *striped* class (see
    :mod:`repro.runtime.striped_lowering`): each job gang-occupies that
    many boards at once for ``cycles`` kernel cycles, and its switching
    keys are replicated into every occupied board's HBM.
    """

    name: str
    cycles: int
    key_ids: Tuple[str, ...]
    bytes_per_key: int
    num_fpgas: int = 1
    #: Lowering provenance for degraded-mode re-planning; excluded
    #: from equality/hash so annotated classes keep interning and
    #: comparing exactly as before.
    source: Optional[TraceSource] = field(default=None, compare=False,
                                          repr=False)

    def __post_init__(self):
        if self.num_fpgas < 1:
            raise ValueError("num_fpgas must be >= 1")

    def restriped(self, num_fpgas: int,
                  config: Optional[FabConfig] = None
                  ) -> Optional["JobClass"]:
        """Re-lower this class's trace onto a ``num_fpgas``-board
        stripe (degraded mode), or ``None`` when the class was built
        without its trace and cannot be re-planned."""
        if self.source is None:
            return None
        src = self.source
        return JobClass.from_trace(
            src.trace, config, prefetch=src.prefetch,
            num_fpgas=num_fpgas, policy=src.policy, plan=src.plan,
            comm_scale=src.comm_scale)

    def seconds(self, config: FabConfig) -> float:
        return config.cycles_to_seconds(self.cycles)

    @property
    def key_bytes(self) -> int:
        """Key working set of ONE board (keys replicate per board)."""
        return len(self.key_ids) * self.bytes_per_key

    @classmethod
    def from_trace(cls, trace: OpTrace,
                   config: Optional[FabConfig] = None,
                   prefetch: bool = True,
                   num_fpgas: int = 1,
                   policy: str = "round_robin",
                   plan=None,
                   comm_scale: float = 1.0) -> "JobClass":
        """Lower and schedule a trace into a servable job class.

        With ``num_fpgas > 1`` the trace is striped across that many
        boards (``policy``/``plan``/``comm_scale`` as in
        :mod:`repro.runtime.striped_lowering`): the class's ``cycles``
        is the striped pool makespan — including CMAC synchronization
        — and each job occupies the whole gang.  ``comm_scale=0``
        zeroes the communication bill while keeping the
        synchronization structure (the equivalence tests' knob).
        """
        source = TraceSource(trace, prefetch=prefetch, policy=policy,
                             plan=plan, comm_scale=comm_scale)
        if num_fpgas == 1:
            cost = cost_trace(trace, config, prefetch=prefetch)
            return cls(trace.name, cost.cycles, cost.keys.key_ids,
                       cost.keys.bytes_per_key, source=source)
        from .lowering import key_working_set
        from .striped_lowering import lower_striped_trace
        report = lower_striped_trace(
            trace, num_fpgas, config, policy=policy, plan=plan,
            comm_scale=comm_scale).schedule(prefetch=prefetch)
        keys = key_working_set(trace, config, num_fpgas=num_fpgas)
        return cls(trace.name, report.cycles, keys.key_ids,
                   keys.bytes_per_key, num_fpgas=num_fpgas,
                   source=source)


@dataclass
class Job:
    """One request: a job class instance owned by a tenant.

    ``deadline_s`` is the job's SLO deadline (absolute sim time);
    ``window_end_s`` bounds a ``deferrable`` job's execution window.
    ``rejected`` marks a job an admission-controlled policy dropped;
    ``deferred`` marks one the deferrable tier explicitly held back
    at least once.

    The fault-tolerant path (:mod:`repro.runtime.faults`) adds:
    ``retries`` counts re-enqueues after a board failure killed the
    job's batch; ``shed`` marks a job dropped by the recovery machinery
    (retry budget exhausted, un-plannable gang, or pool death) with
    ``shed_reason`` naming which; ``degraded`` marks a striped job that
    completed on a smaller-than-planned gang.  Retried jobs keep their
    original ``arrival_s`` and ``deadline_s`` — latency and SLO
    accounting always measure from first arrival.
    """

    job_id: int
    job_class: JobClass
    tenant: str
    arrival_s: float
    finish_s: Optional[float] = None
    deadline_s: Optional[float] = None
    window_end_s: Optional[float] = None
    deferrable: bool = False
    rejected: bool = False
    deferred: bool = False
    retries: int = 0
    shed: bool = False
    shed_reason: Optional[str] = None
    degraded: bool = False

    @property
    def latency_s(self) -> float:
        if self.finish_s is None:
            raise ValueError(f"job {self.job_id} has not completed")
        return self.finish_s - self.arrival_s

    @property
    def effective_deadline_s(self) -> float:
        """The time this job must finish by: its SLO deadline, else
        its window end, else infinity (no constraint)."""
        if self.deadline_s is not None:
            return self.deadline_s
        if self.window_end_s is not None:
            return self.window_end_s
        return math.inf


@dataclass(frozen=True)
class Stream:
    """An arrival stream of one job class across tenants.

    Arrivals are homogeneous Poisson at ``rate_per_s`` by default; a
    ``process`` (any :class:`repro.runtime.arrivals.ArrivalProcess` —
    diurnal, MMPP, flash crowd, trace replay) reshapes them while
    ``rate_per_s`` keeps describing the stream's nominal rate for
    capacity planning.  ``slo_ms`` stamps each job with a deadline
    (arrival + SLO).  ``deferrable`` marks the stream's jobs as batch
    work that may be deferred within a ``window_s``-second execution
    window after arrival (required when deferrable — an unbounded
    deferrable job could be postponed forever).
    """

    job_class: JobClass
    rate_per_s: float
    num_tenants: int = 1
    tenant_prefix: str = "tenant"
    start_s: float = 0.0
    slo_ms: Optional[float] = None
    deferrable: bool = False
    window_s: Optional[float] = None
    process: Optional[ArrivalProcess] = None

    def __post_init__(self):
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.num_tenants < 1:
            raise ValueError("need at least one tenant")
        if self.slo_ms is not None and self.slo_ms <= 0:
            raise ValueError("slo_ms must be positive")
        if self.window_s is not None and self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.deferrable and self.window_s is None:
            raise ValueError("a deferrable stream needs a window_s")

    def arrival_process(self) -> ArrivalProcess:
        """The stream's arrival process (default: Poisson at
        ``rate_per_s``, the historical behavior)."""
        return (self.process if self.process is not None
                else PoissonProcess(self.rate_per_s))


@dataclass(frozen=True)
class ArrivalChunk:
    """One chunk of generated arrivals in structure-of-arrays form.

    ``stream_index`` points into ``Scenario.streams`` and
    ``tenant_index`` is the tenant draw within that stream; together
    they determine a job's class, tenant string, deadline, and window
    without materializing a :class:`Job`.  Job ids are
    ``start_id .. start_id + len - 1`` in chunk order (global arrival
    order), matching :meth:`Scenario.generate`.
    """

    arrival_s: np.ndarray
    stream_index: np.ndarray
    tenant_index: np.ndarray
    start_id: int

    def __len__(self) -> int:
        return int(self.arrival_s.size)


@dataclass
class Scenario:
    """A named mix of streams over a finite arrival horizon."""

    name: str
    duration_s: float
    streams: List[Stream]

    def __post_init__(self):
        # duration_s == 0 is a legitimate empty horizon (no arrivals).
        if self.duration_s < 0:
            raise ValueError("duration_s must be >= 0")

    def generate(self, seed: int = 0) -> List[Job]:
        """Draw the job arrivals (deterministic per seed).

        Each stream draws from its arrival process (homogeneous
        Poisson by default) on one shared RNG, in stream order; for
        default streams the draw sequence is bit-identical to the
        historical inlined Poisson loop, which the regression suite
        asserts seed-for-seed.
        """
        rng = random.Random(seed)
        jobs: List[Job] = []
        for stream in self.streams:
            process = stream.arrival_process()
            for t in process.iter_times(rng, stream.start_s,
                                        self.duration_s):
                tenant = (f"{stream.tenant_prefix}"
                          f"{rng.randrange(stream.num_tenants)}")
                jobs.append(Job(
                    0, stream.job_class, tenant, t,
                    deadline_s=(t + stream.slo_ms / 1e3
                                if stream.slo_ms is not None else None),
                    window_end_s=(t + stream.window_s
                                  if stream.window_s is not None
                                  else None),
                    deferrable=stream.deferrable))
        jobs.sort(key=lambda j: j.arrival_s)
        for i, job in enumerate(jobs):
            job.job_id = i
        return jobs

    def arrivals(self, seed: int = 0, chunk_jobs: int = 65536,
                 mode: str = "exact") -> Iterator[ArrivalChunk]:
        """Generate arrivals as chunked structure-of-arrays.

        The fast engine's input path: no per-job Python objects are
        materialized, only numpy arrays (``chunk_jobs`` rows at a
        time, globally sorted by arrival).  ``mode="exact"`` draws
        from the same :class:`random.Random` sequence as
        :meth:`generate` — chunk rows equal the generated jobs
        field-for-field (regression-tested) — so both engines can
        share one arrival sequence.  ``mode="vectorized"`` draws the
        same processes from a :class:`numpy.random.Generator` in
        numpy batches, ~10x faster at million-job scale but a
        different (equally distributed) sequence per seed.
        """
        if chunk_jobs < 1:
            raise ValueError("chunk_jobs must be >= 1")
        times_per_stream: List[np.ndarray] = []
        tenants_per_stream: List[np.ndarray] = []
        if mode == "exact":
            rng = random.Random(seed)
            for stream in self.streams:
                process = stream.arrival_process()
                times: List[float] = []
                tenants: List[int] = []
                num_tenants = stream.num_tenants
                for t in process.iter_times(rng, stream.start_s,
                                            self.duration_s):
                    times.append(t)
                    tenants.append(rng.randrange(num_tenants))
                times_per_stream.append(
                    np.asarray(times, dtype=np.float64))
                tenants_per_stream.append(
                    np.asarray(tenants, dtype=np.int32))
        elif mode == "vectorized":
            np_rng = np.random.default_rng(seed)
            for stream in self.streams:
                process = stream.arrival_process()
                times = process.sample_times(np_rng, stream.start_s,
                                             self.duration_s)
                times_per_stream.append(times)
                tenants_per_stream.append(np_rng.integers(
                    stream.num_tenants, size=times.size,
                    dtype=np.int32))
        else:
            raise ValueError(f"unknown arrival mode {mode!r}; "
                             f"try: exact, vectorized")
        arrival_s = np.concatenate(times_per_stream) if self.streams \
            else np.empty(0, dtype=np.float64)
        stream_index = np.repeat(
            np.arange(len(self.streams), dtype=np.int32),
            [t.size for t in times_per_stream])
        tenant_index = (np.concatenate(tenants_per_stream)
                        if self.streams
                        else np.empty(0, dtype=np.int32))
        # Stable sort: ties keep stream order, exactly like the
        # stable list.sort in generate().
        order = np.argsort(arrival_s, kind="stable")
        arrival_s = arrival_s[order]
        stream_index = stream_index[order]
        tenant_index = tenant_index[order]
        for lo in range(0, arrival_s.size, chunk_jobs):
            hi = min(lo + chunk_jobs, arrival_s.size)
            yield ArrivalChunk(arrival_s[lo:hi], stream_index[lo:hi],
                               tenant_index[lo:hi], start_id=lo)

    def jobs_from_arrivals(
            self, chunks: Iterator[ArrivalChunk]) -> List[Job]:
        """Materialize :class:`Job` objects from :meth:`arrivals`
        chunks (the regression tests' bridge between the two
        generation paths)."""
        jobs: List[Job] = []
        for chunk in chunks:
            for offset in range(len(chunk)):
                stream = self.streams[int(chunk.stream_index[offset])]
                t = float(chunk.arrival_s[offset])
                tenant = (f"{stream.tenant_prefix}"
                          f"{int(chunk.tenant_index[offset])}")
                jobs.append(Job(
                    chunk.start_id + offset, stream.job_class, tenant,
                    t,
                    deadline_s=(t + stream.slo_ms / 1e3
                                if stream.slo_ms is not None else None),
                    window_end_s=(t + stream.window_s
                                  if stream.window_s is not None
                                  else None),
                    deferrable=stream.deferrable))
        return jobs

    def with_arrivals(self, spec: str) -> "Scenario":
        """A copy whose every stream draws from the arrival process
        described by ``spec`` (see
        :func:`repro.runtime.arrivals.make_process`), keeping each
        stream's nominal rate as the process's mean rate."""
        return Scenario(self.name, self.duration_s, [
            replace(stream, process=make_process(
                spec, stream.rate_per_s, self.duration_s))
            for stream in self.streams])


# ----------------------------------------------------------------------
# Device state
# ----------------------------------------------------------------------

class KeyCache:
    """LRU cache of per-tenant switching keys resident in one HBM.

    Backed by an :class:`~collections.OrderedDict` kept in
    least-recently-used-first order (hits are moved to the MRU end,
    loads insert there), with a running byte total, so each request is
    O(keys) and each eviction is O(1): the victim is always the entry
    at the LRU front.  The keys of the request being admitted are
    pinned — they were all just touched, so they occupy the MRU end
    and are never evicted mid-request (residency may transiently
    exceed capacity when one working set outsizes the cache).
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self._resident: "OrderedDict[Tuple[str, str], int]" = OrderedDict()
        self._resident_bytes = 0
        self.hits = 0
        self.misses = 0
        self.bytes_loaded = 0
        self.evictions = 0
        self.bytes_evicted = 0

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    def peek_miss_bytes(self, tenant: str, job_class: JobClass) -> int:
        """Bytes :meth:`request` would load right now, without
        touching residency or LRU order (the admission preview)."""
        resident = self._resident
        return sum(job_class.bytes_per_key
                   for key in job_class.key_ids
                   if (tenant, key) not in resident)

    def request(self, tenant: str, job_class: JobClass) -> int:
        """Make a job's keys resident; returns bytes that must load."""
        resident = self._resident
        bytes_per_key = job_class.bytes_per_key
        miss_bytes = 0
        for key in job_class.key_ids:
            entry = (tenant, key)
            if entry in resident:
                self.hits += 1
                resident.move_to_end(entry)
            else:
                self.misses += 1
                miss_bytes += bytes_per_key
                resident[entry] = bytes_per_key
                self._resident_bytes += bytes_per_key
        if self._resident_bytes > self.capacity_bytes:
            # Every pinned (just-touched) entry sits at the MRU end,
            # so the LRU front is evictable until only pins remain.
            pinned = {(tenant, key) for key in job_class.key_ids}
            while self._resident_bytes > self.capacity_bytes:
                victim = next(iter(resident))
                if victim in pinned:
                    break
                victim_bytes = resident.pop(victim)
                self._resident_bytes -= victim_bytes
                self.evictions += 1
                self.bytes_evicted += victim_bytes
        self.bytes_loaded += miss_bytes
        return miss_bytes

    def drop_all(self) -> int:
        """Evict every resident key (a board fault wipes its HBM).

        The cumulative hit/miss/bytes_loaded counters survive — they
        describe traffic, not residency — while ``evictions`` and
        ``bytes_evicted`` record the wipe, so post-fault cache stats
        still reconcile.  Returns the bytes dropped."""
        dropped = self._resident_bytes
        self.evictions += len(self._resident)
        self.bytes_evicted += dropped
        self._resident.clear()
        self._resident_bytes = 0
        return dropped

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            # A never-used cache has no meaningful rate; report 0
            # rather than raising (reports aggregate over idle boards).
            return 0.0
        return self.hits / total

    def stats(self) -> Dict[str, int]:
        """Cumulative counters plus current residency, as one dict
        (what recorders snapshot per batch)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bytes_loaded": self.bytes_loaded,
            "evictions": self.evictions,
            "bytes_evicted": self.bytes_evicted,
            "resident_bytes": self._resident_bytes,
        }


@dataclass
class DeviceState:
    """One FAB board in the serving pool."""

    index: int
    cache: KeyCache
    free_at_s: float = 0.0
    busy_s: float = 0.0
    key_load_s: float = 0.0
    jobs_done: int = 0


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------

def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sequence."""
    if not sorted_values:
        return float("nan")
    rank = max(int(math.ceil(q / 100.0 * len(sorted_values))) - 1, 0)
    return sorted_values[min(rank, len(sorted_values) - 1)]


@dataclass
class WorkloadStats:
    """Latency/throughput summary for one job class.

    ``slo_attainment`` is the fraction of this class's
    deadline-carrying jobs (completed *or* rejected) that finished by
    their effective deadline; ``None`` when the class carries no
    deadlines.  ``rejected`` counts jobs admission control dropped.
    """

    name: str
    jobs: int
    throughput_jps: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_ms: float
    slo_attainment: Optional[float] = None
    rejected: int = 0


@dataclass
class ServingReport:
    """Outcome of one simulated scenario."""

    scenario: str
    makespan_s: float
    jobs_done: int
    per_workload: List[WorkloadStats]
    device_utilization: float
    key_hit_rate: float
    key_bytes_loaded: int
    batches: int
    mean_batch_size: float
    #: Jobs credited per device; each job counts exactly once pool-wide
    #: (a striped gang credits its master), so this sums to jobs_done.
    per_device_jobs: Tuple[int, ...] = ()
    #: Name of the scheduling policy that produced this report.
    policy: str = "fifo"
    #: Jobs dropped by admission control (they never ran).
    rejected_jobs: int = 0
    #: Distinct jobs the deferrable tier explicitly held back.
    deferred_jobs: int = 0
    #: Busy device-time integrated under the price signal (equals
    #: busy device-seconds under the default flat unit price).
    cost_price_units: float = 0.0
    #: Fraction of deadline-carrying jobs that met their effective
    #: deadline (None when the scenario carries no deadlines).
    slo_attainment: Optional[float] = None
    #: Per-tenant SLO attainment, sorted by tenant name.
    per_tenant_slo: Tuple[Tuple[str, float], ...] = ()
    #: Completed jobs that met their effective deadline, per second of
    #: makespan (jobs with no deadline always count).  Under faults
    #: this is the useful-work rate; compare against
    #: :attr:`throughput_jps` to see fault-induced waste.
    goodput_jps: float = 0.0
    #: Board-down events injected by the fault process (0 without
    #: fault injection; the fields below likewise).
    board_faults: int = 0
    #: Batch executions killed mid-service by a board fault.
    failures: int = 0
    #: Job re-enqueues performed by the retry policy.
    retries: int = 0
    #: Jobs dropped by recovery (retry budget exhausted or pool dead).
    shed_jobs: int = 0
    #: Striped jobs dropped because no viable smaller gang existed.
    shed_degraded: int = 0
    #: Jobs that completed on a degraded (smaller) gang.
    degraded_jobs: int = 0
    #: Device-seconds burned by batches that a fault later killed.
    wasted_service_s: float = 0.0
    #: Voluntary pool resizes performed by the autoscaler (board-down
    #: + board-up transitions; 0 without ``autoscale=``).
    resize_events: int = 0
    #: Boards the autoscaler parked (drained free, cache evicted).
    scale_downs: int = 0
    #: Boards the autoscaler returned to service (cold).
    scale_ups: int = 0
    #: Provisioned board-seconds — the capacity actually paid for.
    #: Statically provisioned runs pay ``makespan_s * num_devices``;
    #: an autoscaled run pays only for in-service boards.
    board_seconds: float = 0.0

    @property
    def board_s_per_good_job(self) -> float:
        """Cost-per-goodput: provisioned board-seconds per job that
        completed by its effective deadline (lower is better;
        ``inf`` when nothing good finished)."""
        good = self.goodput_jps * self.makespan_s
        if good <= 0:
            return math.inf
        return self.board_seconds / good

    @property
    def throughput_jps(self) -> float:
        """Completed jobs per second of makespan (goodput's ceiling)."""
        return self.jobs_done / self.makespan_s if self.makespan_s \
            else 0.0

    def tenant_slo(self, tenant: str) -> float:
        for name, attained in self.per_tenant_slo:
            if name == tenant:
                return attained
        raise KeyError(f"no SLO-annotated jobs for tenant {tenant!r} "
                       f"in scenario {self.scenario!r}")

    def workload(self, name: str) -> WorkloadStats:
        for stats in self.per_workload:
            if stats.name == name:
                return stats
        raise KeyError(f"no workload {name!r} in scenario "
                       f"{self.scenario!r}")

    def format(self) -> str:
        rows = [(w.name, w.jobs, f"{w.throughput_jps:.1f}",
                 f"{w.p50_ms:.2f}", f"{w.p95_ms:.2f}", f"{w.p99_ms:.2f}",
                 f"{w.mean_ms:.2f}") for w in self.per_workload]
        table = format_table(
            ("workload", "jobs", "jobs/s", "p50_ms", "p95_ms", "p99_ms",
             "mean_ms"), rows)
        text = (f"== serve[{self.scenario}]: {self.jobs_done} jobs in "
                f"{self.makespan_s:.3f}s ==\n{table}\n"
                f"devices {100 * self.device_utilization:.0f}% busy; "
                f"key cache {100 * self.key_hit_rate:.0f}% hits "
                f"({self.key_bytes_loaded / 1e9:.2f} GB loaded); "
                f"{self.batches} batches, mean size "
                f"{self.mean_batch_size:.2f}")
        # The policy line appears whenever there is something
        # policy-related to say — SLO accounting, a non-default
        # policy, or admission/deferral activity — not only on
        # annotated scenarios (cost and policy are always populated).
        if (self.slo_attainment is not None or self.policy != "fifo"
                or self.rejected_jobs or self.deferred_jobs):
            slo = (f"{100 * self.slo_attainment:.1f}% SLO attainment, "
                   if self.slo_attainment is not None else "")
            text += (f"\npolicy {self.policy}: {slo}"
                     f"{self.rejected_jobs} rejected, "
                     f"{self.deferred_jobs} deferred, "
                     f"cost {self.cost_price_units * 1e3:.2f} "
                     f"price-unit-ms")
        if (self.board_faults or self.failures or self.shed_jobs
                or self.shed_degraded or self.degraded_jobs):
            text += (f"\nfaults: {self.board_faults} board faults, "
                     f"{self.failures} killed batches, "
                     f"{self.retries} retries, "
                     f"{self.shed_jobs} shed + {self.shed_degraded} "
                     f"shed-degraded, {self.degraded_jobs} served "
                     f"degraded; goodput {self.goodput_jps:.1f}/s of "
                     f"{self.throughput_jps:.1f}/s throughput")
        if self.resize_events:
            per_good = self.board_s_per_good_job
            text += (f"\nautoscale: {self.resize_events} resizes "
                     f"({self.scale_downs} down / {self.scale_ups} "
                     f"up); {self.board_seconds:.3f} board-s paid"
                     + (f", {per_good * 1e3:.2f} board-ms per good job"
                        if math.isfinite(per_good) else ""))
        return text

    def to_experiment_result(self) -> ExperimentResult:
        """Render through the standard experiment-table machinery."""
        columns = ["jobs", "jobs_per_s", "p50_ms", "p95_ms", "p99_ms"]
        with_slo = any(w.slo_attainment is not None
                       for w in self.per_workload)
        if with_slo:
            columns += ["slo_pct", "rejected"]
        rows = []
        for w in self.per_workload:
            values = {
                "jobs": w.jobs, "jobs_per_s": w.throughput_jps,
                "p50_ms": w.p50_ms, "p95_ms": w.p95_ms,
                "p99_ms": w.p99_ms,
            }
            if with_slo:
                values["slo_pct"] = (100 * w.slo_attainment
                                     if w.slo_attainment is not None
                                     else "-")
                values["rejected"] = w.rejected
            rows.append(ExperimentRow(w.name, values))
        notes = (f"{self.jobs_done} jobs, "
                 f"{100 * self.device_utilization:.0f}% device busy, "
                 f"{100 * self.key_hit_rate:.0f}% key-cache hits, "
                 f"mean batch {self.mean_batch_size:.2f}")
        if with_slo:
            notes += (f"; policy {self.policy}, "
                      f"{self.rejected_jobs} rejected, "
                      f"{self.deferred_jobs} deferred, cost "
                      f"{self.cost_price_units * 1e3:.2f} price-unit-ms")
        return ExperimentResult(
            experiment_id=f"serve[{self.scenario}]",
            title="multi-tenant serving: throughput and tail latency",
            columns=columns,
            rows=rows,
            notes=notes)


# ----------------------------------------------------------------------
# The simulator
# ----------------------------------------------------------------------

def key_load_seconds(host: HostConfig, miss_bytes: int) -> float:
    """Host -> HBM switching-key transfer over PCIe.

    The one place the PCIe cost model lives: the simulator's service
    arithmetic, the policies' admission bounds, and the default SLO
    heuristic all price key traffic through this function, so they
    cannot drift apart.
    """
    if miss_bytes == 0:
        return 0.0
    return (miss_bytes / (host.pcie_gbytes_per_sec * 1e9)
            + host.pcie_latency_s)


class ServingSimulator:
    """Event-driven serving across a FAB device pool."""

    def __init__(self, config: Optional[FabConfig] = None,
                 num_devices: int = 8,
                 key_cache_bytes: Optional[int] = None,
                 host: Optional[HostConfig] = None,
                 max_batch: int = 8):
        if num_devices < 1:
            raise ValueError("need at least one device")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if key_cache_bytes is not None and key_cache_bytes <= 0:
            raise ValueError("key_cache_bytes must be positive (a "
                             "zero-capacity key cache cannot hold any "
                             "working set)")
        self.config = config or FabConfig()
        self.host = host or HostConfig()
        self.num_devices = num_devices
        self.max_batch = max_batch
        if key_cache_bytes is None:
            # Keys may occupy HBM not reserved for ciphertexts and
            # scratch: a quarter of the 8 GB by default.
            key_cache_bytes = HbmModel(self.config).capacity_bytes // 4
        self.key_cache_bytes = key_cache_bytes

    # ------------------------------------------------------------------

    def _key_load_seconds(self, miss_bytes: int) -> float:
        """Host -> HBM switching-key transfer over PCIe."""
        return key_load_seconds(self.host, miss_bytes)

    def service_bound_s(self, job_class: JobClass,
                        batch_size: int) -> float:
        """Conservative upper bound on one batch's service time.

        Launch overhead + the worst-case key load (every key of one
        board's replica misses) + compute.  The actual service time
        never exceeds this — misses load at most the full working
        set — so admission decisions made against the bound are safe:
        an admitted batch can only finish earlier than predicted.
        """
        return (self.host.kernel_launch_overhead_s
                + self._key_load_seconds(job_class.key_bytes)
                + batch_size * job_class.seconds(self.config))

    def best_case_service_s(self, job_class: JobClass,
                            batch_size: int) -> float:
        """Lower bound on one batch's service time: launch overhead +
        compute with every switching key already resident.  No board
        can serve the batch faster, so a deadline missed even against
        this bound is infeasible pool-wide — the admission-control
        policies use it to make rejection final rather than
        board-local."""
        return (self.host.kernel_launch_overhead_s
                + batch_size * job_class.seconds(self.config))

    def run(self, scenario: Scenario, seed: int = 0,
            policy="fifo",
            price: Optional[PriceSignal] = None,
            recorder: Optional[Recorder] = None,
            engine: str = "des",
            arrival_mode: str = "exact",
            streaming_quantiles: Optional[bool] = None,
            faults=None,
            retry=None,
            autoscale=None) -> ServingReport:
        """Simulate one scenario; returns the aggregated report.

        ``engine`` selects the event core: ``"des"`` (this exact
        discrete-event loop) or ``"fast"`` (the vectorized engine in
        :mod:`repro.runtime.fast_engine`, same semantics at ~10x the
        event rate; the parity suite holds its reports to the DES
        oracle on shared arrival sequences).  ``arrival_mode`` and
        ``streaming_quantiles`` tune the fast engine only — chunked
        exact vs numpy-vectorized arrival generation, and streaming
        (reservoir) percentile estimation (default exact lists;
        ``True`` always streams, ``"auto"`` streams past 100k jobs
        per class).

        The loop is driven by two event sources merged per dispatch: a
        heap of device-completion times and the time-sorted arrival
        list (consumed by an O(1)-amortized cursor).  *Which* queued
        batch a free device takes — and whether a job is admitted at
        all — is delegated to ``policy`` (a name from
        :data:`repro.runtime.policies.POLICIES` or a policy
        instance); a policy may also defer, leaving the device idle
        until the next arrival, price change, or forced start.
        ``price`` is the time-varying price/carbon signal the
        ``deferrable-window`` policy schedules around and every
        report's ``cost_price_units`` integrates (default: flat 1.0,
        making cost equal busy device-seconds).

        ``faults`` (a :class:`repro.runtime.faults.FaultProcess` or a
        spec string like ``"poisson:mtbf=2,mttr=0.2"``) injects
        board-down/board-up events; ``retry`` (a
        :class:`repro.runtime.faults.RetryPolicy` or spec, default
        ``"none"``) decides what happens to jobs whose batch a fault
        killed.

        ``autoscale`` (a :class:`repro.runtime.autoscaler.ScalePolicy`
        or spec string like ``"reactive:low=0.3,high=0.85"``) turns on
        voluntary pool elasticity: boards drain out of service when
        the policy scales down (key cache evicted) and return cold on
        scale-up.

        ``faults`` and ``autoscale`` — alone or combined — are
        DES-only and run in the unified membership loop
        (:func:`repro.runtime.membership.run_with_ledger`), where a
        :class:`repro.runtime.membership.PoolLedger` arbitrates the
        two mechanisms (a fault completes a drain without
        double-evicting the key cache; a parked spare rejoins only
        when the scaler wants it; spares absorb failures before gangs
        re-stripe).  With both ``None`` this loop is exactly the
        fixed-pool code path (golden-pinned).

        ``recorder`` (a :class:`repro.obs.Recorder`) observes the run:
        arrivals, rejections, batch services, deferral windows, and
        queue depths.  Observation never perturbs the simulation —
        with no recorder (or a disabled one, e.g.
        :class:`repro.obs.NullRecorder`) the guarded hooks are skipped
        entirely and the report is bit-identical to an unrecorded
        run, which the regression suite asserts.

        Under the default ``fifo`` policy the schedule produced is
        bit-identical to the original frontier-scanning loop
        preserved in
        :func:`repro.runtime.serving_baseline.baseline_run`, which
        the test suite asserts.
        """
        for stream in scenario.streams:
            if stream.job_class.num_fpgas > self.num_devices:
                raise ValueError(
                    f"job class {stream.job_class.name!r} stripes over "
                    f"{stream.job_class.num_fpgas} boards but the pool "
                    f"has {self.num_devices}")
        if faults is not None or autoscale is not None:
            # Pool membership changes — involuntary (faults) and
            # voluntary (autoscale), alone or combined — run in the
            # unified ledger loop
            # (:func:`repro.runtime.membership.run_with_ledger`), so
            # this loop stays byte-for-byte the fixed-pool code.
            # Each mechanism alone reduces bit-identically to its
            # pre-unification fork (golden-pinned); together the
            # ledger arbitrates (a fault can complete a drain, spares
            # absorb failures, parked boards can die).
            if engine == "fast":
                raise ValueError(
                    "pool-membership changes (faults/autoscale) "
                    "require engine='des'; the fast engine is a "
                    "fixed-pool parity oracle")
            if retry is not None and faults is None:
                raise ValueError(
                    "a retry policy only applies under fault "
                    "injection; autoscaling drains boards instead of "
                    "killing batches")
            from .membership import run_with_ledger
            return run_with_ledger(
                self, scenario, seed=seed, policy=policy, price=price,
                recorder=recorder, faults=faults, retry=retry,
                autoscale=autoscale)
        if retry is not None:
            raise ValueError(
                "a retry policy only applies under fault injection; "
                "pass faults= as well")
        if engine == "fast":
            from .fast_engine import run_fast
            return run_fast(self, scenario, seed=seed, policy=policy,
                            price=price, recorder=recorder,
                            arrival_mode=arrival_mode,
                            streaming_quantiles=streaming_quantiles)
        if engine != "des":
            raise ValueError(f"unknown engine {engine!r}; "
                             f"try: {', '.join(ENGINES)}")
        if arrival_mode != "exact":
            raise ValueError(
                "the DES engine always generates arrivals exactly; "
                "arrival_mode applies to engine='fast' only")
        if streaming_quantiles:
            raise ValueError(
                "the DES engine keeps exact latency lists; "
                "streaming_quantiles applies to engine='fast' only")
        rec = (recorder if recorder is not None and recorder.enabled
               else None)
        jobs = scenario.generate(seed)
        policy = make_policy(policy)
        price = price if price is not None else PriceSignal.flat()
        devices = [DeviceState(i, KeyCache(self.key_cache_bytes))
                   for i in range(self.num_devices)]
        free_heap: List[Tuple[float, int]] = [
            (0.0, d.index) for d in devices]
        heapq.heapify(free_heap)
        completed: List[Job] = []
        rejected: List[Job] = []
        batches = 0
        batched_jobs = 0
        cost_price_units = 0.0
        i = 0
        n = len(jobs)
        launch_overhead_s = self.host.kernel_launch_overhead_s
        # Dispatch-view helpers, hoisted out of the event loop: they
        # close over the loop's live ``now``/``device_index``, and the
        # single DispatchView is updated in place per dispatch (it is
        # only valid for the duration of one ``next_batch`` call), so
        # the default fifo path pays no per-dispatch closure or
        # allocation cost for machinery it never reads.
        now = 0.0
        device_index = 0

        if rec is None:
            reject_job = rejected.append
        else:
            rec.run_begin(scenario=scenario.name,
                          num_devices=self.num_devices,
                          policy=policy.name, price=price,
                          max_batch=self.max_batch)

            def reject_job(job: Job) -> None:
                rejected.append(job)
                deadline = job.effective_deadline_s
                rec.job_rejected(
                    t=now, job_id=job.job_id,
                    job_class=job.job_class.name, tenant=job.tenant,
                    deadline_s=(None if deadline == math.inf
                                else deadline))

        policy.begin(PolicyContext(
            max_batch=self.max_batch, price=price,
            service_bound_s=self.service_bound_s,
            best_case_s=self.best_case_service_s,
            reject=reject_job,
            recorder=recorder if rec is not None else NULL_RECORDER))

        def admit(now: float) -> None:
            nonlocal i
            while i < n and jobs[i].arrival_s <= now:
                job = jobs[i]
                policy.enqueue(job)
                if rec is not None:
                    deadline = job.effective_deadline_s
                    rec.job_arrival(
                        t=job.arrival_s, job_id=job.job_id,
                        job_class=job.job_class.name, tenant=job.tenant,
                        deadline_s=(None if deadline == math.inf
                                    else deadline),
                        deferrable=job.deferrable)
                i += 1

        def gang_start(k: int) -> float:
            # Earliest time k boards (this one + the k-1 next free)
            # could all start; peeking matches the pops a dispatched
            # gang performs below.  A board sleeping on a deferral
            # timer has been *physically* idle since its last finish,
            # so availability reads DeviceState.free_at_s — its heap
            # key is a re-evaluation time, not a busy-until time.
            if k <= 1:
                return now
            extra = heapq.nsmallest(k - 1, free_heap)
            free = max((devices[index].free_at_s for _, index in extra),
                       default=now)
            return max(now, free)

        def service_s(job: Job, batch_size: int) -> float:
            # Exact dispatch-time service preview: the same gang the
            # dispatch below would grab, each member's key misses
            # peeked without touching residency, the batch waiting on
            # the slowest board's load — so an admission test against
            # this oracle predicts the real finish time exactly.
            job_class = job.job_class
            members = [devices[device_index]]
            if job_class.num_fpgas > 1:
                members += [
                    devices[index] for _, index in heapq.nsmallest(
                        job_class.num_fpgas - 1, free_heap)]
            load_s = max(
                self._key_load_seconds(
                    member.cache.peek_miss_bytes(job.tenant, job_class))
                for member in members)
            return (launch_overhead_s + load_s
                    + batch_size * job_class.seconds(self.config))

        view = DispatchView(now=0.0, gang_start=gang_start,
                            service_s=service_s)

        while i < n or policy.pending:
            free_at, device_index = heapq.heappop(free_heap)
            now = free_at
            admit(now)
            if not policy.pending:
                # Idle until the next arrival.
                now = max(now, jobs[i].arrival_s)
                admit(now)

            view.now = now
            if rec is not None:
                rec.queue_sample(t=now, total=policy.pending,
                                 depths=policy.queue_depths())
            batch = policy.next_batch(view)
            if not batch:
                if policy.pending:
                    # Deferred: sleep the board until the policy's
                    # next event or the next arrival.  Progress is
                    # guaranteed — policies only defer to a strictly
                    # later time — but never trust it blindly.
                    wake = policy.next_event_s(now)
                    if i < n:
                        wake = min(wake, jobs[i].arrival_s)
                    if wake <= now:
                        wake = math.nextafter(now, math.inf)
                    if rec is not None:
                        rec.defer(board=device_index, t=now, wake=wake)
                    heapq.heappush(free_heap, (wake, device_index))
                else:
                    # Everything queued was rejected; the board is
                    # free again at ``now`` for future arrivals.
                    heapq.heappush(free_heap, (now, device_index))
                continue
            job_class = batch[0].job_class
            gang = [devices[device_index]]
            start = now
            if job_class.num_fpgas > 1:
                # Gang-schedule a striped batch: grab the next-free
                # boards; the stripe holds all of them until it
                # finishes (compute can only start once the slowest
                # gang member frees up).  Availability is the member's
                # free_at_s, not its heap key — a deferral pushes a
                # wake *timer* into the heap while the board sits
                # physically idle, and reading the timer as busy time
                # would delay (or spuriously reject) a feasible gang.
                for _ in range(job_class.num_fpgas - 1):
                    _, extra_index = heapq.heappop(free_heap)
                    member = devices[extra_index]
                    gang.append(member)
                    if member.free_at_s > start:
                        start = member.free_at_s
            # Switching keys replicate into every gang board's HBM;
            # the per-board PCIe loads run in parallel, so the batch
            # waits for the slowest board's misses.
            load_s = 0.0
            member_loads = [] if rec is not None else None
            for member in gang:
                miss_bytes = member.cache.request(batch[0].tenant,
                                                  job_class)
                member_load_s = self._key_load_seconds(miss_bytes)
                member.key_load_s += member_load_s
                if member_loads is not None:
                    member_loads.append(
                        (member.index, member_load_s, miss_bytes))
                if member_load_s > load_s:
                    load_s = member_load_s
            compute_s = len(batch) * job_class.seconds(self.config)
            service_s = launch_overhead_s + load_s + compute_s
            finish = start + service_s
            for job in batch:
                job.finish_s = finish
            completed.extend(batch)
            for member in gang:
                member.free_at_s = finish
                member.busy_s += service_s
                heapq.heappush(free_heap, (finish, member.index))
            # Each job counts once pool-wide (the baseline's
            # semantics): credit the gang master, not every member.
            gang[0].jobs_done += len(batch)
            batches += 1
            batched_jobs += len(batch)
            batch_cost = len(gang) * price.integral(start, finish)
            cost_price_units += batch_cost
            if rec is not None:
                slo_met = slo_total = 0
                for job in batch:
                    deadline = job.effective_deadline_s
                    if deadline != math.inf:
                        slo_total += 1
                        if finish <= deadline:
                            slo_met += 1
                rec.batch(
                    start=start, finish=finish,
                    job_class=job_class.name, tenant=batch[0].tenant,
                    batch_size=len(batch), launch_s=launch_overhead_s,
                    members=member_loads,
                    cache_stats=tuple(m.cache.stats() for m in gang),
                    slo_met=slo_met, slo_total=slo_total,
                    cost=batch_cost)

        if rec is not None:
            rec.run_end(
                makespan_s=max((j.finish_s or 0.0 for j in completed),
                               default=0.0),
                device_busy_s=tuple(d.busy_s for d in devices),
                jobs_done=len(completed))
        return self._report(scenario, completed, devices, batches,
                            batched_jobs, policy=policy.name,
                            rejected=rejected,
                            deferred_jobs=policy.deferred_jobs,
                            cost_price_units=cost_price_units)

    # ------------------------------------------------------------------

    def _report(self, scenario: Scenario, completed: List[Job],
                devices: List[DeviceState], batches: int,
                batched_jobs: int, policy: str = "fifo",
                rejected: Sequence[Job] = (),
                deferred_jobs: int = 0,
                cost_price_units: Optional[float] = None,
                shed: Sequence[Job] = (),
                board_faults: int = 0,
                failures: int = 0,
                wasted_service_s: float = 0.0,
                resize_events: int = 0,
                scale_ups: int = 0,
                scale_downs: int = 0,
                board_seconds: Optional[float] = None
                ) -> ServingReport:
        makespan = max((j.finish_s or 0.0 for j in completed), default=0.0)
        per_class: Dict[str, List[float]] = {}
        for job in completed:
            per_class.setdefault(job.job_class.name, []).append(
                job.latency_s)
        # SLO accounting: every deadline-carrying job — completed or
        # rejected — counts in the denominator; only completed jobs
        # that finished by their effective deadline count as met.
        slo_met: Dict[str, int] = {}
        slo_total: Dict[str, int] = {}
        tenant_met: Dict[str, int] = {}
        tenant_total: Dict[str, int] = {}
        rejected_per_class: Dict[str, int] = {}
        for job in completed:
            deadline = job.effective_deadline_s
            if deadline != math.inf:
                name = job.job_class.name
                met = int(job.finish_s <= deadline)
                slo_met[name] = slo_met.get(name, 0) + met
                slo_total[name] = slo_total.get(name, 0) + 1
                tenant_met[job.tenant] = (
                    tenant_met.get(job.tenant, 0) + met)
                tenant_total[job.tenant] = (
                    tenant_total.get(job.tenant, 0) + 1)
        for job in rejected:
            name = job.job_class.name
            rejected_per_class[name] = rejected_per_class.get(name, 0) + 1
            slo_total[name] = slo_total.get(name, 0) + 1
            slo_met.setdefault(name, 0)
            tenant_total[job.tenant] = tenant_total.get(job.tenant, 0) + 1
            tenant_met.setdefault(job.tenant, 0)
        # Shed jobs (fault recovery gave up on them) are SLO misses
        # for every deadline they carried — shedding must never
        # launder an attainment number.
        for job in shed:
            if job.effective_deadline_s != math.inf:
                name = job.job_class.name
                slo_total[name] = slo_total.get(name, 0) + 1
                slo_met.setdefault(name, 0)
                tenant_total[job.tenant] = (
                    tenant_total.get(job.tenant, 0) + 1)
                tenant_met.setdefault(job.tenant, 0)
        stats = []
        for name, latencies in per_class.items():
            latencies.sort()
            count = len(latencies)
            stats.append(WorkloadStats(
                name=name, jobs=count,
                throughput_jps=count / makespan if makespan else 0.0,
                p50_ms=percentile(latencies, 50) * 1e3,
                p95_ms=percentile(latencies, 95) * 1e3,
                p99_ms=percentile(latencies, 99) * 1e3,
                mean_ms=sum(latencies) / count * 1e3,
                slo_attainment=(slo_met[name] / slo_total[name]
                                if slo_total.get(name) else None),
                rejected=rejected_per_class.get(name, 0)))
        # A class may be rejected out of existence: report it anyway.
        for name, dropped in rejected_per_class.items():
            if name not in per_class:
                stats.append(WorkloadStats(
                    name=name, jobs=0, throughput_jps=0.0,
                    p50_ms=float("nan"), p95_ms=float("nan"),
                    p99_ms=float("nan"), mean_ms=float("nan"),
                    slo_attainment=0.0, rejected=dropped))
        busy = sum(d.busy_s for d in devices)
        hits = sum(d.cache.hits for d in devices)
        misses = sum(d.cache.misses for d in devices)
        total_slo = sum(slo_total.values())
        good = sum(1 for job in completed
                   if job.finish_s <= job.effective_deadline_s)
        return ServingReport(
            scenario=scenario.name,
            makespan_s=makespan,
            jobs_done=len(completed),
            per_workload=stats,
            device_utilization=(busy / (makespan * len(devices))
                                if makespan else 0.0),
            key_hit_rate=hits / (hits + misses) if hits + misses else 0.0,
            key_bytes_loaded=sum(d.cache.bytes_loaded for d in devices),
            batches=batches,
            mean_batch_size=batched_jobs / batches if batches else 0.0,
            per_device_jobs=tuple(d.jobs_done for d in devices),
            policy=policy,
            rejected_jobs=len(rejected),
            deferred_jobs=deferred_jobs,
            cost_price_units=(busy if cost_price_units is None
                              else cost_price_units),
            slo_attainment=(sum(slo_met.values()) / total_slo
                            if total_slo else None),
            per_tenant_slo=tuple(
                (tenant, tenant_met[tenant] / tenant_total[tenant])
                for tenant in sorted(tenant_total)),
            goodput_jps=good / makespan if makespan else 0.0,
            board_faults=board_faults,
            failures=failures,
            retries=(sum(job.retries for job in completed)
                     + sum(job.retries for job in shed)
                     + sum(job.retries for job in rejected)),
            shed_jobs=sum(1 for job in shed
                          if job.shed_reason != "degraded"),
            shed_degraded=sum(1 for job in shed
                              if job.shed_reason == "degraded"),
            degraded_jobs=sum(1 for job in completed if job.degraded),
            wasted_service_s=wasted_service_s,
            resize_events=resize_events,
            scale_ups=scale_ups,
            scale_downs=scale_downs,
            # A fixed pool pays every board for the whole run; the
            # autoscale loop passes its exact provisioned integral.
            board_seconds=(makespan * len(devices)
                           if board_seconds is None else board_seconds))


# ----------------------------------------------------------------------
# Canned scenarios
# ----------------------------------------------------------------------

def build_job_classes(config: Optional[FabConfig] = None,
                      training_stripe: int = 1
                      ) -> Dict[str, JobClass]:
    """The serving workloads, lowered from the reference traces.

    ``training_stripe > 1`` stripes the training job FAB-2 style: the
    bootstrap stays serial on the gang master, the 32 per-ciphertext
    gradient blocks split across ``training_stripe`` boards, and each
    training job gang-occupies the whole stripe.
    """
    from .reference import (analytics_trace, lr_inference_trace,
                            lr_training_trace)
    config = config or FabConfig()
    # One training step = sparse bootstrap + the update phase (§5.5);
    # the trace and its striping plan are the canonical ones in
    # reference.py, shared with the stripe-scale sweep.
    training, plan = lr_training_trace(config)
    return {
        "lr_inference": JobClass.from_trace(lr_inference_trace(), config),
        "lr_training": JobClass.from_trace(
            training, config, num_fpgas=training_stripe, plan=plan),
        "analytics": JobClass.from_trace(analytics_trace(), config),
    }


def build_scenarios(config: Optional[FabConfig] = None,
                    num_devices: int = 8,
                    duration_s: float = 2.0,
                    target_load: float = 0.6,
                    training_stripe: int = 1
                    ) -> Dict[str, Scenario]:
    """Standard scenarios, with rates scaled to the pool capacity.

    ``target_load`` is the offered load as a fraction of aggregate
    device compute capacity, so scenarios remain stable (queues drain)
    for any config / pool size.  ``training_stripe`` stripes the
    training workload across that many boards per job (see
    :func:`build_job_classes`).
    """
    config = config or FabConfig()
    classes = build_job_classes(config, training_stripe=training_stripe)

    def rate(job_class: JobClass, load: float) -> float:
        # A striped job consumes num_fpgas boards at once, so the
        # per-job capacity share scales down accordingly.
        return (load * num_devices
                / (job_class.seconds(config) * job_class.num_fpgas))

    interactive = Scenario("interactive", duration_s, [
        Stream(classes["lr_inference"],
               rate(classes["lr_inference"], target_load),
               num_tenants=8, tenant_prefix="user"),
    ])
    batch = Scenario("batch", duration_s, [
        Stream(classes["lr_training"],
               rate(classes["lr_training"], target_load),
               num_tenants=2, tenant_prefix="trainer"),
    ])
    analytics = Scenario("analytics", duration_s, [
        Stream(classes["analytics"],
               rate(classes["analytics"], target_load),
               num_tenants=4, tenant_prefix="org"),
    ])
    share = target_load / 3.0
    mixed = Scenario("mixed", duration_s, [
        Stream(classes["lr_inference"],
               rate(classes["lr_inference"], share),
               num_tenants=8, tenant_prefix="user"),
        Stream(classes["lr_training"],
               rate(classes["lr_training"], share),
               num_tenants=2, tenant_prefix="trainer"),
        Stream(classes["analytics"],
               rate(classes["analytics"], share),
               num_tenants=4, tenant_prefix="org"),
    ])
    return {"interactive": interactive, "batch": batch,
            "analytics": analytics, "mixed": mixed}


def default_interactive_slo_ms(job_class: JobClass,
                               config: FabConfig,
                               host: Optional[HostConfig] = None,
                               slack: float = 3.0) -> float:
    """SLO heuristic for interactive traffic: ``slack`` x the
    single-job *cold-start* service time (launch overhead + a full
    switching-key working-set load over PCIe + compute).

    The cold key load dominates FHE service times (hundreds of MB of
    switching keys vs milliseconds of compute), so an SLO keyed to
    compute alone would be unmeetable even on an idle board.  Keying
    it to the cold bound is scale-free across configs: a lightly
    loaded pool meets it comfortably, an overloaded one visibly
    misses it."""
    host = host or HostConfig()
    cold_s = (host.kernel_launch_overhead_s
              + key_load_seconds(host, job_class.key_bytes)
              + job_class.seconds(config))
    return slack * cold_s * 1e3


def build_slo_scenario(config: Optional[FabConfig] = None,
                       num_devices: int = 8,
                       duration_s: float = 1.0,
                       target_load: float = 0.9,
                       interactive_fraction: float = 0.7,
                       interactive_slo_ms: Optional[float] = None,
                       batch_window_s: Optional[float] = None,
                       training_stripe: int = 1,
                       host: Optional[HostConfig] = None) -> Scenario:
    """An SLO-annotated two-tier scenario: interactive + deferrable.

    Latency-sensitive inference traffic carries a per-job deadline
    (``interactive_slo_ms``, defaulting to
    :func:`default_interactive_slo_ms` — 3x its cold-start service
    bound) while
    throughput-oriented batch work is ``deferrable`` inside a
    ``batch_window_s`` execution window after arrival (default: the
    arrival horizon, so a diurnal price signal always exposes a cheap
    slot inside the window).  ``interactive_fraction`` splits the
    offered load between the tiers; ``training_stripe > 1`` swaps the
    batch tier to the gang-scheduled striped training class, so the
    scenario exercises policy x gang composition.  When the simulator
    runs with a non-default :class:`HostConfig` (different PCIe
    numbers), pass the same ``host`` here so the default SLO prices
    the cold key load with the cost model that will actually serve
    the jobs.
    """
    if not 0.0 <= interactive_fraction <= 1.0:
        raise ValueError("interactive_fraction must be in [0, 1]")
    config = config or FabConfig()
    classes = build_job_classes(config, training_stripe=training_stripe)
    inference = classes["lr_inference"]
    batch_class = (classes["lr_training"] if training_stripe > 1
                   else classes["analytics"])
    if interactive_slo_ms is None:
        interactive_slo_ms = default_interactive_slo_ms(inference, config,
                                                        host=host)
    if batch_window_s is None:
        batch_window_s = max(duration_s, 1e-3)

    def rate(job_class: JobClass, load: float) -> float:
        return (load * num_devices
                / (job_class.seconds(config) * job_class.num_fpgas))

    streams = []
    interactive_load = target_load * interactive_fraction
    if interactive_load > 0:
        # Two interactive tenants: both working sets fit the default
        # per-board key cache, so misses reflect scheduling (tenant
        # interleaving), not unavoidable capacity thrash.
        streams.append(Stream(
            inference, rate(inference, interactive_load),
            num_tenants=2, tenant_prefix="user",
            slo_ms=interactive_slo_ms))
    batch_load = target_load * (1.0 - interactive_fraction)
    if batch_load > 0:
        streams.append(Stream(
            batch_class, rate(batch_class, batch_load),
            num_tenants=2, tenant_prefix="batch",
            deferrable=True, window_s=batch_window_s))
    if not streams:
        raise ValueError("target_load must be positive")
    return Scenario("slo_mixed", duration_s, streams)
